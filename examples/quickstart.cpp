// Quickstart: the native SkipQueue in five minutes.
//
//   $ ./examples/quickstart
//
// Shows single-threaded use, the update-in-place semantics, the relaxed
// variant, and a small multi-threaded producer/consumer run.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "slpq/skip_queue.hpp"

int main() {
  // --- 1. Basic use -------------------------------------------------------
  slpq::SkipQueue<int, std::string> todo;
  todo.insert(30, "write the benchmarks");
  todo.insert(10, "read the paper");
  todo.insert(20, "build the simulator");

  std::printf("tasks in priority order:\n");
  while (auto task = todo.delete_min())
    std::printf("  [%d] %s\n", task->first, task->second.c_str());

  // --- 2. Duplicate keys update in place ----------------------------------
  slpq::SkipQueue<int, std::string> updates;
  updates.insert(5, "draft");
  const bool fresh = updates.insert(5, "final");  // false: value replaced
  std::printf("\nsecond insert of key 5 created a new node? %s\n",
              fresh ? "yes" : "no (updated in place)");
  std::printf("key 5 now holds: %s\n", updates.delete_min()->second.c_str());

  // --- 3. Concurrent producers and consumers ------------------------------
  slpq::SkipQueue<long, long> q;
  constexpr int kProducers = 2, kConsumers = 2;
  constexpr long kPerProducer = 50000;
  std::atomic<bool> done{false};
  std::atomic<long> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (long i = 0; i < kPerProducer; ++i)
        q.insert(i * kProducers + p, i);
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      for (;;) {
        if (q.delete_min()) {
          consumed.fetch_add(1);
        } else if (done.load()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done.store(true);
  for (int c = 0; c < kConsumers; ++c)
    threads[static_cast<std::size_t>(kProducers + c)].join();

  std::printf("\nproduced %ld items, consumed %ld, left %zu, reclaimed %llu nodes\n",
              kProducers * kPerProducer, consumed.load(), q.size(),
              static_cast<unsigned long long>(q.reclaimed()));

  // --- 4. The relaxed variant ---------------------------------------------
  // Same API; delete_min may additionally return an item whose insert ran
  // concurrently with it (Section 5.4 of the paper) — a fair trade when
  // you want throughput and your priorities are advisory.
  slpq::RelaxedSkipQueue<int, int> relaxed;
  relaxed.insert(1, 1);
  std::printf("\nrelaxed variant works the same here: got key %d\n",
              relaxed.delete_min()->first);
  return 0;
}
