// Parallel discrete-event simulation — the paper's flagship application
// domain for concurrent priority queues.
//
// Simulates an open network of service stations (a Jackson-style network):
// jobs arrive at random stations, receive exponential-ish service, and hop
// to a random next station or leave. The pending-event set is a shared
// slpq::SkipQueue keyed by event time; worker threads repeatedly extract
// the earliest event, advance the model, and schedule follow-ups.
//
// This is optimistic-window-free parallel DES: events are independent
// per-station, and stations are guarded by tiny spinlocks, so processing
// events slightly out of global order is safe here (station clocks are
// per-station). It demonstrates the pattern the paper's introduction
// motivates; a production PDES engine would add rollback or conservative
// synchronization on top.
//
//   $ ./examples/discrete_event_sim [threads] [events]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/skip_queue.hpp"

namespace {

constexpr int kStations = 64;

struct Event {
  std::uint32_t station;
  std::uint32_t job;
};

struct Station {
  slpq::detail::TinySpinLock lock;
  std::uint64_t jobs_served = 0;
  std::uint64_t busy_time = 0;
  std::uint64_t clock = 0;  // station-local time of last completion
};

std::uint64_t pack(Event e) {
  return (static_cast<std::uint64_t>(e.station) << 32) | e.job;
}
Event unpack(std::uint64_t v) {
  return {static_cast<std::uint32_t>(v >> 32), static_cast<std::uint32_t>(v)};
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const long total_events = argc > 2 ? std::atol(argv[2]) : 200000;

  slpq::SkipQueue<std::uint64_t, std::uint64_t> event_queue;  // time -> event
  std::vector<Station> stations(kStations);
  std::atomic<long> processed{0};
  std::atomic<std::uint32_t> next_job{0};

  // Prime the simulation: one initial arrival per station.
  {
    slpq::detail::Xoshiro256 rng(42);
    for (std::uint32_t s = 0; s < kStations; ++s)
      event_queue.insert(1 + rng.below(100),
                         pack({s, next_job.fetch_add(1)}));
  }

  auto worker = [&](int id) {
    slpq::detail::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(id));
    while (processed.load(std::memory_order_relaxed) < total_events) {
      auto item = event_queue.delete_min();
      if (!item) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t now = item->first;
      const Event ev = unpack(item->second);

      // Service the job at its station.
      const std::uint64_t service = 1 + rng.below(50);
      {
        std::lock_guard<slpq::detail::TinySpinLock> g(
            stations[ev.station].lock);
        auto& st = stations[ev.station];
        st.jobs_served++;
        st.busy_time += service;
        st.clock = std::max(st.clock, now) + service;
      }
      processed.fetch_add(1, std::memory_order_relaxed);

      // 75%: the job hops to another station; 25%: it leaves and a new
      // arrival enters somewhere else (keeps the event population stable).
      const auto next_station = static_cast<std::uint32_t>(rng.below(kStations));
      const std::uint32_t job =
          rng.below(4) != 0 ? ev.job : next_job.fetch_add(1);
      event_queue.insert(now + service + rng.below(20),
                         pack({next_station, job}));
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  std::uint64_t served = 0, busy = 0, horizon = 0;
  for (auto& st : stations) {
    served += st.jobs_served;
    busy += st.busy_time;
    horizon = std::max(horizon, st.clock);
  }
  std::printf("discrete-event simulation finished\n");
  std::printf("  threads            : %d\n", threads);
  std::printf("  events processed   : %llu\n",
              static_cast<unsigned long long>(served));
  std::printf("  distinct jobs      : %u\n", next_job.load());
  std::printf("  simulated horizon  : %llu time units\n",
              static_cast<unsigned long long>(horizon));
  std::printf("  mean utilization   : %.1f%%\n",
              horizon ? 100.0 * static_cast<double>(busy) /
                            (static_cast<double>(horizon) * kStations)
                      : 0.0);
  std::printf("  events still queued: %zu\n", event_queue.size());
  return 0;
}
