// Parallel single-source shortest paths — the "numerical algorithms"
// application family from the paper's introduction.
//
// A label-correcting parallel Dijkstra: worker threads pull the globally
// most-promising (distance, vertex) pair from a shared SkipQueue, relax
// the vertex's outgoing edges, and push improved tentative distances.
// Because several workers run at once, a vertex can be settled more than
// once with stale labels; the per-vertex atomic distance makes relaxations
// monotone, so the algorithm still converges to exact distances (this is
// the classical PQ-driven SSSP scheme the paper's applications cite, and
// also the standard "lazy deletion" formulation — stale queue entries are
// simply skipped).
//
// The open list is pluggable: the exact LockFreeSkipQueue (default) or the
// relaxed slpq::MultiQueue. Relaxation is safe for label-correcting SSSP —
// popping out of order only costs extra re-settles, never correctness —
// and the MultiQueue's contract (a handle always sees its own buffered
// inserts, and delete_min flushes + sweeps every shard before reporting
// empty) keeps the idle-count termination protocol sound.
//
//   $ ./examples/parallel_sssp [threads] [vertices] [degree] [lockfree|multiqueue]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/multi_queue.hpp"

namespace {

struct Edge {
  int to;
  long weight;
};

using Graph = std::vector<std::vector<Edge>>;

Graph random_graph(int vertices, int degree, std::uint64_t seed) {
  slpq::detail::Xoshiro256 rng(seed);
  Graph g(static_cast<std::size_t>(vertices));
  for (int v = 0; v < vertices; ++v) {
    // A ring edge guarantees connectivity, plus `degree` random edges.
    g[static_cast<std::size_t>(v)].push_back(
        {(v + 1) % vertices, static_cast<long>(1 + rng.below(100))});
    for (int e = 0; e < degree; ++e)
      g[static_cast<std::size_t>(v)].push_back(
          {static_cast<int>(rng.below(static_cast<std::uint64_t>(vertices))),
           static_cast<long>(1 + rng.below(100))});
  }
  return g;
}

std::vector<long> dijkstra_reference(const Graph& g, int source) {
  constexpr long kInf = std::numeric_limits<long>::max();
  std::vector<long> dist(g.size(), kInf);
  using Entry = std::pair<long, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const Edge& e : g[static_cast<std::size_t>(v)]) {
      if (d + e.weight < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = d + e.weight;
        pq.emplace(dist[static_cast<std::size_t>(e.to)], e.to);
      }
    }
  }
  return dist;
}

/// Runs the label-correcting workers against any queue exposing
/// insert(key, value) and delete_min() -> optional<pair>.
template <typename Queue>
void solve(Queue& open, const Graph& g, std::vector<std::atomic<long>>& dist,
           int threads) {
  constexpr int kSource = 0;
  dist[kSource].store(0);
  open.insert(0, kSource);
  // A buffered queue parks the seed in this (non-worker) thread's handle;
  // publish it so the workers can see it.
  if constexpr (requires { open.flush(); }) open.flush();

  std::atomic<int> idle{0};
  auto worker = [&] {
    bool was_idle = false;
    for (;;) {
      auto item = open.delete_min();
      if (!item) {
        if (!was_idle) {
          was_idle = true;
          idle.fetch_add(1);
        }
        if (idle.load() == threads) return;
        std::this_thread::yield();
        continue;
      }
      if (was_idle) {
        was_idle = false;
        idle.fetch_sub(1);
      }
      const long d = item->first >> 20;
      const int v = item->second;
      if (d > dist[static_cast<std::size_t>(v)].load(std::memory_order_acquire))
        continue;  // stale entry: a better label already propagated
      for (const Edge& e : g[static_cast<std::size_t>(v)]) {
        const long nd = d + e.weight;
        long cur = dist[static_cast<std::size_t>(e.to)].load(
            std::memory_order_relaxed);
        while (nd < cur) {
          if (dist[static_cast<std::size_t>(e.to)].compare_exchange_weak(
                  cur, nd, std::memory_order_acq_rel)) {
            open.insert((nd << 20) | e.to, e.to);
            break;
          }
        }
      }
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int vertices = argc > 2 ? std::atoi(argv[2]) : 20000;
  const int degree = argc > 3 ? std::atoi(argv[3]) : 4;
  const char* queue_name = argc > 4 ? argv[4] : "lockfree";
  constexpr int kSource = 0;
  constexpr long kInf = std::numeric_limits<long>::max();

  const Graph g = random_graph(vertices, degree, 99);

  // (distance << 20 | vertex) keys keep entries unique and ordered by
  // distance first; weights <= 100 and |V| <= 2^20 keep this exact.
  std::vector<std::atomic<long>> dist(static_cast<std::size_t>(vertices));
  for (auto& d : dist) d.store(kInf, std::memory_order_relaxed);

  if (std::strcmp(queue_name, "lockfree") == 0) {
    slpq::LockFreeSkipQueue<long, int> open;
    solve(open, g, dist, threads);
  } else if (std::strcmp(queue_name, "multiqueue") == 0) {
    slpq::MultiQueue<long, int>::Options opt;
    opt.max_threads = threads;
    slpq::MultiQueue<long, int> open(opt);
    solve(open, g, dist, threads);
  } else {
    std::fprintf(stderr,
                 "unknown queue '%s' (expected lockfree or multiqueue)\n",
                 queue_name);
    return 2;
  }

  const auto reference = dijkstra_reference(g, kSource);
  long mismatches = 0;
  long reachable = 0;
  long long checksum = 0;
  for (int v = 0; v < vertices; ++v) {
    const long got = dist[static_cast<std::size_t>(v)].load();
    if (reference[static_cast<std::size_t>(v)] != kInf) {
      ++reachable;
      checksum += got;
    }
    if (got != reference[static_cast<std::size_t>(v)]) ++mismatches;
  }

  std::printf("parallel SSSP on %d vertices (degree %d), %d threads, %s queue\n",
              vertices, degree, threads, queue_name);
  std::printf("  reachable vertices : %ld\n", reachable);
  std::printf("  distance checksum  : %lld\n", checksum);
  std::printf("  vs sequential ref  : %s (%ld mismatches)\n",
              mismatches == 0 ? "MATCH" : "MISMATCH", mismatches);
  return mismatches == 0 ? 0 : 1;
}
