// Driving the Proteus-style multiprocessor simulator directly.
//
// The paper's evaluation ran on a simulated 256-node ccNUMA machine. This
// example shows the psim API at a friendly scale: it builds a 32-processor
// machine, runs the paper's mixed workload on each of the three priority
// queues, and prints both the latency comparison and the machine-level
// coherence statistics that explain it (hot-line queueing at the heap's
// size counter vs. distributed traffic in the skiplist).
//
//   $ ./examples/simulator_demo [procs] [ops]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  harness::Table t;
  t.title = "Mixed workload, " + std::to_string(procs) + " simulated processors, " +
            std::to_string(ops) + " ops, 1000 initial elements";
  t.columns = {"structure",    "insert (cycles)", "delete-min (cycles)",
               "dir queueing", "cache misses",    "lock contended"};

  for (const std::string structure : {"heap", "skip", "relaxed", "funnel"}) {
    harness::BenchmarkConfig cfg;
    cfg.structure = structure;
    cfg.processors = procs;
    cfg.initial_size = 1000;
    cfg.total_ops = ops;
    cfg.insert_ratio = 0.5;
    cfg.work_cycles = 100;
    const auto& backend =
        harness::BackendRegistry::instance().require(cfg.flavor, structure);
    const auto r = harness::run_benchmark(cfg);
    t.add_row({backend.label, harness::fmt(r.mean_insert()),
               harness::fmt(r.mean_delete()),
               std::to_string(r.machine_stats.dir_queue_cycles),
               std::to_string(r.machine_stats.cache_misses()),
               std::to_string(r.machine_stats.lock_contended)});
  }

  print_table(std::cout, t);
  std::cout << "\nReading the numbers: the heap serializes every operation "
               "through its size\ncounter and root, so its directory-queueing "
               "cycles dwarf the skiplist's;\nthe funnel list pays a linear "
               "walk per batch on a 1000-element list.\n";
  return 0;
}
