// Parallel best-first branch-and-bound 0/1 knapsack.
//
// The open list — partial solutions ordered by an optimistic bound — is a
// shared slpq::SkipQueue<Key=-bound>: delete_min hands each worker the most
// promising subproblem. Workers expand it (take / skip the next item),
// prune against the shared incumbent, and push the children. This is the
// classic priority-queue-driven search the paper cites from the branch-
// and-bound literature [22, 25, 36].
//
//   $ ./examples/branch_and_bound [threads] [items]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/skip_queue.hpp"

namespace {

struct Item {
  long value;
  long weight;
};

struct Subproblem {
  int depth;        // next item to decide
  long value;       // value accumulated so far
  long weight;      // weight used so far
};

// Fractional-relaxation upper bound for a subproblem (items are pre-sorted
// by value density, so the greedy prefix is optimal for the relaxation).
long upper_bound(const std::vector<Item>& items, long capacity,
                 const Subproblem& s) {
  long bound = s.value;
  long room = capacity - s.weight;
  for (std::size_t i = static_cast<std::size_t>(s.depth);
       i < items.size() && room > 0; ++i) {
    if (items[i].weight <= room) {
      bound += items[i].value;
      room -= items[i].weight;
    } else {
      bound += items[i].value * room / items[i].weight;  // fractional fill
      room = 0;
    }
  }
  return bound;
}

long solve_sequential(const std::vector<Item>& items, long capacity) {
  // Reference DP solution (O(n * capacity)) to validate the search.
  std::vector<long> best(static_cast<std::size_t>(capacity) + 1, 0);
  for (const auto& it : items)
    for (long w = capacity; w >= it.weight; --w)
      best[static_cast<std::size_t>(w)] =
          std::max(best[static_cast<std::size_t>(w)],
                   best[static_cast<std::size_t>(w - it.weight)] + it.value);
  return best[static_cast<std::size_t>(capacity)];
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n_items = argc > 2 ? std::atoi(argv[2]) : 36;

  // Deterministic random instance.
  slpq::detail::Xoshiro256 rng(7);
  std::vector<Item> items;
  long total_weight = 0;
  for (int i = 0; i < n_items; ++i) {
    Item it{static_cast<long>(1 + rng.below(1000)),
            static_cast<long>(1 + rng.below(100))};
    total_weight += it.weight;
    items.push_back(it);
  }
  const long capacity = total_weight / 3;
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.value * b.weight > b.value * a.weight;  // by density
  });

  // Open list keyed by negated bound: delete_min pops the best bound first.
  // Ties on the bound are broken by a unique sequence number packed into
  // the key's low bits so keys stay distinct (the SkipQueue treats equal
  // keys as updates).
  slpq::SkipQueue<long, Subproblem> open;
  std::atomic<long> ticket{0};
  auto push = [&](const Subproblem& s, long bound) {
    const long key = -(bound << 40) + ticket.fetch_add(1);
    open.insert(key, s);
  };

  std::atomic<long> incumbent{0};
  std::atomic<long> expanded{0};
  std::atomic<int> idle{0};

  push(Subproblem{0, 0, 0}, upper_bound(items, capacity, Subproblem{0, 0, 0}));

  auto worker = [&] {
    bool was_idle = false;
    for (;;) {
      auto node = open.delete_min();
      if (!node) {
        if (!was_idle) {
          was_idle = true;
          idle.fetch_add(1);
        }
        if (idle.load() == threads) return;  // everyone starved: done
        std::this_thread::yield();
        continue;
      }
      if (was_idle) {
        was_idle = false;
        idle.fetch_sub(1);
      }
      const long bound = -(node->first >> 40);
      Subproblem s = node->second;
      if (bound <= incumbent.load(std::memory_order_relaxed)) continue;
      expanded.fetch_add(1, std::memory_order_relaxed);

      if (s.depth == static_cast<int>(items.size())) {
        long best = incumbent.load();
        while (s.value > best && !incumbent.compare_exchange_weak(best, s.value)) {
        }
        continue;
      }
      const Item& it = items[static_cast<std::size_t>(s.depth)];
      // Child 1: take the item (if it fits).
      if (s.weight + it.weight <= capacity) {
        Subproblem take{s.depth + 1, s.value + it.value, s.weight + it.weight};
        const long b = upper_bound(items, capacity, take);
        if (b > incumbent.load(std::memory_order_relaxed)) push(take, b);
      }
      // Child 2: skip the item.
      Subproblem skip{s.depth + 1, s.value, s.weight};
      const long b = upper_bound(items, capacity, skip);
      if (b > incumbent.load(std::memory_order_relaxed)) push(skip, b);
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  const long reference = solve_sequential(items, capacity);
  std::printf("branch-and-bound knapsack (%d items, capacity %ld)\n", n_items,
              capacity);
  std::printf("  threads        : %d\n", threads);
  std::printf("  nodes expanded : %ld\n", expanded.load());
  std::printf("  best value     : %ld\n", incumbent.load());
  std::printf("  DP reference   : %ld  (%s)\n", reference,
              incumbent.load() == reference ? "MATCH" : "MISMATCH!");
  return incumbent.load() == reference ? 0 : 1;
}
