// Figure 6: SkipQueue vs Relaxed SkipQueue on the small structure
// benchmark (init 50, 7000 ops, 50% inserts). Removing the time-stamp
// mechanism speeds up deletions at high concurrency (up to ~2x in the
// paper) with a matching insertion slowdown caused by the faster deleters
// arriving at the insert path sooner.
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 50;
  base.total_ops = harness::scaled_ops(7000);
  base.insert_ratio = 0.5;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"skip", "relaxed"});

  figbench::emit("fig6_relaxed_small",
                 "SkipQueue vs Relaxed, small structure (init 50, 7000 ops)",
                 procs, sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
