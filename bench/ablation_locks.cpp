// Ablation: lock implementation inside the SkipQueue.
//
// The paper used the blocking semaphores provided by Proteus and remarks
// that "more efficient lock implementations are known in the literature."
// This bench swaps every per-(node,level) lock for a test-and-test-and-set
// spinlock over simulated memory: the spinning turns waiting time into
// coherence traffic at the lock word's home directory.
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 1000;
  base.total_ops = harness::scaled_ops(20000);
  base.insert_ratio = 0.5;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"skip", "tts"});

  figbench::emit("ablation_locks",
                 "blocking (paper) vs spin locks in the SkipQueue", procs,
                 sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/1, /*subject=*/0);
  return 0;
}
