#!/usr/bin/env sh
# Runs the google-benchmark native-queue microbenchmarks and records the
# results as JSON under bench_results/.
#
#   bench/run_native.sh [build-dir] [extra benchmark args...]
#
# The build dir defaults to ./build; anything after it is passed straight
# to the benchmark binary (e.g. --benchmark_filter=MultiQueue).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/native_queues"
if [ ! -x "$bin" ]; then
  echo "run_native.sh: $bin not found — build it first:" >&2
  echo "  cmake --preset release && cmake --build --preset release --target native_queues" >&2
  exit 1
fi

# Refuse to record numbers from anything but an optimized build: a Debug
# tree silently produced committed throughput once (BENCH_3.json carried
# "debug" context), and those numbers are meaningless.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "run_native.sh: $build_dir is a '${build_type:-unknown}' build;" >&2
    echo "benchmarks must come from the release preset:" >&2
    echo "  cmake --preset release && cmake --build --preset release --target native_queues" >&2
    exit 1
    ;;
esac

out_dir="$repo_root/bench_results"
mkdir -p "$out_dir"
out="$out_dir/BENCH_native.json"

# Write to a .tmp first so an interrupted run never leaves a torn JSON.
"$bin" --benchmark_format=json --benchmark_out_format=json \
       --benchmark_out="$out.tmp" "$@" > /dev/null
mv "$out.tmp" "$out"
echo "wrote $out"

# Distill the committed perf trajectory: per-structure mixed-ops throughput
# (items/s) at each thread count, from the registry-driven BM_Mixed suite.
traj="$repo_root/BENCH_3.json"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$out" "$traj" <<'EOF'
import json, re, sys

src, dst = sys.argv[1], sys.argv[2]
with open(src) as f:
    report = json.load(f)

# Fail loudly rather than distill debug numbers into the committed
# trajectory. slpq_build_type is stamped by native_queues itself;
# library_build_type only describes libbenchmark.
ctx = report.get("context", {})
bt = ctx.get("slpq_build_type", "")
if bt not in ("Release", "RelWithDebInfo") or ctx.get("slpq_assertions") != "off":
    sys.exit(
        f"run_native.sh: refusing to distill {src}: slpq_build_type={bt!r}, "
        f"slpq_assertions={ctx.get('slpq_assertions')!r} — rebuild with the "
        "release preset (cmake --preset release)")

mixed = {}
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    if not name.startswith("BM_Mixed/"):
        continue
    structure = name.split("/")[1]
    m = re.search(r"threads:(\d+)", name)
    threads = int(m.group(1)) if m else 1
    ips = b.get("items_per_second")
    if ips is None:
        continue
    mixed.setdefault(structure, {})[str(threads)] = round(ips, 1)

doc = {
    "benchmark": "BM_Mixed 50/50 insert/delete-min, shared queue",
    "unit": "items_per_second",
    "context": report.get("context", {}),
    "throughput": dict(sorted(mixed.items())),
}
with open(dst, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
  echo "wrote $traj"
else
  echo "run_native.sh: python3 not found, skipping $traj" >&2
fi

# Distill the MultiQueue buffer ablation (if its CSV has been produced by
# the ablation_mq_buffers binary, which writes into the cwd it runs from)
# into a BENCH_native.json-style per-config summary: ops/s next to the
# sampled rank-error quantiles, one entry per knob combination.
ablation_csv=""
for candidate in "$out_dir/ablation_mq_buffers.csv" \
                 "$build_dir/bench/ablation_mq_buffers.csv" \
                 "$repo_root/ablation_mq_buffers.csv"; do
  if [ -f "$candidate" ]; then
    ablation_csv="$candidate"
    break
  fi
done
if [ -n "$ablation_csv" ] && command -v python3 > /dev/null 2>&1; then
  python3 - "$ablation_csv" "$out_dir/BENCH_mq_buffers.json" <<'EOF'
import csv, json, sys

src, dst = sys.argv[1], sys.argv[2]
configs = []
with open(src) as f:
    for row in csv.DictReader(f):
        configs.append({
            "buf": int(row["buf"]),
            "batch": int(row["batch"]),
            "stickiness": int(row["stickiness"]),
            "threads": int(row["procs"]),
            "ops_per_sec": float(row["ops_per_sec"]),
            "rank_error": {
                "mean": int(row["rank_mean"]),
                "p99": int(row["rank_p99"]),
                "max": int(row["rank_max"]),
            },
            "lock_amortization": {
                "ins_flushes": int(row["ins_flushes"]),
                "refills": int(row["refills"]),
                "invalidations": int(row["invalidations"]),
            },
        })

doc = {
    "benchmark": "ablation_mq_buffers: 50/50 mixed ops, c=2, init 4096",
    "unit": "ops_per_sec",
    "note": "every throughput number carries its rank-error price",
    "configs": configs,
}
with open(dst, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
  echo "wrote $out_dir/BENCH_mq_buffers.json (from $ablation_csv)"
else
  echo "run_native.sh: no ablation_mq_buffers.csv found, skipping" \
       "BENCH_mq_buffers.json (run the ablation_mq_buffers binary first)" >&2
fi

# Distill the MultiQueue topology ablation (policy x radius x workload x
# procs on the simulated mesh, from the ablation_mq_topology binary) into a
# per-config summary: simulated cycles/op next to the hop-distance and
# rank-error pricing, so every locality win carries its relaxation cost.
topo_csv=""
for candidate in "$out_dir/ablation_mq_topology.csv" \
                 "$build_dir/bench/ablation_mq_topology.csv" \
                 "$repo_root/ablation_mq_topology.csv"; do
  if [ -f "$candidate" ]; then
    topo_csv="$candidate"
    break
  fi
done
if [ -n "$topo_csv" ] && command -v python3 > /dev/null 2>&1; then
  python3 - "$topo_csv" "$out_dir/BENCH_mq_topology.json" <<'EOF'
import csv, json, sys

src, dst = sys.argv[1], sys.argv[2]
configs = []
with open(src) as f:
    for row in csv.DictReader(f):
        configs.append({
            "workload": row["workload"],
            "policy": row["policy"],
            "radius": int(row["radius"]),
            "processors": int(row["procs"]),
            "mean_op_cycles": float(row["mean_op"]),
            "makespan_cycles": int(row["makespan"]),
            "shard_hops": {
                "mean": int(row["shard_hops_mean"]),
                "p99": int(row["shard_hops_p99"]),
            },
            "local_acquires": int(row["local_acquires"]),
            "topo_fallbacks": int(row["topo_fallbacks"]),
            "rank_error": {
                "mean": int(row["rank_mean"]),
                "p99": int(row["rank_p99"]),
            },
        })

doc = {
    "benchmark": "ablation_mq_topology: sim mesh, 20000 ops, init 1000",
    "unit": "cycles",
    "note": "policy none = uniform 2-choice baseline; near/adaptive home "
            "shard lines at their owner mesh node and bias sampling to a "
            "hop radius; every locality number carries its rank-error price",
    "configs": configs,
}
with open(dst, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
  echo "wrote $out_dir/BENCH_mq_topology.json (from $topo_csv)"
else
  echo "run_native.sh: no ablation_mq_topology.csv found, skipping" \
       "BENCH_mq_topology.json (run the ablation_mq_topology binary first)" >&2
fi

# Distill the reclamation-policy ablation (policy x backend x procs, from
# the ablation_reclaim binary) into a per-config summary: ops/s next to the
# reclaim.* counters, so every policy's speed number carries its
# retired/freed/pending books.
reclaim_csv=""
for candidate in "$out_dir/ablation_reclaim.csv" \
                 "$build_dir/bench/ablation_reclaim.csv" \
                 "$repo_root/ablation_reclaim.csv"; do
  if [ -f "$candidate" ]; then
    reclaim_csv="$candidate"
    break
  fi
done
if [ -n "$reclaim_csv" ] && command -v python3 > /dev/null 2>&1; then
  python3 - "$reclaim_csv" "$out_dir/BENCH_reclaim.json" <<'EOF'
import csv, json, sys

src, dst = sys.argv[1], sys.argv[2]
configs = []
with open(src) as f:
    for row in csv.DictReader(f):
        configs.append({
            "reclaim": row["reclaim"],
            "structure": row["structure"],
            "threads": int(row["procs"]),
            "ops_per_sec": float(row["ops_per_sec"]),
            "mean_insert_ns": float(row["mean_insert"]),
            "mean_delete_ns": float(row["mean_delete"]),
            "reclaim_counters": {
                "retired": int(row["retired"]),
                "freed": int(row["freed"]),
                "scans": int(row["scans"]),
                "stalls": int(row["stalls"]),
                "pending": int(row["pending"]),
            },
        })

doc = {
    "benchmark": "ablation_reclaim: 50/50 mixed ops, init 1000, native",
    "unit": "ops_per_sec",
    "note": "reclaim policies: ts (paper Section 3), hp, epoch, leaky",
    "configs": configs,
}
with open(dst, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
  echo "wrote $out_dir/BENCH_reclaim.json (from $reclaim_csv)"
else
  echo "run_native.sh: no ablation_reclaim.csv found, skipping" \
       "BENCH_reclaim.json (run the ablation_reclaim binary first)" >&2
fi

# Distill the pqd service sweep (backend x shards x batch x clients over a
# recorded trace, from the pqd_sweep binary) into a per-config summary:
# client-observed latency and throughput next to the batching amortization
# (ops per shard acquisition) and the service-level rank-error price.
pqd_csv=""
for candidate in "$out_dir/pqd_sweep.csv" \
                 "$build_dir/bench/pqd_sweep.csv" \
                 "$repo_root/pqd_sweep.csv"; do
  if [ -f "$candidate" ]; then
    pqd_csv="$candidate"
    break
  fi
done
if [ -n "$pqd_csv" ] && command -v python3 > /dev/null 2>&1; then
  python3 - "$pqd_csv" "$out_dir/BENCH_pqd.json" <<'EOF'
import csv, json, sys

src, dst = sys.argv[1], sys.argv[2]
configs = []
with open(src) as f:
    for row in csv.DictReader(f):
        configs.append({
            "backend": row["backend"],
            "shards": int(row["shards"]),
            "batch": int(row["batch"]),
            "clients": int(row["clients"]),
            "ops_per_sec": float(row["ops_per_sec"]),
            "latency_ns": {
                "p50": int(row["lat_p50"]),
                "p90": int(row["lat_p90"]),
                "p99": int(row["lat_p99"]),
                "max": int(row["lat_max"]),
            },
            "shard_acquisitions": int(row["acquisitions"]),
            "ops_per_acquisition": float(row["ops_per_acq"]),
            "insert_batches": int(row["insert_batches"]),
            "window_refills": int(row["window_refills"]),
            "shard_imbalance_pct": int(row["imbalance"]),
            "rank_error": {
                "mean": int(row["rank_mean"]),
                "p99": int(row["rank_p99"]),
            },
        })

doc = {
    "benchmark": "pqd_sweep: trace replay through the pqd service tier "
                 "(in-process transport, recorded hold-model trace)",
    "unit": "ops_per_sec",
    "note": "batching amortization is ops_per_acquisition; every "
            "throughput number carries its service-level rank-error price",
    "configs": configs,
}
with open(dst, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
  echo "wrote $out_dir/BENCH_pqd.json (from $pqd_csv)"
else
  echo "run_native.sh: no pqd_sweep.csv found, skipping BENCH_pqd.json" \
       "(run the pqd_sweep binary first)" >&2
fi

# Archive a telemetry snapshot next to the benchmark JSON: one pqsim run
# per native backend with the counters from docs/TELEMETRY.md, so every
# recorded throughput number has the contention breakdown that explains it.
pqsim_bin="$build_dir/tools/pqsim"
if [ -x "$pqsim_bin" ]; then
  stats="$out_dir/BENCH_native_stats.json"
  "$pqsim_bin" --machine native \
    --structure skip,relaxed,lockfree,linden,multiqueue,heap,funnel,globallock \
    --procs "${SLPQ_STATS_PROCS:-4}" --ops "${SLPQ_STATS_OPS:-20000}" \
    --initial 1000 --stats-json "$stats.tmp" > /dev/null
  mv "$stats.tmp" "$stats"
  echo "wrote $stats"
  if command -v python3 > /dev/null 2>&1; then
    python3 "$repo_root/tools/check_stats_json.py" "$stats" \
      --doc "$repo_root/docs/TELEMETRY.md"
  fi
  # Extract the rank-error histograms from the relaxed runs into their own
  # archive, so relaxation quality is tracked release over release just
  # like throughput.
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$stats" "$out_dir/BENCH_native_rank_error.json" <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
with open(src) as f:
    doc = json.load(f)

runs = []
for run in doc.get("runs", []):
    counters = run.get("counters", {})
    hist = {k.split("mq.rank_error.")[1]: v
            for k, v in counters.items() if k.startswith("mq.rank_error.")}
    if hist:
        runs.append({
            "structure": run["structure"],
            "processors": run["processors"],
            "total_ops": run["total_ops"],
            "rank_error": hist,
        })

out = {"source": "BENCH_native_stats.json", "runs": runs}
with open(dst, "w") as f:
    json.dump(out, f, indent=2, sort_keys=False)
    f.write("\n")
EOF
    echo "wrote $out_dir/BENCH_native_rank_error.json"
  fi
else
  echo "run_native.sh: $pqsim_bin not found, skipping telemetry snapshot" >&2
fi
