#!/usr/bin/env sh
# Runs the google-benchmark native-queue microbenchmarks and records the
# results as JSON under bench_results/.
#
#   bench/run_native.sh [build-dir] [extra benchmark args...]
#
# The build dir defaults to ./build; anything after it is passed straight
# to the benchmark binary (e.g. --benchmark_filter=MultiQueue).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/native_queues"
if [ ! -x "$bin" ]; then
  echo "run_native.sh: $bin not found — build it first:" >&2
  echo "  cmake --build $build_dir --target native_queues" >&2
  exit 1
fi

out_dir="$repo_root/bench_results"
mkdir -p "$out_dir"
out="$out_dir/BENCH_native.json"

# Write to a .tmp first so an interrupted run never leaves a torn JSON.
"$bin" --benchmark_format=json --benchmark_out_format=json \
       --benchmark_out="$out.tmp" "$@" > /dev/null
mv "$out.tmp" "$out"
echo "wrote $out"
