// Figure 2 (table): Insert and Delete-min latency of the SkipQueue under
// different amounts of local work between operations, with 256 processes
// and 1000 initial elements. Lower load (more work) means fewer concurrent
// operations in flight, hence lower latency.
#include "figure_common.hpp"

int main() {
  const int procs = std::min(256, harness::max_sweep_procs());
  const std::vector<psim::Cycles> work_amounts = {100,  1000, 2000, 3000,
                                                  4000, 5000, 6000};

  harness::Table t;
  t.title = "Fig. 2: latency vs work period (SkipQueue, " +
            std::to_string(procs) + " procs, 1000 initial elements)";
  t.columns = {"work", "delete_min_latency", "insert_latency"};

  harness::Table csv;
  csv.columns = {"work", "mean_delete", "mean_insert", "p99_delete",
                 "p99_insert", "makespan"};

  for (const auto work : work_amounts) {
    harness::BenchmarkConfig cfg;
    cfg.structure = "skip";
    cfg.processors = procs;
    cfg.initial_size = 1000;
    cfg.total_ops = harness::scaled_ops(70000);
    cfg.insert_ratio = 0.5;
    cfg.work_cycles = work;
    std::fprintf(stderr, "[bench] fig2 work=%" PRIu64 " ... ",
                 static_cast<std::uint64_t>(work));
    std::fflush(stderr);
    const auto r = harness::run_benchmark(cfg);
    std::fprintf(stderr, "ins=%.0f del=%.0f\n", r.mean_insert(),
                 r.mean_delete());
    t.add_row({std::to_string(work), harness::fmt(r.mean_delete()),
               harness::fmt(r.mean_insert())});
    csv.add_row({std::to_string(work), harness::fmt(r.mean_delete(), 1),
                 harness::fmt(r.mean_insert(), 1),
                 std::to_string(r.delete_latency.quantile(0.99)),
                 std::to_string(r.insert_latency.quantile(0.99)),
                 std::to_string(r.makespan)});
  }

  std::cout << "=== Fig. 2: latency under decreasing load ===\n\n";
  print_table(std::cout, t);
  write_csv("fig2_work_sweep.csv", csv);
  std::cout << "\n[csv written to fig2_work_sweep.csv]\n"
            << "Expected shape (paper): both latencies fall as the work "
               "period grows from 100 to 6000 cycles.\n";
  return 0;
}
