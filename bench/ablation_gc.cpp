// Ablation: cost of the timestamp garbage-collection machinery.
//
// GC adds, per operation, one clock read plus two writes to the entry
// registry, and per deletion a stamped retire; the dedicated collector
// processor generates scan traffic. This bench runs the SkipQueue with GC
// on and off (off = nodes leak for the duration of the run, as in systems
// with external reclamation).
#include "figure_common.hpp"

int main() {
  const auto procs = figbench::proc_sweep();

  harness::Table t;
  t.title = "SkipQueue: GC on vs off (init 1000, 50% inserts)";
  t.columns = {"procs", "gc ins", "nogc ins", "gc del", "nogc del"};

  harness::Table csv;
  csv.columns = {"gc", "procs", "mean_insert", "mean_delete", "makespan"};

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < procs.size(); ++i)
    rows.push_back({std::to_string(procs[i]), "", "", "", ""});

  for (bool gc : {true, false}) {
    for (std::size_t i = 0; i < procs.size(); ++i) {
      harness::BenchmarkConfig cfg;
      cfg.structure = "skip";
      cfg.processors = procs[i];
      cfg.initial_size = 1000;
      cfg.total_ops = harness::scaled_ops(20000);
      cfg.use_gc = gc;
      std::fprintf(stderr, "[bench] gc=%d procs=%d ...\n", gc, procs[i]);
      const auto r = harness::run_benchmark(cfg);
      rows[i][gc ? 1 : 2] = harness::fmt(r.mean_insert());
      rows[i][gc ? 3 : 4] = harness::fmt(r.mean_delete());
      csv.add_row({gc ? "on" : "off", std::to_string(procs[i]),
                   harness::fmt(r.mean_insert(), 1),
                   harness::fmt(r.mean_delete(), 1),
                   std::to_string(r.makespan)});
    }
  }
  for (auto& row : rows) t.add_row(row);

  std::cout << "=== ablation_gc: reclamation overhead ===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_gc.csv", csv);
  std::cout << "\n[csv written to ablation_gc.csv]\n";
  return 0;
}
