// Figure 5: the large structure benchmark with 70 percent deletions.
// 27000 initial items, 60000 operations, 30% inserts: the structure drains
// from 27000 toward ~3000 elements. FunnelList is excluded (as in the
// paper — it "performs miserably when the structure is large").
// Paper: SkipQueue up to ~2.5x faster deletions than the Heap at 256
// processors; heap insertions suffer from the delete traffic at the root.
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 27000;
  base.total_ops = harness::scaled_ops(60000);
  base.insert_ratio = 0.3;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"heap", "skip"});

  figbench::emit("fig5_deletions",
                 "70% deletions (init 27000, 60000 ops, 30% inserts)", procs,
                 sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
