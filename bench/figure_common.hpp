// Shared plumbing for the per-figure benchmark binaries.
//
// Every binary reproduces one table or figure from the paper: it sweeps
// processor counts (powers of two, as on the paper's x-axes), runs the
// paper's synthetic workload on each structure, prints the latency series
// as a table, and writes a CSV next to the binary for plotting.
//
// Structures are named by their BackendRegistry names ("skip", "heap",
// "funnel", ...); display labels come from the registry.
//
// Environment knobs:
//   SLPQ_BENCH_SCALE  scales the operation counts (default 1.0)
//   SLPQ_MAX_PROCS    caps the sweep (default 256)
#pragma once

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/ascii_chart.hpp"
#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace figbench {

/// 1, 2, 4, ..., up to min(limit, SLPQ_MAX_PROCS).
inline std::vector<int> proc_sweep(int limit = 256) {
  const int cap = std::min(limit, harness::max_sweep_procs());
  std::vector<int> out;
  for (int p = 1; p <= cap; p *= 2) out.push_back(p);
  return out;
}

/// Display label for a registry name under the config's flavor.
inline std::string label_of(const harness::BenchmarkConfig& cfg,
                            const std::string& structure) {
  return harness::BackendRegistry::instance()
      .require(cfg.flavor, structure)
      .label;
}

struct SweepSeries {
  std::string structure;  ///< registry name
  std::string label;      ///< display label from the registry
  std::vector<harness::BenchmarkResult> results;  // parallel to procs
};

/// Runs `base` for every structure in `structures` at every processor
/// count. Progress goes to stderr so stdout stays a clean report.
inline std::vector<SweepSeries> run_sweep(
    const harness::BenchmarkConfig& base, const std::vector<int>& procs,
    const std::vector<std::string>& structures) {
  std::vector<SweepSeries> out;
  for (const auto& structure : structures) {
    SweepSeries series;
    series.structure = structure;
    series.label = label_of(base, structure);
    for (int p : procs) {
      harness::BenchmarkConfig cfg = base;
      cfg.structure = structure;
      cfg.processors = p;
      std::fprintf(stderr, "[bench] %-17s procs=%-3d ops=%" PRIu64 " ... ",
                   series.label.c_str(), p, cfg.total_ops);
      std::fflush(stderr);
      series.results.push_back(harness::run_benchmark(cfg));
      std::fprintf(stderr, "ins=%.0f del=%.0f %s\n",
                   series.results.back().mean_insert(),
                   series.results.back().mean_delete(),
                   series.results.back().unit);
    }
    out.push_back(std::move(series));
  }
  return out;
}

/// Builds the paper-style latency table: one row per processor count, one
/// column per structure, for the chosen operation.
inline harness::Table latency_table(const std::string& title,
                                    const std::vector<int>& procs,
                                    const std::vector<SweepSeries>& sweep,
                                    bool deletes) {
  harness::Table t;
  t.title = title;
  t.columns = {"procs"};
  for (const auto& s : sweep)
    t.columns.push_back(s.label + (deletes ? " del" : " ins"));
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::vector<std::string> row{std::to_string(procs[i])};
    for (const auto& s : sweep)
      row.push_back(harness::fmt(deletes ? s.results[i].mean_delete()
                                         : s.results[i].mean_insert()));
    t.add_row(std::move(row));
  }
  return t;
}

/// Full CSV with both operations and extra diagnostics.
inline harness::Table csv_table(const std::vector<int>& procs,
                                const std::vector<SweepSeries>& sweep) {
  harness::Table t;
  t.columns = {"structure", "procs",   "mean_insert", "mean_delete",
               "p50_insert", "p50_delete", "p99_insert", "p99_delete",
               "inserts",   "deletes", "empties",     "makespan",
               "final_size", "dir_queue_cycles", "cache_misses"};
  for (const auto& s : sweep) {
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const auto& r = s.results[i];
      t.add_row({s.label, std::to_string(procs[i]),
                 harness::fmt(r.mean_insert(), 1), harness::fmt(r.mean_delete(), 1),
                 std::to_string(r.insert_latency.quantile(0.5)),
                 std::to_string(r.delete_latency.quantile(0.5)),
                 std::to_string(r.insert_latency.quantile(0.99)),
                 std::to_string(r.delete_latency.quantile(0.99)),
                 std::to_string(r.inserts), std::to_string(r.deletes),
                 std::to_string(r.empties), std::to_string(r.makespan),
                 std::to_string(r.final_size),
                 std::to_string(r.machine_stats.dir_queue_cycles),
                 std::to_string(r.machine_stats.cache_misses())});
    }
  }
  return t;
}

/// Prints a ratio line such as "at 256 procs SkipQueue is 3.1x faster than
/// Heap on deletions" for the largest processor count in the sweep.
inline void print_headline(const std::vector<int>& procs,
                           const std::vector<SweepSeries>& sweep,
                           std::size_t baseline_idx, std::size_t subject_idx) {
  if (sweep.size() <= std::max(baseline_idx, subject_idx) || procs.empty())
    return;
  const auto& base = sweep[baseline_idx].results.back();
  const auto& subj = sweep[subject_idx].results.back();
  std::cout << "At " << procs.back() << " processors, "
            << sweep[subject_idx].label << " vs "
            << sweep[baseline_idx].label << ": deletions "
            << harness::fmt_ratio(base.mean_delete(), subj.mean_delete())
            << " faster, insertions "
            << harness::fmt_ratio(base.mean_insert(), subj.mean_insert())
            << " faster.\n";
}

inline void emit(const std::string& figure, const std::string& description,
                 const std::vector<int>& procs,
                 const std::vector<SweepSeries>& sweep) {
  std::cout << "=== " << figure << ": " << description << " ===\n\n";
  harness::Table del = latency_table("Average deletion time (cycles)", procs,
                                     sweep, /*deletes=*/true);
  harness::Table ins = latency_table("Average insertion time (cycles)", procs,
                                     sweep, /*deletes=*/false);
  print_table(std::cout, del);
  std::cout << "\n";
  print_table(std::cout, ins);
  std::cout << "\n";

  if (procs.size() > 1) {
    std::vector<double> xs(procs.begin(), procs.end());
    auto series_of = [&](bool deletes) {
      std::vector<harness::ChartSeries> out;
      for (const auto& s : sweep) {
        harness::ChartSeries cs{s.label, {}};
        for (const auto& r : s.results)
          cs.ys.push_back(deletes ? r.mean_delete() : r.mean_insert());
        out.push_back(std::move(cs));
      }
      return out;
    };
    harness::ChartOptions copt;
    copt.title = "delete-min latency (the paper's left-hand panels)";
    std::cout << render_chart(xs, series_of(true), copt) << "\n";
    copt.title = "insert latency (the paper's right-hand panels)";
    std::cout << render_chart(xs, series_of(false), copt) << "\n";
  }

  // The paper pairs each full-range panel with a closeup of the low end
  // (1..32 processors); print the same subset when the sweep covers it.
  std::vector<int> close_procs;
  for (int p : procs)
    if (p <= 32) close_procs.push_back(p);
  if (close_procs.size() > 1 && close_procs.size() < procs.size()) {
    std::vector<SweepSeries> close_sweep;
    for (const auto& s : sweep) {
      SweepSeries cs;
      cs.structure = s.structure;
      cs.label = s.label;
      cs.results.assign(s.results.begin(),
                        s.results.begin() +
                            static_cast<std::ptrdiff_t>(close_procs.size()));
      close_sweep.push_back(std::move(cs));
    }
    print_table(std::cout,
                latency_table("Closeup: deletion time, 1..32 procs",
                              close_procs, close_sweep, true));
    std::cout << "\n";
    print_table(std::cout,
                latency_table("Closeup: insertion time, 1..32 procs",
                              close_procs, close_sweep, false));
    std::cout << "\n";
  }

  const std::string csv = figure + ".csv";
  write_csv(csv, csv_table(procs, sweep));
  std::cout << "[csv written to " << csv << "]\n\n";
}

}  // namespace figbench
