// Ablation: memory-reclamation policy x backend x processors, native.
//
// The paper's Section 3 timestamp GC is one point in a design space; this
// sweep prices all four policies (--reclaim ts|hp|epoch|leaky) on every
// node-freeing skiplist backend. The expected shape: leaky is the ceiling
// (no reclamation work at all during the run), hp pays a per-traversal-step
// publication plus periodic scans but bounds memory tightly, epoch pays
// almost nothing per step but stalls whenever one thread lingers, and ts
// sits in between with its entry-registry writes. Every throughput number
// carries the reclaim.* counters that explain it (retired/freed/scans/
// stalls/pending at quiescence).
#include "figure_common.hpp"

int main() {
  const char* kPolicies[] = {"ts", "hp", "epoch", "leaky"};
  const char* kStructures[] = {"skip", "lockfree", "linden"};
  const int kProcs[] = {1, 4, 8};

  harness::Table t;
  t.title = "Reclamation policy sweep (native, init 1000, 50% inserts)";
  t.columns = {"structure", "reclaim", "procs", "Mops/s", "freed", "pending"};

  harness::Table csv;
  csv.columns = {"reclaim",     "structure",   "procs",
                 "mean_insert", "mean_delete", "ops_per_sec",
                 "makespan_ns", "retired",     "freed",
                 "scans",       "stalls",      "pending"};

  for (const char* structure : kStructures) {
    for (const char* policy : kPolicies) {
      slpq::ReclaimPolicy reclaim;
      if (!slpq::parse_reclaim_policy(policy, reclaim)) return 1;
      for (int procs : kProcs) {
        harness::BenchmarkConfig cfg;
        cfg.structure = structure;
        cfg.flavor = harness::Flavor::Native;
        cfg.processors = procs;
        cfg.initial_size = 1000;
        cfg.total_ops = harness::scaled_ops(200000);
        cfg.reclaim = reclaim;
        cfg.seed = 42;
        std::fprintf(stderr, "[bench] %s reclaim=%s procs=%d ...\n",
                     structure, policy, procs);
        const auto r = harness::run_benchmark(cfg);
        const double ops =
            static_cast<double>(r.inserts + r.deletes + r.empties);
        const double ops_per_sec =
            r.makespan ? ops * 1e9 / static_cast<double>(r.makespan) : 0.0;
        const auto retired = r.telemetry.get("reclaim.retired");
        const auto freed = r.telemetry.get("reclaim.freed");
        const auto pending = r.telemetry.get("reclaim.pending");
        t.add_row({structure, policy, std::to_string(procs),
                   harness::fmt(ops_per_sec / 1e6), std::to_string(freed),
                   std::to_string(pending)});
        csv.add_row({policy, structure, std::to_string(procs),
                     harness::fmt(r.mean_insert(), 1),
                     harness::fmt(r.mean_delete(), 1),
                     harness::fmt(ops_per_sec, 1), std::to_string(r.makespan),
                     std::to_string(retired), std::to_string(freed),
                     std::to_string(r.telemetry.get("reclaim.scans")),
                     std::to_string(r.telemetry.get("reclaim.stalls")),
                     std::to_string(pending)});
      }
    }
  }

  std::cout << "=== ablation_reclaim: reclamation policy sweep ===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_reclaim.csv", csv);
  std::cout << "\n[csv written to ablation_reclaim.csv]\n";
  return 0;
}
