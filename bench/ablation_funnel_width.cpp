// Ablation: combining-funnel geometry.
//
// The paper's funnel adapted its width and depth on the fly; ours is
// statically sized. This bench sweeps width (and two depths) at a fixed
// high processor count to show the trade-off the adaptive scheme navigates:
// too narrow serializes on the slots, too wide never combines.
#include "figure_common.hpp"

int main() {
  const int procs = std::min(64, harness::max_sweep_procs());

  harness::Table t;
  t.title = "FunnelList geometry sweep (" + std::to_string(procs) +
            " procs, init 50, 50% inserts)";
  t.columns = {"layers", "width", "insert (cycles)", "delete-min (cycles)"};

  harness::Table csv;
  csv.columns = {"layers", "width", "mean_insert", "mean_delete", "makespan"};

  for (int layers : {1, 2, 3}) {
    for (int width : {1, 2, 4, 8, 16, 32}) {
      harness::BenchmarkConfig cfg;
      cfg.structure = "funnel";
      cfg.processors = procs;
      cfg.initial_size = 50;
      cfg.total_ops = harness::scaled_ops(20000);
      cfg.funnel_layers = layers;
      cfg.funnel_width = width;
      std::fprintf(stderr, "[bench] funnel layers=%d width=%d ...\n", layers,
                   width);
      const auto r = harness::run_benchmark(cfg);
      t.add_row({std::to_string(layers), std::to_string(width),
                 harness::fmt(r.mean_insert()), harness::fmt(r.mean_delete())});
      csv.add_row({std::to_string(layers), std::to_string(width),
                   harness::fmt(r.mean_insert(), 1),
                   harness::fmt(r.mean_delete(), 1),
                   std::to_string(r.makespan)});
    }
  }

  std::cout << "=== ablation_funnel_width ===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_funnel_width.csv", csv);
  std::cout << "\n[csv written to ablation_funnel_width.csv]\n";
  return 0;
}
