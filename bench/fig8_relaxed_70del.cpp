// Figure 8: SkipQueue vs Relaxed SkipQueue on the 70-percent-deletions
// benchmark (init 27000, 60000 ops, 30% inserts).
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 27000;
  base.total_ops = harness::scaled_ops(60000);
  base.insert_ratio = 0.3;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"skip", "relaxed"});

  figbench::emit("fig8_relaxed_70del",
                 "SkipQueue vs Relaxed, 70% deletions (init 27000, 60000 ops)",
                 procs, sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
