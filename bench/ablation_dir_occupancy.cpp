// Ablation: does hot-spot queueing at the coherence directory drive the
// heap's collapse?
//
// With MachineConfig::model_dir_occupancy off, every directory services
// requests with unbounded parallelism — the machine has no hot-spot
// penalty. The heap's size counter and root then cost only their raw miss
// latency, and the gap to the SkipQueue should shrink dramatically. This
// validates that the simulated effect matches the paper's explanation
// ("sequential bottlenecks and increased contention").
#include "figure_common.hpp"

int main() {
  const auto procs = figbench::proc_sweep();

  harness::Table t;
  t.title = "Heap vs SkipQueue, with and without directory occupancy";
  t.columns = {"procs", "heap del (hot)", "skip del (hot)", "heap del (flat)",
               "skip del (flat)"};

  harness::Table csv;
  csv.columns = {"occupancy", "structure", "procs", "mean_insert",
                 "mean_delete", "dir_queue_cycles"};

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < procs.size(); ++i)
    rows.push_back({std::to_string(procs[i]), "", "", "", ""});

  for (bool occupancy : {true, false}) {
    for (const std::string structure : {"heap", "skip"}) {
      for (std::size_t i = 0; i < procs.size(); ++i) {
        harness::BenchmarkConfig cfg;
        cfg.structure = structure;
        cfg.processors = procs[i];
        cfg.initial_size = 1000;
        cfg.total_ops = harness::scaled_ops(20000);
        cfg.machine.model_dir_occupancy = occupancy;
        std::fprintf(stderr, "[bench] occ=%d %s procs=%d ...\n", occupancy,
                     structure.c_str(), procs[i]);
        const auto r = harness::run_benchmark(cfg);
        const std::size_t col =
            (structure == "heap" ? 1u : 2u) + (occupancy ? 0u : 2u);
        rows[i][col] = harness::fmt(r.mean_delete());
        csv.add_row({occupancy ? "on" : "off",
                     figbench::label_of(cfg, structure),
                     std::to_string(procs[i]), harness::fmt(r.mean_insert(), 1),
                     harness::fmt(r.mean_delete(), 1),
                     std::to_string(r.machine_stats.dir_queue_cycles)});
      }
    }
  }
  for (auto& row : rows) t.add_row(row);

  std::cout << "=== ablation_dir_occupancy ===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_dir_occupancy.csv", csv);
  std::cout << "\n[csv written to ablation_dir_occupancy.csv]\n";
  return 0;
}
