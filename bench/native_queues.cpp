// google-benchmark microbenchmarks for the native (std::thread) queues.
//
// These measure real hardware throughput of slpq::SkipQueue and friends —
// the library a downstream user links — as opposed to the fig*_ benches,
// which measure the paper's simulated 256-way machine. On a box with few
// cores the ->Threads(n) variants mostly measure oversubscription; the
// single-thread numbers are the interesting ones there.
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/funnel_list.hpp"
#include "slpq/global_lock_pq.hpp"
#include "slpq/hunt_heap.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/multi_queue.hpp"
#include "slpq/skip_queue.hpp"

namespace {

constexpr std::uint64_t kKeySpace = 1 << 20;
// Prefill scales with the widest ->Threads(n) variant so the per-thread
// working set stays constant as the thread count grows (a fixed prefill
// would make the 4-thread runs hit empty far more often than 1-thread).
constexpr int kMaxBenchThreads = 4;
constexpr std::size_t kPrefillPerThread = 1024;
constexpr std::size_t kPrefill = kPrefillPerThread * kMaxBenchThreads;

template <typename Queue>
void mixed_ops(benchmark::State& state, Queue& q) {
  slpq::detail::Xoshiro256 rng(
      0xABCD + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    if (rng.bernoulli(0.5)) {
      q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    } else {
      benchmark::DoNotOptimize(q.delete_min());
    }
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Queue>
void prefill(Queue& q) {
  slpq::detail::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < kPrefill; ++i)
    q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
}

// Each benchmark shares one queue across all its threads and repetitions.
// The queue is built exactly once (function-local static, thread-safe
// initialization) and deliberately never rebuilt: google-benchmark
// re-enters the function many times while sibling threads may still be in
// flight, so any per-repetition reset would race with them. The 50/50 mix
// keeps the structure near its prefilled size across repetitions.
void BM_SkipQueue_Mixed(benchmark::State& state) {
  static slpq::SkipQueue<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::SkipQueue<std::int64_t, int>();
    prefill(*fresh);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_SkipQueue_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_RelaxedSkipQueue_Mixed(benchmark::State& state) {
  static slpq::RelaxedSkipQueue<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::RelaxedSkipQueue<std::int64_t, int>();
    prefill(*fresh);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_RelaxedSkipQueue_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_LockFreeSkipQueue_Mixed(benchmark::State& state) {
  static slpq::LockFreeSkipQueue<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::LockFreeSkipQueue<std::int64_t, int>();
    prefill(*fresh);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_LockFreeSkipQueue_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_MultiQueue_Mixed(benchmark::State& state) {
  static slpq::MultiQueue<std::int64_t, int>& q = *[] {
    slpq::MultiQueue<std::int64_t, int>::Options opt;
    opt.max_threads = kMaxBenchThreads;
    auto* fresh = new slpq::MultiQueue<std::int64_t, int>(opt);
    prefill(*fresh);
    fresh->flush();
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_MultiQueue_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_HuntHeap_Mixed(benchmark::State& state) {
  static slpq::HuntHeap<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::HuntHeap<std::int64_t, int>(1 << 22);
    prefill(*fresh);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_HuntHeap_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_FunnelList_Mixed(benchmark::State& state) {
  static slpq::FunnelList<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::FunnelList<std::int64_t, int>();
    // NOTE: prefill on the funnel list is O(n^2) (sorted inserts) — keep
    // the structure small, which is also its favourable regime.
    slpq::detail::Xoshiro256 rng(7);
    for (int i = 0; i < 64; ++i)
      fresh->insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_FunnelList_Mixed)->Threads(1)->Threads(2)->UseRealTime();

void BM_GlobalLockPQ_Mixed(benchmark::State& state) {
  static slpq::GlobalLockPQ<std::int64_t, int>& q = *[] {
    auto* fresh = new slpq::GlobalLockPQ<std::int64_t, int>();
    prefill(*fresh);
    return fresh;
  }();
  mixed_ops(state, q);
}
BENCHMARK(BM_GlobalLockPQ_Mixed)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// Pure-insert and pure-delete single-thread costs for the SkipQueue.
void BM_SkipQueue_Insert(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_Insert);

// Pooled vs. heap allocation on the insert hot path. The pool serves
// nodes from a per-thread bump/free-list arena; NoPool takes the same
// code path but falls through to operator new for every node.
void BM_SkipQueue_InsertNoPool(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::SkipQueue<std::int64_t, int> q(opt);
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_InsertNoPool);

void BM_LockFreeSkipQueue_Insert(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeSkipQueue_Insert);

void BM_LockFreeSkipQueue_InsertNoPool(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::LockFreeSkipQueue<std::int64_t, int> q(opt);
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeSkipQueue_InsertNoPool);

// Steady-state churn: every iteration inserts one item and deletes one,
// so each node completes an allocate → retire → recycle round trip. This
// is the pool's target regime — the insert-only benches above mostly
// measure the ever-growing search path, not allocation.
template <typename Queue>
void churn(benchmark::State& state, Queue& q) {
  slpq::detail::Xoshiro256 rng(11);
  for (std::size_t i = 0; i < kPrefill; ++i)
    q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
  for (auto _ : state) {
    q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    benchmark::DoNotOptimize(q.delete_min());
  }
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_SkipQueue_Churn(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  churn(state, q);
}
BENCHMARK(BM_SkipQueue_Churn);

void BM_SkipQueue_ChurnNoPool(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::SkipQueue<std::int64_t, int> q(opt);
  churn(state, q);
}
BENCHMARK(BM_SkipQueue_ChurnNoPool);

void BM_LockFreeSkipQueue_Churn(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int> q;
  churn(state, q);
}
BENCHMARK(BM_LockFreeSkipQueue_Churn);

void BM_LockFreeSkipQueue_ChurnNoPool(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::LockFreeSkipQueue<std::int64_t, int> q(opt);
  churn(state, q);
}
BENCHMARK(BM_LockFreeSkipQueue_ChurnNoPool);

void BM_SkipQueue_DeleteMin(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  std::int64_t refill = 0;
  for (auto _ : state) {
    if (q.empty()) {
      state.PauseTiming();
      for (int i = 0; i < 10000; ++i)
        q.insert(refill++ * 31 % 1000003, 1);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(q.delete_min());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_DeleteMin);

// Sequential reference: the pairing heap (no synchronization at all) puts
// an upper bound on what any concurrent structure could deliver at one
// thread.
void BM_PairingHeap_Mixed(benchmark::State& state) {
  slpq::detail::PairingHeap<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(0xABCD);
  for (std::size_t i = 0; i < kPrefill; ++i)
    q.push(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
  for (auto _ : state) {
    if (q.empty() || rng.bernoulli(0.5)) {
      q.push(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    } else {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairingHeap_Mixed);

// Level-generation cost (the skiplist's per-insert randomness).
void BM_RandomLevel(benchmark::State& state) {
  slpq::detail::Xoshiro256 rng(1);
  slpq::detail::GeometricLevel dist(0.5, 20);
  for (auto _ : state) benchmark::DoNotOptimize(dist(rng));
}
BENCHMARK(BM_RandomLevel);

}  // namespace

BENCHMARK_MAIN();
