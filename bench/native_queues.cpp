// google-benchmark microbenchmarks for the native (std::thread) queues.
//
// These measure real hardware throughput of slpq::SkipQueue and friends —
// the library a downstream user links — as opposed to the fig*_ benches,
// which measure the paper's simulated 256-way machine. On a box with few
// cores the ->Threads(n) variants mostly measure oversubscription; the
// single-thread numbers are the interesting ones there.
//
// The mixed-op suite ("BM_Mixed/<name>") is driven by the BackendRegistry:
// every Flavor::Native backend gets a prefueled shared queue and the same
// 50/50 insert/delete-min loop, so a newly registered backend is benched
// without touching this file. The remaining benchmarks exercise knobs the
// registry does not expose (pooled vs. heap node allocation, pure
// insert/delete paths, the sequential pairing-heap reference).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"
#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/skip_queue.hpp"

namespace {

constexpr std::uint64_t kKeySpace = 1 << 20;
// Prefill scales with the widest ->Threads(n) variant so the per-thread
// working set stays constant as the thread count grows (a fixed prefill
// would make the 8-thread runs hit empty far more often than 1-thread).
constexpr int kMaxBenchThreads = 8;
constexpr std::size_t kPrefillPerThread = 1024;
constexpr std::size_t kPrefill = kPrefillPerThread * kMaxBenchThreads;

// ---- registry-driven mixed-op suite ---------------------------------------

harness::BenchmarkConfig bench_config(const harness::Backend& b) {
  harness::BenchmarkConfig cfg;
  cfg.flavor = harness::Flavor::Native;
  cfg.structure = b.name;
  cfg.processors = kMaxBenchThreads;
  // Combining/sorted-list structures have superlinear prefill and are only
  // competitive small; keep their working set tiny (their favourable
  // regime), as the hand-written benchmarks always did.
  cfg.initial_size = b.has(harness::Backend::kSlowSeed) ? 64 : kPrefill;
  // Bounded structures size themselves from initial_size + total_ops;
  // leave generous headroom for however many iterations benchmark runs.
  cfg.total_ops = 1 << 22;
  cfg.seed = 7;
  return cfg;
}

// Each benchmark shares one queue across all its threads and repetitions.
// The handle is built exactly once per backend and deliberately never
// destroyed: google-benchmark re-enters the function many times while
// sibling threads may still be in flight, so any per-repetition reset
// would race with them. The 50/50 mix keeps the structure near its
// prefilled size across repetitions.
harness::QueueHandle& shared_handle(const harness::Backend& b) {
  struct Shared {
    harness::BenchmarkConfig cfg;
    std::unique_ptr<harness::QueueHandle> queue;
  };
  static std::mutex mu;
  static auto& instances = *new std::map<std::string, Shared>();
  std::lock_guard<std::mutex> g(mu);
  auto [it, inserted] = instances.try_emplace(b.name);
  if (inserted) {
    it->second.cfg = bench_config(b);
    it->second.queue = b.make(harness::BackendInit{it->second.cfg, nullptr});
    harness::spec::prefill(*it->second.queue, it->second.cfg);
    it->second.queue->quiesce();
  }
  return *it->second.queue;
}

void BM_Mixed(benchmark::State& state, const harness::Backend* b) {
  harness::QueueHandle& q = shared_handle(*b);
  harness::OpContext ctx;
  ctx.thread = state.thread_index();
  slpq::detail::Xoshiro256 rng(
      0xABCD + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    if (rng.bernoulli(0.5)) {
      q.insert(ctx, static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    } else {
      benchmark::DoNotOptimize(q.delete_min(ctx));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void register_mixed_benchmarks() {
  for (const harness::Backend* b :
       harness::BackendRegistry::instance().all(harness::Flavor::Native)) {
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_Mixed/" + b->name).c_str(),
        [b](benchmark::State& state) { BM_Mixed(state, b); });
    bench->Threads(1)->Threads(2);
    // Combining structures were only ever benched to 2 threads; everything
    // else sweeps to the full width.
    if (!b->has(harness::Backend::kCombining))
      bench->Threads(4)->Threads(kMaxBenchThreads);
    bench->UseRealTime();
  }
}

// ---- hand-written benchmarks for knobs the registry does not expose -------

// Pure-insert and pure-delete single-thread costs for the SkipQueue.
void BM_SkipQueue_Insert(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_Insert);

// Pooled vs. heap allocation on the insert hot path. The pool serves
// nodes from a per-thread bump/free-list arena; NoPool takes the same
// code path but falls through to operator new for every node.
void BM_SkipQueue_InsertNoPool(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::SkipQueue<std::int64_t, int> q(opt);
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_InsertNoPool);

void BM_LockFreeSkipQueue_Insert(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeSkipQueue_Insert);

void BM_LockFreeSkipQueue_InsertNoPool(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::LockFreeSkipQueue<std::int64_t, int> q(opt);
  slpq::detail::Xoshiro256 rng(3);
  for (auto _ : state)
    q.insert(static_cast<std::int64_t>(rng.below(1ULL << 40)), 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeSkipQueue_InsertNoPool);

// Steady-state churn: every iteration inserts one item and deletes one,
// so each node completes an allocate → retire → recycle round trip. This
// is the pool's target regime — the insert-only benches above mostly
// measure the ever-growing search path, not allocation.
template <typename Queue>
void churn(benchmark::State& state, Queue& q) {
  slpq::detail::Xoshiro256 rng(11);
  for (std::size_t i = 0; i < kPrefill; ++i)
    q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
  for (auto _ : state) {
    q.insert(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    benchmark::DoNotOptimize(q.delete_min());
  }
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_SkipQueue_Churn(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  churn(state, q);
}
BENCHMARK(BM_SkipQueue_Churn);

void BM_SkipQueue_ChurnNoPool(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::SkipQueue<std::int64_t, int> q(opt);
  churn(state, q);
}
BENCHMARK(BM_SkipQueue_ChurnNoPool);

void BM_LockFreeSkipQueue_Churn(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int> q;
  churn(state, q);
}
BENCHMARK(BM_LockFreeSkipQueue_Churn);

void BM_LockFreeSkipQueue_ChurnNoPool(benchmark::State& state) {
  slpq::LockFreeSkipQueue<std::int64_t, int>::Options opt;
  opt.pooled = false;
  slpq::LockFreeSkipQueue<std::int64_t, int> q(opt);
  churn(state, q);
}
BENCHMARK(BM_LockFreeSkipQueue_ChurnNoPool);

void BM_SkipQueue_DeleteMin(benchmark::State& state) {
  slpq::SkipQueue<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(3);
  std::int64_t refill = 0;
  for (auto _ : state) {
    if (q.empty()) {
      state.PauseTiming();
      for (int i = 0; i < 10000; ++i)
        q.insert(refill++ * 31 % 1000003, 1);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(q.delete_min());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipQueue_DeleteMin);

// Sequential reference: the pairing heap (no synchronization at all) puts
// an upper bound on what any concurrent structure could deliver at one
// thread.
void BM_PairingHeap_Mixed(benchmark::State& state) {
  slpq::detail::PairingHeap<std::int64_t, int> q;
  slpq::detail::Xoshiro256 rng(0xABCD);
  for (std::size_t i = 0; i < kPrefill; ++i)
    q.push(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
  for (auto _ : state) {
    if (q.empty() || rng.bernoulli(0.5)) {
      q.push(static_cast<std::int64_t>(rng.below(kKeySpace)), 1);
    } else {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairingHeap_Mixed);

// Level-generation cost (the skiplist's per-insert randomness).
void BM_RandomLevel(benchmark::State& state) {
  slpq::detail::Xoshiro256 rng(1);
  slpq::detail::GeometricLevel dist(0.5, 20);
  for (auto _ : state) benchmark::DoNotOptimize(dist(rng));
}
BENCHMARK(BM_RandomLevel);

}  // namespace

int main(int argc, char** argv) {
  // How *this binary* was compiled. google-benchmark's own
  // library_build_type key describes libbenchmark (the distro package says
  // "debug"); these keys are what run_native.sh's distiller validates.
  benchmark::AddCustomContext("slpq_build_type", SLPQ_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("slpq_assertions", "off");
#else
  benchmark::AddCustomContext("slpq_assertions", "on");
#endif
  register_mixed_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
