// Figure 3: the small structure benchmark. All structures start with 50
// random elements; 70000 operations, 50% inserts; latency vs processors.
// Paper findings: FunnelList wins below ~16 processors; above that the
// SkipQueue dominates — ~4x faster inserts than FunnelList and ~10x faster
// inserts / ~3x faster deletes than the Heap at 256 processors.
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 50;
  base.total_ops = harness::scaled_ops(70000);
  base.insert_ratio = 0.5;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"heap", "skip", "funnel"});

  figbench::emit("fig3_small",
                 "small structure (init 50, 70000 ops, 50% inserts)", procs,
                 sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
