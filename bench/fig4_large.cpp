// Figure 4: the large structure benchmark — same as Figure 3 but with 1000
// initial elements. The FunnelList's linear-time list traversal collapses;
// the two logarithmic structures barely notice the 20x size increase.
// Paper: at 256 processors the SkipQueue is ~2.5x faster on deletions and
// ~6.5x faster on insertions than the Heap.
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 1000;
  base.total_ops = harness::scaled_ops(70000);
  base.insert_ratio = 0.5;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"heap", "skip", "funnel"});

  figbench::emit("fig4_large",
                 "large structure (init 1000, 70000 ops, 50% inserts)", procs,
                 sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
