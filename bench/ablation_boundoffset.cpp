// Ablation: the Linden queue's boundoffset (dead-prefix length that
// triggers physical restructuring), on the native machine where the trade
// is real cache traffic.
//
// Small bounds restructure often: every few deletions one thread swings
// head->next and repairs the upper levels, so claimants contend on the
// head and the repair CAS traffic grows. Large bounds restructure rarely
// but make every delete_min (and every insert's search) crawl a long dead
// prefix first. The optimum sits in between and shifts with thread count.
#include "figure_common.hpp"

int main() {
  const int kBounds[] = {16, 32, 64, 128, 256};
  const int kProcs[] = {1, 2, 4, 8};

  harness::Table t;
  t.title = "LindenSkipQueue: boundoffset sweep (native, 50% inserts)";
  t.columns = {"boundoffset", "procs", "insert ns", "delete ns", "Mops/s"};

  harness::Table csv;
  csv.columns = {"boundoffset", "procs",   "mean_insert", "mean_delete",
                 "ops_per_sec", "makespan_ns"};

  for (int procs : kProcs) {
    for (int bound : kBounds) {
      harness::BenchmarkConfig cfg;
      cfg.structure = "linden";
      cfg.flavor = harness::Flavor::Native;
      cfg.processors = procs;
      cfg.initial_size = 4096;
      cfg.total_ops = harness::scaled_ops(400000);
      cfg.boundoffset = bound;
      cfg.seed = 42;
      std::fprintf(stderr, "[bench] boundoffset=%-3d procs=%d ...\n", bound,
                   procs);
      const auto r = harness::run_benchmark(cfg);
      const double ops =
          static_cast<double>(r.inserts + r.deletes + r.empties);
      const double ops_per_sec =
          r.makespan ? ops * 1e9 / static_cast<double>(r.makespan) : 0.0;
      t.add_row({std::to_string(bound), std::to_string(procs),
                 harness::fmt(r.mean_insert()), harness::fmt(r.mean_delete()),
                 harness::fmt(ops_per_sec / 1e6)});
      csv.add_row({std::to_string(bound), std::to_string(procs),
                   harness::fmt(r.mean_insert(), 1),
                   harness::fmt(r.mean_delete(), 1),
                   harness::fmt(ops_per_sec, 1), std::to_string(r.makespan)});
    }
  }

  std::cout << "=== ablation_boundoffset: restructuring frequency trade ===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_boundoffset.csv", csv);
  std::cout << "\n[csv written to ablation_boundoffset.csv]\n";
  return 0;
}
