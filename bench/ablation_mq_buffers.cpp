// Ablation: the MultiQueue buffer engine — insertion/deletion buffer
// depth, operation batch size, and stickiness — on the native machine,
// with the throughput-vs-rank-error frontier in one table.
//
// The "Engineering MultiQueues" trade: deeper buffers and bigger batches
// amortize shard-lock acquisitions (throughput up), but every item hidden
// in another thread's buffer is invisible to delete_min (rank error up).
// Stickiness compounds both effects. Each row reports ops/s next to the
// sampled mean/p99 rank error so no speed number appears without its
// quality price.
#include "figure_common.hpp"

int main() {
  // (buffer, batch) pairs: buffer depth with batch matched or halved,
  // plus the degenerate (1,1) = the unbuffered textbook MultiQueue.
  const std::pair<int, int> kBufBatch[] = {
      {1, 1}, {8, 4}, {8, 8}, {32, 8}, {32, 32}};
  const int kStickiness[] = {1, 8, 32};
  const int kProcs[] = {1, 8};

  harness::Table t;
  t.title = "MultiQueue: buffer/batch/stickiness sweep (native, 50% inserts)";
  t.columns = {"buf",   "batch",     "stick",    "procs",
               "Mops/s", "rank mean", "rank p99"};

  harness::Table csv;
  csv.columns = {"buf",         "batch",       "stickiness",    "procs",
                 "mean_insert", "mean_delete", "ops_per_sec",
                 "makespan_ns", "rank_mean",   "rank_p99",      "rank_max",
                 "ins_flushes", "refills",     "invalidations"};

  for (int procs : kProcs) {
    for (int stick : kStickiness) {
      for (auto [buf, batch] : kBufBatch) {
        harness::BenchmarkConfig cfg;
        cfg.structure = "multiqueue";
        cfg.flavor = harness::Flavor::Native;
        cfg.processors = procs;
        cfg.initial_size = 4096;
        cfg.total_ops = harness::scaled_ops(400000);
        cfg.mq_c = 2;
        cfg.mq_stickiness = stick;
        cfg.mq_ins_buf = buf;
        cfg.mq_del_buf = buf;
        cfg.mq_batch = batch;
        cfg.seed = 42;
        std::fprintf(stderr,
                     "[bench] buf=%-2d batch=%-2d stick=%-2d procs=%d ...\n",
                     buf, batch, stick, procs);
        const auto r = harness::run_benchmark(cfg);
        const double ops =
            static_cast<double>(r.inserts + r.deletes + r.empties);
        const double ops_per_sec =
            r.makespan ? ops * 1e9 / static_cast<double>(r.makespan) : 0.0;
        const auto rank_mean = r.telemetry.get("mq.rank_error.mean");
        const auto rank_p99 = r.telemetry.get("mq.rank_error.p99");
        t.add_row({std::to_string(buf), std::to_string(batch),
                   std::to_string(stick), std::to_string(procs),
                   harness::fmt(ops_per_sec / 1e6), std::to_string(rank_mean),
                   std::to_string(rank_p99)});
        csv.add_row({std::to_string(buf), std::to_string(batch),
                     std::to_string(stick), std::to_string(procs),
                     harness::fmt(r.mean_insert(), 1),
                     harness::fmt(r.mean_delete(), 1),
                     harness::fmt(ops_per_sec, 1), std::to_string(r.makespan),
                     std::to_string(rank_mean), std::to_string(rank_p99),
                     std::to_string(r.telemetry.get("mq.rank_error.max")),
                     std::to_string(r.telemetry.get("mq.ins_flushes")),
                     std::to_string(r.telemetry.get("mq.refills")),
                     std::to_string(r.telemetry.get("mq.dbuf_invalidations"))});
      }
    }
  }

  std::cout << "=== ablation_mq_buffers: throughput vs rank-error frontier "
               "===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_mq_buffers.csv", csv);
  std::cout << "\n[csv written to ablation_mq_buffers.csv]\n";
  return 0;
}
