// Ablation: skiplist node memory layout.
//
// By default a node's words are packed the way a C struct would be, so
// unrelated nodes can share cache lines (false sharing on the hot bottom-
// level scan). pad_nodes line-aligns every node allocation. DESIGN.md
// design choice #2.
#include "figure_common.hpp"

int main() {
  const auto procs = figbench::proc_sweep();

  harness::Table del, ins;
  del.title = "Average deletion time (cycles)";
  ins.title = "Average insertion time (cycles)";
  del.columns = {"procs", "packed del", "padded del"};
  ins.columns = {"procs", "packed ins", "padded ins"};

  harness::Table csv;
  csv.columns = {"layout", "procs", "mean_insert", "mean_delete",
                 "cache_misses", "invalidations"};

  for (bool padded : {false, true}) {
    for (std::size_t i = 0; i < procs.size(); ++i) {
      harness::BenchmarkConfig cfg;
      cfg.structure = "skip";
      cfg.processors = procs[i];
      cfg.initial_size = 1000;
      cfg.total_ops = harness::scaled_ops(20000);
      cfg.pad_nodes = padded;
      std::fprintf(stderr, "[bench] layout=%s procs=%d ...\n",
                   padded ? "padded" : "packed", procs[i]);
      const auto r = harness::run_benchmark(cfg);
      if (!padded) {
        del.add_row({std::to_string(procs[i]), harness::fmt(r.mean_delete()), ""});
        ins.add_row({std::to_string(procs[i]), harness::fmt(r.mean_insert()), ""});
      } else {
        del.rows[i][2] = harness::fmt(r.mean_delete());
        ins.rows[i][2] = harness::fmt(r.mean_insert());
      }
      csv.add_row({padded ? "padded" : "packed", std::to_string(procs[i]),
                   harness::fmt(r.mean_insert(), 1),
                   harness::fmt(r.mean_delete(), 1),
                   std::to_string(r.machine_stats.cache_misses()),
                   std::to_string(r.machine_stats.invalidations_sent)});
    }
  }

  std::cout << "=== ablation_layout: packed vs line-aligned skiplist nodes ===\n\n";
  print_table(std::cout, del);
  std::cout << "\n";
  print_table(std::cout, ins);
  write_csv("ablation_layout.csv", csv);
  std::cout << "\n[csv written to ablation_layout.csv]\n";
  return 0;
}
