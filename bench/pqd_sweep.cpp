// pqd_sweep: service-tier geometry sweep — shards x batch x clients, per
// shard backend, over one deterministic hold-model trace.
//
// The quantity under test is lock amortization: how many ops one shard
// acquisition serves (ops / pqd.shard_acquisitions) as the batch knob
// grows, and what that does to client-observed tail latency and to
// delete-min quality (pqd.rank_error.*, sampled through the shared
// probe). batch=1 rows are the unamortized baseline the acceptance
// ratio in bench_results/BENCH_pqd.json is computed against
// (bench/run_native.sh distills pqd_sweep.csv).
//
// Every run replays the SAME trace (record_hold_model, fixed seed), so
// rows differ only in service geometry, never in logical work.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hpp"
#include "harness/trace.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"
#include "pqd/service.hpp"
#include "pqd/transport.hpp"
#include "slpq/detail/histogram.hpp"

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SweepRow {
  std::string backend;
  int shards, batch, clients;
  std::uint64_t ops, makespan_ns;
  double ops_per_sec;
  std::uint64_t p50, p90, p99, max;
  std::uint64_t acquisitions;
  double ops_per_acq;
  std::uint64_t insert_batches, window_refills, imbalance;
  std::uint64_t rank_mean, rank_p99;
};

SweepRow run_one(const std::string& backend, int shards, int batch,
                 int clients, const harness::Trace& trace) {
  pqd::ServiceConfig scfg;
  scfg.backend = backend;
  scfg.shards = shards;
  scfg.batch = batch;
  scfg.queue.initial_size = trace.initial_size();
  scfg.queue.total_ops = trace.ops.size() + trace.initial_size();
  pqd::Service service(scfg);
  pqd::InProcTransport transport(service,
                                 static_cast<std::size_t>(clients) + 1);
  harness::spec::RankErrorProbe probe;

  for (const harness::TraceOp& item : trace.warm) {
    const pqd::Key key = harness::spec::scenario_key(item.tick, item.tie);
    service.seed(key, static_cast<pqd::Value>(key));
    probe.on_insert(key);
  }
  service.prime();

  struct Tally {
    slpq::detail::LogHistogram latency;
    slpq::detail::LogHistogram rank_error;
  };
  std::vector<Tally> tallies(static_cast<std::size_t>(clients));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  const std::size_t n_ops = trace.ops.size();

  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t begin = n_ops * static_cast<std::size_t>(c) /
                                static_cast<std::size_t>(clients);
      const std::size_t end = n_ops * (static_cast<std::size_t>(c) + 1) /
                              static_cast<std::size_t>(clients);
      Tally& tally = tallies[static_cast<std::size_t>(c)];
      pqd::Session session(transport);
      std::uint64_t deletes = 0;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = begin; i < end; ++i) {
        const harness::TraceOp& op = trace.ops[i];
        const std::uint64_t t0 = now_ns();
        if (op.kind == harness::TraceOp::Kind::kInsert) {
          const pqd::Key key =
              harness::spec::scenario_key(op.tick, op.tie);
          probe.on_insert(key);
          session.enqueue(key, static_cast<pqd::Value>(key));
          tally.latency.record(now_ns() - t0);
        } else {
          const std::optional<pqd::Item> got = session.dequeue();
          tally.latency.record(now_ns() - t0);
          if (got) {
            if (++deletes %
                    harness::spec::RankErrorProbe::kSamplePeriod ==
                0)
              tally.rank_error.record(probe.on_delete(got->first));
            else
              probe.on_delete_unsampled(got->first);
          }
        }
      }
      session.flush();
    });
  }

  while (ready.load(std::memory_order_acquire) < clients)
    std::this_thread::yield();
  const std::uint64_t t_start = now_ns();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const std::uint64_t t_end = now_ns();

  slpq::detail::LogHistogram latency, rank_error;
  for (const Tally& t : tallies) {
    latency.merge(t.latency);
    rank_error.merge(t.rank_error);
  }
  const slpq::TelemetrySnapshot snap = service.telemetry();

  SweepRow row;
  row.backend = backend;
  row.shards = shards;
  row.batch = batch;
  row.clients = clients;
  row.ops = n_ops;
  row.makespan_ns = t_end - t_start;
  row.ops_per_sec = row.makespan_ns
                        ? static_cast<double>(n_ops) * 1e9 /
                              static_cast<double>(row.makespan_ns)
                        : 0.0;
  row.p50 = latency.quantile(0.50);
  row.p90 = latency.quantile(0.90);
  row.p99 = latency.quantile(0.99);
  row.max = latency.max();
  row.acquisitions = snap.get("pqd.shard_acquisitions");
  row.ops_per_acq = row.acquisitions
                        ? static_cast<double>(n_ops) /
                              static_cast<double>(row.acquisitions)
                        : 0.0;
  row.insert_batches = snap.get("pqd.insert_batches");
  row.window_refills = snap.get("pqd.window_refills");
  row.imbalance = snap.get("pqd.shard_imbalance");
  row.rank_mean = static_cast<std::uint64_t>(rank_error.mean());
  row.rank_p99 = rank_error.quantile(0.99);
  return row;
}

}  // namespace

int main() {
  const std::uint64_t ops = harness::scaled_ops(20000);
  const harness::Trace trace =
      harness::Trace::record_hold_model(ops, 1000, 0.5, 42);

  const std::vector<std::string> backends{"skip", "multiqueue"};
  const std::vector<int> shard_counts{2, 4, 8};
  const std::vector<int> batches{1, 4, 16};
  const std::vector<int> client_counts{4, 8};

  harness::Table table;
  table.title = "pqd geometry sweep (hold-model trace, " +
                std::to_string(ops) + " ops, warm 1000)";
  table.columns = {"backend",  "shards",   "batch",       "clients",
                   "ops/s",    "p50 ns",   "p99 ns",      "acq",
                   "ops/acq",  "refills",  "imbalance%",  "rank p99"};

  harness::Table csv;
  csv.columns = {"backend",       "shards",        "batch",
                 "clients",       "ops",           "makespan_ns",
                 "ops_per_sec",   "lat_p50",       "lat_p90",
                 "lat_p99",       "lat_max",       "acquisitions",
                 "ops_per_acq",   "insert_batches", "window_refills",
                 "imbalance",     "rank_mean",     "rank_p99"};

  for (const std::string& backend : backends) {
    for (int shards : shard_counts) {
      for (int batch : batches) {
        for (int clients : client_counts) {
          const SweepRow r = run_one(backend, shards, batch, clients, trace);
          table.add_row({r.backend, std::to_string(r.shards),
                         std::to_string(r.batch), std::to_string(r.clients),
                         harness::fmt(r.ops_per_sec, 0),
                         std::to_string(r.p50), std::to_string(r.p99),
                         std::to_string(r.acquisitions),
                         harness::fmt(r.ops_per_acq, 2),
                         std::to_string(r.window_refills),
                         std::to_string(r.imbalance),
                         std::to_string(r.rank_p99)});
          csv.add_row({r.backend, std::to_string(r.shards),
                       std::to_string(r.batch), std::to_string(r.clients),
                       std::to_string(r.ops), std::to_string(r.makespan_ns),
                       harness::fmt(r.ops_per_sec, 1),
                       std::to_string(r.p50), std::to_string(r.p90),
                       std::to_string(r.p99), std::to_string(r.max),
                       std::to_string(r.acquisitions),
                       harness::fmt(r.ops_per_acq, 3),
                       std::to_string(r.insert_batches),
                       std::to_string(r.window_refills),
                       std::to_string(r.imbalance),
                       std::to_string(r.rank_mean),
                       std::to_string(r.rank_p99)});
        }
      }
    }
  }

  harness::print_table(std::cout, table);
  harness::write_csv("pqd_sweep.csv", csv);
  std::cout << "wrote pqd_sweep.csv\n";
  return 0;
}
