// Ablation: topology-aware MultiQueue shard selection on the simulated
// mesh — policy (none | near | adaptive) x base radius x processor count
// x workload, with the locality/throughput/quality triad in every row.
//
// The trade being priced: `none` is the textbook uniform 2-choice
// MultiQueue, so most charged lock and heap-arena traffic crosses half
// the mesh; `near` homes each shard's lines at its owner node
// (MemorySystem::alloc_near) and draws both delete-min candidates from a
// Manhattan-hop radius, cutting hop distance and therefore cycles/op at
// scale; `adaptive` widens the radius only when the periodic global probe
// finds the local region's minima stale. Every row reports
// mq.shard_hops.{mean,p99} and mq.local_acquires next to cycles/op and
// the rank-error quantiles, so no locality win appears without its
// relaxation price. The CSV is the artifact behind
// bench_results/BENCH_mq_topology.json (distilled by bench/run_native.sh);
// the full slpq-telemetry/1 report goes to [out.json] for
// tools/check_stats_json.py.
//
//   ablation_mq_topology [out.json]
//
// Environment knobs:
//   SLPQ_BENCH_SCALE  scales the operation count (default 1.0)
//   SLPQ_MAX_PROCS    caps the sweep (default 256)
#include "figure_common.hpp"

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "ablation_mq_topology_stats.json";

  struct Config {
    slpq::TopoPolicy policy;
    int radius;
  };
  const Config kConfigs[] = {
      {slpq::TopoPolicy::kNone, 0},     {slpq::TopoPolicy::kNear, 1},
      {slpq::TopoPolicy::kNear, 2},     {slpq::TopoPolicy::kNear, 4},
      {slpq::TopoPolicy::kAdaptive, 1}, {slpq::TopoPolicy::kAdaptive, 2},
      {slpq::TopoPolicy::kAdaptive, 4}};

  std::vector<int> procs;
  for (int p : {16, 64, 128, 256})
    if (p <= harness::max_sweep_procs()) procs.push_back(p);

  harness::StatsReport report;
  harness::Table t;
  t.title = "MultiQueue topology sweep (sim, cycles)";
  t.columns = {"workload", "policy",  "radius",    "procs",   "cyc/op",
               "hops.mean", "hops.p99", "local",   "rank p99"};

  harness::Table csv;
  csv.columns = {"workload",      "policy",          "radius",
                 "procs",         "mean_insert",     "mean_delete",
                 "mean_op",       "makespan",        "shard_hops_mean",
                 "shard_hops_p99", "local_acquires", "topo_fallbacks",
                 "rank_mean",     "rank_p99"};

  for (auto workload :
       {harness::WorkloadKind::Mixed, harness::WorkloadKind::Des,
        harness::WorkloadKind::Timer}) {
    for (const auto& c : kConfigs) {
      for (int p : procs) {
        harness::BenchmarkConfig cfg;
        cfg.structure = "multiqueue";
        cfg.flavor = harness::Flavor::Sim;
        cfg.workload = workload;
        cfg.processors = p;
        cfg.initial_size = 1000;
        cfg.total_ops = harness::scaled_ops(20000);
        cfg.mq_topo = c.policy;
        cfg.mq_topo_radius = c.radius;
        std::fprintf(stderr,
                     "[mq_topology] %-5s policy=%-8s radius=%d procs=%-3d ...\n",
                     to_string(workload), slpq::to_string(c.policy), c.radius,
                     p);
        const auto r = harness::run_benchmark(cfg);
        const auto hops_mean = r.telemetry.get("mq.shard_hops.mean");
        const auto hops_p99 = r.telemetry.get("mq.shard_hops.p99");
        const auto local = r.telemetry.get("mq.local_acquires");
        const auto rank_p99 = r.telemetry.get("mq.rank_error.p99");
        t.add_row({to_string(workload), slpq::to_string(c.policy),
                   std::to_string(c.radius), std::to_string(p),
                   harness::fmt(r.mean_op()), std::to_string(hops_mean),
                   std::to_string(hops_p99), std::to_string(local),
                   std::to_string(rank_p99)});
        csv.add_row({to_string(workload), slpq::to_string(c.policy),
                     std::to_string(c.radius), std::to_string(p),
                     harness::fmt(r.mean_insert(), 1),
                     harness::fmt(r.mean_delete(), 1),
                     harness::fmt(r.mean_op(), 1), std::to_string(r.makespan),
                     std::to_string(hops_mean), std::to_string(hops_p99),
                     std::to_string(local),
                     std::to_string(r.telemetry.get("mq.topo_fallbacks")),
                     std::to_string(r.telemetry.get("mq.rank_error.mean")),
                     std::to_string(rank_p99)});
        report.add(cfg, r);
      }
    }
  }

  std::cout << "=== ablation_mq_topology: locality vs relaxation on the mesh "
               "===\n\n";
  print_table(std::cout, t);
  write_csv("ablation_mq_topology.csv", csv);
  write_stats_json(out_path, report);
  std::cout << "\n[csv written to ablation_mq_topology.csv]\n"
            << "[stats json written to " << out_path << "]\n";
  return 0;
}
