// Simulator scaling sweep: every sim backend, every scenario, at
// 16/64/128/256 simulated processors, with the full telemetry snapshot —
// including the engine's own host-side throughput (sim.host_wall_ns,
// sim.host_events_per_sec, sim.runahead_elided) — written as one
// slpq-telemetry/1 JSON. This is the artifact behind BENCH_sim_scaling.json
// and the engine-throughput tables in docs/EXPERIMENTS.md.
//
//   sim_sweep [out.json]
//
// Environment knobs:
//   SLPQ_BENCH_SCALE  scales the operation count (default 1.0)
//   SLPQ_MAX_PROCS    caps the sweep (default 256)
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim_scaling.json";

  std::vector<int> procs;
  for (int p : {16, 64, 128, 256})
    if (p <= harness::max_sweep_procs()) procs.push_back(p);

  // Every registered sim backend, so new structures join the sweep for free.
  std::vector<std::string> structures;
  for (const harness::Backend* b :
       harness::BackendRegistry::instance().all(harness::Flavor::Sim))
    structures.push_back(b->name);

  harness::StatsReport report;
  harness::Table table;
  table.title = "sim scaling sweep (cycles; host throughput in events/s)";
  table.columns = {"workload", "structure",  "procs",  "insert",
                   "delete",   "fiber_sw",   "elided", "host_ev/s"};

  for (auto workload : {harness::WorkloadKind::Mixed, harness::WorkloadKind::Des,
                        harness::WorkloadKind::Timer}) {
    for (const auto& structure : structures) {
      for (int p : procs) {
        harness::BenchmarkConfig cfg;
        cfg.structure = structure;
        cfg.workload = workload;
        cfg.processors = p;
        cfg.initial_size = 1000;
        cfg.total_ops = harness::scaled_ops(20000);
        std::fprintf(stderr, "[sim_sweep] %-5s %-12s procs=%-3d ... ",
                     to_string(workload), structure.c_str(), p);
        std::fflush(stderr);
        const auto r = harness::run_benchmark(cfg);
        const auto& st = r.machine_stats;
        std::fprintf(stderr, "%.2fs host, %" PRIu64 " switches\n",
                     static_cast<double>(st.host_wall_ns) * 1e-9,
                     st.fiber_switches);
        table.add_row({to_string(workload), structure, std::to_string(p),
                       harness::fmt(r.mean_insert()),
                       harness::fmt(r.mean_delete()),
                       std::to_string(st.fiber_switches),
                       std::to_string(st.runahead_elided),
                       harness::fmt(st.host_events_per_sec())});
        report.add(cfg, r);
      }
    }
  }

  print_table(std::cout, table);
  write_stats_json(out_path, report);
  std::cout << "\n[stats json written to " << out_path << "]\n";
  return 0;
}
