// Figure 7: SkipQueue vs Relaxed SkipQueue on the large structure
// benchmark (init 1000, 7000 ops, 50% inserts).
#include "figure_common.hpp"

int main() {
  harness::BenchmarkConfig base;
  base.initial_size = 1000;
  base.total_ops = harness::scaled_ops(7000);
  base.insert_ratio = 0.5;
  base.work_cycles = 100;

  const auto procs = figbench::proc_sweep();
  const auto sweep = figbench::run_sweep(
      base, procs,
      {"skip", "relaxed"});

  figbench::emit("fig7_relaxed_large",
                 "SkipQueue vs Relaxed, large structure (init 1000, 7000 ops)",
                 procs, sweep);
  figbench::print_headline(procs, sweep, /*baseline=*/0, /*subject=*/1);
  return 0;
}
