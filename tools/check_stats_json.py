#!/usr/bin/env python3
"""Validates pqsim --stats-json output (schema slpq-telemetry/1).

Usage:
    tools/check_stats_json.py out.json [more.json ...] [--doc docs/TELEMETRY.md]

Checks, per file:
  * top level is {"schema": "slpq-telemetry/1", "runs": [...]} with at
    least one run;
  * every run carries the required fields with the right types;
  * every run's counters object contains the full core counter set
    (non-negative integers);
  * sim runs additionally carry the sim.* machine breakdown, native runs
    the native.* phase timings.

With --doc, additionally greps every emitted counter key against the
telemetry glossary: a key the structures emit but the doc does not
mention fails the check (the doc names keys in backticks).

Stdlib only; exit status 0 = all files valid.
"""

import argparse
import json
import re
import sys

CORE_KEYS = [
    "insert_retries",
    "delete_retries",
    "failed_cas",
    "claim_wins",
    "claim_losses",
    "restructure_sweeps",
    "prefix_nodes_walked",
    "pool_refills",
    "pool_reused",
    "gc_reclaimed",
    "gc_deferred",
]

# Every run emits the reclamation block regardless of backend: structures
# that own a reclaimer report real counts, the rest a zero-valued block
# (fill_reclaim_zero), so downstream tooling never branches on presence.
RECLAIM_KEYS = [
    "reclaim.retired",
    "reclaim.freed",
    "reclaim.scans",
    "reclaim.stalls",
    "reclaim.pending",
]

RECLAIM_POLICIES = ("ts", "hp", "epoch", "leaky")

WORKLOADS = ("mixed", "des", "timer", "trace")

REQUIRED_RUN_FIELDS = {
    "machine": str,
    "structure": str,
    "processors": int,
    "total_ops": int,
    "unit": str,
    "makespan": int,
    "inserts": int,
    "deletes": int,
    "empties": int,
    "mean_insert": (int, float),
    "mean_delete": (int, float),
    "mean_op": (int, float),
    "counters": dict,
}

SIM_PREFIX_KEYS = [
    "sim.reads",
    "sim.cache_hits",
    "sim.miss_remote_dirty",
    "sim.fiber_switches",
    "sim.runahead_elided",
    "sim.host_wall_ns",
    "sim.host_events_per_sec",
]
NATIVE_PREFIX_KEYS = ["native.prefill_ns", "native.run_ns", "native.quiesce_ns"]

# Relaxed structures must price their relaxation: every MultiQueue run
# carries the sampled rank-error histogram next to its speed numbers.
RANK_ERROR_KEYS = [
    "mq.rank_error.samples",
    "mq.rank_error.mean",
    "mq.rank_error.p50",
    "mq.rank_error.p90",
    "mq.rank_error.p99",
    "mq.rank_error.max",
]

# Topology pricing: every MultiQueue run reports where its charged shard
# acquisitions landed on the mesh/grid, even with --mq-topo none (the
# baseline's hop distribution is the comparison anchor).
TOPO_KEYS = [
    "mq.shard_hops.mean",
    "mq.shard_hops.p99",
    "mq.local_acquires",
    "mq.topo_fallbacks",
]

# Service-tier runs (run.service == "pqd") price their own relaxation and
# batching: client-observed latency, batch occupancy, shard balance, and
# the service-level rank-error sketch (pqd.rank_error.*, measured against
# the global order across shards — distinct from mq.rank_error.*, which a
# relaxed backend measures against its own single-queue order).
PQD_KEYS = [
    "pqd.shards",
    "pqd.batch",
    "pqd.shard_acquisitions",
    "pqd.insert_batches",
    "pqd.window_refills",
    "pqd.empty_refills",
    "pqd.batch_occupancy.mean",
    "pqd.batch_occupancy.p50",
    "pqd.batch_occupancy.p90",
    "pqd.batch_occupancy.max",
    "pqd.shard_imbalance",
    "pqd.latency.samples",
    "pqd.latency.p50",
    "pqd.latency.p90",
    "pqd.latency.p99",
    "pqd.latency.max",
    "pqd.rank_error.samples",
    "pqd.rank_error.mean",
    "pqd.rank_error.p99",
    "pqd.rank_error.max",
]

SERVICES = ("pqd",)


def check_run(run, idx, errors):
    where = f"runs[{idx}]"
    for field, kind in REQUIRED_RUN_FIELDS.items():
        if field not in run:
            errors.append(f"{where}: missing field '{field}'")
            continue
        if not isinstance(run[field], kind) or isinstance(run[field], bool):
            errors.append(f"{where}.{field}: wrong type {type(run[field]).__name__}")
    counters = run.get("counters")
    if not isinstance(counters, dict):
        return
    for key, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{where}.counters[{key!r}]: not a non-negative integer")
    for key in CORE_KEYS:
        if key not in counters:
            errors.append(f"{where}.counters: missing core key '{key}'")
    for key in RECLAIM_KEYS:
        if key not in counters:
            errors.append(f"{where}.counters: missing reclaim key '{key}'")
    reclaim = run.get("reclaim")
    if reclaim is not None and reclaim not in RECLAIM_POLICIES:
        errors.append(
            f"{where}.reclaim: expected one of {RECLAIM_POLICIES}, "
            f"got {reclaim!r}")
    workload = run.get("workload")
    if workload is not None and workload not in WORKLOADS:
        errors.append(
            f"{where}.workload: expected one of {WORKLOADS}, got {workload!r}")
    service = run.get("service")
    if service is not None:
        if service not in SERVICES:
            errors.append(
                f"{where}.service: expected one of {SERVICES}, got {service!r}")
        shards = run.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            errors.append(f"{where}.shards: service run needs a positive "
                          f"integer shard count, got {shards!r}")
    if service == "pqd":
        missing = [k for k in PQD_KEYS if k not in counters]
        if missing:
            errors.append(
                f"{where}.counters: pqd service run missing keys {missing}")
    if run.get("structure") == "multiqueue":
        # Service runs aggregate per-shard backend telemetry, which carries
        # the topology counters but not mq.rank_error.* — that fold lives in
        # the flat-driver harness; the service reports pqd.rank_error.*
        # (checked above) instead.
        if service != "pqd":
            missing = [k for k in RANK_ERROR_KEYS if k not in counters]
            if missing:
                errors.append(
                    f"{where}.counters: multiqueue run missing rank-error keys "
                    f"{missing}")
        missing = [k for k in TOPO_KEYS if k not in counters]
        if missing:
            errors.append(
                f"{where}.counters: multiqueue run missing topology keys "
                f"{missing}")
    machine = run.get("machine")
    if machine == "sim":
        missing = [k for k in SIM_PREFIX_KEYS if k not in counters]
        if missing:
            errors.append(f"{where}.counters: sim run missing {missing}")
    elif machine == "native":
        missing = [k for k in NATIVE_PREFIX_KEYS if k not in counters]
        if missing:
            errors.append(f"{where}.counters: native run missing {missing}")
    else:
        errors.append(f"{where}.machine: expected 'sim' or 'native', got {machine!r}")
    unit = run.get("unit")
    if unit not in ("cycles", "ns"):
        errors.append(f"{where}.unit: expected 'cycles' or 'ns', got {unit!r}")


def check_file(path, documented_keys, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if doc.get("schema") != "slpq-telemetry/1":
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      "expected 'slpq-telemetry/1'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append(f"{path}: 'runs' must be a non-empty list")
        return
    for idx, run in enumerate(runs):
        before = len(errors)
        check_run(run, idx, errors)
        errors[before:] = [f"{path}: {e}" for e in errors[before:]]
        if documented_keys is not None and isinstance(run.get("counters"), dict):
            for key in run["counters"]:
                if key not in documented_keys:
                    errors.append(
                        f"{path}: runs[{idx}] emits '{key}' but the telemetry "
                        "doc does not mention it")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="stats JSON files to validate")
    parser.add_argument("--doc", help="telemetry glossary to grep keys against")
    args = parser.parse_args()

    documented_keys = None
    if args.doc:
        try:
            with open(args.doc) as f:
                text = f.read()
        except OSError as e:
            print(f"check_stats_json: cannot read {args.doc}: {e}", file=sys.stderr)
            return 2
        documented_keys = set(re.findall(r"`([A-Za-z0-9_.]+)`", text))

    errors = []
    for path in args.files:
        check_file(path, documented_keys, errors)

    if errors:
        for e in errors:
            print(f"check_stats_json: {e}", file=sys.stderr)
        return 1
    print(f"check_stats_json: {len(args.files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
