// pqsim — command-line driver for the paper's synthetic benchmark.
//
// Runs the workload for any registered structure on either execution
// machine without recompiling, prints the latency table, an ASCII chart
// for sweeps, and optionally a CSV. Structures are resolved through the
// BackendRegistry, so `--list-structures` is always the source of truth.
//
//   pqsim --structure skip --procs 64 --ops 20000 --initial 1000
//   pqsim --structure heap,skip,multiqueue --sweep --max-procs 128 --csv out.csv
//   pqsim --machine native --structure lockfree,multiqueue --procs 4
//   pqsim --list-structures
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/ascii_chart.hpp"
#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/trace.hpp"
#include "harness/workload.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "pqsim: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: pqsim [--machine sim|native] [--structure LIST]\n"
      "             [--list-structures]\n"
      "             [--procs N | --sweep [--max-procs N]]\n"
      "             [--workload mixed|des|timer|trace] [--trace-file PATH]\n"
      "             [--ops N] [--initial N] [--insert-ratio F]\n"
      "             [--work N] [--seed N] [--max-level N]\n"
      "             [--mq-c N] [--mq-stickiness N]\n"
      "             [--mq-ins-buf N] [--mq-del-buf N] [--mq-batch N]\n"
      "             [--mq-topo none|near|adaptive] [--mq-radius N]\n"
      "             [--boundoffset N]\n"
      "             [--reclaim ts|hp|epoch|leaky]\n"
      "             [--no-gc] [--pad-nodes] [--no-occupancy]\n"
      "             [--no-runahead]\n"
      "             [--csv PATH] [--stats] [--stats-json PATH]\n"
      "\n"
      "  --machine sim|native   execution world: the simulated 256-way\n"
      "                         ccNUMA machine (latency in cycles) or real\n"
      "                         std::threads (latency in ns). Default: sim.\n"
      "  --structure LIST       comma list of registry names; see\n"
      "                         --list-structures for what each machine\n"
      "                         offers (sim: %s)\n"
      "                         (native: %s)\n"
      "  --mq-c N               MultiQueue shards per worker (default 2)\n"
      "  --mq-stickiness N      MultiQueue lock acquisitions on the same\n"
      "                         shard before resampling (default 8)\n"
      "  --mq-ins-buf N         MultiQueue per-thread insertion buffer\n"
      "                         capacity (default 8)\n"
      "  --mq-del-buf N         MultiQueue per-thread deletion buffer\n"
      "                         capacity (default 8)\n"
      "  --mq-batch N           MultiQueue max items moved per shard lock\n"
      "                         acquisition (default 8)\n"
      "  --mq-topo POLICY       MultiQueue shard selection: none (uniform\n"
      "                         2-choice, default), near (both candidates\n"
      "                         from a fixed hop radius, with a periodic\n"
      "                         global probe), adaptive (radius widens when\n"
      "                         the local region's minima go stale). On the\n"
      "                         sim machine near/adaptive also home each\n"
      "                         shard's lines at its owner mesh node\n"
      "  --mq-radius N          base hop radius for --mq-topo near|adaptive\n"
      "                         (default 2)\n"
      "  --boundoffset N        linden queue: dead-prefix length that\n"
      "                         triggers restructuring (default 32)\n"
      "  --workload KIND        scenario: mixed (the paper's benchmark,\n"
      "                         default), des (discrete-event hold model),\n"
      "                         timer (timer-wheel deadline front), trace\n"
      "                         (replay a recorded schedule; needs\n"
      "                         --trace-file)\n"
      "  --trace-file PATH      slpq-trace/1 op trace to replay (see\n"
      "                         docs/TRACES.md; ops/initial come from the\n"
      "                         trace, overriding --ops/--initial)\n"
      "  --no-runahead          sim machine: suspend the fiber after every\n"
      "                         charged op even when the processor would\n"
      "                         stay scheduled (debugging escape hatch;\n"
      "                         same results, more context switches)\n"
      "  --reclaim POLICY       memory reclamation for node-freeing\n"
      "                         backends: ts (paper Section 3 timestamp\n"
      "                         GC, default), hp (hazard pointers), epoch\n"
      "                         (3-epoch QSBR), leaky (free at teardown)\n"
      "  --work N               local work between ops: cycles on sim,\n"
      "                         spin iterations on native (default 100)\n"
      "  --stats                print each run's telemetry counters\n"
      "                         (docs/TELEMETRY.md) as a table\n"
      "  --stats-json PATH      write all runs' telemetry as JSON, schema\n"
      "                         slpq-telemetry/1 (one schema for both\n"
      "                         machines)\n",
      harness::BackendRegistry::instance().names(harness::Flavor::Sim).c_str(),
      harness::BackendRegistry::instance()
          .names(harness::Flavor::Native)
          .c_str());
  std::exit(2);
}

[[noreturn]] void list_structures() {
  for (auto flavor : {harness::Flavor::Sim, harness::Flavor::Native}) {
    std::printf("%s backends (--machine %s):\n", to_string(flavor),
                to_string(flavor));
    for (const harness::Backend* b :
         harness::BackendRegistry::instance().all(flavor)) {
      std::string extras;
      if (!b->aliases.empty()) {
        extras = "  [aka ";
        for (std::size_t i = 0; i < b->aliases.size(); ++i)
          extras += (i ? "," : "") + b->aliases[i];
        extras += "]";
      }
      if (!b->knobs.empty()) {
        extras += "  [knobs ";
        for (std::size_t i = 0; i < b->knobs.size(); ++i)
          extras += (i ? "," : "") + b->knobs[i];
        extras += "]";
      }
      std::printf("  %-12s %-18s %s%s\n", b->name.c_str(), b->label.c_str(),
                  b->summary.c_str(), extras.c_str());
    }
    std::printf("\n");
  }
  std::exit(0);
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto comma = list.find(',', start);
    const auto token = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) usage("empty --structure list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> structures = {"skip"};
  harness::BenchmarkConfig base;
  base.total_ops = 20000;
  base.initial_size = 1000;
  bool sweep = false;
  int procs = 32;
  int max_procs = 256;
  std::string csv_path;
  bool print_stats = false;
  std::string stats_json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--structure") structures = split_list(next());
    else if (arg == "--machine") {
      try {
        base.flavor = harness::parse_flavor(next());
      } catch (const std::invalid_argument& e) {
        usage(e.what());
      }
    }
    else if (arg == "--list-structures") list_structures();
    else if (arg == "--procs") procs = std::atoi(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--max-procs") max_procs = std::atoi(next());
    else if (arg == "--ops") base.total_ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--initial") base.initial_size = std::strtoull(next(), nullptr, 10);
    else if (arg == "--insert-ratio") base.insert_ratio = std::atof(next());
    else if (arg == "--work") base.work_cycles = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") base.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-level") base.max_level = std::atoi(next());
    else if (arg == "--mq-c") base.mq_c = std::atoi(next());
    else if (arg == "--mq-stickiness") base.mq_stickiness = std::atoi(next());
    else if (arg == "--mq-ins-buf") base.mq_ins_buf = std::atoi(next());
    else if (arg == "--mq-del-buf") base.mq_del_buf = std::atoi(next());
    else if (arg == "--mq-batch") base.mq_batch = std::atoi(next());
    else if (arg == "--mq-topo") {
      if (!slpq::parse_topo_policy(next(), base.mq_topo))
        usage("--mq-topo must be one of none|near|adaptive");
    }
    else if (arg == "--mq-radius") base.mq_topo_radius = std::atoi(next());
    else if (arg == "--boundoffset") base.boundoffset = std::atoi(next());
    else if (arg == "--reclaim") {
      if (!slpq::parse_reclaim_policy(next(), base.reclaim))
        usage("--reclaim must be one of ts|hp|epoch|leaky");
    }
    else if (arg == "--workload") {
      try {
        base.workload = harness::parse_workload(next());
      } catch (const std::invalid_argument& e) {
        usage(e.what());
      }
    }
    else if (arg == "--trace-file") base.trace_file = next();
    else if (arg == "--no-gc") base.use_gc = false;
    else if (arg == "--no-runahead") base.machine.runahead = false;
    else if (arg == "--pad-nodes") base.pad_nodes = true;
    else if (arg == "--no-occupancy") base.machine.model_dir_occupancy = false;
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--stats") print_stats = true;
    else if (arg == "--stats-json") stats_json_path = next();
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown flag '" + arg + "'").c_str());
  }
  if (procs < 1 || max_procs < 1) usage("processor counts must be >= 1");
  if (base.insert_ratio < 0.0 || base.insert_ratio > 1.0)
    usage("--insert-ratio must be in [0, 1]");
  if (base.mq_c < 1 || base.mq_stickiness < 1)
    usage("--mq-c and --mq-stickiness must be >= 1");
  if (base.mq_ins_buf < 1 || base.mq_del_buf < 1 || base.mq_batch < 1)
    usage("--mq-ins-buf, --mq-del-buf and --mq-batch must be >= 1");
  if (base.mq_topo_radius < 0) usage("--mq-radius must be >= 0");
  if (base.boundoffset < 1) usage("--boundoffset must be >= 1");
  if (base.workload == harness::WorkloadKind::Trace) {
    if (base.trace_file.empty()) usage("--workload trace needs --trace-file");
    // Preload once (sweeps would otherwise re-parse per run) and make the
    // headline numbers reflect the trace, not the synthetic defaults.
    try {
      base.trace = std::make_shared<harness::Trace>(
          harness::Trace::load(base.trace_file));
    } catch (const std::exception& e) {
      usage(e.what());
    }
    base.total_ops = base.trace->ops.size();
    base.initial_size = base.trace->initial_size();
  } else if (!base.trace_file.empty()) {
    usage("--trace-file only applies to --workload trace");
  }

  // Resolve every requested structure up front so a typo fails before any
  // benchmark runs.
  const auto& registry = harness::BackendRegistry::instance();
  std::vector<const harness::Backend*> backends;
  for (const auto& name : structures) {
    try {
      backends.push_back(&registry.require(base.flavor, name));
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
  }

  std::vector<int> proc_list;
  if (sweep) {
    for (int p = 1; p <= max_procs; p *= 2) proc_list.push_back(p);
  } else {
    proc_list.push_back(procs);
  }

  const char* unit = base.flavor == harness::Flavor::Native ? "ns" : "cycles";
  harness::Table table;
  table.title = "pqsim (" + std::string(to_string(base.flavor)) + ", " +
                unit + ", " + harness::to_string(base.workload) + "): " +
                std::to_string(base.total_ops) + " ops, init " +
                std::to_string(base.initial_size) + ", " +
                harness::fmt(base.insert_ratio * 100) + "% inserts, work " +
                std::to_string(base.work_cycles);
  table.columns = {"structure", "procs",      "insert",  "delete_min",
                   "p99 ins",   "p99 del",    "empties", "final size"};

  std::vector<double> xs(proc_list.begin(), proc_list.end());
  std::vector<harness::ChartSeries> del_series, ins_series;
  harness::StatsReport stats_report;

  for (const harness::Backend* backend : backends) {
    harness::ChartSeries ds{backend->label, {}};
    harness::ChartSeries is{backend->label, {}};
    for (int p : proc_list) {
      harness::BenchmarkConfig cfg = base;
      cfg.structure = backend->name;
      cfg.processors = p;
      std::fprintf(stderr, "[pqsim] %s %s procs=%d ...\n",
                   to_string(base.flavor), backend->label.c_str(), p);
      const auto r = harness::run_benchmark(cfg);
      table.add_row({backend->label, std::to_string(p),
                     harness::fmt(r.mean_insert()), harness::fmt(r.mean_delete()),
                     std::to_string(r.insert_latency.quantile(0.99)),
                     std::to_string(r.delete_latency.quantile(0.99)),
                     std::to_string(r.empties), std::to_string(r.final_size)});
      ds.ys.push_back(r.mean_delete());
      is.ys.push_back(r.mean_insert());
      if (print_stats || !stats_json_path.empty()) stats_report.add(cfg, r);
    }
    del_series.push_back(std::move(ds));
    ins_series.push_back(std::move(is));
  }

  print_table(std::cout, table);
  if (sweep && proc_list.size() > 1) {
    harness::ChartOptions copt;
    copt.title = std::string("\ndelete-min latency (") + unit + ")";
    std::cout << render_chart(xs, del_series, copt);
    copt.title = std::string("\ninsert latency (") + unit + ")";
    std::cout << render_chart(xs, ins_series, copt);
  }
  if (print_stats) {
    for (const auto& run : stats_report.runs) {
      std::cout << "\n";
      print_telemetry(std::cout, run);
    }
  }
  if (!csv_path.empty()) {
    write_csv(csv_path, table);
    std::cout << "[csv written to " << csv_path << "]\n";
  }
  if (!stats_json_path.empty()) {
    write_stats_json(stats_json_path, stats_report);
    std::cout << "[stats json written to " << stats_json_path << "]\n";
  }
  return 0;
}
