// pqsim — command-line driver for the simulated-machine benchmark.
//
// Runs the paper's synthetic workload for any structure / machine
// configuration without recompiling, prints the latency table, an ASCII
// chart for sweeps, and optionally a CSV.
//
//   pqsim --structure skip --procs 64 --ops 20000 --initial 1000
//   pqsim --structure heap,skip,multiqueue --sweep --max-procs 128 --csv out.csv
//
// Flags:
//   --structure LIST   comma list of: skip, relaxed, tts, heap, funnel,
//                      multiqueue (relaxed c-way sharded queue)
//   --procs N          processor count (ignored with --sweep)
//   --sweep            sweep processors 1,2,4,..,--max-procs
//   --max-procs N      sweep limit (default 256)
//   --ops N            total operations (default 20000)
//   --initial N        initial elements (default 1000)
//   --insert-ratio F   P(insert) (default 0.5)
//   --work N           local work cycles between ops (default 100)
//   --seed N           RNG seed (default 1)
//   --max-level N      skiplist max level (default 16)
//   --no-gc            disable the garbage-collection processor
//   --pad-nodes        line-align skiplist nodes
//   --no-occupancy     disable directory hot-spot queueing
//   --csv PATH         also write results as CSV
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/ascii_chart.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "pqsim: %s\n", msg);
  std::fprintf(stderr,
               "usage: pqsim [--structure skip,relaxed,tts,heap,funnel,multiqueue]\n"
               "             [--procs N | --sweep [--max-procs N]]\n"
               "             [--ops N] [--initial N] [--insert-ratio F]\n"
               "             [--work N] [--seed N] [--max-level N]\n"
               "             [--no-gc] [--pad-nodes] [--no-occupancy]\n"
               "             [--csv PATH]\n");
  std::exit(2);
}

harness::QueueKind parse_kind(const std::string& s) {
  if (s == "skip") return harness::QueueKind::SkipQueue;
  if (s == "relaxed") return harness::QueueKind::RelaxedSkipQueue;
  if (s == "tts") return harness::QueueKind::TTSSkipQueue;
  if (s == "heap") return harness::QueueKind::HuntHeap;
  if (s == "funnel") return harness::QueueKind::FunnelList;
  if (s == "multiqueue" || s == "mq") return harness::QueueKind::MultiQueue;
  usage(("unknown structure '" + s + "'").c_str());
}

std::vector<harness::QueueKind> parse_kinds(const std::string& list) {
  std::vector<harness::QueueKind> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto comma = list.find(',', start);
    const auto token = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) out.push_back(parse_kind(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) usage("empty --structure list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<harness::QueueKind> kinds = {harness::QueueKind::SkipQueue};
  harness::BenchmarkConfig base;
  base.total_ops = 20000;
  base.initial_size = 1000;
  bool sweep = false;
  int procs = 32;
  int max_procs = 256;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--structure") kinds = parse_kinds(next());
    else if (arg == "--procs") procs = std::atoi(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--max-procs") max_procs = std::atoi(next());
    else if (arg == "--ops") base.total_ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--initial") base.initial_size = std::strtoull(next(), nullptr, 10);
    else if (arg == "--insert-ratio") base.insert_ratio = std::atof(next());
    else if (arg == "--work") base.work_cycles = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") base.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-level") base.max_level = std::atoi(next());
    else if (arg == "--no-gc") base.use_gc = false;
    else if (arg == "--pad-nodes") base.pad_nodes = true;
    else if (arg == "--no-occupancy") base.machine.model_dir_occupancy = false;
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown flag '" + arg + "'").c_str());
  }
  if (procs < 1 || max_procs < 1) usage("processor counts must be >= 1");
  if (base.insert_ratio < 0.0 || base.insert_ratio > 1.0)
    usage("--insert-ratio must be in [0, 1]");

  std::vector<int> proc_list;
  if (sweep) {
    for (int p = 1; p <= max_procs; p *= 2) proc_list.push_back(p);
  } else {
    proc_list.push_back(procs);
  }

  harness::Table table;
  table.title = "pqsim: " + std::to_string(base.total_ops) + " ops, init " +
                std::to_string(base.initial_size) + ", " +
                harness::fmt(base.insert_ratio * 100) + "% inserts, work " +
                std::to_string(base.work_cycles);
  table.columns = {"structure", "procs",      "insert",  "delete_min",
                   "p99 ins",   "p99 del",    "empties", "final size"};

  std::vector<double> xs(proc_list.begin(), proc_list.end());
  std::vector<harness::ChartSeries> del_series, ins_series;

  for (auto kind : kinds) {
    harness::ChartSeries ds{harness::to_string(kind), {}};
    harness::ChartSeries is{harness::to_string(kind), {}};
    for (int p : proc_list) {
      harness::BenchmarkConfig cfg = base;
      cfg.kind = kind;
      cfg.processors = p;
      std::fprintf(stderr, "[pqsim] %s procs=%d ...\n",
                   harness::to_string(kind), p);
      const auto r = harness::run_benchmark(cfg);
      table.add_row({harness::to_string(kind), std::to_string(p),
                     harness::fmt(r.mean_insert()), harness::fmt(r.mean_delete()),
                     std::to_string(r.insert_latency.quantile(0.99)),
                     std::to_string(r.delete_latency.quantile(0.99)),
                     std::to_string(r.empties), std::to_string(r.final_size)});
      ds.ys.push_back(r.mean_delete());
      is.ys.push_back(r.mean_insert());
    }
    del_series.push_back(std::move(ds));
    ins_series.push_back(std::move(is));
  }

  print_table(std::cout, table);
  if (sweep && proc_list.size() > 1) {
    harness::ChartOptions copt;
    copt.title = "\ndelete-min latency";
    std::cout << render_chart(xs, del_series, copt);
    copt.title = "\ninsert latency";
    std::cout << render_chart(xs, ins_series, copt);
  }
  if (!csv_path.empty()) {
    write_csv(csv_path, table);
    std::cout << "[csv written to " << csv_path << "]\n";
  }
  return 0;
}
