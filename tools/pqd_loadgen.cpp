// pqd_loadgen: trace-replay load generator for the pqd service tier.
//
// Drives per-client Sessions (src/pqd/transport.hpp) with the ops of a
// recorded trace (docs/TRACES.md): the warm set seeds the service, the op
// schedule is block-partitioned across client threads exactly like the
// harness trace_loop, and every enqueue/dequeue is timed client-side —
// so the reported pqd.latency.* quantiles include ring, batching and
// shard-acquisition effects, not just the backend's critical section.
// Delete-min quality is sampled through the shared RankErrorProbe and
// reported as pqd.rank_error.* (the service is relaxed by construction:
// claim windows + min-of-shards hints + batched inserts all defer or
// approximate, on top of whatever the shard backend relaxes).
//
// Also the trace recorder: --emit-trace writes a hold-model trace
// (Trace::record_hold_model) instead of running the service.
//
// --stats-json emits slpq-telemetry/1 with service="pqd" runs
// (validated by tools/check_stats_json.py); --pqd-backend accepts a
// comma-separated list so one invocation can replay the same trace
// through several shard backends into a single report.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hpp"
#include "harness/trace.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"
#include "pqd/service.hpp"
#include "pqd/transport.hpp"
#include "slpq/detail/histogram.hpp"

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string trace_file;
  std::string emit_trace;
  std::uint64_t ops = 20000;       // --emit-trace only
  std::uint64_t initial = 1000;    // --emit-trace only
  double insert_ratio = 0.5;       // --emit-trace only
  std::vector<std::string> backends{"skip"};
  int shards = 4;
  int batch = 8;
  int ring = 64;
  std::string transport = "inproc";
  int clients = 8;
  std::uint64_t seed = 1;
  slpq::ReclaimPolicy reclaim = slpq::ReclaimPolicy::kTimestamp;
  int max_level = 16;
  bool stats = false;
  std::string stats_json;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "pqd_loadgen: " << msg << "\n";
  std::cerr <<
      "usage: pqd_loadgen --trace-file PATH [options]\n"
      "       pqd_loadgen --emit-trace PATH [--ops N --initial N"
      " --insert-ratio R --seed S]\n"
      "  --trace-file PATH     slpq-trace/1 file to replay\n"
      "  --emit-trace PATH     record a hold-model trace and exit\n"
      "  --ops N               ops to record (emit mode) [20000]\n"
      "  --initial N           warm-set size (emit mode) [1000]\n"
      "  --insert-ratio R      insert probability (emit mode) [0.5]\n"
      "  --pqd-backend LIST    comma-separated native backends [skip]\n"
      "  --pqd-shards N        service shards [4]\n"
      "  --pqd-batch N         ops per shard acquisition [8]\n"
      "  --pqd-ring N          session ring capacity [64]\n"
      "  --pqd-transport T     inproc | uds [inproc]\n"
      "  --clients N           client threads (sessions) [8]\n"
      "  --reclaim P           shard reclaim policy (ts|hp|epoch|leaky)\n"
      "  --max-level N         shard skiplist max level [16]\n"
      "  --seed S              [1]\n"
      "  --stats               print the telemetry table\n"
      "  --stats-json PATH     write slpq-telemetry/1 JSON\n";
  std::exit(2);
}

struct ClientTally {
  slpq::detail::LogHistogram insert_latency;
  slpq::detail::LogHistogram delete_latency;
  slpq::detail::LogHistogram rank_error;
  std::uint64_t empties = 0;
  std::uint64_t deletes_ok = 0;
};

struct ReplayOutcome {
  harness::StatsRun run;
  bool conserved = true;
};

ReplayOutcome replay(const Options& opt, const std::string& backend,
                     const harness::Trace& trace) {
  pqd::ServiceConfig scfg;
  scfg.backend = backend;
  scfg.shards = opt.shards;
  scfg.batch = opt.batch;
  scfg.ring_capacity = opt.ring;
  scfg.queue.reclaim = opt.reclaim;
  scfg.queue.max_level = opt.max_level;
  scfg.queue.seed = opt.seed;
  scfg.queue.initial_size = trace.initial_size();
  scfg.queue.total_ops = trace.ops.size() + trace.initial_size();
  pqd::Service service(scfg);

  std::unique_ptr<pqd::Transport> transport;
  if (opt.transport == "inproc")
    transport = std::make_unique<pqd::InProcTransport>(
        service, static_cast<std::size_t>(opt.clients) + 1);
  else if (opt.transport == "uds")
    transport = std::make_unique<pqd::UdsTransport>(
        service, static_cast<std::size_t>(opt.clients) + 1);
  else
    usage("unknown --pqd-transport (expected inproc|uds)");

  harness::spec::RankErrorProbe probe;

  const std::uint64_t t_prefill_start = now_ns();
  for (const harness::TraceOp& item : trace.warm) {
    const pqd::Key key = harness::spec::scenario_key(item.tick, item.tie);
    service.seed(key, static_cast<pqd::Value>(key));
    probe.on_insert(key);
  }
  service.prime();
  const std::uint64_t t_prefill_end = now_ns();

  const int clients = opt.clients;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const std::size_t n_ops = trace.ops.size();

  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Same contiguous block split as the harness trace_loop: an
      // interleaved split would hand alternating-trace clients all
      // deletes or all inserts.
      const std::size_t begin =
          n_ops * static_cast<std::size_t>(c) /
          static_cast<std::size_t>(clients);
      const std::size_t end =
          n_ops * (static_cast<std::size_t>(c) + 1) /
          static_cast<std::size_t>(clients);
      ClientTally& tally = tallies[static_cast<std::size_t>(c)];
      pqd::Session session(*transport);
      std::uint64_t deletes = 0;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = begin; i < end; ++i) {
        const harness::TraceOp& op = trace.ops[i];
        if (op.kind == harness::TraceOp::Kind::kInsert) {
          const pqd::Key key =
              harness::spec::scenario_key(op.tick, op.tie);
          probe.on_insert(key);
          const std::uint64_t t0 = now_ns();
          session.enqueue(key, static_cast<pqd::Value>(key));
          tally.insert_latency.record(now_ns() - t0);
        } else {
          const std::uint64_t t0 = now_ns();
          const std::optional<pqd::Item> got = session.dequeue();
          tally.delete_latency.record(now_ns() - t0);
          if (!got) {
            ++tally.empties;
          } else {
            ++tally.deletes_ok;
            if (++deletes %
                    harness::spec::RankErrorProbe::kSamplePeriod ==
                0)
              tally.rank_error.record(probe.on_delete(got->first));
            else
              probe.on_delete_unsampled(got->first);
          }
        }
      }
      session.flush();
    });
  }

  while (ready.load(std::memory_order_acquire) < clients)
    std::this_thread::yield();
  const std::uint64_t t_start = now_ns();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const std::uint64_t t_end = now_ns();

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.insert_latency.merge(t.insert_latency);
    total.delete_latency.merge(t.delete_latency);
    total.rank_error.merge(t.rank_error);
    total.empties += t.empties;
    total.deletes_ok += t.deletes_ok;
  }

  // Conservation: warm + applied inserts - successful deletes must equal
  // what the service still holds (sessions were flushed before exit).
  const std::size_t expected =
      static_cast<std::size_t>(trace.initial_size() + trace.inserts() -
                               total.deletes_ok);
  const std::size_t held = service.size();
  const std::uint64_t t_quiesce_end = now_ns();

  slpq::detail::LogHistogram latency;
  latency.merge(total.insert_latency);
  latency.merge(total.delete_latency);

  harness::StatsRun run;
  run.machine = "native";
  run.structure = backend;
  run.workload = "trace";
  run.reclaim = slpq::to_string(opt.reclaim);
  run.service = "pqd";
  run.shards = opt.shards;
  run.processors = clients;
  run.total_ops = n_ops;
  run.unit = "ns";
  run.makespan = t_end - t_start;
  run.inserts = total.insert_latency.count();
  run.deletes = total.deletes_ok;
  run.empties = total.empties;
  run.mean_insert = total.insert_latency.mean();
  run.mean_delete = total.delete_latency.mean();
  const std::uint64_t op_count = latency.count();
  run.mean_op = op_count ? static_cast<double>(latency.sum()) /
                               static_cast<double>(op_count)
                         : 0.0;

  run.counters = service.telemetry();
  run.counters.set("native.prefill_ns", t_prefill_end - t_prefill_start);
  run.counters.set("native.run_ns", t_end - t_start);
  run.counters.set("native.quiesce_ns", t_quiesce_end - t_end);
  run.counters.set("pqd.latency.samples", latency.count());
  run.counters.set("pqd.latency.p50", latency.quantile(0.50));
  run.counters.set("pqd.latency.p90", latency.quantile(0.90));
  run.counters.set("pqd.latency.p99", latency.quantile(0.99));
  run.counters.set("pqd.latency.max", latency.max());
  run.counters.set("pqd.rank_error.samples", total.rank_error.count());
  run.counters.set("pqd.rank_error.mean",
                   static_cast<std::uint64_t>(total.rank_error.mean()));
  run.counters.set("pqd.rank_error.p99", total.rank_error.quantile(0.99));
  run.counters.set("pqd.rank_error.max", total.rank_error.max());

  ReplayOutcome out;
  out.run = std::move(run);
  out.conserved = held == expected;
  if (!out.conserved)
    std::cerr << "pqd_loadgen: CONSERVATION VIOLATION backend=" << backend
              << " expected " << expected << " items, service holds "
              << held << "\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--trace-file") opt.trace_file = next(i);
      else if (arg == "--emit-trace") opt.emit_trace = next(i);
      else if (arg == "--ops") opt.ops = std::strtoull(next(i), nullptr, 10);
      else if (arg == "--initial") opt.initial = std::strtoull(next(i), nullptr, 10);
      else if (arg == "--insert-ratio") opt.insert_ratio = std::strtod(next(i), nullptr);
      else if (arg == "--pqd-backend") {
        opt.backends.clear();
        std::string list = next(i);
        std::size_t pos = 0;
        while (pos <= list.size()) {
          const std::size_t comma = list.find(',', pos);
          const std::string name = list.substr(
              pos, comma == std::string::npos ? std::string::npos
                                              : comma - pos);
          if (!name.empty()) opt.backends.push_back(name);
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        if (opt.backends.empty()) usage("empty --pqd-backend list");
      }
      else if (arg == "--pqd-shards") opt.shards = std::atoi(next(i));
      else if (arg == "--pqd-batch") opt.batch = std::atoi(next(i));
      else if (arg == "--pqd-ring") opt.ring = std::atoi(next(i));
      else if (arg == "--pqd-transport") opt.transport = next(i);
      else if (arg == "--clients") opt.clients = std::atoi(next(i));
      else if (arg == "--seed") opt.seed = std::strtoull(next(i), nullptr, 10);
      else if (arg == "--reclaim") {
        if (!slpq::parse_reclaim_policy(next(i), opt.reclaim))
          usage("bad --reclaim (expected ts|hp|epoch|leaky)");
      }
      else if (arg == "--max-level") opt.max_level = std::atoi(next(i));
      else if (arg == "--stats") opt.stats = true;
      else if (arg == "--stats-json") opt.stats_json = next(i);
      else if (arg == "--help" || arg == "-h") usage();
      else usage(("unknown option " + arg).c_str());
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }
  if (opt.clients < 1) usage("--clients must be >= 1");

  if (!opt.emit_trace.empty()) {
    const harness::Trace trace = harness::Trace::record_hold_model(
        opt.ops, opt.initial, opt.insert_ratio, opt.seed);
    try {
      trace.save(opt.emit_trace);
    } catch (const std::exception& e) {
      std::cerr << "pqd_loadgen: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recorded " << trace.ops.size() << " ops (warm set "
              << trace.initial_size() << ", " << trace.inserts()
              << " inserts / " << trace.deletes() << " deletes) to "
              << opt.emit_trace << "\n";
    return 0;
  }

  if (opt.trace_file.empty()) usage("--trace-file is required");
  harness::Trace trace;
  try {
    trace = harness::Trace::load(opt.trace_file);
  } catch (const std::exception& e) {
    std::cerr << "pqd_loadgen: " << e.what() << "\n";
    return 1;
  }

  harness::StatsReport report;
  bool ok = true;
  for (const std::string& backend : opt.backends) {
    ReplayOutcome outcome;
    try {
      outcome = replay(opt, backend, trace);
    } catch (const std::exception& e) {
      std::cerr << "pqd_loadgen: backend " << backend << ": " << e.what()
                << "\n";
      return 1;
    }
    ok = ok && outcome.conserved;
    const harness::StatsRun& r = outcome.run;
    std::cout << "pqd " << backend << " x" << opt.shards << " shards, batch "
              << opt.batch << ", " << opt.clients << " clients ("
              << opt.transport << "): " << r.total_ops << " ops in "
              << r.makespan / 1000000.0 << " ms, p99 "
              << r.counters.get("pqd.latency.p99") << " ns, acquisitions "
              << r.counters.get("pqd.shard_acquisitions") << "\n";
    if (opt.stats) harness::print_telemetry(std::cout, r);
    report.runs.push_back(outcome.run);
  }
  if (!opt.stats_json.empty()) {
    try {
      harness::write_stats_json(opt.stats_json, report);
    } catch (const std::exception& e) {
      std::cerr << "pqd_loadgen: " << e.what() << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
