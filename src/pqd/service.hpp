// pqd::Service — the sharded priority-queue service core.
//
// N independent shards, each wrapping one registry-backed QueueHandle
// (any native structure: exact skiplists, relaxed MultiQueues, ...)
// behind a single-byte spinlock. Amortization comes from two window
// mechanisms so that one shard-lock acquisition serves up to `batch`
// operations on BOTH sides of the op mix:
//
//   * insert side — sessions batch enqueues (transport.hpp) and the
//     service applies each batch under one lock hold;
//   * delete side — each shard keeps a claim window of up to `batch`
//     pre-popped items in sorted order. Clients claim window slots with
//     a single CAS (no lock); the lock is taken only to refill an empty
//     window from the backend.
//
// The front-end delete_min is min-of-shards: scan each shard's published
// window head (one relaxed load per shard), then CAS-claim from the best
// shard. The published heads are best-effort hints — a race can hand out
// a key that is not the instantaneous global minimum, and freshly
// batched inserts are invisible until applied — so the service's
// ordering contract is relaxed with error bounded by the window/batch
// geometry on top of whatever the backend itself guarantees
// (docs/SERVICE.md gives the composed bound).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "pqd/request.hpp"
#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/histogram.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/telemetry.hpp"

namespace pqd {

struct ServiceConfig {
  std::string backend = "skip";  ///< native BackendRegistry name (--pqd-backend)
  int shards = 4;                ///< independent shard count (--pqd-shards)
  int batch = 8;                 ///< ops per shard acquisition: session insert
                                 ///< batch size AND claim-window size (--pqd-batch)
  int ring_capacity = 64;        ///< per-session SPSC ring slots (--pqd-ring)
  /// Backend knobs for the per-shard queues (max_level, reclaim, mq_*,
  /// total_ops/initial_size for capacity sizing of bounded backends).
  /// processors is overridden to 1: all shard-queue access happens under
  /// the shard lock, so each backend sees a single logical thread.
  harness::BenchmarkConfig queue;
};

class Service {
 public:
  explicit Service(const ServiceConfig& cfg);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const ServiceConfig& config() const noexcept { return cfg_; }
  int shards() const noexcept { return static_cast<int>(shards_.size()); }

  /// Host-side pre-population (round-robin over shards); call before any
  /// client traffic, then prime() once to fill the claim windows.
  void seed(Key key, Value value);
  void prime();

  /// Applies one session's insert batch to a single shard, chosen by
  /// `tag` (sessions advance the tag per batch to rotate shards). One
  /// lock acquisition for the whole batch. Keys must be < kMaxUserKey
  /// (throws std::invalid_argument otherwise).
  void insert_batch(const Item* items, std::size_t n, std::uint64_t tag);

  /// Min-of-shards pop: peek every shard's published window head, claim
  /// from the best one. nullopt only after an exhaustive sweep found
  /// every window and every backend empty.
  std::optional<Item> delete_min();

  /// Unclaimed items across windows and shard backlogs. Quiescent-state
  /// accurate; a snapshot under concurrent traffic.
  std::size_t size() const;

  /// pqd.* service counters plus the aggregated shard-backend telemetry
  /// (additive keys summed; .mean/.p50/.p90/.p99/.max keys max-merged —
  /// see docs/TELEMETRY.md).
  slpq::TelemetrySnapshot telemetry() const;

 private:
  struct Shard;

  Shard& shard_for(std::uint64_t tag) noexcept;
  /// Claims one item from this shard's window, refilling from the
  /// backend as needed. nullopt iff window and backend are both empty.
  std::optional<Item> take_from(Shard& s);
  /// Refills the window under the shard lock. Returns the number of
  /// items published (0 iff the backend is drained).
  std::size_t refill_locked(Shard& s);

  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> seed_rr_{0};
};

}  // namespace pqd
