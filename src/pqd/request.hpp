// pqd request/response types and their wire encoding.
//
// Every transport moves the same two PODs (docs/SERVICE.md): a Request
// (one client op) and a Response (the result of a synchronous op —
// inserts are fire-and-forget, so only DeleteMin and Flush produce
// responses, delivered FIFO per session). The wire codec is the byte
// format the socket transport ships: fixed-size little-endian records,
// versioned by kWireVersion, shared by both endpoints and unit-testable
// without a socket.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>

#include "harness/backend.hpp"

namespace pqd {

using Key = harness::Key;
using Value = harness::Value;
using Item = std::pair<Key, Value>;

/// Shard claim-window sentinels (service.cpp). User keys must stay below
/// both; the service rejects inserts at or above kMaxUserKey.
inline constexpr Key kEmptyKey = std::numeric_limits<Key>::max();
inline constexpr Key kClaimedKey = kEmptyKey - 1;
inline constexpr Key kMaxUserKey = kClaimedKey - 1;

enum class OpKind : std::uint8_t {
  kInsert = 0,     ///< enqueue (key, value); batched, no response
  kDeleteMin = 1,  ///< min-of-shards pop; response kOk item or kEmpty
  kFlush = 2,      ///< force pending inserts into shards; response is an ack
};

enum class Status : std::uint8_t {
  kOk = 0,     ///< DeleteMin: item follows; Flush: ack
  kEmpty = 1,  ///< DeleteMin found every shard empty
};

struct Request {
  OpKind op = OpKind::kInsert;
  Key key = 0;
  Value value = 0;
};

struct Response {
  Status status = Status::kEmpty;
  Key key = 0;
  Value value = 0;
};

// ---- wire codec (pqd-wire/1) ----------------------------------------------
//
// One record per Request/Response: opcode/status byte, then key and value
// as little-endian 64-bit words. Fixed size keeps framing trivial (no
// length prefix); the version byte rides in the session hello.

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireRecordSize = 1 + 8 + 8;

namespace wire {

inline void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace wire

inline void encode_request(const Request& r,
                           std::uint8_t out[kWireRecordSize]) noexcept {
  out[0] = static_cast<std::uint8_t>(r.op);
  wire::put_u64(out + 1, static_cast<std::uint64_t>(r.key));
  wire::put_u64(out + 9, r.value);
}

/// Returns false on an unknown opcode (protocol error).
inline bool decode_request(const std::uint8_t in[kWireRecordSize],
                           Request& out) noexcept {
  if (in[0] > static_cast<std::uint8_t>(OpKind::kFlush)) return false;
  out.op = static_cast<OpKind>(in[0]);
  out.key = static_cast<Key>(wire::get_u64(in + 1));
  out.value = wire::get_u64(in + 9);
  return true;
}

inline void encode_response(const Response& r,
                            std::uint8_t out[kWireRecordSize]) noexcept {
  out[0] = static_cast<std::uint8_t>(r.status);
  wire::put_u64(out + 1, static_cast<std::uint64_t>(r.key));
  wire::put_u64(out + 9, r.value);
}

inline bool decode_response(const std::uint8_t in[kWireRecordSize],
                            Response& out) noexcept {
  if (in[0] > static_cast<std::uint8_t>(Status::kEmpty)) return false;
  out.status = static_cast<Status>(in[0]);
  out.key = static_cast<Key>(wire::get_u64(in + 1));
  out.value = wire::get_u64(in + 9);
  return true;
}

}  // namespace pqd
