// pqd transport implementations: in-process rings and the UDS stub.
#include "pqd/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace pqd {

namespace {

constexpr std::uint64_t kTagStride = 0x9E3779B97F4A7C15ULL;  // golden ratio

void write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, buf, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pqd uds write: ") +
                               std::strerror(errno));
    }
    buf += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes. Returns false on clean EOF at a record
/// boundary; throws on errors or a torn record.
bool read_full(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pqd uds read: ") +
                               std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;
      throw std::runtime_error("pqd uds read: torn record at EOF");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

// ---- InProcTransport -------------------------------------------------------

struct InProcTransport::SessionState {
  slpq::detail::SpscRing<Request> requests;
  slpq::detail::SpscRing<Response> responses;
  std::vector<Item> pending;  ///< insert batch staged during drain
  std::uint64_t tag;          ///< shard-rotation tag, advanced per batch

  SessionState(std::size_t ring_capacity, std::uint64_t tag0)
      : requests(ring_capacity), responses(ring_capacity), tag(tag0) {}
};

InProcTransport::InProcTransport(Service& service, std::size_t max_sessions)
    : service_(service), sessions_(max_sessions) {}

InProcTransport::~InProcTransport() = default;

InProcTransport::SessionState& InProcTransport::state(int sid) {
  if (sid < 0 || static_cast<std::size_t>(sid) >= sessions_.size() ||
      !sessions_[static_cast<std::size_t>(sid)])
    throw std::logic_error("pqd: bad session id");
  return *sessions_[static_cast<std::size_t>(sid)];
}

int InProcTransport::open_session() {
  std::lock_guard<slpq::detail::TinySpinLock> g(open_lock_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i]) {
      // Seed each session's rotation tag a golden-ratio stride apart so
      // concurrent sessions start their shard round-robins spread out.
      sessions_[i] = std::make_unique<SessionState>(
          static_cast<std::size_t>(service_.config().ring_capacity),
          i * kTagStride);
      return static_cast<int>(i);
    }
  }
  throw std::runtime_error("pqd: session table full");
}

void InProcTransport::drain(SessionState& s) {
  const std::size_t batch = static_cast<std::size_t>(service_.config().batch);
  Request req;
  while (s.requests.try_pop(req)) {
    switch (req.op) {
      case OpKind::kInsert:
        s.pending.emplace_back(req.key, req.value);
        if (s.pending.size() >= batch) {
          service_.insert_batch(s.pending.data(), s.pending.size(), s.tag++);
          s.pending.clear();
        }
        break;
      case OpKind::kDeleteMin: {
        if (!s.pending.empty()) {
          service_.insert_batch(s.pending.data(), s.pending.size(), s.tag++);
          s.pending.clear();
        }
        Response resp;
        if (const std::optional<Item> item = service_.delete_min()) {
          resp = Response{Status::kOk, item->first, item->second};
        } else {
          resp = Response{Status::kEmpty, 0, 0};
        }
        if (!s.responses.try_push(resp))
          throw std::logic_error("pqd: response ring overflow");
        break;
      }
      case OpKind::kFlush: {
        if (!s.pending.empty()) {
          service_.insert_batch(s.pending.data(), s.pending.size(), s.tag++);
          s.pending.clear();
        }
        if (!s.responses.try_push(Response{Status::kOk, 0, 0}))
          throw std::logic_error("pqd: response ring overflow");
        break;
      }
    }
  }
  // Whatever reached the ring is applied by the end of a drain: drains
  // fire exactly at batch boundaries and before synchronous ops, so a
  // trailing partial batch only exists when a sync op forced it anyway.
  if (!s.pending.empty()) {
    service_.insert_batch(s.pending.data(), s.pending.size(), s.tag++);
    s.pending.clear();
  }
}

void InProcTransport::submit(int sid, const Request& req) {
  SessionState& s = state(sid);
  if (!s.requests.try_push(req)) {
    drain(s);  // ring full: catch up, then retry
    if (!s.requests.try_push(req))
      throw std::logic_error("pqd: request ring overflow after drain");
  }
  // Batch boundary or synchronous op: execute now, on this thread (the
  // server-local fast path — no handoff, the ring delimits the batch).
  if (req.op != OpKind::kInsert ||
      s.requests.size() >=
          static_cast<std::size_t>(service_.config().batch))
    drain(s);
}

Response InProcTransport::await(int sid) {
  SessionState& s = state(sid);
  Response resp;
  if (!s.responses.try_pop(resp))
    throw std::logic_error("pqd: await with no pending response");
  return resp;
}

void InProcTransport::close_session(int sid) {
  SessionState& s = state(sid);
  drain(s);
  std::lock_guard<slpq::detail::TinySpinLock> g(open_lock_);
  sessions_[static_cast<std::size_t>(sid)].reset();
}

// ---- UdsTransport ----------------------------------------------------------

struct UdsTransport::SessionState {
  int client_fd = -1;
  std::thread server;
  std::vector<std::uint8_t> wbuf;  ///< encoded requests awaiting one write
  std::size_t buffered = 0;        ///< requests currently in wbuf
};

UdsTransport::UdsTransport(Service& service, std::size_t max_sessions)
    : service_(service), sessions_(max_sessions) {}

UdsTransport::~UdsTransport() {
  for (std::size_t i = 0; i < sessions_.size(); ++i)
    if (sessions_[i]) close_session(static_cast<int>(i));
}

UdsTransport::SessionState& UdsTransport::state(int sid) {
  if (sid < 0 || static_cast<std::size_t>(sid) >= sessions_.size() ||
      !sessions_[static_cast<std::size_t>(sid)])
    throw std::logic_error("pqd: bad session id");
  return *sessions_[static_cast<std::size_t>(sid)];
}

int UdsTransport::open_session() {
  std::lock_guard<slpq::detail::TinySpinLock> g(open_lock_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i]) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw std::runtime_error(std::string("pqd socketpair: ") +
                                 std::strerror(errno));
      auto s = std::make_unique<SessionState>();
      s->client_fd = fds[0];
      const int server_fd = fds[1];
      s->server = std::thread(
          [this, server_fd, i] { serve(server_fd, i * kTagStride); });
      sessions_[i] = std::move(s);
      return static_cast<int>(i);
    }
  }
  throw std::runtime_error("pqd: session table full");
}

void UdsTransport::serve(int fd, std::uint64_t tag0) {
  std::uint64_t tag = tag0;
  const std::size_t batch = static_cast<std::size_t>(service_.config().batch);
  std::vector<Item> pending;
  std::uint8_t rec[kWireRecordSize];
  const auto apply_pending = [&] {
    if (pending.empty()) return;
    service_.insert_batch(pending.data(), pending.size(), tag++);
    pending.clear();
  };
  while (read_full(fd, rec, kWireRecordSize)) {
    Request req;
    if (!decode_request(rec, req)) break;  // protocol error: drop session
    switch (req.op) {
      case OpKind::kInsert:
        pending.emplace_back(req.key, req.value);
        if (pending.size() >= batch) apply_pending();
        break;
      case OpKind::kDeleteMin: {
        apply_pending();
        Response resp{Status::kEmpty, 0, 0};
        if (const std::optional<Item> item = service_.delete_min())
          resp = Response{Status::kOk, item->first, item->second};
        std::uint8_t out[kWireRecordSize];
        encode_response(resp, out);
        write_all(fd, out, kWireRecordSize);
        break;
      }
      case OpKind::kFlush: {
        apply_pending();
        std::uint8_t out[kWireRecordSize];
        encode_response(Response{Status::kOk, 0, 0}, out);
        write_all(fd, out, kWireRecordSize);
        break;
      }
    }
  }
  apply_pending();  // client hung up: land the trailing partial batch
  ::close(fd);
}

void UdsTransport::submit(int sid, const Request& req) {
  SessionState& s = state(sid);
  const std::size_t off = s.wbuf.size();
  s.wbuf.resize(off + kWireRecordSize);
  encode_request(req, s.wbuf.data() + off);
  ++s.buffered;
  // One write syscall per batch; sync ops flush immediately so the
  // server sees them (and everything queued before them) right away.
  if (req.op != OpKind::kInsert ||
      s.buffered >= static_cast<std::size_t>(service_.config().batch)) {
    write_all(s.client_fd, s.wbuf.data(), s.wbuf.size());
    s.wbuf.clear();
    s.buffered = 0;
  }
}

Response UdsTransport::await(int sid) {
  SessionState& s = state(sid);
  std::uint8_t rec[kWireRecordSize];
  if (!read_full(s.client_fd, rec, kWireRecordSize))
    throw std::runtime_error("pqd: server closed session");
  Response resp;
  if (!decode_response(rec, resp))
    throw std::runtime_error("pqd: bad response record");
  return resp;
}

void UdsTransport::close_session(int sid) {
  SessionState& s = state(sid);
  if (!s.wbuf.empty()) {
    write_all(s.client_fd, s.wbuf.data(), s.wbuf.size());
    s.wbuf.clear();
  }
  // Half-close: the server drains remaining records, sees EOF, applies
  // its trailing batch and exits.
  ::shutdown(s.client_fd, SHUT_WR);
  if (s.server.joinable()) s.server.join();
  ::close(s.client_fd);
  std::lock_guard<slpq::detail::TinySpinLock> g(open_lock_);
  sessions_[static_cast<std::size_t>(sid)].reset();
}

}  // namespace pqd
