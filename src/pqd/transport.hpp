// pqd transports and the client Session.
//
// A Transport moves Requests from client sessions to the Service and
// Responses back. Two implementations share the interface:
//
//   * InProcTransport — the in-process fast path. Each session owns an
//     SPSC request ring and an SPSC response ring; the client thread
//     produces requests and, when a batch's worth has accumulated (or a
//     synchronous op arrives), drains its own ring and executes against
//     the Service directly. No server thread, no copy across address
//     spaces — the rings exist to delimit batches and to keep the client
//     API identical to the socket path.
//
//   * UdsTransport — the socket stub. Each session is an AF_UNIX
//     socketpair with a dedicated server thread on the far end speaking
//     the pqd-wire/1 record format (request.hpp). The client buffers
//     encoded inserts and writes them in one syscall per batch; the
//     server accumulates inserts and applies each batch under one shard
//     acquisition, answering DeleteMin/Flush synchronously.
//
// Per-session ordering: a session's inserts are applied before any later
// DeleteMin/Flush from that session; there is no cross-session order.
// A Session object wraps (transport, session id) behind enqueue/dequeue/
// flush; sessions are single-threaded by contract (SPSC on both rings).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "pqd/request.hpp"
#include "pqd/service.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/detail/spsc_ring.hpp"

namespace pqd {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Opens a session and returns its id. Thread-safe.
  virtual int open_session() = 0;

  /// Submits one request on a session. Inserts are fire-and-forget;
  /// DeleteMin/Flush produce exactly one Response each, retrieved with
  /// await() in submit order. One thread per session.
  virtual void submit(int sid, const Request& req) = 0;

  /// Blocks until the session's next Response.
  virtual Response await(int sid) = 0;

  /// Flushes pending inserts and releases the session.
  virtual void close_session(int sid) = 0;
};

/// RAII client handle: one session on one transport, single-threaded.
class Session {
 public:
  explicit Session(Transport& transport)
      : transport_(&transport), sid_(transport.open_session()) {}
  ~Session() {
    if (sid_ >= 0) transport_->close_session(sid_);
  }

  Session(Session&& other) noexcept
      : transport_(other.transport_), sid_(other.sid_) {
    other.sid_ = -1;
  }
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int id() const noexcept { return sid_; }

  /// Fire-and-forget insert; lands in a shard by the next batch boundary.
  void enqueue(Key key, Value value) {
    transport_->submit(sid_, Request{OpKind::kInsert, key, value});
  }

  /// Synchronous delete-min (applies this session's pending inserts
  /// first). nullopt == service empty.
  std::optional<Item> dequeue() {
    transport_->submit(sid_, Request{OpKind::kDeleteMin, 0, 0});
    const Response r = transport_->await(sid_);
    if (r.status == Status::kOk) return Item{r.key, r.value};
    return std::nullopt;
  }

  /// Forces pending inserts into the shards and waits for the ack.
  void flush() {
    transport_->submit(sid_, Request{OpKind::kFlush, 0, 0});
    (void)transport_->await(sid_);
  }

 private:
  Transport* transport_;
  int sid_;
};

class InProcTransport final : public Transport {
 public:
  /// `max_sessions` bounds concurrently open sessions (the slot table is
  /// preallocated so submit() never races a vector reallocation).
  explicit InProcTransport(Service& service, std::size_t max_sessions = 256);
  ~InProcTransport() override;

  int open_session() override;
  void submit(int sid, const Request& req) override;
  Response await(int sid) override;
  void close_session(int sid) override;

 private:
  struct SessionState;
  SessionState& state(int sid);
  /// Drains the session's request ring on the client thread: groups
  /// inserts into insert_batch calls, executes sync ops, pushes replies.
  void drain(SessionState& s);

  Service& service_;
  slpq::detail::TinySpinLock open_lock_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
};

class UdsTransport final : public Transport {
 public:
  explicit UdsTransport(Service& service, std::size_t max_sessions = 256);
  ~UdsTransport() override;

  int open_session() override;
  void submit(int sid, const Request& req) override;
  Response await(int sid) override;
  void close_session(int sid) override;

 private:
  struct SessionState;
  SessionState& state(int sid);
  /// Server loop: one thread per session reading pqd-wire/1 records off
  /// the socketpair until EOF.
  void serve(int fd, std::uint64_t tag0);

  Service& service_;
  slpq::detail::TinySpinLock open_lock_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
};

}  // namespace pqd
