// pqd::Service implementation: shards, claim windows, min-of-shards.
#include "pqd/service.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "slpq/detail/spinlock.hpp"

namespace pqd {

namespace {

/// Suffix set of non-additive telemetry keys (quantiles/means emitted by
/// e.g. MultiQueue's mq.shard_hops.*). Summing shard copies would invent
/// numbers; the max across shards is the honest aggregate.
bool is_stat_key(std::string_view name) {
  for (const char* suffix :
       {".mean", ".p50", ".p90", ".p99", ".max", ".min"}) {
    std::string_view s(suffix);
    if (name.size() >= s.size() &&
        name.substr(name.size() - s.size()) == s)
      return true;
  }
  return false;
}

}  // namespace

struct Service::Shard {
  struct Slot {
    std::atomic<Key> key{kEmptyKey};
    Value value{};
  };

  // ---- lock-free claim surface -------------------------------------------
  /// The claim window: up to cfg.batch pre-popped items in ascending key
  /// order. Live slots hold a user key; kClaimedKey marks a slot a client
  /// won; kEmptyKey marks past-the-fill slots. Values are written before
  /// the key's release-store, so a claimant's acquire-load of the key
  /// makes the value safe to read after a winning CAS.
  std::vector<Slot> window;
  /// Best-effort mirror of the smallest live window key (kEmptyKey when
  /// the window looks drained). The front end's min-of-shards peek reads
  /// only this word per shard.
  alignas(slpq::detail::kCacheLineSize) std::atomic<Key> published_min{
      kEmptyKey};
  /// Claims completed against the current fill. The refiller waits for
  /// consumed == filled before overwriting slots, so a claimant may read
  /// its slot's value between the winning CAS and its fetch_add here.
  std::atomic<std::uint64_t> consumed{0};
  /// Relaxed mirror of `backlog` (items still inside the backend). The
  /// front end reads it to spot a shard whose window drained while items
  /// remain behind it — such a shard must be refilled before min-of-
  /// shards comparison, or its (possibly globally smallest) items would
  /// be starved until every other window drained too.
  std::atomic<std::size_t> backlog_hint{0};
  /// Ops applied by this shard (inserts + window claims): load-balance
  /// signal for pqd.shard_imbalance.
  std::atomic<std::uint64_t> served{0};

  // ---- lock-guarded state ------------------------------------------------
  alignas(slpq::detail::kCacheLineSize) mutable slpq::detail::TinySpinLock
      lock;
  harness::BenchmarkConfig qcfg;  ///< kept alive for the factory's reference
  std::unique_ptr<harness::QueueHandle> queue;
  /// Value side-table: QueueHandle::delete_min reports only the key, so
  /// the shard keeps each inserted value keyed by its priority (a vector
  /// absorbs duplicate keys, FIFO per key) and reunites them at refill.
  std::unordered_map<Key, std::vector<Value>> values;
  std::size_t backlog = 0;      ///< items inside `queue`
  std::uint64_t filled = 0;     ///< slots published by the current fill
  std::vector<Item> scratch;    ///< refill staging buffer
  std::uint64_t acquisitions = 0;
  std::uint64_t insert_batches = 0;
  std::uint64_t refills = 0;
  std::uint64_t empty_refills = 0;
  slpq::detail::LogHistogram occupancy;  ///< ops per lock acquisition
};

Service::Service(const ServiceConfig& cfg) : cfg_(cfg) {
  if (cfg_.shards < 1) throw std::invalid_argument("pqd: shards must be >= 1");
  if (cfg_.batch < 1) throw std::invalid_argument("pqd: batch must be >= 1");
  const harness::Backend& backend = harness::BackendRegistry::instance()
                                        .require(harness::Flavor::Native,
                                                 cfg_.backend);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->qcfg = cfg_.queue;
    s->qcfg.structure = cfg_.backend;
    s->qcfg.flavor = harness::Flavor::Native;
    // All shard-queue access happens under the shard lock from whatever
    // client thread holds it, always as logical thread 0.
    s->qcfg.processors = 1;
    // Bounded backends (Hunt heap) size their capacity from these; give
    // each shard headroom for a skewed split plus its claim window.
    s->qcfg.initial_size =
        cfg_.queue.initial_size / static_cast<std::size_t>(cfg_.shards) +
        static_cast<std::size_t>(cfg_.batch) + 1;
    const harness::BackendInit init{s->qcfg, nullptr};
    s->queue = backend.make(init);
    s->window = std::vector<Shard::Slot>(static_cast<std::size_t>(cfg_.batch));
    s->scratch.resize(static_cast<std::size_t>(cfg_.batch));
    shards_.push_back(std::move(s));
  }
}

Service::~Service() = default;

Service::Shard& Service::shard_for(std::uint64_t tag) noexcept {
  return *shards_[tag % shards_.size()];
}

void Service::seed(Key key, Value value) {
  if (key >= kMaxUserKey) throw std::invalid_argument("pqd: key out of range");
  Shard& s = shard_for(seed_rr_.fetch_add(1, std::memory_order_relaxed));
  std::lock_guard<slpq::detail::TinySpinLock> g(s.lock);
  s.queue->seed(key, value);
  s.values[key].push_back(value);
  ++s.backlog;
  s.backlog_hint.store(s.backlog, std::memory_order_relaxed);
}

void Service::prime() {
  for (auto& s : shards_) {
    std::lock_guard<slpq::detail::TinySpinLock> g(s->lock);
    ++s->acquisitions;
    refill_locked(*s);
  }
}

void Service::insert_batch(const Item* items, std::size_t n,
                           std::uint64_t tag) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i)
    if (items[i].first >= kMaxUserKey)
      throw std::invalid_argument("pqd: key out of range");
  Shard& s = shard_for(tag);
  harness::OpContext ctx;
  std::lock_guard<slpq::detail::TinySpinLock> g(s.lock);
  for (std::size_t i = 0; i < n; ++i) {
    s.queue->insert(ctx, items[i].first, items[i].second);
    s.values[items[i].first].push_back(items[i].second);
  }
  s.backlog += n;
  s.backlog_hint.store(s.backlog, std::memory_order_relaxed);
  ++s.acquisitions;
  ++s.insert_batches;
  s.occupancy.record(n);
  s.served.fetch_add(n, std::memory_order_relaxed);
}

std::size_t Service::refill_locked(Shard& s) {
  // Wait out claimants still copying values from the previous fill. A
  // claimant sits between its winning CAS and its consumed increment for
  // only a few instructions, but it can be preempted there — hand the
  // quantum back rather than spinning against it with the lock held.
  int spins = 0;
  while (s.consumed.load(std::memory_order_acquire) < s.filled) {
    if (++spins > 256) {
      std::this_thread::yield();
      spins = 0;
    } else {
      slpq::detail::cpu_relax();
    }
  }

  harness::OpContext ctx;
  const std::size_t want = s.window.size();
  std::size_t n = 0;
  while (n < want) {
    const std::optional<Key> k = s.queue->delete_min(ctx);
    if (!k) break;
    auto it = s.values.find(*k);
    Value v = 0;
    if (it != s.values.end() && !it->second.empty()) {
      v = it->second.front();
      it->second.erase(it->second.begin());
      if (it->second.empty()) s.values.erase(it);
    }
    s.scratch[n++] = Item{*k, v};
    --s.backlog;
  }
  s.backlog_hint.store(s.backlog, std::memory_order_relaxed);
  // Relaxed backends pop near-minimal, not sorted; the window's claim
  // scan assumes ascending keys.
  std::sort(s.scratch.begin(), s.scratch.begin() + static_cast<long>(n),
            [](const Item& a, const Item& b) { return a.first < b.first; });

  // Publish: reset the claim count first so no new claim can land against
  // the old fill's accounting, then value before key (release) per slot.
  s.filled = n;
  s.consumed.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) {
    s.window[i].value = s.scratch[i].second;
    s.window[i].key.store(s.scratch[i].first, std::memory_order_release);
  }
  for (std::size_t i = n; i < want; ++i)
    s.window[i].key.store(kEmptyKey, std::memory_order_release);
  s.published_min.store(n ? s.scratch[0].first : kEmptyKey,
                        std::memory_order_release);
  ++s.refills;
  if (n == 0)
    ++s.empty_refills;
  else
    s.occupancy.record(n);
  return n;
}

std::optional<Item> Service::take_from(Shard& s) {
  const std::size_t wsize = s.window.size();
  for (;;) {
    // Windows are sorted at refill, so the first live slot is the shard
    // minimum (modulo races with other claimants).
    std::size_t idx = wsize;
    Key k = kEmptyKey;
    for (std::size_t i = 0; i < wsize; ++i) {
      const Key ki = s.window[i].key.load(std::memory_order_acquire);
      if (ki <= kMaxUserKey) {
        idx = i;
        k = ki;
        break;
      }
    }
    if (idx == wsize) {
      // Window exhausted: refill under the lock (another thread may have
      // beaten us to it — recheck before draining the backend).
      bool refilled_by_other = false;
      {
        std::lock_guard<slpq::detail::TinySpinLock> g(s.lock);
        for (std::size_t i = 0; i < wsize; ++i) {
          if (s.window[i].key.load(std::memory_order_acquire) <=
              kMaxUserKey) {
            refilled_by_other = true;
            break;
          }
        }
        if (!refilled_by_other) {
          ++s.acquisitions;
          if (refill_locked(s) == 0) return std::nullopt;
        }
      }
      continue;
    }
    Key expected = k;
    if (s.window[idx].key.compare_exchange_strong(
            expected, kClaimedKey, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      const Value v = s.window[idx].value;
      // Advance the published head past the slot we just took (hint
      // only: racy overwrites are tolerated by the front end).
      Key next = kEmptyKey;
      for (std::size_t j = idx + 1; j < wsize; ++j) {
        const Key kj = s.window[j].key.load(std::memory_order_relaxed);
        if (kj <= kMaxUserKey) {
          next = kj;
          break;
        }
      }
      s.published_min.store(next, std::memory_order_relaxed);
      s.consumed.fetch_add(1, std::memory_order_release);
      s.served.fetch_add(1, std::memory_order_relaxed);
      return Item{k, v};
    }
    // Lost the claim race; rescan.
  }
}

std::optional<Item> Service::delete_min() {
  for (;;) {
    // A drained window with items still behind it publishes kEmptyKey,
    // which would silently drop the shard from the min comparison — and
    // its backlog may hold the global minimum. Refill such shards before
    // peeking. (The refill would happen anyway on that shard's next
    // claim; doing it here just moves it before the comparison, so the
    // acquisition count is unchanged.)
    for (auto& s : shards_) {
      if (s->published_min.load(std::memory_order_relaxed) == kEmptyKey &&
          s->backlog_hint.load(std::memory_order_relaxed) > 0) {
        std::lock_guard<slpq::detail::TinySpinLock> g(s->lock);
        bool live = false;
        for (const auto& slot : s->window) {
          if (slot.key.load(std::memory_order_acquire) <= kMaxUserKey) {
            live = true;  // someone refilled while we waited on the lock
            break;
          }
        }
        if (!live && s->backlog > 0) {
          ++s->acquisitions;
          refill_locked(*s);
        }
      }
    }
    // Min-of-shards peek: one relaxed load per shard.
    Shard* best = nullptr;
    Key best_key = kEmptyKey;
    for (auto& s : shards_) {
      const Key k = s->published_min.load(std::memory_order_relaxed);
      if (k < best_key) {
        best_key = k;
        best = s.get();
      }
    }
    if (best != nullptr) {
      if (std::optional<Item> item = take_from(*best)) return item;
      continue;  // that shard drained under us; rescan the hints
    }
    // Every hint says empty and no backlog hint fired. Hints are still
    // best-effort, so sweep each shard through take_from — which refills
    // from the backend under the lock — before conceding EMPTY.
    for (auto& s : shards_)
      if (std::optional<Item> item = take_from(*s)) return item;
    return std::nullopt;
  }
}

std::size_t Service::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<slpq::detail::TinySpinLock> g(s->lock);
    total += s->backlog;
    for (const auto& slot : s->window)
      if (slot.key.load(std::memory_order_acquire) <= kMaxUserKey) ++total;
  }
  return total;
}

slpq::TelemetrySnapshot Service::telemetry() const {
  slpq::TelemetrySnapshot snap;
  std::uint64_t acquisitions = 0, insert_batches = 0, refills = 0,
                empty_refills = 0;
  slpq::detail::LogHistogram occupancy;
  std::vector<std::uint64_t> served;
  slpq::TelemetrySnapshot agg;

  for (const auto& s : shards_) {
    std::lock_guard<slpq::detail::TinySpinLock> g(s->lock);
    acquisitions += s->acquisitions;
    insert_batches += s->insert_batches;
    refills += s->refills;
    empty_refills += s->empty_refills;
    occupancy.merge(s->occupancy);
    served.push_back(s->served.load(std::memory_order_relaxed));
    const slpq::TelemetrySnapshot shard_snap = s->queue->telemetry();
    for (const auto& e : shard_snap.entries) {
      if (is_stat_key(e.first))
        agg.set(e.first, std::max(agg.get(e.first), e.second));
      else
        agg.add(e.first, e.second);
    }
  }

  snap.set("pqd.shards", static_cast<std::uint64_t>(shards_.size()));
  snap.set("pqd.batch", static_cast<std::uint64_t>(cfg_.batch));
  snap.set("pqd.shard_acquisitions", acquisitions);
  snap.set("pqd.insert_batches", insert_batches);
  snap.set("pqd.window_refills", refills);
  snap.set("pqd.empty_refills", empty_refills);
  snap.set("pqd.batch_occupancy.mean",
           static_cast<std::uint64_t>(std::llround(occupancy.mean())));
  snap.set("pqd.batch_occupancy.p50", occupancy.quantile(0.50));
  snap.set("pqd.batch_occupancy.p90", occupancy.quantile(0.90));
  snap.set("pqd.batch_occupancy.max", occupancy.max());

  // Load balance across shards: max/mean in percent (100 == perfectly
  // even). Ops counted are inserts applied plus window claims served.
  std::uint64_t max_served = 0, sum_served = 0;
  for (const std::uint64_t v : served) {
    max_served = std::max(max_served, v);
    sum_served += v;
  }
  const double mean_served =
      served.empty() ? 0.0
                     : static_cast<double>(sum_served) /
                           static_cast<double>(served.size());
  snap.set("pqd.shard_imbalance",
           mean_served > 0.0
               ? static_cast<std::uint64_t>(std::llround(
                     static_cast<double>(max_served) * 100.0 / mean_served))
               : 0);

  snap.merge(agg);
  slpq::fill_reclaim_zero(snap);
  return snap;
}

}  // namespace pqd
