// Flavor dispatch and environment knobs for the benchmark harness. The
// workload itself lives in workload_spec.hpp; the execution engines live
// in sim_driver.cpp and native_driver.cpp; structures are resolved through
// the BackendRegistry (backend.hpp).
#include "harness/workload.hpp"

#include <cstdlib>
#include <stdexcept>

namespace harness {

const char* to_string(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::Mixed: return "mixed";
    case WorkloadKind::Des: return "des";
    case WorkloadKind::Timer: return "timer";
    case WorkloadKind::Trace: return "trace";
  }
  return "mixed";
}

WorkloadKind parse_workload(const std::string& name) {
  if (name == "mixed") return WorkloadKind::Mixed;
  if (name == "des") return WorkloadKind::Des;
  if (name == "timer") return WorkloadKind::Timer;
  if (name == "trace") return WorkloadKind::Trace;
  throw std::invalid_argument("unknown workload '" + name +
                              "' (expected mixed|des|timer|trace)");
}

BenchmarkResult run_benchmark(const BenchmarkConfig& cfg) {
  switch (cfg.flavor) {
    case Flavor::Native: return run_native_benchmark(cfg);
    case Flavor::Sim: break;
  }
  return run_sim_benchmark(cfg);
}

std::uint64_t scaled_ops(std::uint64_t paper_ops) {
  double scale = 1.0;
  if (const char* env = std::getenv("SLPQ_BENCH_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0) scale = 1.0;
  }
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(paper_ops) * scale);
  return scaled < 1 ? 1 : scaled;
}

int max_sweep_procs() {
  if (const char* env = std::getenv("SLPQ_MAX_PROCS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 256;
}

}  // namespace harness
