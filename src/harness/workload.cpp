#include "harness/workload.hpp"

#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "slpq/detail/random.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_funnel_list.hpp"
#include "simq/sim_hunt_heap.hpp"
#include "simq/sim_multi_queue.hpp"
#include "simq/sim_skipqueue.hpp"

namespace harness {

namespace {

using psim::Cpu;
using simq::Key;
using simq::Value;

// Priorities are drawn uniformly from a large range ("the priorities of
// inserted items were chosen uniformly at random"). A 2^31 space makes
// repeats — which take the skip queue's update-in-place path — rare but
// not impossible, as in the paper's runs.
constexpr std::uint64_t kKeySpace = 1ULL << 31;

/// Uniform adapter over the three structures.
class QueueAdapter {
 public:
  virtual ~QueueAdapter() = default;
  virtual void seed(Key key, Value value) = 0;
  virtual void insert(Cpu& cpu, Key key, Value value) = 0;
  virtual bool delete_min(Cpu& cpu) = 0;  // false => EMPTY
  virtual std::size_t final_size() const = 0;
  virtual void register_daemons() {}
};

class SkipQueueAdapter final : public QueueAdapter {
 public:
  SkipQueueAdapter(psim::Engine& eng, const BenchmarkConfig& cfg,
                   bool timestamps, psim::LockMode lock_mode)
      : q_(eng, make_options(cfg, timestamps, lock_mode)) {}

  static simq::SimSkipQueue::Options make_options(const BenchmarkConfig& cfg,
                                                  bool timestamps,
                                                  psim::LockMode lock_mode) {
    simq::SimSkipQueue::Options o;
    o.max_level = cfg.max_level;
    o.timestamps = timestamps;
    o.use_gc = cfg.use_gc;
    o.pad_nodes = cfg.pad_nodes;
    o.lock_mode = lock_mode;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(Cpu& cpu, Key key, Value value) override {
    q_.insert(cpu, key, value);
  }
  bool delete_min(Cpu& cpu) override { return q_.delete_min(cpu).has_value(); }
  std::size_t final_size() const override { return q_.size_raw(); }
  void register_daemons() override {
    if (q_.options().use_gc) q_.spawn_collector();
  }

 private:
  simq::SimSkipQueue q_;
};

class HuntHeapAdapter final : public QueueAdapter {
 public:
  HuntHeapAdapter(psim::Engine& eng, const BenchmarkConfig& cfg)
      : q_(eng, make_options(cfg)) {}

  static simq::SimHuntHeap::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimHuntHeap::Options o;
    o.capacity = cfg.heap_capacity != 0
                     ? cfg.heap_capacity
                     : cfg.initial_size + cfg.total_ops + 64;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(Cpu& cpu, Key key, Value value) override {
    if (!q_.insert(cpu, key, value))
      throw std::runtime_error("Hunt heap overflow during benchmark");
  }
  bool delete_min(Cpu& cpu) override { return q_.delete_min(cpu).has_value(); }
  std::size_t final_size() const override { return q_.size_raw(); }

 private:
  simq::SimHuntHeap q_;
};

class MultiQueueAdapter final : public QueueAdapter {
 public:
  MultiQueueAdapter(psim::Engine& eng, const BenchmarkConfig& cfg)
      : q_(eng, make_options(cfg)) {}

  static simq::SimMultiQueue::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimMultiQueue::Options o;
    o.c = cfg.mq_c;
    o.stickiness = cfg.mq_stickiness;
    o.seed = cfg.seed;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(Cpu& cpu, Key key, Value value) override {
    q_.insert(cpu, key, value);
  }
  bool delete_min(Cpu& cpu) override { return q_.delete_min(cpu).has_value(); }
  std::size_t final_size() const override { return q_.size_raw(); }

 private:
  simq::SimMultiQueue q_;
};

class FunnelListAdapter final : public QueueAdapter {
 public:
  FunnelListAdapter(psim::Engine& eng, const BenchmarkConfig& cfg)
      : q_(eng, make_options(cfg)) {}

  static simq::SimFunnelList::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimFunnelList::Options o;
    o.width = cfg.funnel_width;
    o.layers = cfg.funnel_layers;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(Cpu& cpu, Key key, Value value) override {
    q_.insert(cpu, key, value);
  }
  bool delete_min(Cpu& cpu) override { return q_.delete_min(cpu).has_value(); }
  std::size_t final_size() const override { return q_.size_raw(); }

 private:
  simq::SimFunnelList q_;
};

std::unique_ptr<QueueAdapter> make_queue(psim::Engine& eng,
                                         const BenchmarkConfig& cfg) {
  switch (cfg.kind) {
    case QueueKind::SkipQueue:
      return std::make_unique<SkipQueueAdapter>(eng, cfg, /*timestamps=*/true,
                                                psim::LockMode::Block);
    case QueueKind::RelaxedSkipQueue:
      return std::make_unique<SkipQueueAdapter>(eng, cfg, /*timestamps=*/false,
                                                psim::LockMode::Block);
    case QueueKind::TTSSkipQueue:
      return std::make_unique<SkipQueueAdapter>(eng, cfg, /*timestamps=*/true,
                                                psim::LockMode::Spin);
    case QueueKind::HuntHeap:
      return std::make_unique<HuntHeapAdapter>(eng, cfg);
    case QueueKind::FunnelList:
      return std::make_unique<FunnelListAdapter>(eng, cfg);
    case QueueKind::MultiQueue:
      return std::make_unique<MultiQueueAdapter>(eng, cfg);
  }
  throw std::invalid_argument("unknown QueueKind");
}

bool queue_needs_gc_processor(const BenchmarkConfig& cfg) {
  return (cfg.kind == QueueKind::SkipQueue ||
          cfg.kind == QueueKind::RelaxedSkipQueue ||
          cfg.kind == QueueKind::TTSSkipQueue) &&
         cfg.use_gc;
}

}  // namespace

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::SkipQueue: return "SkipQueue";
    case QueueKind::RelaxedSkipQueue: return "RelaxedSkipQueue";
    case QueueKind::HuntHeap: return "Heap";
    case QueueKind::FunnelList: return "FunnelList";
    case QueueKind::TTSSkipQueue: return "TTSSkipQueue";
    case QueueKind::MultiQueue: return "MultiQueue";
  }
  return "?";
}

BenchmarkResult run_benchmark(const BenchmarkConfig& cfg) {
  if (cfg.processors < 1) throw std::invalid_argument("processors < 1");

  psim::MachineConfig machine = cfg.machine;
  machine.processors = cfg.processors + (queue_needs_gc_processor(cfg) ? 1 : 0);
  machine.seed = cfg.seed;
  psim::Engine eng(machine);

  auto queue = make_queue(eng, cfg);
  queue->register_daemons();

  // Pre-populate with uniformly random priorities.
  slpq::detail::Xoshiro256 seed_rng(cfg.seed ^ 0xBEEFCAFEULL);
  for (std::size_t i = 0; i < cfg.initial_size; ++i)
    queue->seed(static_cast<Key>(seed_rng.below(kKeySpace)) + 1,
                static_cast<Value>(i));

  const int workers = cfg.processors;
  std::vector<slpq::detail::LatencyHistogram> ins_hist(
      static_cast<std::size_t>(workers));
  std::vector<slpq::detail::LatencyHistogram> del_hist(
      static_cast<std::size_t>(workers));
  std::vector<std::uint64_t> empties(static_cast<std::size_t>(workers), 0);

  psim::Barrier start_barrier(eng, workers);

  for (int p = 0; p < workers; ++p) {
    const std::uint64_t quota =
        cfg.total_ops / static_cast<std::uint64_t>(workers) +
        (static_cast<std::uint64_t>(p) <
                 cfg.total_ops % static_cast<std::uint64_t>(workers)
             ? 1
             : 0);
    eng.add_processor([&, p, quota](Cpu& cpu) {
      slpq::detail::Xoshiro256 rng(cfg.seed * 0x9E3779B97F4A7C15ULL +
                                   static_cast<std::uint64_t>(p) + 101);
      auto& ih = ins_hist[static_cast<std::size_t>(p)];
      auto& dh = del_hist[static_cast<std::size_t>(p)];
      start_barrier.arrive_and_wait(cpu);
      for (std::uint64_t i = 0; i < quota; ++i) {
        cpu.advance(cfg.work_cycles);  // the benchmark's local work period
        const psim::Cycles t0 = cpu.now();
        if (rng.bernoulli(cfg.insert_ratio)) {
          queue->insert(cpu, static_cast<Key>(rng.below(kKeySpace)) + 1,
                        static_cast<Value>(i));
          ih.record(cpu.now() - t0);
        } else {
          const bool got = queue->delete_min(cpu);
          dh.record(cpu.now() - t0);
          if (!got) empties[static_cast<std::size_t>(p)]++;
        }
      }
    });
  }

  eng.run();

  BenchmarkResult out;
  for (int p = 0; p < workers; ++p) {
    out.insert_latency.merge(ins_hist[static_cast<std::size_t>(p)]);
    out.delete_latency.merge(del_hist[static_cast<std::size_t>(p)]);
    out.empties += empties[static_cast<std::size_t>(p)];
  }
  out.inserts = out.insert_latency.count();
  out.deletes = out.delete_latency.count() - out.empties;
  out.makespan = eng.horizon();
  out.final_size = queue->final_size();
  out.machine_stats = eng.stats();
  return out;
}

std::uint64_t scaled_ops(std::uint64_t paper_ops) {
  double scale = 1.0;
  if (const char* env = std::getenv("SLPQ_BENCH_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0) scale = 1.0;
  }
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(paper_ops) * scale);
  return scaled < 1 ? 1 : scaled;
}

int max_sweep_procs() {
  if (const char* env = std::getenv("SLPQ_MAX_PROCS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 256;
}

}  // namespace harness
