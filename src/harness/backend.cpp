#include "harness/backend.hpp"

#include <stdexcept>
#include <utility>

namespace harness {

const char* to_string(Flavor flavor) {
  switch (flavor) {
    case Flavor::Sim: return "sim";
    case Flavor::Native: return "native";
  }
  return "?";
}

Flavor parse_flavor(std::string_view s) {
  if (s == "sim") return Flavor::Sim;
  if (s == "native") return Flavor::Native;
  throw std::invalid_argument("unknown machine flavor '" + std::string(s) +
                              "' (expected sim or native)");
}

BackendRegistry::BackendRegistry() {
  detail::register_sim_backends(*this);
  detail::register_native_backends(*this);
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(Backend backend) {
  if (backend.name.empty() || !backend.make)
    throw std::logic_error("backend needs a name and a factory");
  auto taken = [&](std::string_view name) {
    return find(backend.flavor, name) != nullptr;
  };
  if (taken(backend.name))
    throw std::logic_error("duplicate backend '" + backend.name + "'");
  for (const auto& alias : backend.aliases)
    if (taken(alias))
      throw std::logic_error("duplicate backend alias '" + alias + "'");
  backends_.push_back(std::make_unique<Backend>(std::move(backend)));
}

const Backend* BackendRegistry::find(Flavor flavor,
                                     std::string_view name) const noexcept {
  for (const auto& b : backends_) {
    if (b->flavor != flavor) continue;
    if (b->name == name) return b.get();
    for (const auto& alias : b->aliases)
      if (alias == name) return b.get();
  }
  return nullptr;
}

const Backend& BackendRegistry::require(Flavor flavor,
                                        std::string_view name) const {
  if (const Backend* b = find(flavor, name)) return *b;
  throw std::invalid_argument("unknown " + std::string(to_string(flavor)) +
                              " structure '" + std::string(name) +
                              "' (valid: " + names(flavor) + ")");
}

std::vector<const Backend*> BackendRegistry::all() const {
  std::vector<const Backend*> out;
  for (auto flavor : {Flavor::Sim, Flavor::Native})
    for (const auto& b : backends_)
      if (b->flavor == flavor) out.push_back(b.get());
  return out;
}

std::vector<const Backend*> BackendRegistry::all(Flavor flavor) const {
  std::vector<const Backend*> out;
  for (const auto& b : backends_)
    if (b->flavor == flavor) out.push_back(b.get());
  return out;
}

std::string BackendRegistry::names(Flavor flavor) const {
  std::string out;
  for (const Backend* b : all(flavor)) {
    if (!out.empty()) out += ",";
    out += b->name;
  }
  return out;
}

}  // namespace harness
