// Shared workload/spec layer: everything about the paper's synthetic
// benchmark that is independent of *what executes it*. Both drivers
// (sim_driver.cpp, native_driver.cpp) build their worker loops from these
// pieces, so the op mix, key distribution, prefill and per-worker RNG
// streams are identical across flavors — only the clock differs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "slpq/detail/histogram.hpp"
#include "slpq/detail/random.hpp"

namespace harness::spec {

// Priorities are drawn uniformly from a large range ("the priorities of
// inserted items were chosen uniformly at random"). A 2^31 space makes
// repeats — which take the skip queue's update-in-place path — rare but
// not impossible, as in the paper's runs.
constexpr std::uint64_t kKeySpace = 1ULL << 31;

inline void validate(const BenchmarkConfig& cfg) {
  if (cfg.processors < 1) throw std::invalid_argument("processors < 1");
  if (cfg.insert_ratio < 0.0 || cfg.insert_ratio > 1.0)
    throw std::invalid_argument("insert_ratio outside [0, 1]");
}

/// Worker p's share of cfg.total_ops (the remainder goes to low indices).
inline std::uint64_t quota(const BenchmarkConfig& cfg, int p) {
  const auto workers = static_cast<std::uint64_t>(cfg.processors);
  return cfg.total_ops / workers +
         (static_cast<std::uint64_t>(p) < cfg.total_ops % workers ? 1 : 0);
}

/// The RNG stream that drives worker p's op mix and keys. Shared by both
/// drivers, so the operation sequence is flavor-independent.
inline slpq::detail::Xoshiro256 worker_rng(const BenchmarkConfig& cfg, int p) {
  return slpq::detail::Xoshiro256(cfg.seed * 0x9E3779B97F4A7C15ULL +
                                  static_cast<std::uint64_t>(p) + 101);
}

/// Pre-populates the structure with cfg.initial_size uniformly random
/// priorities (host-side, before any worker starts).
inline void prefill(QueueHandle& queue, const BenchmarkConfig& cfg) {
  slpq::detail::Xoshiro256 seed_rng(cfg.seed ^ 0xBEEFCAFEULL);
  for (std::size_t i = 0; i < cfg.initial_size; ++i)
    queue.seed(static_cast<Key>(seed_rng.below(kKeySpace)) + 1,
               static_cast<Value>(i));
}

/// Per-worker measurement sinks, merged into a BenchmarkResult at the end.
struct WorkerTally {
  slpq::detail::LatencyHistogram insert_latency;
  slpq::detail::LatencyHistogram delete_latency;
  std::uint64_t empties = 0;
};

/// One worker's benchmark loop. `Clock` is a callable returning the current
/// time in the driver's unit (cycles or ns); `Work` burns the local work
/// period between operations.
template <typename Clock, typename Work>
void worker_loop(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
                 OpContext& ctx, WorkerTally& tally, Clock&& clock,
                 Work&& work) {
  auto rng = worker_rng(cfg, p);
  const std::uint64_t ops = quota(cfg, p);
  for (std::uint64_t i = 0; i < ops; ++i) {
    work(cfg.work_cycles);  // the benchmark's local work period
    const std::uint64_t t0 = clock();
    if (rng.bernoulli(cfg.insert_ratio)) {
      queue.insert(ctx, static_cast<Key>(rng.below(kKeySpace)) + 1,
                   static_cast<Value>(i));
      tally.insert_latency.record(clock() - t0);
    } else {
      const bool got = queue.delete_min(ctx).has_value();
      tally.delete_latency.record(clock() - t0);
      if (!got) ++tally.empties;
    }
  }
}

/// Folds the per-worker tallies and the structure's final state into the
/// common parts of a BenchmarkResult (drivers fill makespan/unit/stats).
inline BenchmarkResult merge(const std::vector<WorkerTally>& tallies,
                             const QueueHandle& queue) {
  BenchmarkResult out;
  for (const auto& t : tallies) {
    out.insert_latency.merge(t.insert_latency);
    out.delete_latency.merge(t.delete_latency);
    out.empties += t.empties;
  }
  out.inserts = out.insert_latency.count();
  out.deletes = out.delete_latency.count() - out.empties;
  out.final_size = queue.final_size();
  return out;
}

}  // namespace harness::spec
