// Shared workload/spec layer: everything about the paper's synthetic
// benchmark that is independent of *what executes it*. Both drivers
// (sim_driver.cpp, native_driver.cpp) build their worker loops from these
// pieces, so the op mix, key distribution, prefill and per-worker RNG
// streams are identical across flavors — only the clock differs.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/backend.hpp"
#include "harness/trace.hpp"
#include "harness/workload.hpp"
#include "slpq/detail/histogram.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"

namespace harness::spec {

// Priorities are drawn uniformly from a large range ("the priorities of
// inserted items were chosen uniformly at random"). A 2^31 space makes
// repeats — which take the skip queue's update-in-place path — rare but
// not impossible, as in the paper's runs.
constexpr std::uint64_t kKeySpace = 1ULL << 31;

inline void validate(const BenchmarkConfig& cfg) {
  if (cfg.processors < 1) throw std::invalid_argument("processors < 1");
  if (cfg.insert_ratio < 0.0 || cfg.insert_ratio > 1.0)
    throw std::invalid_argument("insert_ratio outside [0, 1]");
}

/// Worker p's share of cfg.total_ops (the remainder goes to low indices).
inline std::uint64_t quota(const BenchmarkConfig& cfg, int p) {
  const auto workers = static_cast<std::uint64_t>(cfg.processors);
  return cfg.total_ops / workers +
         (static_cast<std::uint64_t>(p) < cfg.total_ops % workers ? 1 : 0);
}

/// The RNG stream that drives worker p's op mix and keys. Shared by both
/// drivers, so the operation sequence is flavor-independent.
inline slpq::detail::Xoshiro256 worker_rng(const BenchmarkConfig& cfg, int p) {
  return slpq::detail::Xoshiro256(cfg.seed * 0x9E3779B97F4A7C15ULL +
                                  static_cast<std::uint64_t>(p) + 101);
}

/// Prices relaxation: how far from the true minimum each delete-min lands.
///
/// A bucket-count sketch over the key space, shared by all workers: insert
/// increments the popped key's bucket, delete-min sums the buckets strictly
/// below it — an approximation of "how many resident items were smaller",
/// i.e. the op's rank error — then decrements. With 4096 buckets over
/// kKeySpace the quantization error is ~initial_size/4096 items per
/// bucket; plenty to separate "tens" from "thousands", which is the scale
/// relaxation quality lives at. Buckets are relaxed atomics, so under
/// concurrency the sketch is itself slightly relaxed — fine for a
/// statistic about a structure that is relaxed by design. The below-sum
/// walks up to 4096 counters, so drivers only sample every
/// kRankSamplePeriod-th successful delete (outside the latency-timed
/// window; see worker_loop).
class RankErrorProbe {
 public:
  static constexpr std::size_t kBuckets = 4096;
  static constexpr int kSamplePeriod = 32;  ///< deletes between samples

  RankErrorProbe()
      : counts_(std::make_unique<std::atomic<std::int64_t>[]>(kBuckets)) {}

  void on_insert(Key key) noexcept {
    counts_[index(key)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Approximate count of resident items smaller than `key`, then removes
  /// the item from the sketch. Call after the queue op succeeded.
  std::uint64_t on_delete(Key key) noexcept {
    const std::size_t b = index(key);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < b; ++i) {
      const auto v = counts_[i].load(std::memory_order_relaxed);
      if (v > 0) below += static_cast<std::uint64_t>(v);  // skip transients
    }
    counts_[b].fetch_sub(1, std::memory_order_relaxed);
    return below;
  }

  /// Removes a popped key without computing its rank (unsampled deletes
  /// still have to leave the sketch).
  void on_delete_unsampled(Key key) noexcept {
    counts_[index(key)].fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  static std::size_t index(Key key) noexcept {
    constexpr std::uint64_t kWidth = (kKeySpace + kBuckets - 1) / kBuckets;
    const auto k = key < 1 ? std::uint64_t{0} : static_cast<std::uint64_t>(key - 1);
    const std::size_t b = static_cast<std::size_t>(k / kWidth);
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
};

// ---- scenario key construction ---------------------------------------------
//
// The des and timer scenarios draw keys from a narrow moving window, so raw
// ticks would collide constantly — and backends with the paper's
// update-in-place semantics for equal keys (SkipQueue's UPDATED path) would
// then do less logical work than duplicate-keeping ones like the funnel
// list. Scenario keys therefore pack the event/deadline tick in the high
// bits and a globally unique tie-break in the low bits: the tick gives the
// scenario its shape, the tie-break keeps every key distinct, and ordering
// is still tick-major.

// Mean hold increment for the DES scenario: successor events are scheduled
// uniformly in (popped tick, popped tick + 2*kDesMeanHold].
constexpr std::uint64_t kDesMeanHold = 512;

// Deadline span for the Timer scenario: new deadlines land within this many
// ticks of the latest expired deadline, keeping the whole working set
// clustered at the queue's front.
constexpr std::uint64_t kTimerSpan = 256;

// Tie-breaks stay unique for the first 2^24 scenario inserts (prefill uses
// ties [0, initial_size); worker p uses initial_size + p, stepping by the
// worker count) — far beyond any configured run.
constexpr int kTieBits = 24;

inline Key scenario_key(std::uint64_t tick, std::uint64_t tie) noexcept {
  return static_cast<Key>((tick << kTieBits) |
                          (tie & ((std::uint64_t{1} << kTieBits) - 1)));
}
inline std::uint64_t tick_of(Key key) noexcept {
  return static_cast<std::uint64_t>(key) >> kTieBits;
}

/// Resolves the trace a config replays: the preloaded one when present,
/// otherwise loaded from cfg.trace_file. Returns nullptr for non-trace
/// workloads; throws when the trace workload has no input. Drivers call
/// this once, before prefill.
inline std::shared_ptr<const Trace> resolve_trace(const BenchmarkConfig& cfg) {
  if (cfg.workload != WorkloadKind::Trace) return nullptr;
  if (cfg.trace) return cfg.trace;
  if (cfg.trace_file.empty())
    throw std::invalid_argument(
        "--workload trace requires --trace-file (or a preloaded trace)");
  return std::make_shared<Trace>(Trace::load(cfg.trace_file));
}

/// Pre-populates the structure with cfg.initial_size priorities (host-side,
/// before any worker starts): uniform over the key space for the mixed
/// scenario, uniform over one hold span / deadline window for des / timer.
/// The trace scenario instead replays the trace's own recorded warm set
/// (ignoring cfg.initial_size — a trace is self-contained). The rank
/// probe, when present, must see the seeds too or early deletes would
/// under-count.
inline void prefill(QueueHandle& queue, const BenchmarkConfig& cfg,
                    RankErrorProbe* probe = nullptr,
                    const Trace* trace = nullptr) {
  if (cfg.workload == WorkloadKind::Trace) {
    if (!trace) throw std::invalid_argument("trace prefill without a trace");
    std::uint64_t i = 0;
    for (const TraceOp& item : trace->warm) {
      const Key key = scenario_key(item.tick, item.tie);
      queue.seed(key, static_cast<Value>(i++));
      if (probe) probe->on_insert(key);
    }
    return;
  }
  slpq::detail::Xoshiro256 seed_rng(cfg.seed ^ 0xBEEFCAFEULL);
  for (std::size_t i = 0; i < cfg.initial_size; ++i) {
    Key key;
    switch (cfg.workload) {
      case WorkloadKind::Des:
        key = scenario_key(1 + seed_rng.below(2 * kDesMeanHold), i);
        break;
      case WorkloadKind::Timer:
        key = scenario_key(1 + seed_rng.below(kTimerSpan), i);
        break;
      case WorkloadKind::Mixed:
      default:
        key = static_cast<Key>(seed_rng.below(kKeySpace)) + 1;
        break;
    }
    queue.seed(key, static_cast<Value>(i));
    if (probe) probe->on_insert(key);
  }
}

/// Per-worker measurement sinks, merged into a BenchmarkResult at the end.
struct WorkerTally {
  slpq::detail::LatencyHistogram insert_latency;
  slpq::detail::LatencyHistogram delete_latency;
  slpq::detail::LogHistogram rank_error;
  std::uint64_t empties = 0;
};

/// One worker's benchmark loop. `Clock` is a callable returning the current
/// time in the driver's unit (cycles or ns); `Work` burns the local work
/// period between operations. When a rank probe is supplied (relaxed
/// structures), its updates run strictly outside the latency-timed window
/// so quality measurement never inflates the latency numbers.
template <typename Clock, typename Work>
void worker_loop(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
                 OpContext& ctx, WorkerTally& tally, Clock&& clock,
                 Work&& work, RankErrorProbe* probe = nullptr) {
  auto rng = worker_rng(cfg, p);
  const std::uint64_t ops = quota(cfg, p);
  std::uint64_t deletes = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    work(cfg.work_cycles);  // the benchmark's local work period
    if (rng.bernoulli(cfg.insert_ratio)) {
      const Key key = static_cast<Key>(rng.below(kKeySpace)) + 1;
      if (probe) probe->on_insert(key);
      const std::uint64_t t0 = clock();
      queue.insert(ctx, key, static_cast<Value>(i));
      tally.insert_latency.record(clock() - t0);
    } else {
      const std::uint64_t t0 = clock();
      const auto got = queue.delete_min(ctx);
      tally.delete_latency.record(clock() - t0);
      if (!got) {
        ++tally.empties;
      } else if (probe) {
        if (++deletes % RankErrorProbe::kSamplePeriod == 0)
          tally.rank_error.record(probe->on_delete(*got));
        else
          probe->on_delete_unsampled(*got);
      }
    }
  }
}

/// Discrete-event-simulation hold model (classic "hold" benchmark): each
/// iteration takes the next event off the queue, burns the work period,
/// and schedules a successor a random hold time after the popped
/// timestamp. Queue size stays near cfg.initial_size; both halves count
/// against the worker's op quota so total_ops means the same thing as in
/// the mixed scenario.
template <typename Clock, typename Work>
void des_loop(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
              OpContext& ctx, WorkerTally& tally, Clock&& clock, Work&& work,
              RankErrorProbe* probe = nullptr) {
  auto rng = worker_rng(cfg, p);
  const std::uint64_t ops = quota(cfg, p);
  const auto step = static_cast<std::uint64_t>(cfg.processors);
  std::uint64_t tie = cfg.initial_size + static_cast<std::uint64_t>(p);
  std::uint64_t deletes = 0;
  std::uint64_t frontier = 1;  // tick of the last event this worker executed
  for (std::uint64_t i = 0; i < ops; ++i) {
    work(cfg.work_cycles);
    if ((i & 1) == 0) {
      // Take the next event.
      const std::uint64_t t0 = clock();
      const auto got = queue.delete_min(ctx);
      tally.delete_latency.record(clock() - t0);
      if (!got) {
        ++tally.empties;
      } else {
        frontier = tick_of(*got);
        if (probe) {
          if (++deletes % RankErrorProbe::kSamplePeriod == 0)
            tally.rank_error.record(probe->on_delete(*got));
          else
            probe->on_delete_unsampled(*got);
        }
      }
    } else {
      // Schedule the successor event a hold time after the one we ran.
      const Key key =
          scenario_key(frontier + 1 + rng.below(2 * kDesMeanHold), tie);
      tie += step;
      if (probe) probe->on_insert(key);
      const std::uint64_t t0 = clock();
      queue.insert(ctx, key, static_cast<Value>(i));
      tally.insert_latency.record(clock() - t0);
    }
  }
}

/// Timer-wheel/scheduler pattern: workers alternate between arming a
/// deadline slightly past the newest expired one and expiring the nearest
/// deadline. Unlike the mixed scenario's uniform keys, the live set stays
/// clustered within ~kTimerSpan of the front, so delete-min, insert
/// position search, and their coherence traffic all hammer the same few
/// nodes — a scheduler-like hot front.
template <typename Clock, typename Work>
void timer_loop(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
                OpContext& ctx, WorkerTally& tally, Clock&& clock,
                Work&& work, RankErrorProbe* probe = nullptr) {
  auto rng = worker_rng(cfg, p);
  const std::uint64_t ops = quota(cfg, p);
  const auto step = static_cast<std::uint64_t>(cfg.processors);
  std::uint64_t tie = cfg.initial_size + static_cast<std::uint64_t>(p);
  std::uint64_t deletes = 0;
  std::uint64_t front = 1;  // newest deadline tick this worker saw expire
  for (std::uint64_t i = 0; i < ops; ++i) {
    work(cfg.work_cycles);
    if ((i & 1) == 0) {
      // Arm a timer shortly after the current front.
      const Key key = scenario_key(front + 1 + rng.below(kTimerSpan), tie);
      tie += step;
      if (probe) probe->on_insert(key);
      const std::uint64_t t0 = clock();
      queue.insert(ctx, key, static_cast<Value>(i));
      tally.insert_latency.record(clock() - t0);
    } else {
      // Expire the nearest deadline.
      const std::uint64_t t0 = clock();
      const auto got = queue.delete_min(ctx);
      tally.delete_latency.record(clock() - t0);
      if (!got) {
        ++tally.empties;
      } else {
        if (tick_of(*got) > front) front = tick_of(*got);
        if (probe) {
          if (++deletes % RankErrorProbe::kSamplePeriod == 0)
            tally.rank_error.record(probe->on_delete(*got));
          else
            probe->on_delete_unsampled(*got);
        }
      }
    }
  }
}

/// Trace replay: worker p replays its contiguous block of the recorded op
/// sequence (block partitioning keeps each worker's slice alternating the
/// way the recording did — index-interleaving would hand an all-deletes
/// stream to half the workers of a strictly alternating trace). Insert
/// keys are reconstructed with the PR-8 scenario packing from the
/// record's (tick, tie); deletes take the structure's current minimum.
template <typename Clock, typename Work>
void trace_loop(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
                OpContext& ctx, WorkerTally& tally, Clock&& clock,
                Work&& work, RankErrorProbe* probe, const Trace& trace) {
  const auto workers = static_cast<std::uint64_t>(cfg.processors);
  const auto n = static_cast<std::uint64_t>(trace.ops.size());
  const std::uint64_t begin = n * static_cast<std::uint64_t>(p) / workers;
  const std::uint64_t end = n * (static_cast<std::uint64_t>(p) + 1) / workers;
  std::uint64_t deletes = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    work(cfg.work_cycles);
    const TraceOp& op = trace.ops[i];
    if (op.kind == TraceOp::Kind::kInsert) {
      const Key key = scenario_key(op.tick, op.tie);
      if (probe) probe->on_insert(key);
      const std::uint64_t t0 = clock();
      queue.insert(ctx, key, static_cast<Value>(i));
      tally.insert_latency.record(clock() - t0);
    } else {
      const std::uint64_t t0 = clock();
      const auto got = queue.delete_min(ctx);
      tally.delete_latency.record(clock() - t0);
      if (!got) {
        ++tally.empties;
      } else if (probe) {
        if (++deletes % RankErrorProbe::kSamplePeriod == 0)
          tally.rank_error.record(probe->on_delete(*got));
        else
          probe->on_delete_unsampled(*got);
      }
    }
  }
}

/// Runs worker p's loop for the configured scenario. Both drivers call
/// this, so every scenario is available on both machines. The trace
/// scenario additionally needs the resolved trace (see resolve_trace).
template <typename Clock, typename Work>
void run_worker(QueueHandle& queue, const BenchmarkConfig& cfg, int p,
                OpContext& ctx, WorkerTally& tally, Clock&& clock,
                Work&& work, RankErrorProbe* probe = nullptr,
                const Trace* trace = nullptr) {
  switch (cfg.workload) {
    case WorkloadKind::Des:
      des_loop(queue, cfg, p, ctx, tally, std::forward<Clock>(clock),
               std::forward<Work>(work), probe);
      return;
    case WorkloadKind::Timer:
      timer_loop(queue, cfg, p, ctx, tally, std::forward<Clock>(clock),
                 std::forward<Work>(work), probe);
      return;
    case WorkloadKind::Trace:
      if (!trace) throw std::invalid_argument("trace replay without a trace");
      trace_loop(queue, cfg, p, ctx, tally, std::forward<Clock>(clock),
                 std::forward<Work>(work), probe, *trace);
      return;
    case WorkloadKind::Mixed:
      break;
  }
  worker_loop(queue, cfg, p, ctx, tally, std::forward<Clock>(clock),
              std::forward<Work>(work), probe);
}

/// Folds the per-worker tallies and the structure's final state into the
/// common parts of a BenchmarkResult (drivers fill makespan/unit/stats).
inline BenchmarkResult merge(const std::vector<WorkerTally>& tallies,
                             const QueueHandle& queue) {
  BenchmarkResult out;
  for (const auto& t : tallies) {
    out.insert_latency.merge(t.insert_latency);
    out.delete_latency.merge(t.delete_latency);
    out.rank_error.merge(t.rank_error);
    out.empties += t.empties;
  }
  out.inserts = out.insert_latency.count();
  out.deletes = out.delete_latency.count() - out.empties;
  out.final_size = queue.final_size();
  return out;
}

/// Folds the rank-error histogram into the run's telemetry so the quality
/// number ships in the same slpq-telemetry/1 JSON as the speed numbers.
/// Both drivers call this whenever the probe ran (all keys present, zero
/// when no delete was sampled).
inline void fold_rank_error(slpq::TelemetrySnapshot& snap,
                            const slpq::detail::LogHistogram& h) {
  snap.set("mq.rank_error.samples", h.count());
  snap.set("mq.rank_error.mean",
           static_cast<std::uint64_t>(std::llround(h.mean())));
  snap.set("mq.rank_error.p50", h.quantile(0.50));
  snap.set("mq.rank_error.p90", h.quantile(0.90));
  snap.set("mq.rank_error.p99", h.quantile(0.99));
  snap.set("mq.rank_error.max", h.max());
}

}  // namespace harness::spec
