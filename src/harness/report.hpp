// Plain-text tables, CSV output and the telemetry report (human table +
// --stats-json emission) for the figure benches and pqsim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "slpq/telemetry.hpp"

namespace harness {

struct BenchmarkConfig;  // workload.hpp
struct BenchmarkResult;  // workload.hpp

struct Table {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  void add_row(std::vector<std::string> row) { rows.push_back(std::move(row)); }
};

/// Renders the table with aligned columns and a rule under the header.
void print_table(std::ostream& os, const Table& table);

/// Writes the table as CSV (quotes only when needed).
void write_csv(const std::string& path, const Table& table);

/// Fixed-decimal formatting helpers for table cells.
std::string fmt(double v, int decimals = 0);
std::string fmt_ratio(double num, double den);

// ---- telemetry report ------------------------------------------------------
//
// One run's worth of the unified telemetry: the workload identity, the
// headline throughput numbers, and the merged counter snapshot (structure
// counters plus the driver's sim.* / native.* context keys). The same
// structure backs both machines, so --stats-json has a single schema.

struct StatsRun {
  std::string machine;    ///< "sim" or "native"
  std::string structure;  ///< canonical backend name from the registry
  std::string workload;   ///< scenario ("mixed"|"des"|"timer"|"trace")
  std::string reclaim;    ///< memory-reclamation policy ("ts"|"hp"|"epoch"|"leaky")
  /// Service-tier runs (pqd_loadgen) set service="pqd" and the shard
  /// count; both fields are emitted to JSON only when service is
  /// non-empty, so plain driver runs keep the original schema shape.
  std::string service;
  int shards = 0;
  int processors = 0;
  std::uint64_t total_ops = 0;
  std::string unit;       ///< "cycles" or "ns"
  std::uint64_t makespan = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t empties = 0;
  double mean_insert = 0.0;
  double mean_delete = 0.0;
  double mean_op = 0.0;
  slpq::TelemetrySnapshot counters;
};

struct StatsReport {
  std::vector<StatsRun> runs;

  /// Flattens one (config, result) pair into a StatsRun and appends it.
  void add(const BenchmarkConfig& cfg, const BenchmarkResult& result);
};

/// Writes the report as JSON, schema "slpq-telemetry/1" (documented in
/// docs/TELEMETRY.md and validated by tools/check_stats_json.py).
void write_stats_json(const std::string& path, const StatsReport& report);

/// Renders one run's counters as an aligned two-column table (--stats).
void print_telemetry(std::ostream& os, const StatsRun& run);

}  // namespace harness
