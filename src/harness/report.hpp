// Plain-text tables and CSV output for the figure benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace harness {

struct Table {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  void add_row(std::vector<std::string> row) { rows.push_back(std::move(row)); }
};

/// Renders the table with aligned columns and a rule under the header.
void print_table(std::ostream& os, const Table& table);

/// Writes the table as CSV (quotes only when needed).
void write_csv(const std::string& path, const Table& table);

/// Fixed-decimal formatting helpers for table cells.
std::string fmt(double v, int decimals = 0);
std::string fmt_ratio(double num, double den);

}  // namespace harness
