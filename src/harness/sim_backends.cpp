// The Flavor::Sim half of the backend registry: the paper's structures as
// implemented on the psim simulated machine (src/simq/), adapted to the
// uniform QueueHandle surface. Every handle here routes operations through
// a virtual processor (OpContext::cpu) so the simulator charges cycles.
#include <memory>
#include <stdexcept>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_funnel_list.hpp"
#include "simq/sim_hunt_heap.hpp"
#include "simq/sim_linden_queue.hpp"
#include "simq/sim_multi_queue.hpp"
#include "simq/sim_skipqueue.hpp"

namespace harness {
namespace {

static_assert(std::is_same_v<Key, simq::Key> &&
                  std::is_same_v<Value, simq::Value>,
              "harness::Key/Value must match the simq workload types");

psim::Engine& engine_of(const BackendInit& init) {
  if (init.engine == nullptr)
    throw std::logic_error("sim backend constructed without an engine");
  return *init.engine;
}

class SimSkipQueueHandle final : public QueueHandle {
 public:
  SimSkipQueueHandle(const BackendInit& init, bool timestamps,
                     psim::LockMode lock_mode)
      : q_(engine_of(init), make_options(init.cfg, timestamps, lock_mode)) {}

  static simq::SimSkipQueue::Options make_options(const BenchmarkConfig& cfg,
                                                  bool timestamps,
                                                  psim::LockMode lock_mode) {
    simq::SimSkipQueue::Options o;
    o.max_level = cfg.max_level;
    o.timestamps = timestamps;
    o.use_gc = cfg.use_gc;
    o.pad_nodes = cfg.pad_nodes;
    o.lock_mode = lock_mode;
    o.reclaim = cfg.reclaim;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(OpContext& ctx, Key key, Value value) override {
    q_.insert(*ctx.cpu, key, value);
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = q_.delete_min(*ctx.cpu)) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size_raw(); }
  void register_daemons() override {
    if (q_.options().use_gc) q_.spawn_collector();
  }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  simq::SimSkipQueue q_;
};

class SimHuntHeapHandle final : public QueueHandle {
 public:
  explicit SimHuntHeapHandle(const BackendInit& init)
      : q_(engine_of(init), make_options(init.cfg)) {}

  static simq::SimHuntHeap::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimHuntHeap::Options o;
    o.capacity = cfg.heap_capacity != 0
                     ? cfg.heap_capacity
                     : cfg.initial_size + cfg.total_ops + 64;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(OpContext& ctx, Key key, Value value) override {
    if (!q_.insert(*ctx.cpu, key, value))
      throw std::runtime_error("Hunt heap overflow during benchmark");
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = q_.delete_min(*ctx.cpu)) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size_raw(); }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  simq::SimHuntHeap q_;
};

class SimLindenQueueHandle final : public QueueHandle {
 public:
  explicit SimLindenQueueHandle(const BackendInit& init)
      : q_(engine_of(init), make_options(init.cfg)) {}

  static simq::SimLindenQueue::Options make_options(
      const BenchmarkConfig& cfg) {
    simq::SimLindenQueue::Options o;
    o.max_level = cfg.max_level;
    o.boundoffset = cfg.boundoffset;
    o.use_gc = cfg.use_gc;
    o.reclaim = cfg.reclaim;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(OpContext& ctx, Key key, Value value) override {
    q_.insert(*ctx.cpu, key, value);
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = q_.delete_min(*ctx.cpu)) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size_raw(); }
  void register_daemons() override {
    if (q_.options().use_gc) q_.spawn_collector();
  }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  simq::SimLindenQueue q_;
};

class SimMultiQueueHandle final : public QueueHandle {
 public:
  explicit SimMultiQueueHandle(const BackendInit& init)
      : q_(engine_of(init), make_options(init.cfg)) {}

  static simq::SimMultiQueue::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimMultiQueue::Options o;
    o.c = cfg.mq_c;
    o.stickiness = cfg.mq_stickiness;
    o.insertion_buffer = static_cast<std::size_t>(cfg.mq_ins_buf);
    o.deletion_buffer = static_cast<std::size_t>(cfg.mq_del_buf);
    o.batch = static_cast<std::size_t>(cfg.mq_batch);
    o.seed = cfg.seed;
    o.topo = cfg.mq_topo;
    o.topo_radius = cfg.mq_topo_radius;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(OpContext& ctx, Key key, Value value) override {
    q_.insert(*ctx.cpu, key, value);
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = q_.delete_min(*ctx.cpu)) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size_raw(); }
  void quiesce() override { q_.quiesce_host(); }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  simq::SimMultiQueue q_;
};

class SimFunnelListHandle final : public QueueHandle {
 public:
  explicit SimFunnelListHandle(const BackendInit& init)
      : q_(engine_of(init), make_options(init.cfg)) {}

  static simq::SimFunnelList::Options make_options(const BenchmarkConfig& cfg) {
    simq::SimFunnelList::Options o;
    o.width = cfg.funnel_width;
    o.layers = cfg.funnel_layers;
    return o;
  }

  void seed(Key key, Value value) override { q_.seed(key, value); }
  void insert(OpContext& ctx, Key key, Value value) override {
    q_.insert(*ctx.cpu, key, value);
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = q_.delete_min(*ctx.cpu)) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size_raw(); }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  simq::SimFunnelList q_;
};

}  // namespace

namespace detail {

void register_sim_backends(BackendRegistry& registry) {
  auto skip_variant = [](bool timestamps, psim::LockMode lock_mode) {
    return [timestamps, lock_mode](const BackendInit& init) {
      return std::unique_ptr<QueueHandle>(
          new SimSkipQueueHandle(init, timestamps, lock_mode));
    };
  };
  const std::vector<std::string> skip_knobs = {"max_level", "use_gc",
                                               "pad_nodes", "reclaim"};

  registry.add({"skip", "SkipQueue", Flavor::Sim, Backend::kGcDaemon,
                "the paper's skiplist queue with time-stamps (Sections 3-4)",
                {"skipqueue"}, skip_knobs,
                skip_variant(/*timestamps=*/true, psim::LockMode::Block)});

  registry.add({"relaxed", "RelaxedSkipQueue", Flavor::Sim,
                Backend::kGcDaemon | Backend::kRelaxed,
                "Section 5.4 variant without time-stamps",
                {}, skip_knobs,
                skip_variant(/*timestamps=*/false, psim::LockMode::Block)});

  registry.add({"tts", "TTSSkipQueue", Flavor::Sim, Backend::kGcDaemon,
                "ablation: SkipQueue with test-and-test-and-set spin locks",
                {}, skip_knobs,
                skip_variant(/*timestamps=*/true, psim::LockMode::Spin)});

  registry.add({"heap", "Heap", Flavor::Sim, Backend::kBounded,
                "Hunt et al. concurrent heap (the paper's baseline [17])",
                {"hunt"}, {"heap_capacity"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new SimHuntHeapHandle(init));
                }});

  registry.add({"funnel", "FunnelList", Flavor::Sim, Backend::kCombining,
                "combining-funnel sorted list (the paper's baseline [38,39])",
                {}, {"funnel_width", "funnel_layers"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new SimFunnelListHandle(init));
                }});

  registry.add({"linden", "LindenSkipQueue", Flavor::Sim, Backend::kGcDaemon,
                "batched-prefix delete_min skip queue (Lindén & Jonsson)",
                {"lj"}, {"max_level", "boundoffset", "use_gc", "reclaim"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new SimLindenQueueHandle(init));
                }});

  registry.add({"multiqueue", "MultiQueue", Flavor::Sim, Backend::kRelaxed,
                "relaxed c-way sharded queue with 2-choice sampling",
                {"mq"},
                {"mq_c", "mq_stickiness", "mq_ins_buf", "mq_del_buf",
                 "mq_batch", "mq_topo", "mq_topo_radius"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new SimMultiQueueHandle(init));
                }});
}

}  // namespace detail
}  // namespace harness
