// The paper's synthetic benchmark (Section 5): each processor alternates
// between a short period of local work and a priority-queue operation,
// choosing Insert (with a uniformly random priority) or Delete-min by a
// biased coin flip. We measure per-operation latency in simulated cycles.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "slpq/detail/histogram.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace harness {

enum class QueueKind {
  SkipQueue,         ///< the paper's contribution (with time-stamps)
  RelaxedSkipQueue,  ///< Section 5.4 variant (no time-stamps)
  HuntHeap,          ///< Hunt et al. concurrent heap
  FunnelList,        ///< combining-funnel sorted list
  TTSSkipQueue,      ///< ablation: SkipQueue with spin locks (see bench/)
  MultiQueue,        ///< relaxed c-way sharded queue (Williams & Sanders)
};

const char* to_string(QueueKind kind);

struct BenchmarkConfig {
  QueueKind kind = QueueKind::SkipQueue;
  // TTSSkipQueue is SkipQueue with spin locks; selecting it overrides
  // the skiplist's lock mode.
  int processors = 16;             ///< worker processors (a GC processor is added on top for skip queues)
  std::size_t initial_size = 50;   ///< items seeded before the measured phase
  std::uint64_t total_ops = 70000; ///< operations across all processors
  double insert_ratio = 0.5;       ///< probability an operation is an Insert
  psim::Cycles work_cycles = 100;  ///< local work between operations
  std::uint64_t seed = 1;

  // Structure knobs.
  int max_level = 16;              ///< skiplist max level (log2 of max size)
  bool use_gc = true;              ///< timestamp GC for skip queues
  std::size_t heap_capacity = 0;   ///< Hunt heap capacity; 0 = auto
  bool pad_nodes = false;          ///< ablation: line-align skiplist nodes
  int funnel_width = 0;            ///< 0 = auto (processors / 4)
  int funnel_layers = 2;
  int mq_c = 2;                    ///< MultiQueue shards per processor
  int mq_stickiness = 8;           ///< MultiQueue sticky-op budget

  psim::MachineConfig machine;     ///< timing model (processor count is overridden)
};

struct BenchmarkResult {
  slpq::detail::LatencyHistogram insert_latency;
  slpq::detail::LatencyHistogram delete_latency;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;       ///< successful delete-mins
  std::uint64_t empties = 0;       ///< delete-mins that returned EMPTY
  psim::Cycles makespan = 0;       ///< max processor local time
  std::size_t final_size = 0;
  psim::SimStats machine_stats;

  double mean_insert() const { return insert_latency.mean(); }
  double mean_delete() const { return delete_latency.mean(); }
  double mean_op() const {
    const auto n = insert_latency.count() + delete_latency.count();
    if (n == 0) return 0.0;
    return static_cast<double>(insert_latency.sum() + delete_latency.sum()) /
           static_cast<double>(n);
  }
};

/// Runs one benchmark configuration on a fresh simulated machine.
/// Deterministic: the same config yields the same result.
BenchmarkResult run_benchmark(const BenchmarkConfig& cfg);

/// Reads SLPQ_BENCH_SCALE (default 1.0) and scales an operation count;
/// lets CI run the full figure sweeps quickly without editing the benches.
std::uint64_t scaled_ops(std::uint64_t paper_ops);

/// Reads SLPQ_MAX_PROCS (default 256): upper bound for processor sweeps.
int max_sweep_procs();

}  // namespace harness
