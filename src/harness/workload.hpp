// The paper's synthetic benchmark (Section 5): each worker alternates
// between a short period of local work and a priority-queue operation,
// choosing Insert (with a uniformly random priority) or Delete-min by a
// biased coin flip.
//
// The workload spec (op mix, seeding, prefill, per-worker quotas) is shared
// by two drivers that differ only in what executes the workers and what the
// latency unit means:
//   * the sim driver runs fibers on the psim machine and measures cycles;
//   * the native driver runs std::threads and measures wall-clock ns.
// Structures are resolved through the BackendRegistry (backend.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "harness/backend.hpp"
#include "slpq/detail/histogram.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/topo.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace harness {

/// Which synthetic scenario the workers run (same drivers, same RNG
/// streams — only the op pattern differs; see workload_spec.hpp):
///  * Mixed — the paper's benchmark: biased coin flip between Insert with
///    a uniform key and Delete-min (Section 5).
///  * Des — discrete-event-simulation hold model: take the next event,
///    do its work, schedule a successor a random hold time later. Queue
///    size stays near-constant; keys form a moving time front.
///  * Timer — timer-wheel/scheduler pattern: alternate scheduling a
///    deadline slightly past the latest expired one with expiring the
///    nearest deadline. Keys cluster tightly at the front, concentrating
///    coherence traffic on the smallest-key region.
///  * Trace — replay of a recorded op schedule (harness::Trace, format
///    docs/TRACES.md): workers replay contiguous blocks of the recorded
///    sequence instead of drawing ops from an RNG. Requires trace_file
///    (or a preloaded BenchmarkConfig::trace).
enum class WorkloadKind : std::uint8_t { Mixed, Des, Timer, Trace };

const char* to_string(WorkloadKind kind) noexcept;

/// Parses "mixed" | "des" | "timer" | "trace" (throws std::invalid_argument).
WorkloadKind parse_workload(const std::string& name);

struct Trace;  // trace.hpp

struct BenchmarkConfig {
  std::string structure = "skip";  ///< registry name (canonical or alias)
  Flavor flavor = Flavor::Sim;     ///< which driver / implementation world
  WorkloadKind workload = WorkloadKind::Mixed;  ///< scenario (--workload)

  int processors = 16;             ///< workers (sim adds a GC processor for skip queues)
  std::size_t initial_size = 50;   ///< items seeded before the measured phase
  std::uint64_t total_ops = 70000; ///< operations across all workers
  double insert_ratio = 0.5;       ///< probability an operation is an Insert
  std::uint64_t work_cycles = 100; ///< local work between operations (sim cycles / native spin iterations)
  std::uint64_t seed = 1;

  // Structure knobs (each backend's `knobs` lists the ones it reads).
  int max_level = 16;              ///< skiplist max level (log2 of max size)
  bool use_gc = true;              ///< timestamp GC for skip queues
  /// Memory-reclamation policy (--reclaim) for backends that free nodes:
  /// ts (paper Section 3), hp, epoch, or leaky. Both machines honor it.
  slpq::ReclaimPolicy reclaim = slpq::ReclaimPolicy::kTimestamp;
  std::size_t heap_capacity = 0;   ///< Hunt heap capacity; 0 = auto
  bool pad_nodes = false;          ///< ablation: line-align skiplist nodes
  int funnel_width = 0;            ///< 0 = auto (processors / 4)
  int funnel_layers = 2;
  int mq_c = 2;                    ///< MultiQueue shards per worker
  int mq_stickiness = 8;           ///< MultiQueue sticky-op budget
  int mq_ins_buf = 8;              ///< MultiQueue insertion-buffer capacity
  int mq_del_buf = 8;              ///< MultiQueue deletion-buffer capacity
  int mq_batch = 8;                ///< MultiQueue items moved per lock hold
  /// MultiQueue topology policy (--mq-topo): none keeps uniform 2-choice
  /// sampling; near/adaptive bias candidates toward shards homed within
  /// mq_topo_radius mesh hops of the caller (sim: plus alloc_near shard
  /// placement; native: notional Grid2D striping, telemetry-priced).
  slpq::TopoPolicy mq_topo = slpq::TopoPolicy::kNone;
  int mq_topo_radius = 2;          ///< base hop radius for near/adaptive
  int boundoffset = 32;            ///< Linden queue dead-prefix bound

  /// Trace workload input (--workload trace): the drivers load trace_file
  /// on demand unless `trace` is already populated (tools that sweep many
  /// configs preload once). The trace's own warm set replaces
  /// initial_size, and the op schedule replaces total_ops/insert_ratio.
  std::string trace_file;
  std::shared_ptr<const Trace> trace;

  psim::MachineConfig machine;     ///< sim timing model (processor count is overridden)
};

struct BenchmarkResult {
  slpq::detail::LatencyHistogram insert_latency;
  slpq::detail::LatencyHistogram delete_latency;
  /// Sampled delete-min rank errors (relaxed structures only; empty for
  /// strict queues). Also folded into telemetry as mq.rank_error.* keys.
  slpq::detail::LogHistogram rank_error;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;       ///< successful delete-mins
  std::uint64_t empties = 0;       ///< delete-mins that returned EMPTY
  std::uint64_t makespan = 0;      ///< sim: max processor local time; native: wall-clock ns
  std::size_t final_size = 0;
  const char* unit = "cycles";     ///< latency unit: "cycles" (sim) or "ns" (native)
  psim::SimStats machine_stats;    ///< sim flavor only
  /// Structure counters merged with driver context: the sim driver folds
  /// in the SimStats cache/coherence breakdown (sim.* keys), the native
  /// driver folds in wall-clock phase timings (native.* keys).
  slpq::TelemetrySnapshot telemetry;

  double mean_insert() const { return insert_latency.mean(); }
  double mean_delete() const { return delete_latency.mean(); }
  double mean_op() const {
    const auto n = insert_latency.count() + delete_latency.count();
    if (n == 0) return 0.0;
    return static_cast<double>(insert_latency.sum() + delete_latency.sum()) /
           static_cast<double>(n);
  }
};

/// Runs one benchmark configuration, dispatching on cfg.flavor. The sim
/// flavor is deterministic: the same config yields the same result. The
/// native flavor runs the same deterministic op sequence per worker, but
/// latencies and interleavings are the hardware's.
BenchmarkResult run_benchmark(const BenchmarkConfig& cfg);

/// The two drivers behind run_benchmark (cfg.flavor is ignored; the named
/// driver runs and resolves cfg.structure within its own flavor).
BenchmarkResult run_sim_benchmark(const BenchmarkConfig& cfg);
BenchmarkResult run_native_benchmark(const BenchmarkConfig& cfg);

/// Reads SLPQ_BENCH_SCALE (default 1.0) and scales an operation count;
/// lets CI run the full figure sweeps quickly without editing the benches.
std::uint64_t scaled_ops(std::uint64_t paper_ops);

/// Reads SLPQ_MAX_PROCS (default 256): upper bound for processor sweeps.
int max_sweep_procs();

}  // namespace harness
