// The backend registry: one catalogue of every priority-queue structure the
// harness can drive, across both execution worlds.
//
// A Backend describes a structure (canonical name, display label, flavor,
// capability flags, knob schema) and carries a type-erased factory that
// produces a QueueHandle — the uniform seed/insert/delete_min/size surface
// both drivers run the paper's synthetic workload against:
//
//   * Flavor::Sim    — the simq implementations, executed on the psim
//                      simulated ccNUMA machine (latencies in cycles);
//   * Flavor::Native — the slpq library structures, executed on real
//                      std::threads (latencies in nanoseconds).
//
// Both worlds register into the same BackendRegistry (sim_backends.cpp and
// native_backends.cpp), so tools enumerate and resolve structures uniformly
// and a new backend lands by adding one registration — no enum, no switch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "slpq/telemetry.hpp"

namespace psim {
class Cpu;
class Engine;
}  // namespace psim

namespace harness {

struct BenchmarkConfig;  // workload.hpp

/// Key/value types of the benchmark workload. These mirror simq::Key /
/// simq::Value (checked by a static_assert in sim_backends.cpp) and are the
/// instantiation used for the native slpq templates.
using Key = std::int64_t;
using Value = std::uint64_t;

enum class Flavor : std::uint8_t {
  Sim,     ///< runs on the psim simulated machine (fiber driver, cycles)
  Native,  ///< runs on real std::threads (native driver, nanoseconds)
};

const char* to_string(Flavor flavor);

/// Parses "sim" / "native"; throws std::invalid_argument otherwise.
Flavor parse_flavor(std::string_view s);

/// Per-operation execution context, filled in by the driver that owns the
/// worker. The sim driver supplies the virtual processor; both drivers
/// supply the worker index (used e.g. to pick a MultiQueue handle).
struct OpContext {
  psim::Cpu* cpu = nullptr;  ///< sim flavor only
  int thread = 0;            ///< worker index in [0, processors)
};

/// The uniform handle a Backend factory returns: one structure instance,
/// alive for one benchmark run.
class QueueHandle {
 public:
  virtual ~QueueHandle() = default;

  /// Host-side pre-population, called before any worker starts.
  virtual void seed(Key key, Value value) = 0;

  virtual void insert(OpContext& ctx, Key key, Value value) = 0;

  /// Returns the removed key, or nullopt for EMPTY.
  virtual std::optional<Key> delete_min(OpContext& ctx) = 0;

  /// Item count after the run (buffered items included for relaxed queues).
  virtual std::size_t final_size() const = 0;

  /// Sim flavor: adds daemon processors (e.g. the GC collector) to the
  /// engine. Called once, after construction and before Engine::run.
  virtual void register_daemons() {}

  /// Called after all workers finished; relaxed structures push buffered
  /// items back into shared state here.
  virtual void quiesce() {}

  /// The structure's operation counters (see docs/TELEMETRY.md). Every
  /// backend emits at least the core counter set; structures may append
  /// extras (e.g. the funnel's "combines"). Read after quiesce().
  virtual slpq::TelemetrySnapshot telemetry() const { return {}; }
};

/// Everything a Backend factory gets to build its structure.
struct BackendInit {
  const BenchmarkConfig& cfg;
  psim::Engine* engine = nullptr;  ///< non-null iff the backend is Flavor::Sim
};

struct Backend {
  // Capability flags.
  static constexpr unsigned kRelaxed = 1u << 0;   ///< delete_min may return a non-minimal item
  static constexpr unsigned kGcDaemon = 1u << 1;  ///< wants a dedicated GC processor (sim, iff cfg.use_gc)
  static constexpr unsigned kBounded = 1u << 2;   ///< fixed capacity chosen at construction
  static constexpr unsigned kCombining = 1u << 3; ///< combining structure; prefers few threads
  static constexpr unsigned kSlowSeed = 1u << 4;  ///< superlinear prefill; keep initial_size small

  std::string name;    ///< canonical CLI name, e.g. "lockfree"
  std::string label;   ///< display name for tables/charts, e.g. "LockFreeSkipQueue"
  Flavor flavor = Flavor::Sim;
  unsigned caps = 0;
  std::string summary;                ///< one line for --list-structures
  std::vector<std::string> aliases;   ///< extra CLI spellings, e.g. "mq"
  std::vector<std::string> knobs;     ///< BenchmarkConfig fields the factory reads

  std::function<std::unique_ptr<QueueHandle>(const BackendInit&)> make;

  bool has(unsigned cap) const noexcept { return (caps & cap) != 0; }
};

class BackendRegistry {
 public:
  /// The process-wide registry, populated on first use by the sim and
  /// native registration units.
  static BackendRegistry& instance();

  /// Registers a backend; throws std::logic_error on a duplicate
  /// (flavor, name-or-alias).
  void add(Backend backend);

  /// Looks up by canonical name or alias; nullptr when absent.
  const Backend* find(Flavor flavor, std::string_view name) const noexcept;

  /// Like find, but throws std::invalid_argument naming the valid
  /// structures for `flavor` when the lookup fails.
  const Backend& require(Flavor flavor, std::string_view name) const;

  /// All backends in registration order (sim first, then native).
  std::vector<const Backend*> all() const;
  std::vector<const Backend*> all(Flavor flavor) const;

  /// Comma-separated canonical names for one flavor (usage/error strings).
  std::string names(Flavor flavor) const;

 private:
  BackendRegistry();
  std::vector<std::unique_ptr<Backend>> backends_;
};

namespace detail {
// Defined in sim_backends.cpp / native_backends.cpp; called once from
// BackendRegistry's constructor so registration survives static-library
// linking regardless of object inclusion order.
void register_sim_backends(BackendRegistry& registry);
void register_native_backends(BackendRegistry& registry);
}  // namespace detail

}  // namespace harness
