// Terminal line charts for benchmark series — enough to eyeball the
// paper's figures without leaving the shell.
#pragma once

#include <string>
#include <vector>

namespace harness {

struct ChartSeries {
  std::string name;
  std::vector<double> ys;  // parallel to the x values
};

struct ChartOptions {
  int width = 64;    ///< plot-area columns
  int height = 16;   ///< plot-area rows
  bool log_x = true;  ///< processor sweeps are powers of two
  bool log_y = true;  ///< latencies span orders of magnitude
  std::string title;
  std::string x_label = "procs";
  std::string y_label = "cycles";
};

/// Renders one chart with all series overlaid (marker per series, legend
/// below). Non-finite or non-positive values are skipped in log scales.
std::string render_chart(const std::vector<double>& xs,
                         const std::vector<ChartSeries>& series,
                         const ChartOptions& opt = {});

}  // namespace harness
