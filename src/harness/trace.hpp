// Recorded operation traces: the `--workload trace` scenario's input.
//
// A trace is a replayable schedule of priority-queue operations — the step
// from synthetic op mixes to real application schedules. The on-disk
// format (`slpq-trace/1`, specified in docs/TRACES.md) is line-oriented
// text: a versioned header carrying the warm-set size, then one record per
// op. Insert records carry an event tick plus an explicit tie-break; the
// replayed key is the PR-8 scenario packing `tick << 24 | tie`
// (spec::scenario_key), so equal-tick events stay distinct and backends
// with update-in-place semantics for equal keys do the same logical work
// as duplicate-keeping ones. Delete records carry nothing: a delete-min
// takes whatever the structure's minimum is at replay time.
//
// Consumers: the harness drivers (workload_spec.hpp trace_loop, both
// machines), the pqd service load generator (tools/pqd_loadgen.cpp), and
// the pqd sweep bench. The committed sample lives at
// bench/traces/sample_des.trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace harness {

struct TraceOp {
  enum class Kind : std::uint8_t { kInsert, kDeleteMin };

  Kind kind = Kind::kDeleteMin;
  std::uint64_t tick = 0;  ///< insert only: event time, the key's high bits
  std::uint64_t tie = 0;   ///< insert only: unique low-bits tie-break

  bool operator==(const TraceOp&) const = default;
};

struct Trace {
  /// The warm set: items the replayer seeds before the first recorded op,
  /// recorded explicitly (`p` records) so a trace is self-contained — no
  /// RNG coupling between recorder and replayer. All entries are inserts;
  /// ties occupy [0, warm.size()) by convention (docs/TRACES.md).
  std::vector<TraceOp> warm;
  std::vector<TraceOp> ops;

  std::uint64_t initial_size() const noexcept { return warm.size(); }

  std::uint64_t inserts() const noexcept;
  std::uint64_t deletes() const noexcept;

  bool operator==(const Trace&) const = default;

  /// Parses an slpq-trace/1 file; throws std::runtime_error naming the
  /// offending line on any format violation.
  static Trace load(const std::string& path);

  /// Writes the trace in the slpq-trace/1 format (throws on I/O error).
  void save(const std::string& path) const;

  /// Records a sequential discrete-event hold-model run (the classic
  /// "hold" benchmark, cf. workload_spec.hpp des_loop): starting from a
  /// warm set of `initial_size` pending events, each step either executes
  /// the nearest event (delete-min, probability 1 - insert_ratio) or
  /// schedules a successor a random hold time past the newest executed
  /// tick. The recorder tracks the pending-event set exactly, so insert
  /// ticks are the ones a real single-threaded DES would produce. Ties
  /// are assigned sequentially from initial_size, matching the replayers'
  /// prefill tie range. Deterministic in (total_ops, initial_size,
  /// insert_ratio, seed).
  static Trace record_hold_model(std::uint64_t total_ops,
                                 std::uint64_t initial_size,
                                 double insert_ratio, std::uint64_t seed);
};

}  // namespace harness
