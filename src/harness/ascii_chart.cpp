#include "harness/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace harness {

namespace {

constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@'};

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

bool usable(double v, bool log_scale) {
  return std::isfinite(v) && (!log_scale || v > 0.0);
}

std::string short_num(double v) {
  char buf[32];
  if (v >= 1e6)
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  else if (v >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

std::string render_chart(const std::vector<double>& xs,
                         const std::vector<ChartSeries>& series,
                         const ChartOptions& opt) {
  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << "\n";
  if (xs.empty() || series.empty()) {
    out << "(no data)\n";
    return out.str();
  }

  // Data ranges over usable points.
  double x_lo = std::numeric_limits<double>::infinity(), x_hi = -x_lo;
  double y_lo = x_lo, y_hi = -x_lo;
  for (double x : xs) {
    if (!usable(x, opt.log_x)) continue;
    x_lo = std::min(x_lo, x);
    x_hi = std::max(x_hi, x);
  }
  for (const auto& s : series) {
    for (double y : s.ys) {
      if (!usable(y, opt.log_y)) continue;
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (!(x_lo <= x_hi) || !(y_lo <= y_hi)) {
    out << "(no plottable data)\n";
    return out.str();
  }
  if (y_lo == y_hi) y_hi = y_lo + 1;
  if (x_lo == x_hi) x_hi = x_lo + 1;

  const double tx_lo = transform(x_lo, opt.log_x);
  const double tx_hi = transform(x_hi, opt.log_x);
  const double ty_lo = transform(y_lo, opt.log_y);
  const double ty_hi = transform(y_hi, opt.log_y);

  std::vector<std::string> grid(static_cast<std::size_t>(opt.height),
                                std::string(static_cast<std::size_t>(opt.width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % sizeof kMarkers];
    const auto& ys = series[si].ys;
    for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
      if (!usable(xs[i], opt.log_x) || !usable(ys[i], opt.log_y)) continue;
      const double fx = (transform(xs[i], opt.log_x) - tx_lo) / (tx_hi - tx_lo);
      const double fy = (transform(ys[i], opt.log_y) - ty_lo) / (ty_hi - ty_lo);
      const int col = static_cast<int>(std::lround(fx * (opt.width - 1)));
      const int row = (opt.height - 1) -
                      static_cast<int>(std::lround(fy * (opt.height - 1)));
      if (row >= 0 && row < opt.height && col >= 0 && col < opt.width)
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  // Frame with y-axis labels at top/bottom.
  const std::string top_label = short_num(y_hi);
  const std::string bot_label = short_num(y_lo);
  const std::size_t label_width = std::max(top_label.size(), bot_label.size());

  for (int r = 0; r < opt.height; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = top_label + std::string(label_width - top_label.size(), ' ');
    if (r == opt.height - 1)
      label = bot_label + std::string(label_width - bot_label.size(), ' ');
    out << label << " |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << std::string(label_width, ' ') << " +"
      << std::string(static_cast<std::size_t>(opt.width), '-') << "\n";
  out << std::string(label_width, ' ') << "  " << short_num(x_lo)
      << std::string(static_cast<std::size_t>(std::max(
                         1, opt.width - 2 -
                                static_cast<int>(short_num(x_lo).size() +
                                                 short_num(x_hi).size()))),
                     ' ')
      << short_num(x_hi) << "  (" << opt.x_label << ", "
      << (opt.log_x ? "log" : "lin") << "; " << opt.y_label << ", "
      << (opt.log_y ? "log" : "lin") << ")\n";

  for (std::size_t si = 0; si < series.size(); ++si)
    out << "  " << kMarkers[si % sizeof kMarkers] << " " << series[si].name
        << "\n";
  return out.str();
}

}  // namespace harness
