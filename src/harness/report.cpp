#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "harness/workload.hpp"

namespace harness {

void print_table(std::ostream& os, const Table& table) {
  if (!table.title.empty()) os << "## " << table.title << "\n";
  std::vector<std::size_t> widths(table.columns.size(), 0);
  for (std::size_t c = 0; c < table.columns.size(); ++c)
    widths[c] = table.columns[c].size();
  for (const auto& row : table.rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cell;
      os << std::right;
    }
    os << "\n";
  };

  print_row(table.columns);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : table.rows) print_row(row);
  os.flush();
}

void write_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (c) out << ',';
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(table.columns);
  for (const auto& row : table.rows) emit(row);
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmt_ratio(double num, double den) {
  if (den == 0.0 || !std::isfinite(num / den)) return "-";
  return fmt(num / den, 2) + "x";
}

// ---- telemetry report ------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

void StatsReport::add(const BenchmarkConfig& cfg, const BenchmarkResult& result) {
  StatsRun run;
  run.machine = to_string(cfg.flavor);
  run.structure = cfg.structure;
  run.workload = to_string(cfg.workload);
  run.reclaim = slpq::to_string(cfg.reclaim);
  run.processors = cfg.processors;
  run.total_ops = cfg.total_ops;
  run.unit = result.unit;
  run.makespan = result.makespan;
  run.inserts = result.inserts;
  run.deletes = result.deletes;
  run.empties = result.empties;
  run.mean_insert = result.mean_insert();
  run.mean_delete = result.mean_delete();
  run.mean_op = result.mean_op();
  run.counters = result.telemetry;
  runs.push_back(std::move(run));
}

void write_stats_json(const std::string& path, const StatsReport& report) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n  \"schema\": \"slpq-telemetry/1\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const StatsRun& r = report.runs[i];
    out << "    {\n";
    out << "      \"machine\": \"" << json_escape(r.machine) << "\",\n";
    out << "      \"structure\": \"" << json_escape(r.structure) << "\",\n";
    out << "      \"workload\": \"" << json_escape(r.workload) << "\",\n";
    out << "      \"reclaim\": \"" << json_escape(r.reclaim) << "\",\n";
    if (!r.service.empty()) {
      out << "      \"service\": \"" << json_escape(r.service) << "\",\n";
      out << "      \"shards\": " << r.shards << ",\n";
    }
    out << "      \"processors\": " << r.processors << ",\n";
    out << "      \"total_ops\": " << r.total_ops << ",\n";
    out << "      \"unit\": \"" << json_escape(r.unit) << "\",\n";
    out << "      \"makespan\": " << r.makespan << ",\n";
    out << "      \"inserts\": " << r.inserts << ",\n";
    out << "      \"deletes\": " << r.deletes << ",\n";
    out << "      \"empties\": " << r.empties << ",\n";
    out << "      \"mean_insert\": " << json_double(r.mean_insert) << ",\n";
    out << "      \"mean_delete\": " << json_double(r.mean_delete) << ",\n";
    out << "      \"mean_op\": " << json_double(r.mean_op) << ",\n";
    out << "      \"counters\": {";
    for (std::size_t c = 0; c < r.counters.entries.size(); ++c) {
      const auto& [name, value] = r.counters.entries[c];
      out << (c ? ",\n        " : "\n        ");
      out << '"' << json_escape(name) << "\": " << value;
    }
    out << (r.counters.entries.empty() ? "}" : "\n      }") << "\n";
    out << "    }" << (i + 1 < report.runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) throw std::runtime_error("error writing " + path);
}

void print_telemetry(std::ostream& os, const StatsRun& run) {
  Table t;
  t.title = "telemetry: " + run.structure + " (" + run.machine + ", " +
            run.workload + ", " + std::to_string(run.processors) + " procs" +
            (run.reclaim.empty() ? "" : ", reclaim " + run.reclaim) + ")";
  t.columns = {"counter", "value"};
  for (const auto& [name, value] : run.counters.entries)
    t.add_row({name, std::to_string(value)});
  print_table(os, t);
}

}  // namespace harness
