#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harness {

void print_table(std::ostream& os, const Table& table) {
  if (!table.title.empty()) os << "## " << table.title << "\n";
  std::vector<std::size_t> widths(table.columns.size(), 0);
  for (std::size_t c = 0; c < table.columns.size(); ++c)
    widths[c] = table.columns[c].size();
  for (const auto& row : table.rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cell;
      os << std::right;
    }
    os << "\n";
  };

  print_row(table.columns);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : table.rows) print_row(row);
  os.flush();
}

void write_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (c) out << ',';
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(table.columns);
  for (const auto& row : table.rows) emit(row);
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmt_ratio(double num, double den) {
  if (den == 0.0 || !std::isfinite(num / den)) return "-";
  return fmt(num / den, 2) + "x";
}

}  // namespace harness
