#include "harness/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "harness/workload_spec.hpp"
#include "slpq/detail/random.hpp"

namespace harness {

namespace {

constexpr char kMagic[] = "slpq-trace/1";

[[noreturn]] void bad(const std::string& path, std::size_t line,
                      const std::string& what) {
  throw std::runtime_error(path + ":" + std::to_string(line) + ": " + what);
}

}  // namespace

std::uint64_t Trace::inserts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& op : ops)
    if (op.kind == TraceOp::Kind::kInsert) ++n;
  return n;
}

std::uint64_t Trace::deletes() const noexcept {
  return ops.size() - inserts();
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read trace file " + path);

  Trace trace;
  std::string line;
  std::size_t lineno = 0;

  // Header: "slpq-trace/1 initial=<N> ops=<M>".
  if (!std::getline(in, line)) bad(path, 1, "empty file (missing header)");
  ++lineno;
  std::uint64_t initial = 0, declared_ops = 0;
  {
    std::istringstream hs(line);
    std::string magic, field;
    hs >> magic;
    if (magic != kMagic)
      bad(path, lineno, "bad magic '" + magic + "' (expected slpq-trace/1)");
    bool saw_initial = false, saw_ops = false;
    while (hs >> field) {
      if (std::sscanf(field.c_str(), "initial=%" SCNu64, &initial) == 1)
        saw_initial = true;
      else if (std::sscanf(field.c_str(), "ops=%" SCNu64, &declared_ops) == 1)
        saw_ops = true;
      else
        bad(path, lineno, "unknown header field '" + field + "'");
    }
    if (!saw_initial || !saw_ops)
      bad(path, lineno, "header must carry initial=<N> and ops=<M>");
  }
  trace.warm.reserve(initial);
  trace.ops.reserve(declared_ops);

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    TraceOp op;
    char kind = 0;
    std::istringstream ls(line);
    ls >> kind;
    switch (kind) {
      case 'p':
      case 'i': {
        op.kind = TraceOp::Kind::kInsert;
        if (!(ls >> op.tick >> op.tie))
          bad(path, lineno, "insert record needs '<tick> <tie>'");
        if (op.tie >= (std::uint64_t{1} << spec::kTieBits))
          bad(path, lineno, "tie exceeds the 24-bit scenario-key field");
        break;
      }
      case 'd':
        op.kind = TraceOp::Kind::kDeleteMin;
        break;
      default:
        bad(path, lineno, std::string("unknown record kind '") + kind + "'");
    }
    std::string rest;
    if (ls >> rest) bad(path, lineno, "trailing tokens '" + rest + "'");
    if (kind == 'p') {
      if (!trace.ops.empty())
        bad(path, lineno, "warm-set 'p' record after the first op record");
      trace.warm.push_back(op);
    } else {
      trace.ops.push_back(op);
    }
  }

  if (trace.warm.size() != initial)
    throw std::runtime_error(path + ": header declares initial=" +
                             std::to_string(initial) + " but " +
                             std::to_string(trace.warm.size()) +
                             " 'p' records follow");
  if (trace.ops.size() != declared_ops)
    throw std::runtime_error(path + ": header declares ops=" +
                             std::to_string(declared_ops) + " but " +
                             std::to_string(trace.ops.size()) +
                             " op records follow");
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file " + path);
  out << kMagic << " initial=" << warm.size() << " ops=" << ops.size() << "\n";
  for (const auto& item : warm)
    out << "p " << item.tick << " " << item.tie << "\n";
  for (const auto& op : ops) {
    if (op.kind == TraceOp::Kind::kInsert)
      out << "i " << op.tick << " " << op.tie << "\n";
    else
      out << "d\n";
  }
  if (!out) throw std::runtime_error("error writing trace file " + path);
}

Trace Trace::record_hold_model(std::uint64_t total_ops,
                               std::uint64_t initial_size, double insert_ratio,
                               std::uint64_t seed) {
  if (insert_ratio < 0.0 || insert_ratio > 1.0)
    throw std::invalid_argument("insert_ratio outside [0, 1]");

  Trace trace;
  trace.warm.reserve(initial_size);
  trace.ops.reserve(total_ops);
  slpq::detail::Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 7);

  // The recorder simulates the pending-event set exactly, so recorded
  // insert ticks are the ones a sequential DES would schedule.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      pending;
  for (std::uint64_t i = 0; i < initial_size; ++i) {
    const std::uint64_t tick = 1 + rng.below(2 * spec::kDesMeanHold);
    trace.warm.push_back({TraceOp::Kind::kInsert, tick, i});
    pending.push(tick);
  }

  std::uint64_t frontier = 1;           // newest executed event tick
  std::uint64_t tie = initial_size;     // next unique insert tie-break
  for (std::uint64_t i = 0; i < total_ops; ++i) {
    if (pending.empty() || rng.bernoulli(insert_ratio)) {
      const std::uint64_t tick =
          frontier + 1 + rng.below(2 * spec::kDesMeanHold);
      trace.ops.push_back({TraceOp::Kind::kInsert, tick,
                           tie & ((std::uint64_t{1} << spec::kTieBits) - 1)});
      ++tie;
      pending.push(tick);
    } else {
      frontier = std::max(frontier, pending.top());
      pending.pop();
      trace.ops.push_back({TraceOp::Kind::kDeleteMin, 0, 0});
    }
  }
  return trace;
}

}  // namespace harness
