// The native driver: executes the shared workload spec on real
// std::threads against the slpq library structures. Per-operation
// latencies are wall-clock nanoseconds from std::chrono::steady_clock; the
// op sequence per worker is the same deterministic RNG stream the sim
// driver uses, so a (structure, spec, seed) triple performs identical
// logical work in both worlds — only the clock and the interleaving are
// the hardware's.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"

namespace harness {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The local work period: a compiler-opaque spin, roughly one iteration
/// per cycle, standing in for the simulator's cpu.advance().
void spin_work(std::uint64_t iters) {
  for (std::uint64_t i = 0; i < iters; ++i) asm volatile("");
}

}  // namespace

BenchmarkResult run_native_benchmark(const BenchmarkConfig& cfg) {
  spec::validate(cfg);
  const Backend& backend =
      BackendRegistry::instance().require(Flavor::Native, cfg.structure);

  const BackendInit init{cfg, nullptr};
  auto queue = backend.make(init);

  // Relaxed structures get their delete-min quality priced. The probe's
  // bucket walks run outside the latency-timed windows and only every
  // kSamplePeriod-th delete, so the throughput cost is noise.
  std::unique_ptr<spec::RankErrorProbe> probe;
  if (backend.has(Backend::kRelaxed))
    probe = std::make_unique<spec::RankErrorProbe>();
  const std::shared_ptr<const Trace> trace = spec::resolve_trace(cfg);
  const std::uint64_t t_prefill_start = now_ns();
  spec::prefill(*queue, cfg, probe.get(), trace.get());
  const std::uint64_t t_prefill_end = now_ns();

  const int workers = cfg.processors;
  std::vector<spec::WorkerTally> tallies(static_cast<std::size_t>(workers));

  // Two-phase start: workers check in, then spin on `go` so the measured
  // region begins (approximately) simultaneously on every thread.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));

  for (int p = 0; p < workers; ++p) {
    threads.emplace_back([&, p] {
      OpContext ctx;
      ctx.thread = p;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      spec::run_worker(*queue, cfg, p, ctx,
                       tallies[static_cast<std::size_t>(p)], now_ns,
                       spin_work, probe.get(), trace.get());
    });
  }

  while (ready.load(std::memory_order_acquire) < workers)
    std::this_thread::yield();
  const std::uint64_t t_start = now_ns();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const std::uint64_t t_end = now_ns();
  queue->quiesce();
  const std::uint64_t t_quiesce_end = now_ns();

  BenchmarkResult out = spec::merge(tallies, *queue);
  out.makespan = t_end - t_start;
  out.unit = "ns";

  // Structure counters plus wall-clock phase timings (see docs/TELEMETRY.md).
  // Backends without a reclaimer get the zero-valued reclaim.* block so
  // every run emits the same schema.
  out.telemetry = queue->telemetry();
  slpq::fill_reclaim_zero(out.telemetry);
  out.telemetry.set("native.prefill_ns", t_prefill_end - t_prefill_start);
  out.telemetry.set("native.run_ns", t_end - t_start);
  out.telemetry.set("native.quiesce_ns", t_quiesce_end - t_end);
  if (probe) spec::fold_rank_error(out.telemetry, out.rank_error);
  return out;
}

}  // namespace harness
