// The Flavor::Native half of the backend registry: the slpq library
// structures (real std::thread code) behind the same QueueHandle surface
// the sim backends present. Seeding happens from the host thread before
// workers start; operations ignore OpContext::cpu and, where a structure
// keeps per-thread state (MultiQueue), use OpContext::thread to pick the
// worker's pre-made handle.
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "slpq/funnel_list.hpp"
#include "slpq/global_lock_pq.hpp"
#include "slpq/hunt_heap.hpp"
#include "slpq/linden_skip_queue.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/multi_queue.hpp"
#include "slpq/skip_queue.hpp"

namespace harness {
namespace {

/// Adapter for structures whose insert/delete_min need no per-thread
/// context. Constructs the queue in place from whatever the factory passes.
template <typename Queue>
class PlainHandle final : public QueueHandle {
 public:
  template <typename... Args>
  explicit PlainHandle(Args&&... args) : q_(std::forward<Args>(args)...) {}

  void seed(Key key, Value value) override { q_.insert(key, value); }
  void insert(OpContext&, Key key, Value value) override {
    q_.insert(key, value);
  }
  std::optional<Key> delete_min(OpContext&) override {
    if (auto item = q_.delete_min()) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size(); }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

  Queue& queue() noexcept { return q_; }

 private:
  Queue q_;
};

using NativeSkipQueue = slpq::SkipQueue<Key, Value>;
using NativeRelaxedSkipQueue = slpq::RelaxedSkipQueue<Key, Value>;
using NativeLockFreeSkipQueue = slpq::LockFreeSkipQueue<Key, Value>;
using NativeLindenSkipQueue = slpq::LindenSkipQueue<Key, Value>;
using NativeHuntHeap = slpq::HuntHeap<Key, Value>;
using NativeFunnelList = slpq::FunnelList<Key, Value>;
using NativeGlobalLockPQ = slpq::GlobalLockPQ<Key, Value>;
using NativeMultiQueue = slpq::MultiQueue<Key, Value>;

class HuntHeapHandle final : public QueueHandle {
 public:
  explicit HuntHeapHandle(const BenchmarkConfig& cfg)
      : q_(cfg.heap_capacity != 0 ? cfg.heap_capacity
                                  : cfg.initial_size + cfg.total_ops + 64) {}

  void seed(Key key, Value value) override { insert_or_throw(key, value); }
  void insert(OpContext&, Key key, Value value) override {
    insert_or_throw(key, value);
  }
  std::optional<Key> delete_min(OpContext&) override {
    if (auto item = q_.delete_min()) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size(); }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  void insert_or_throw(Key key, Value value) {
    if (!q_.insert(key, value))
      throw std::runtime_error("Hunt heap overflow during benchmark");
  }
  NativeHuntHeap q_;
};

/// MultiQueue needs one Handle per worker (a Handle owns the insertion and
/// deletion buffers and must never be shared between threads). Handles are
/// made up front so workers index them without synchronization.
class MultiQueueHandle final : public QueueHandle {
 public:
  explicit MultiQueueHandle(const BenchmarkConfig& cfg) : q_(options(cfg)) {
    worker_handles_.reserve(static_cast<std::size_t>(cfg.processors));
    for (int p = 0; p < cfg.processors; ++p)
      worker_handles_.push_back(&q_.make_handle());
    seed_handle_ = &q_.make_handle();
  }

  static NativeMultiQueue::Options options(const BenchmarkConfig& cfg) {
    NativeMultiQueue::Options o;
    o.c = cfg.mq_c;
    o.stickiness = cfg.mq_stickiness;
    o.insertion_buffer = static_cast<std::size_t>(cfg.mq_ins_buf);
    o.deletion_buffer = static_cast<std::size_t>(cfg.mq_del_buf);
    o.batch = static_cast<std::size_t>(cfg.mq_batch);
    o.max_threads = cfg.processors;
    o.seed = cfg.seed;
    o.reclaim = cfg.reclaim;
    o.topo = cfg.mq_topo;
    o.topo_radius = cfg.mq_topo_radius;
    return o;
  }

  void seed(Key key, Value value) override {
    seed_handle_->insert(key, value);
    seed_handle_->flush();  // host-side; make every seeded item visible
  }
  void insert(OpContext& ctx, Key key, Value value) override {
    handle(ctx).insert(key, value);
  }
  std::optional<Key> delete_min(OpContext& ctx) override {
    if (auto item = handle(ctx).delete_min()) return item->first;
    return std::nullopt;
  }
  std::size_t final_size() const override { return q_.size(); }
  void quiesce() override {
    for (auto* h : worker_handles_) h->flush();
  }
  slpq::TelemetrySnapshot telemetry() const override { return q_.telemetry(); }

 private:
  NativeMultiQueue::Handle& handle(OpContext& ctx) {
    return *worker_handles_[static_cast<std::size_t>(ctx.thread)];
  }
  NativeMultiQueue q_;
  std::vector<NativeMultiQueue::Handle*> worker_handles_;
  NativeMultiQueue::Handle* seed_handle_ = nullptr;
};

template <typename Queue, typename MakeOptions>
std::function<std::unique_ptr<QueueHandle>(const BackendInit&)> plain_factory(
    MakeOptions make_options) {
  return [make_options](const BackendInit& init) {
    return std::unique_ptr<QueueHandle>(
        new PlainHandle<Queue>(make_options(init.cfg)));
  };
}

}  // namespace

namespace detail {

void register_native_backends(BackendRegistry& registry) {
  auto skip_options = [](const BenchmarkConfig& cfg) {
    NativeSkipQueue::Options o;
    o.max_level = cfg.max_level;
    o.reclaim = cfg.reclaim;
    return o;
  };

  registry.add({"skip", "SkipQueue", Flavor::Native, 0,
                "slpq::SkipQueue — the paper's queue on real threads",
                {"skipqueue"}, {"max_level", "reclaim"},
                plain_factory<NativeSkipQueue>(skip_options)});

  registry.add({"relaxed", "RelaxedSkipQueue", Flavor::Native,
                Backend::kRelaxed,
                "slpq::RelaxedSkipQueue — Section 5.4, no time-stamps",
                {}, {"max_level", "reclaim"},
                plain_factory<NativeRelaxedSkipQueue>(skip_options)});

  registry.add({"lockfree", "LockFreeSkipQueue", Flavor::Native, 0,
                "slpq::LockFreeSkipQueue — CAS-based follow-on design",
                {"lf"}, {"max_level", "reclaim"},
                plain_factory<NativeLockFreeSkipQueue>(
                    [](const BenchmarkConfig& cfg) {
                      NativeLockFreeSkipQueue::Options o;
                      o.max_level = cfg.max_level;
                      o.reclaim = cfg.reclaim;
                      return o;
                    })});

  registry.add({"linden", "LindenSkipQueue", Flavor::Native, 0,
                "slpq::LindenSkipQueue — batched-prefix delete_min "
                "(Lindén & Jonsson)",
                {"lj"}, {"max_level", "boundoffset", "reclaim"},
                plain_factory<NativeLindenSkipQueue>(
                    [](const BenchmarkConfig& cfg) {
                      NativeLindenSkipQueue::Options o;
                      o.max_level = cfg.max_level;
                      o.boundoffset = cfg.boundoffset;
                      o.seed = cfg.seed;
                      o.reclaim = cfg.reclaim;
                      return o;
                    })});

  registry.add({"multiqueue", "MultiQueue", Flavor::Native, Backend::kRelaxed,
                "slpq::MultiQueue — relaxed c-way sharded queue",
                {"mq"},
                {"mq_c", "mq_stickiness", "mq_ins_buf", "mq_del_buf",
                 "mq_batch", "mq_topo", "mq_topo_radius", "reclaim"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new MultiQueueHandle(init.cfg));
                }});

  registry.add({"heap", "Heap", Flavor::Native, Backend::kBounded,
                "slpq::HuntHeap — Hunt et al. concurrent heap",
                {"hunt"}, {"heap_capacity"},
                [](const BackendInit& init) {
                  return std::unique_ptr<QueueHandle>(
                      new HuntHeapHandle(init.cfg));
                }});

  registry.add({"funnel", "FunnelList", Flavor::Native,
                Backend::kCombining | Backend::kSlowSeed,
                "slpq::FunnelList — combining-funnel sorted list",
                {}, {"funnel_width", "funnel_layers"},
                plain_factory<NativeFunnelList>([](const BenchmarkConfig& cfg) {
                  NativeFunnelList::Options o;
                  if (cfg.funnel_width > 0) o.width = cfg.funnel_width;
                  else o.width = cfg.processors / 4 > 0 ? cfg.processors / 4 : 1;
                  o.layers = cfg.funnel_layers;
                  return o;
                })});

  registry.add({"globallock", "GlobalLockPQ", Flavor::Native, 0,
                "slpq::GlobalLockPQ — sequential heap behind one lock",
                {"lock", "baseline"}, {},
                [](const BackendInit&) {
                  return std::unique_ptr<QueueHandle>(
                      new PlainHandle<NativeGlobalLockPQ>());
                }});
}

}  // namespace detail
}  // namespace harness
