// The fiber/simulator driver: executes the shared workload spec on the
// psim simulated ccNUMA machine. Each worker is a virtual processor;
// latencies are simulated cycles and the run is fully deterministic.
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace harness {

BenchmarkResult run_sim_benchmark(const BenchmarkConfig& cfg) {
  spec::validate(cfg);
  const Backend& backend =
      BackendRegistry::instance().require(Flavor::Sim, cfg.structure);

  // Skip queues get a dedicated GC processor on top of the workers.
  const bool gc_proc = backend.has(Backend::kGcDaemon) && cfg.use_gc;
  psim::MachineConfig machine = cfg.machine;
  machine.processors = cfg.processors + (gc_proc ? 1 : 0);
  machine.seed = cfg.seed;
  psim::Engine eng(machine);

  const BackendInit init{cfg, &eng};
  auto queue = backend.make(init);
  queue->register_daemons();
  spec::prefill(*queue, cfg);

  const int workers = cfg.processors;
  std::vector<spec::WorkerTally> tallies(static_cast<std::size_t>(workers));
  psim::Barrier start_barrier(eng, workers);

  for (int p = 0; p < workers; ++p) {
    eng.add_processor([&, p](psim::Cpu& cpu) {
      OpContext ctx;
      ctx.cpu = &cpu;
      ctx.thread = p;
      start_barrier.arrive_and_wait(cpu);
      spec::worker_loop(
          *queue, cfg, p, ctx, tallies[static_cast<std::size_t>(p)],
          [&cpu] { return cpu.now(); },
          [&cpu](std::uint64_t cycles) { cpu.advance(cycles); });
    });
  }

  eng.run();
  queue->quiesce();

  BenchmarkResult out = spec::merge(tallies, *queue);
  out.makespan = eng.horizon();
  out.unit = "cycles";
  out.machine_stats = eng.stats();
  return out;
}

}  // namespace harness
