// The fiber/simulator driver: executes the shared workload spec on the
// psim simulated ccNUMA machine. Each worker is a virtual processor;
// latencies are simulated cycles and the run is fully deterministic.
#include <memory>
#include <vector>

#include "harness/backend.hpp"
#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace harness {

BenchmarkResult run_sim_benchmark(const BenchmarkConfig& cfg) {
  spec::validate(cfg);
  const Backend& backend =
      BackendRegistry::instance().require(Flavor::Sim, cfg.structure);

  // Skip queues get a dedicated GC processor on top of the workers.
  const bool gc_proc = backend.has(Backend::kGcDaemon) && cfg.use_gc;
  psim::MachineConfig machine = cfg.machine;
  machine.processors = cfg.processors + (gc_proc ? 1 : 0);
  machine.seed = cfg.seed;
  psim::Engine eng(machine);

  const BackendInit init{cfg, &eng};
  auto queue = backend.make(init);
  queue->register_daemons();

  // Relaxed structures get their delete-min quality priced (fiber switches
  // make the probe's relaxed atomics effectively free here).
  std::unique_ptr<spec::RankErrorProbe> probe;
  if (backend.has(Backend::kRelaxed))
    probe = std::make_unique<spec::RankErrorProbe>();
  const std::shared_ptr<const Trace> trace = spec::resolve_trace(cfg);
  spec::prefill(*queue, cfg, probe.get(), trace.get());

  const int workers = cfg.processors;
  std::vector<spec::WorkerTally> tallies(static_cast<std::size_t>(workers));
  psim::Barrier start_barrier(eng, workers);

  for (int p = 0; p < workers; ++p) {
    eng.add_processor([&, p](psim::Cpu& cpu) {
      OpContext ctx;
      ctx.cpu = &cpu;
      ctx.thread = p;
      start_barrier.arrive_and_wait(cpu);
      spec::run_worker(
          *queue, cfg, p, ctx, tallies[static_cast<std::size_t>(p)],
          [&cpu] { return cpu.now(); },
          [&cpu](std::uint64_t cycles) { cpu.advance(cycles); }, probe.get(),
          trace.get());
    });
  }

  eng.run();
  queue->quiesce();

  BenchmarkResult out = spec::merge(tallies, *queue);
  out.makespan = eng.horizon();
  out.unit = "cycles";
  out.machine_stats = eng.stats();

  // Structure counters plus the machine's cache/coherence breakdown, under
  // one namespace-prefixed key set (see docs/TELEMETRY.md). Backends that
  // own no reclaimer get the zero-valued reclaim.* block so every run
  // emits the same schema.
  out.telemetry = queue->telemetry();
  slpq::fill_reclaim_zero(out.telemetry);
  const psim::SimStats& st = out.machine_stats;
  out.telemetry.set("sim.reads", st.reads);
  out.telemetry.set("sim.writes", st.writes);
  out.telemetry.set("sim.rmws", st.rmws);
  out.telemetry.set("sim.cache_hits", st.cache_hits);
  out.telemetry.set("sim.miss_cold", st.miss_cold);
  out.telemetry.set("sim.miss_shared", st.miss_shared);
  out.telemetry.set("sim.miss_remote_dirty", st.miss_remote_dirty);
  out.telemetry.set("sim.miss_upgrade", st.miss_upgrade);
  out.telemetry.set("sim.invalidations_sent", st.invalidations_sent);
  out.telemetry.set("sim.writebacks", st.writebacks);
  out.telemetry.set("sim.dir_queue_cycles", st.dir_queue_cycles);
  out.telemetry.set("sim.dir_queued_events", st.dir_queued_events);
  out.telemetry.set("sim.lock_acquires", st.lock_acquires);
  out.telemetry.set("sim.lock_contended", st.lock_contended);
  out.telemetry.set("sim.fiber_switches", st.fiber_switches);
  out.telemetry.set("sim.runahead_elided", st.runahead_elided);
  out.telemetry.set("sim.host_wall_ns", st.host_wall_ns);
  out.telemetry.set("sim.host_events_per_sec",
                    static_cast<std::uint64_t>(st.host_events_per_sec()));
  out.telemetry.set("sim.clock_reads", st.clock_reads);
  if (probe) spec::fold_rank_error(out.telemetry, out.rank_error);
  return out;
}

}  // namespace harness
