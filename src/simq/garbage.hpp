// Timestamp-based garbage collection (paper, Section 3).
//
// "It is safe to free the memory used by a particular node only after all
// the processors that were in the structure when the node was deleted have
// already exited the structure." Each processor registers its entry time in
// a shared array; each retired node is stamped with its deletion time; a
// dedicated collector processor frees a node once its deletion time
// precedes the entry time of the oldest processor still inside.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "sim/engine.hpp"

namespace simq {

using psim::Cpu;
using psim::Cycles;

inline constexpr Cycles kMaxTime = std::numeric_limits<Cycles>::max();

/// Shared array of per-processor entry times. A processor writes its clock
/// value on entering the queue and kMaxTime on exiting; the collector scans
/// the array (each scan is real shared-memory traffic in the model).
class EntryRegistry {
 public:
  explicit EntryRegistry(psim::Engine& eng) {
    entries_.reserve(static_cast<std::size_t>(eng.config().processors));
    for (int p = 0; p < eng.config().processors; ++p)
      entries_.emplace_back(eng.memory(), kMaxTime);
  }

  /// Registers the caller as inside the structure; returns its entry time.
  Cycles enter(Cpu& cpu) {
    const Cycles t = cpu.clock();
    cpu.write(entries_[static_cast<std::size_t>(cpu.id())], t);
    return t;
  }

  void exit(Cpu& cpu) {
    cpu.write(entries_[static_cast<std::size_t>(cpu.id())], kMaxTime);
  }

  /// Entry time of the oldest processor inside the structure, or kMaxTime
  /// if nobody is. Reads every slot (the collector pays for the scan).
  Cycles oldest(Cpu& cpu) const {
    Cycles best = kMaxTime;
    for (const auto& e : entries_) best = std::min(best, cpu.read(e));
    return best;
  }

  /// Untimed view for tests.
  Cycles raw_entry(int proc) const {
    return entries_[static_cast<std::size_t>(proc)].raw();
  }

 private:
  mutable std::vector<psim::Var<Cycles>> entries_;
};

/// Per-processor garbage lists of retired nodes awaiting reclamation.
/// Node is any type; reclamation hands nodes back through a callback
/// (usually a pool's release()).
template <typename Node>
class GarbageLists {
 public:
  explicit GarbageLists(int processors)
      : lists_(static_cast<std::size_t>(processors)) {}

  /// Appends a node to the caller's garbage list, stamped with the caller's
  /// current clock (the node's deletion time).
  void retire(Cpu& cpu, Node* node) {
    const Cycles stamp = cpu.clock();
    lists_[static_cast<std::size_t>(cpu.id())].push_back(Item{node, stamp});
    ++retired_;
  }

  /// Collector pass: frees, via free_fn(Node*), every node whose deletion
  /// time precedes `oldest`. Lists are FIFO and stamps are monotone per
  /// processor, so only prefixes are freed. Returns nodes freed.
  template <typename FreeFn>
  std::size_t collect(Cycles oldest, FreeFn&& free_fn) {
    std::size_t freed = 0;
    for (auto& list : lists_) {
      while (!list.empty() && list.front().deleted_at < oldest) {
        free_fn(list.front().node);
        list.pop_front();
        ++freed;
        ++collected_;
      }
    }
    return freed;
  }

  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& l : lists_) n += l.size();
    return n;
  }

  std::uint64_t total_retired() const { return retired_; }
  std::uint64_t total_collected() const { return collected_; }

 private:
  struct Item {
    Node* node;
    Cycles deleted_at;
  };
  std::vector<std::deque<Item>> lists_;
  std::uint64_t retired_ = 0;
  std::uint64_t collected_ = 0;
};

/// Body of the dedicated collector processor (paper: "we assigned a
/// dedicated processor to do all the garbage collection"). Runs as an
/// engine daemon: scans, sleeps `period` cycles, repeats until the
/// simulation is stopping; then drains everything (at shutdown nobody is
/// inside the structure anymore).
template <typename Node, typename FreeFn>
void collector_body(Cpu& cpu, const EntryRegistry& registry,
                    GarbageLists<Node>& garbage, FreeFn free_fn,
                    Cycles period = 2000) {
  while (!cpu.stopping()) {
    const Cycles oldest = registry.oldest(cpu);
    garbage.collect(oldest, free_fn);
    cpu.advance(period);
  }
  garbage.collect(kMaxTime, free_fn);
}

}  // namespace simq
