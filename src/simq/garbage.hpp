// Memory reclamation on the simulated multiprocessor.
//
// The paper's scheme (Section 3) is timestamp GC: "It is safe to free the
// memory used by a particular node only after all the processors that were
// in the structure when the node was deleted have already exited the
// structure." Each processor registers its entry time in a shared array;
// each retired node is stamped with its deletion time; a dedicated
// collector processor frees a node once its deletion time precedes the
// entry time of the oldest processor still inside.
//
// SimReclaimer generalizes that machinery into the same four policies the
// native queues expose through --reclaim (slpq/reclaim.hpp):
//   * ts     — the paper's scheme, exactly as before (EntryRegistry +
//              stamp-ordered GarbageLists + collector scan).
//   * hp     — hazard pointers: walkers publish each node they stand on
//              into per-processor slots (one simulated write per publish —
//              the per-step cost that defines HP); the collector scan
//              reads every slot and frees retired nodes nobody covers.
//   * epoch  — 3-epoch QSBR: entering processors copy the global epoch
//              into a per-processor cell; the collector advances the
//              global epoch once every cell is current or quiescent and
//              frees nodes retired two epochs ago.
//   * leaky  — retire() only queues; everything is freed in the shutdown
//              drain. The zero-overhead baseline.
// Every registry read and write above goes through Cpu::read/write, so the
// coherence cost of each policy's bookkeeping lands in SimStats just like
// the queues' own traffic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "slpq/reclaim.hpp"

namespace simq {

using psim::Cpu;
using psim::Cycles;

inline constexpr Cycles kMaxTime = std::numeric_limits<Cycles>::max();

/// Shared array of per-processor entry times. A processor writes its clock
/// value on entering the queue and kMaxTime on exiting; the collector scans
/// the array (each scan is real shared-memory traffic in the model).
class EntryRegistry {
 public:
  explicit EntryRegistry(psim::Engine& eng) {
    entries_.reserve(static_cast<std::size_t>(eng.config().processors));
    for (int p = 0; p < eng.config().processors; ++p)
      entries_.emplace_back(eng.memory(), kMaxTime);
  }

  /// Registers the caller as inside the structure; returns its entry time.
  Cycles enter(Cpu& cpu) {
    const Cycles t = cpu.clock();
    cpu.write(entries_[static_cast<std::size_t>(cpu.id())], t);
    return t;
  }

  void exit(Cpu& cpu) {
    cpu.write(entries_[static_cast<std::size_t>(cpu.id())], kMaxTime);
  }

  /// Entry time of the oldest processor inside the structure, or kMaxTime
  /// if nobody is. Reads every slot (the collector pays for the scan).
  Cycles oldest(Cpu& cpu) const {
    Cycles best = kMaxTime;
    for (const auto& e : entries_) best = std::min(best, cpu.read(e));
    return best;
  }

  /// Untimed view for tests.
  Cycles raw_entry(int proc) const {
    return entries_[static_cast<std::size_t>(proc)].raw();
  }

 private:
  mutable std::vector<psim::Var<Cycles>> entries_;
};

/// Per-processor garbage lists of retired nodes awaiting reclamation.
/// Node is any type; reclamation hands nodes back through a callback
/// (usually a pool's release()).
template <typename Node>
class GarbageLists {
 public:
  explicit GarbageLists(int processors)
      : lists_(static_cast<std::size_t>(processors)) {}

  /// Appends a node to the caller's garbage list, stamped with the caller's
  /// current clock (the node's deletion time).
  void retire(Cpu& cpu, Node* node) {
    retire_stamped(cpu, node, cpu.clock());
  }

  /// Same, with a caller-chosen stamp (SimReclaimer's epoch policy stamps
  /// with the retirement epoch instead of the clock). Stamps must stay
  /// monotone per processor for collect()'s prefix rule to be exact.
  void retire_stamped(Cpu& cpu, Node* node, Cycles stamp) {
    lists_[static_cast<std::size_t>(cpu.id())].push_back(Item{node, stamp});
    ++retired_;
  }

  /// Collector pass: frees, via free_fn(Node*), every node whose deletion
  /// time precedes `oldest`. Lists are FIFO and stamps are monotone per
  /// processor, so only prefixes are freed. Returns nodes freed.
  template <typename FreeFn>
  std::size_t collect(Cycles oldest, FreeFn&& free_fn) {
    std::size_t freed = 0;
    for (auto& list : lists_) {
      while (!list.empty() && list.front().deleted_at < oldest) {
        free_fn(list.front().node);
        list.pop_front();
        ++freed;
        ++collected_;
      }
    }
    return freed;
  }

  /// Records each per-processor list's current length. The hazard policy
  /// takes this cut BEFORE reading the hazard slots and passes it to
  /// collect_if: only nodes retired before the (non-atomic, many-event)
  /// snapshot began may be freed by it. A node retired mid-snapshot can be
  /// protected by a hazard published into a slot the snapshot had already
  /// read; restricting the pass to the pre-snapshot prefix restores the
  /// ordering Michael's scheme gets for free from scanning the retiring
  /// thread's own list (every examined node retired before the scan).
  void sizes(std::vector<std::size_t>& out) const {
    out.clear();
    out.reserve(lists_.size());
    for (const auto& l : lists_) out.push_back(l.size());
  }

  /// Unordered variant for hazard pointers: frees, among the first
  /// `limits[p]` entries of processor p's list (a cut taken by sizes()
  /// before the hazard snapshot), every retired node for which
  /// `unprotected(node)` holds, regardless of stamp order (a hazard can
  /// cover a node retired long ago while newer ones are free). Entries
  /// past the cut are never examined or moved ahead of it. Returns nodes
  /// freed.
  template <typename Pred, typename FreeFn>
  std::size_t collect_if(const std::vector<std::size_t>& limits,
                         Pred&& unprotected, FreeFn&& free_fn) {
    std::size_t freed = 0;
    for (std::size_t li = 0; li < lists_.size(); ++li) {
      auto& list = lists_[li];
      std::size_t limit = std::min(limits[li], list.size());
      for (std::size_t i = 0; i < limit;) {
        if (unprotected(list[i].node)) {
          free_fn(list[i].node);
          // Fill the hole with the last pre-cut entry, then close the gap
          // that leaves with the overall last entry (a post-cut one).
          --limit;
          list[i] = list[limit];
          if (limit != list.size() - 1) list[limit] = list.back();
          list.pop_back();
          ++freed;
          ++collected_;
        } else {
          ++i;
        }
      }
    }
    return freed;
  }

  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& l : lists_) n += l.size();
    return n;
  }

  std::uint64_t total_retired() const { return retired_; }
  std::uint64_t total_collected() const { return collected_; }

 private:
  struct Item {
    Node* node;
    Cycles deleted_at;
  };
  std::vector<std::deque<Item>> lists_;
  std::uint64_t retired_ = 0;
  std::uint64_t collected_ = 0;
};

/// Body of the dedicated collector processor (paper: "we assigned a
/// dedicated processor to do all the garbage collection"). Runs as an
/// engine daemon: scans, sleeps `period` cycles, repeats until the
/// simulation is stopping; then drains everything (at shutdown nobody is
/// inside the structure anymore).
template <typename Node, typename FreeFn>
void collector_body(Cpu& cpu, const EntryRegistry& registry,
                    GarbageLists<Node>& garbage, FreeFn free_fn,
                    Cycles period = 2000) {
  while (!cpu.stopping()) {
    const Cycles oldest = registry.oldest(cpu);
    garbage.collect(oldest, free_fn);
    cpu.advance(period);
  }
  garbage.collect(kMaxTime, free_fn);
}

/// Per-processor hazard-pointer slots in simulated shared memory. Each
/// processor's slots live on their own cache line (hazard arrays are
/// write-mostly by their owner; sharing a line would invent false traffic
/// the real structure avoids). publish() is one simulated write — charged
/// to the walker, which is exactly hazard pointers' per-step cost — and
/// the collector pays a read of every slot per scan.
class HazardSlots {
 public:
  HazardSlots(psim::Engine& eng, int slots_per_proc)
      : slots_per_proc_(slots_per_proc) {
    const int procs = eng.config().processors;
    slots_.reserve(static_cast<std::size_t>(procs * slots_per_proc));
    for (int p = 0; p < procs; ++p) {
      const psim::Addr base = eng.memory().alloc(
          static_cast<std::size_t>(slots_per_proc) * 8, psim::kLineBytes);
      for (int s = 0; s < slots_per_proc; ++s)
        slots_.emplace_back(base + static_cast<psim::Addr>(s) * 8,
                            static_cast<const void*>(nullptr));
    }
  }

  int slots_per_proc() const noexcept { return slots_per_proc_; }

  /// Publishes `p` in the caller's slot `slot` (one simulated write).
  void publish(Cpu& cpu, int slot, const void* p) {
    cpu.write(at(cpu.id(), slot), p);
  }

  /// Clears every slot the caller owns (simulated writes; exit path).
  void clear(Cpu& cpu) {
    for (int s = 0; s < slots_per_proc_; ++s)
      cpu.write(at(cpu.id(), s), static_cast<const void*>(nullptr));
  }

  /// Collector scan: reads every slot of every processor. The caller pays
  /// the full scan — use snapshot() + membership tests to amortize over
  /// many nodes.
  ///
  /// The slots are read in DESCENDING index order, and that order is load-
  /// bearing: the queues' traversals migrate a hazard from a higher slot to
  /// a lower one (candidate -> pred promote, carry-down a level, claim pin)
  /// by publishing in the destination first and only later overwriting the
  /// source. This snapshot is not atomic — each read is a simulated event
  /// and walkers run between them — so an ascending scan could read the low
  /// slot before the publish and the high slot after the overwrite, missing
  /// the node in both and freeing it under the walker. Descending reads
  /// close that window: if the high slot was already overwritten, the
  /// publish into the strictly-lower destination happened first, and the
  /// scan has yet to read it.
  void snapshot(Cpu& cpu, std::vector<const void*>& out) const {
    out.clear();
    out.reserve(slots_.size());
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
      const void* p = cpu.read(*it);
      if (p != nullptr) out.push_back(p);
    }
  }

  /// Untimed view for tests.
  const void* raw_slot(int proc, int slot) const {
    return slots_[index(proc, slot)].raw();
  }

 private:
  std::size_t index(int proc, int slot) const {
    return static_cast<std::size_t>(proc) *
               static_cast<std::size_t>(slots_per_proc_) +
           static_cast<std::size_t>(slot);
  }
  psim::Var<const void*>& at(int proc, int slot) const {
    return slots_[index(proc, slot)];
  }

  int slots_per_proc_;
  mutable std::vector<psim::Var<const void*>> slots_;
};

/// Per-processor epoch cells plus the global epoch word (3-epoch QSBR).
/// Entering processors copy the global epoch into their cell (one read +
/// one write); the collector advances the global epoch once every cell is
/// quiescent or already current, and nodes retired in epoch e are free
/// once the global epoch reaches e + 2.
class EpochCells {
 public:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  explicit EpochCells(psim::Engine& eng) : global_(eng.memory(), 2) {
    cells_.reserve(static_cast<std::size_t>(eng.config().processors));
    for (int p = 0; p < eng.config().processors; ++p) {
      const psim::Addr a = eng.memory().alloc(8, psim::kLineBytes);
      cells_.emplace_back(a, kQuiescent);
    }
  }

  /// Marks the caller active in the current epoch; returns that epoch.
  std::uint64_t enter(Cpu& cpu) {
    const std::uint64_t e = cpu.read(global_);
    cpu.write(cells_[static_cast<std::size_t>(cpu.id())], e);
    return e;
  }

  void exit(Cpu& cpu) {
    cpu.write(cells_[static_cast<std::size_t>(cpu.id())], kQuiescent);
  }

  /// Reads the global epoch (retirement stamp; one simulated read).
  std::uint64_t current(Cpu& cpu) const { return cpu.read(global_); }

  /// Collector pass: scans every cell; if no processor is still active in
  /// an older epoch, bumps the global epoch. Returns the (possibly new)
  /// global epoch. The scan reads every cell — real modeled traffic.
  std::uint64_t try_advance(Cpu& cpu) {
    const std::uint64_t e = cpu.read(global_);
    for (const auto& c : cells_) {
      const std::uint64_t seen = cpu.read(c);
      if (seen != kQuiescent && seen < e) return e;  // straggler
    }
    cpu.write(global_, e + 1);
    return e + 1;
  }

  /// Untimed views for tests.
  std::uint64_t raw_global() const { return global_.raw(); }
  std::uint64_t raw_cell(int proc) const {
    return cells_[static_cast<std::size_t>(proc)].raw();
  }

 private:
  mutable psim::Var<std::uint64_t> global_;
  mutable std::vector<psim::Var<std::uint64_t>> cells_;
};

/// Policy-dispatched reclamation for the simulated queues: one object that
/// owns the paper's EntryRegistry/GarbageLists pair plus the hazard and
/// epoch registries, selected by slpq::ReclaimPolicy so the sim queues
/// expose the same --reclaim knob as the native ones. See the header
/// comment for what each policy models and what traffic it charges.
template <typename Node>
class SimReclaimer {
 public:
  SimReclaimer(psim::Engine& eng, slpq::ReclaimPolicy policy,
               int hazard_slots)
      : policy_(policy),
        registry_(eng),
        garbage_(eng.config().processors) {
    if (policy_ == slpq::ReclaimPolicy::kHazard)
      hazards_ = std::make_unique<HazardSlots>(eng, hazard_slots);
    if (policy_ == slpq::ReclaimPolicy::kEpoch)
      epochs_ = std::make_unique<EpochCells>(eng);
  }

  slpq::ReclaimPolicy policy() const noexcept { return policy_; }

  /// Entry protocol; returns the operation's entry time (every policy
  /// reports the clock, only ts pays a shared write for it).
  Cycles enter(Cpu& cpu) {
    switch (policy_) {
      case slpq::ReclaimPolicy::kTimestamp: return registry_.enter(cpu);
      case slpq::ReclaimPolicy::kEpoch: {
        const Cycles t = cpu.clock();
        epochs_->enter(cpu);
        return t;
      }
      case slpq::ReclaimPolicy::kHazard:
      case slpq::ReclaimPolicy::kLeaky: return cpu.clock();
    }
    return cpu.clock();
  }

  void exit(Cpu& cpu) {
    switch (policy_) {
      case slpq::ReclaimPolicy::kTimestamp: registry_.exit(cpu); return;
      case slpq::ReclaimPolicy::kEpoch: epochs_->exit(cpu); return;
      case slpq::ReclaimPolicy::kHazard: hazards_->clear(cpu); return;
      case slpq::ReclaimPolicy::kLeaky: return;
    }
  }

  /// Publishes the node a walker is standing on (hp: one simulated write;
  /// every other policy: free). Call on each traversal step whose target
  /// a concurrent reclaimer could otherwise free under the walker.
  void protect(Cpu& cpu, int slot, const Node* n) {
    if (policy_ == slpq::ReclaimPolicy::kHazard)
      hazards_->publish(cpu, slot, n);
  }

  /// Queues an unlinked node for reclamation. ts stamps the deletion
  /// clock; epoch stamps the retirement epoch (one simulated read).
  void retire(Cpu& cpu, Node* node) {
    switch (policy_) {
      case slpq::ReclaimPolicy::kEpoch:
        garbage_.retire_stamped(cpu, node, epochs_->current(cpu));
        return;
      case slpq::ReclaimPolicy::kTimestamp:
      case slpq::ReclaimPolicy::kHazard:
      case slpq::ReclaimPolicy::kLeaky:
        garbage_.retire(cpu, node);
        return;
    }
  }

  /// One collector pass under the active policy. Returns nodes freed.
  template <typename FreeFn>
  std::size_t collect(Cpu& cpu, FreeFn&& free_fn) {
    ++scans_;
    std::size_t freed = 0;
    switch (policy_) {
      case slpq::ReclaimPolicy::kTimestamp:
        freed = garbage_.collect(registry_.oldest(cpu), free_fn);
        break;
      case slpq::ReclaimPolicy::kHazard: {
        // Cut the retired lists BEFORE the slot reads (see sizes()): the
        // snapshot spans many simulated events, and a node retired while
        // it runs may be covered by a hazard published into a slot already
        // read. Nodes retired before the cut had their hazards published
        // strictly earlier, so every slot read sees them.
        garbage_.sizes(cut_);
        hazards_->snapshot(cpu, scratch_);
        const auto& covered = scratch_;
        freed = garbage_.collect_if(
            cut_,
            [&covered](const Node* n) {
              for (const void* p : covered)
                if (p == n) return false;
              return true;
            },
            free_fn);
        break;
      }
      case slpq::ReclaimPolicy::kEpoch: {
        const std::uint64_t e = epochs_->try_advance(cpu);
        // Stamp e' is free once e >= e' + 2, i.e. stamp < e - 1.
        freed = garbage_.collect(e >= 1 ? e - 1 : 0, free_fn);
        break;
      }
      case slpq::ReclaimPolicy::kLeaky:
        break;  // only the shutdown drain frees
    }
    stalls_ += garbage_.pending();
    return freed;
  }

  /// Collector daemon body: scan, sleep, repeat; drain at shutdown (by
  /// then nobody is inside the structure, so even leaky frees — the pool
  /// outlives the run and must get its nodes back).
  template <typename FreeFn>
  void collector_loop(Cpu& cpu, FreeFn free_fn, Cycles period) {
    while (!cpu.stopping()) {
      collect(cpu, free_fn);
      cpu.advance(period);
    }
    garbage_.collect(kMaxTime, free_fn);
  }

  GarbageLists<Node>& garbage() { return garbage_; }
  const GarbageLists<Node>& garbage() const { return garbage_; }
  const EntryRegistry& registry() const { return registry_; }
  const HazardSlots* hazards() const { return hazards_.get(); }
  const EpochCells* epochs() const { return epochs_.get(); }

  std::uint64_t scans() const { return scans_; }
  std::uint64_t stalls() const { return stalls_; }

 private:
  slpq::ReclaimPolicy policy_;
  EntryRegistry registry_;
  GarbageLists<Node> garbage_;
  std::unique_ptr<HazardSlots> hazards_;
  std::unique_ptr<EpochCells> epochs_;
  std::vector<const void*> scratch_;  // host-side scan buffer
  std::vector<std::size_t> cut_;      // pre-snapshot retired-list lengths
  std::uint64_t scans_ = 0;
  std::uint64_t stalls_ = 0;  // pending nodes surviving a scan, summed
};

}  // namespace simq
