#include "simq/sim_linden_queue.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace simq {

namespace {

constexpr Key kHeadKey = std::numeric_limits<Key>::min();
constexpr Key kTailKey = std::numeric_limits<Key>::max();

// Defensive bound on list walks: the simulation is deterministic, so an
// algorithmic livelock would otherwise spin the host forever.
constexpr std::uint64_t kWalkLimit = 1'000'000;

[[noreturn]] void walk_overflow(const char* where) {
  throw std::runtime_error(
      std::string("SimLindenQueue: runaway traversal in ") + where);
}

// Simulated layout of a node: three header words then one next word per
// level. Matches what a C struct with a trailing array would be.
constexpr psim::Addr kKeyOff = 0;
constexpr psim::Addr kValueOff = 8;
constexpr psim::Addr kInsertingOff = 16;
constexpr psim::Addr kLevelBase = 24;
constexpr psim::Addr kLevelStride = 8;

std::size_t node_bytes(int level) {
  return static_cast<std::size_t>(
      kLevelBase + kLevelStride * static_cast<psim::Addr>(level));
}

// Scoped entry-registry membership (paper, Section 3).
class ScopedEntry {
 public:
  ScopedEntry(EntryRegistry& reg, Cpu& cpu, bool active)
      : reg_(reg), cpu_(cpu), active_(active) {
    if (active_) reg_.enter(cpu_);
  }
  ~ScopedEntry() {
    if (active_) reg_.exit(cpu_);
  }
  ScopedEntry(const ScopedEntry&) = delete;
  ScopedEntry& operator=(const ScopedEntry&) = delete;

 private:
  EntryRegistry& reg_;
  Cpu& cpu_;
  bool active_;
};

}  // namespace

LindenNode::LindenNode(psim::Engine& eng, int lvl)
    : base(eng.memory().alloc(node_bytes(lvl), 8)),
      key(base + kKeyOff, Key{}),
      value(base + kValueOff, Value{}),
      inserting(base + kInsertingOff, 0),
      level(lvl) {
  next.reserve(static_cast<std::size_t>(lvl));
  for (int i = 0; i < lvl; ++i)
    next.emplace_back(
        base + kLevelBase + kLevelStride * static_cast<psim::Addr>(i),
        std::uintptr_t{0});
}

LindenNode* LindenNodePool::fetch(int level) {
  auto& bucket = free_by_level_[static_cast<std::size_t>(level)];
  if (!bucket.empty()) {
    LindenNode* node = bucket.back();
    bucket.pop_back();
    ++reused_;
    ++node->generation;
    node->live = true;
    return node;
  }
  all_.push_back(std::make_unique<LindenNode>(eng_, level));
  ++created_;
  LindenNode* node = all_.back().get();
  node->live = true;
  return node;
}

LindenNode* LindenNodePool::acquire_raw(int level, Key key, Value value) {
  LindenNode* node = fetch(level);
  node->key.set_raw(key);
  node->value.set_raw(value);
  node->inserting.set_raw(0);
  for (auto& nx : node->next) nx.set_raw(0);
  return node;
}

LindenNode* LindenNodePool::acquire(Cpu& cpu, int level, Key key,
                                    Value value) {
  LindenNode* node = fetch(level);
  cpu.advance(20);  // allocator bookkeeping happens in local memory
  cpu.write(node->key, key);
  cpu.write(node->value, value);
  return node;
}

void LindenNodePool::release(LindenNode* node) {
  assert(node->live && "double release");
  node->live = false;
  ++released_;
  free_by_level_[static_cast<std::size_t>(node->level)].push_back(node);
}

SimLindenQueue::SimLindenQueue(psim::Engine& eng, Options opt)
    : eng_(eng),
      opt_(opt),
      pool_(eng, opt.max_level),
      registry_(eng),
      garbage_(eng.config().processors),
      seed_rng_(eng.config().seed ^ 0x11DE9A11ULL),
      level_dist_(opt.p, opt.max_level) {
  if (opt_.max_level < 1) throw std::invalid_argument("max_level must be >= 1");
  if (opt_.boundoffset < 1) opt_.boundoffset = 1;
  head_ = pool_.acquire_raw(opt_.max_level, kHeadKey, 0);
  tail_ = pool_.acquire_raw(opt_.max_level, kTailKey, 0);
  for (int i = 0; i < opt_.max_level; ++i)
    head_->next[static_cast<std::size_t>(i)].set_raw(pack(tail_, false));
  // Telemetry baseline: sentinel allocations don't count as pool_refills.
  created_base_ = pool_.created();
  level_rngs_.reserve(static_cast<std::size_t>(eng.config().processors));
  for (int p = 0; p < eng.config().processors; ++p)
    level_rngs_.emplace_back(eng.config().seed * 0x9E3779B97F4A7C15ULL +
                             static_cast<std::uint64_t>(p) + 1);
}

void SimLindenQueue::spawn_collector() {
  if (!opt_.use_gc)
    throw std::logic_error("spawn_collector with Options::use_gc == false");
  eng_.add_processor(
      [this](Cpu& cpu) {
        collector_body(
            cpu, registry_, garbage_,
            [this](LindenNode* node) { pool_.release(node); }, opt_.gc_period);
      },
      /*daemon=*/true);
}

int SimLindenQueue::random_level(Cpu& cpu) {
  return level_dist_(level_rngs_[static_cast<std::size_t>(cpu.id())]);
}

bool SimLindenQueue::key_before(Cpu& cpu, LindenNode* n, Key key) const {
  if (n == tail_) return false;
  return cpu.read(n->key) < key;
}

LindenNode* SimLindenQueue::locate_preds(Cpu& cpu, Key key,
                                         std::vector<LindenNode*>& preds,
                                         std::vector<LindenNode*>& succs) {
  LindenNode* del = nullptr;
  LindenNode* x = head_;
  std::uint64_t steps = 0;
  for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    std::uintptr_t w = cpu.read(x->next[ulv]);
    for (;;) {
      if (++steps > kWalkLimit) walk_overflow("locate_preds");
      const bool d = is_marked(w);  // only ever set at the bottom level
      LindenNode* c = strip(w);
      if (c == tail_) break;
      if (!key_before(cpu, c, key) && !is_marked(cpu.read(c->next[0])) &&
          !(lv == 0 && d))
        break;
      if (lv == 0 && d) del = c;
      x = c;
      w = cpu.read(x->next[ulv]);
    }
    preds[ulv] = x;
    succs[ulv] = strip(w);
  }
  return del;
}

void SimLindenQueue::insert(Cpu& cpu, Key key, Value value) {
  ScopedEntry entry(registry_, cpu, opt_.use_gc);

  const int top = random_level(cpu);
  LindenNode* n = pool_.acquire(cpu, top, key, value);
  cpu.write(n->inserting, std::uint64_t{1});

  const auto levels = static_cast<std::size_t>(opt_.max_level);
  std::vector<LindenNode*> preds(levels);
  std::vector<LindenNode*> succs(levels);

  // Bottom level first; its CAS is the insert's linearization. The expected
  // value is unmarked, so a new node never lands inside the dead prefix.
  LindenNode* del;
  std::uint64_t attempts = 0;
  for (;;) {
    if (++attempts > kWalkLimit) walk_overflow("insert");
    del = locate_preds(cpu, key, preds, succs);
    cpu.write(n->next[0], pack(succs[0], false));
    if (cpu.cas(preds[0]->next[0], pack(succs[0], false), pack(n, false)))
      break;
    counters_.add(slpq::Counter::kFailedCas);
    counters_.add(slpq::Counter::kInsertRetries);
  }

  // Upper levels: stop if we got claimed, the successor died, or it sits
  // inside the dead prefix.
  for (int lv = 1; lv < top;) {
    const auto ulv = static_cast<std::size_t>(lv);
    cpu.write(n->next[ulv], pack(succs[ulv], false));
    if (is_marked(cpu.read(n->next[0])) ||
        is_marked(cpu.read(succs[ulv]->next[0])) || succs[ulv] == del)
      break;
    if (cpu.cas(preds[ulv]->next[ulv], pack(succs[ulv], false),
                pack(n, false))) {
      ++lv;
      continue;
    }
    counters_.add(slpq::Counter::kFailedCas);
    del = locate_preds(cpu, key, preds, succs);  // competing insert/restruct
    if (succs[0] != n) break;  // we were claimed and bypassed
  }

  cpu.write(n->inserting, std::uint64_t{0});
  ++size_;
}

std::optional<std::pair<Key, Value>> SimLindenQueue::delete_min(Cpu& cpu) {
  ScopedEntry entry(registry_, cpu, opt_.use_gc);

  LindenNode* cur = head_;
  std::uintptr_t w = cpu.read(head_->next[0]);
  const std::uintptr_t obs_head = w;
  LindenNode* newhead = nullptr;  // earliest node the head swing must keep
  std::size_t offset = 0;
  LindenNode* claimed = nullptr;
  std::uint64_t steps = 0;

  for (;;) {
    if (++steps > kWalkLimit) walk_overflow("delete_min");
    LindenNode* c = strip(w);
    if (c == tail_) return std::nullopt;
    if (is_marked(w)) {  // c is already deleted: count and skip it
      ++offset;
      counters_.add(slpq::Counter::kPrefixNodes);
      if (newhead == nullptr && cpu.read(c->inserting) != 0) newhead = c;
      cur = c;
      w = cpu.read(cur->next[0]);
      continue;
    }
    // The claim: one fetch-or on the last dead node's (or head's) pointer.
    const std::uintptr_t prev =
        cpu.fetch_or(cur->next[0], std::uintptr_t{1});
    if (is_marked(prev)) {
      counters_.add(slpq::Counter::kClaimLosses);
      w = prev;  // lost the race: prev's target is dead, walk on
      continue;
    }
    claimed = strip(prev);
    ++offset;
    break;
  }

  counters_.add(slpq::Counter::kClaimWins);
  const Key k = cpu.read(claimed->key);
  const Value v = cpu.read(claimed->value);
  --size_;

  if (offset >= static_cast<std::size_t>(opt_.boundoffset)) {
    if (newhead == nullptr) newhead = claimed;
    // One CAS swings head->next[0] past the whole dead prefix; the unique
    // winner repairs the upper levels and retires the bypassed chain
    // (frozen: every pointer in it is marked).
    if (cpu.cas(head_->next[0], obs_head, pack(newhead, true))) {
      ++restructures_;
      counters_.add(slpq::Counter::kRestructures);
      restructure(cpu);
      LindenNode* g = strip(obs_head);
      while (g != newhead) {
        LindenNode* nx = strip(cpu.read(g->next[0]));
        garbage_.retire(cpu, g);
        g = nx;
      }
    }
  }
  return std::make_pair(k, v);
}

void SimLindenQueue::restructure(Cpu& cpu) {
  LindenNode* pred = head_;
  std::uint64_t steps = 0;
  for (int lv = opt_.max_level - 1; lv >= 1;) {
    const auto ulv = static_cast<std::size_t>(lv);
    if (++steps > kWalkLimit) walk_overflow("restructure");
    LindenNode* h = strip(cpu.read(head_->next[ulv]));
    if (!is_marked(cpu.read(h->next[0]))) {
      --lv;
      continue;
    }
    LindenNode* cur = strip(cpu.read(pred->next[ulv]));
    while (is_marked(cpu.read(cur->next[0]))) {
      if (++steps > kWalkLimit) walk_overflow("restructure");
      pred = cur;
      cur = strip(cpu.read(pred->next[ulv]));
    }
    if (cpu.cas(head_->next[ulv], pack(h, false), pack(cur, false))) --lv;
  }
}

void SimLindenQueue::seed(Key key, Value value) {
  if (key == kHeadKey || key == kTailKey)
    throw std::invalid_argument("SimLindenQueue: sentinel key");
  const int top = level_dist_(seed_rng_);
  LindenNode* n = pool_.acquire_raw(top, key, value);

  // Pre-run: no marks exist yet, so a plain sorted-position splice works.
  std::vector<LindenNode*> preds(static_cast<std::size_t>(opt_.max_level));
  LindenNode* x = head_;
  for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    LindenNode* c = strip(x->next[ulv].raw());
    while (c != tail_ && c->key.raw() < key) {
      x = c;
      c = strip(x->next[ulv].raw());
    }
    preds[ulv] = x;
  }
  for (int lv = 0; lv < top; ++lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    n->next[ulv].set_raw(preds[ulv]->next[ulv].raw());
    preds[ulv]->next[ulv].set_raw(pack(n, false));
  }
  ++size_;
}

std::vector<Key> SimLindenQueue::keys_raw() const {
  std::vector<Key> keys;
  std::uintptr_t w = head_->next[0].raw();
  while (strip(w) != tail_) {
    LindenNode* c = strip(w);
    if (!is_marked(w)) keys.push_back(c->key.raw());
    w = c->next[0].raw();
  }
  return keys;
}

std::size_t SimLindenQueue::size_raw() const {
  return size_ < 0 ? 0 : static_cast<std::size_t>(size_);
}

slpq::TelemetrySnapshot SimLindenQueue::telemetry() const {
  slpq::TelemetrySnapshot snap;
  counters_.fill(snap);
  snap.set(slpq::counter_name(slpq::Counter::kPoolRefills),
           pool_.created() - created_base_);
  snap.set(slpq::counter_name(slpq::Counter::kPoolReused), pool_.reused());
  snap.set(slpq::counter_name(slpq::Counter::kGcReclaimed),
           garbage_.total_collected());
  snap.set(slpq::counter_name(slpq::Counter::kGcDeferred),
           garbage_.total_retired() - garbage_.total_collected());
  return snap;
}

}  // namespace simq
