#include "simq/sim_linden_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace simq {

namespace {

constexpr Key kHeadKey = std::numeric_limits<Key>::min();
constexpr Key kTailKey = std::numeric_limits<Key>::max();

// Defensive bound on list walks: the simulation is deterministic, so an
// algorithmic livelock would otherwise spin the host forever.
constexpr std::uint64_t kWalkLimit = 1'000'000;

[[noreturn]] void walk_overflow(const char* where) {
  throw std::runtime_error(
      std::string("SimLindenQueue: runaway traversal in ") + where);
}

// Simulated layout of a node: five header words then one next word per
// level. Matches what a C struct with a trailing array would be.
constexpr psim::Addr kKeyOff = 0;
constexpr psim::Addr kValueOff = 8;
constexpr psim::Addr kInsertingOff = 16;
constexpr psim::Addr kSweptOff = 24;
constexpr psim::Addr kPrevRetiredOff = 32;
constexpr psim::Addr kLevelBase = 40;
constexpr psim::Addr kLevelStride = 8;

std::size_t node_bytes(int level) {
  return static_cast<std::size_t>(
      kLevelBase + kLevelStride * static_cast<psim::Addr>(level));
}

// Scoped reclaimer membership (paper, Section 3, generalized to every
// --reclaim policy).
class ScopedEntry {
 public:
  ScopedEntry(SimReclaimer<LindenNode>& gc, Cpu& cpu, bool active)
      : gc_(gc), cpu_(cpu), active_(active) {
    if (active_) gc_.enter(cpu_);
  }
  ~ScopedEntry() {
    if (active_) gc_.exit(cpu_);
  }
  ScopedEntry(const ScopedEntry&) = delete;
  ScopedEntry& operator=(const ScopedEntry&) = delete;

 private:
  SimReclaimer<LindenNode>& gc_;
  Cpu& cpu_;
  bool active_;
};

LindenNode* strip_word(std::uintptr_t w) {
  return reinterpret_cast<LindenNode*>(w & ~std::uintptr_t{1});
}

// Hazard-protected word chase along owner->next[lv]: read the packed next
// word, publish its target in `slot`, re-read until stable. Re-read
// validation alone proves nothing here — dead-prefix pointers are frozen,
// so a stale word validates forever while its target may already be freed.
// The real guarantee is `owner` being unswept: sweeps retire in strict
// list order, so an unswept owner means every node after it is unretired,
// and a hazard published before the swept check is seen by any later
// collector scan. Sets *swept and returns 0 when owner was already swept;
// the caller restarts from the head. Under every other policy this is a
// single plain read. The caller must keep `owner` protected while this
// runs.
std::uintptr_t protected_word(Cpu& cpu, SimReclaimer<LindenNode>& gc,
                              LindenNode* owner, std::size_t lv, int slot,
                              bool* swept) {
  psim::Var<std::uintptr_t>& src = owner->next[lv];
  std::uintptr_t w = cpu.read(src);
  if (gc.policy() != slpq::ReclaimPolicy::kHazard) return w;
  for (;;) {
    gc.protect(cpu, slot, strip_word(w));
    if (cpu.read(owner->swept) != 0) {
      *swept = true;
      return 0;
    }
    const std::uintptr_t again = cpu.read(src);
    if (strip_word(again) == strip_word(w)) return again;
    w = again;
  }
}

}  // namespace

LindenNode::LindenNode(psim::Engine& eng, int lvl)
    : base(eng.memory().alloc(node_bytes(lvl), 8)),
      key(base + kKeyOff, Key{}),
      value(base + kValueOff, Value{}),
      inserting(base + kInsertingOff, 0),
      swept(base + kSweptOff, 0),
      prev_retired(base + kPrevRetiredOff, 0),
      level(lvl) {
  next.reserve(static_cast<std::size_t>(lvl));
  for (int i = 0; i < lvl; ++i)
    next.emplace_back(
        base + kLevelBase + kLevelStride * static_cast<psim::Addr>(i),
        std::uintptr_t{0});
}

LindenNode* LindenNodePool::fetch(int level) {
  auto& bucket = free_by_level_[static_cast<std::size_t>(level)];
  if (!bucket.empty()) {
    LindenNode* node = bucket.back();
    bucket.pop_back();
    ++reused_;
    ++node->generation;
    node->live = true;
    return node;
  }
  all_.push_back(std::make_unique<LindenNode>(eng_, level));
  ++created_;
  LindenNode* node = all_.back().get();
  node->live = true;
  return node;
}

LindenNode* LindenNodePool::acquire_raw(int level, Key key, Value value) {
  LindenNode* node = fetch(level);
  node->key.set_raw(key);
  node->value.set_raw(value);
  node->inserting.set_raw(0);
  for (auto& nx : node->next) nx.set_raw(0);
  return node;
}

LindenNode* LindenNodePool::acquire(Cpu& cpu, int level, Key key,
                                    Value value) {
  LindenNode* node = fetch(level);
  cpu.advance(20);  // allocator bookkeeping happens in local memory
  cpu.write(node->key, key);
  cpu.write(node->value, value);
  return node;
}

void LindenNodePool::release(LindenNode* node) {
  assert(node->live && "double release");
  node->swept.set_raw(0);         // allocator-side scrub of the sweep
  node->prev_retired.set_raw(0);  // protocol flags before reuse
  node->live = false;
  ++released_;
  free_by_level_[static_cast<std::size_t>(node->level)].push_back(node);
}

SimLindenQueue::SimLindenQueue(psim::Engine& eng, Options opt)
    : eng_(eng),
      opt_(opt),
      pool_(eng, opt.max_level),
      // Hazard slots: the claim pin and restructure peek scratch at the
      // bottom (see claim_slot()/peek_slot() for why they sit below the
      // traversal slots), then pred+succ per level.
      gc_(eng, opt.reclaim,
          /*hazard_slots=*/2 * std::max(opt.max_level, 1) + 2),
      seed_rng_(eng.config().seed ^ 0x11DE9A11ULL),
      level_dist_(opt.p, opt.max_level) {
  if (opt_.max_level < 1) throw std::invalid_argument("max_level must be >= 1");
  if (opt_.boundoffset < 1) opt_.boundoffset = 1;
  head_ = pool_.acquire_raw(opt_.max_level, kHeadKey, 0);
  tail_ = pool_.acquire_raw(opt_.max_level, kTailKey, 0);
  for (int i = 0; i < opt_.max_level; ++i)
    head_->next[static_cast<std::size_t>(i)].set_raw(pack(tail_, false));
  // Telemetry baseline: sentinel allocations don't count as pool_refills.
  created_base_ = pool_.created();
  level_rngs_.reserve(static_cast<std::size_t>(eng.config().processors));
  for (int p = 0; p < eng.config().processors; ++p)
    level_rngs_.emplace_back(eng.config().seed * 0x9E3779B97F4A7C15ULL +
                             static_cast<std::uint64_t>(p) + 1);
}

void SimLindenQueue::spawn_collector() {
  if (!opt_.use_gc)
    throw std::logic_error("spawn_collector with Options::use_gc == false");
  eng_.add_processor(
      [this](Cpu& cpu) {
        gc_.collector_loop(
            cpu, [this](LindenNode* node) { pool_.release(node); },
            opt_.gc_period);
      },
      /*daemon=*/true);
}

int SimLindenQueue::random_level(Cpu& cpu) {
  return level_dist_(level_rngs_[static_cast<std::size_t>(cpu.id())]);
}

bool SimLindenQueue::key_before(Cpu& cpu, LindenNode* n, Key key) const {
  if (n == tail_) return false;
  return cpu.read(n->key) < key;
}

LindenNode* SimLindenQueue::locate_preds(Cpu& cpu, Key key,
                                         std::vector<LindenNode*>& preds,
                                         std::vector<LindenNode*>& succs) {
  std::uint64_t steps = 0;
restart:
  LindenNode* del = nullptr;
  LindenNode* x = head_;
  for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    const int ps = pred_slot(lv);
    gc_.protect(cpu, ps, x);  // carry the pred down a level
    bool swept = false;
    std::uintptr_t w = protected_word(cpu, gc_, x, ulv, ps + 1, &swept);
    for (;;) {
      if (swept) {  // hazard-validation restart
        counters_.add(slpq::Counter::kInsertRetries);
        goto restart;
      }
      if (++steps > kWalkLimit) walk_overflow("locate_preds");
      const bool d = is_marked(w);  // only ever set at the bottom level
      LindenNode* c = strip(w);
      if (c == tail_) break;
      if (!key_before(cpu, c, key) && !is_marked(cpu.read(c->next[0])) &&
          !(lv == 0 && d))
        break;
      if (lv == 0 && d) del = c;
      gc_.protect(cpu, ps, c);  // promote: the candidate slot covers it
      x = c;
      w = protected_word(cpu, gc_, x, ulv, ps + 1, &swept);
    }
    preds[ulv] = x;  // stays protected in its pred slot for the caller
    succs[ulv] = strip(w);
  }
  return del;
}

void SimLindenQueue::insert(Cpu& cpu, Key key, Value value) {
  ScopedEntry entry(gc_, cpu, opt_.use_gc);

  const int top = random_level(cpu);
  LindenNode* n = pool_.acquire(cpu, top, key, value);
  cpu.write(n->inserting, std::uint64_t{1});

  const auto levels = static_cast<std::size_t>(opt_.max_level);
  std::vector<LindenNode*> preds(levels);
  std::vector<LindenNode*> succs(levels);

  // Bottom level first; its CAS is the insert's linearization. The expected
  // value is unmarked, so a new node never lands inside the dead prefix.
  LindenNode* del;
  std::uint64_t attempts = 0;
  for (;;) {
    if (++attempts > kWalkLimit) walk_overflow("insert");
    del = locate_preds(cpu, key, preds, succs);
    cpu.write(n->next[0], pack(succs[0], false));
    if (cpu.cas(preds[0]->next[0], pack(succs[0], false), pack(n, false)))
      break;
    counters_.add(slpq::Counter::kFailedCas);
    counters_.add(slpq::Counter::kInsertRetries);
  }

  // Upper levels: stop if we got claimed, the successor died, or it sits
  // inside the dead prefix.
  for (int lv = 1; lv < top;) {
    const auto ulv = static_cast<std::size_t>(lv);
    cpu.write(n->next[ulv], pack(succs[ulv], false));
    if (is_marked(cpu.read(n->next[0])) ||
        is_marked(cpu.read(succs[ulv]->next[0])) || succs[ulv] == del)
      break;
    if (cpu.cas(preds[ulv]->next[ulv], pack(succs[ulv], false),
                pack(n, false))) {
      ++lv;
      continue;
    }
    counters_.add(slpq::Counter::kFailedCas);
    del = locate_preds(cpu, key, preds, succs);  // competing insert/restruct
    if (succs[0] != n) break;  // we were claimed and bypassed
  }

  cpu.write(n->inserting, std::uint64_t{0});
  ++size_;
}

std::optional<std::pair<Key, Value>> SimLindenQueue::delete_min(Cpu& cpu) {
  ScopedEntry entry(gc_, cpu, opt_.use_gc);
  const bool hp = gc_.policy() == slpq::ReclaimPolicy::kHazard;
  std::uint64_t steps = 0;

restart:
  LindenNode* cur = head_;
  const int ps = pred_slot(0);
  gc_.protect(cpu, ps, cur);
  bool swept = false;
  std::uintptr_t w = protected_word(cpu, gc_, cur, 0, ps + 1, &swept);
  const std::uintptr_t obs_head = w;
  LindenNode* newhead = nullptr;  // earliest node the head swing must keep
  std::size_t offset = 0;
  LindenNode* claimed = nullptr;

  for (;;) {
    if (swept) {  // hazard-validation restart
      counters_.add(slpq::Counter::kDeleteRetries);
      goto restart;
    }
    if (++steps > kWalkLimit) walk_overflow("delete_min");
    LindenNode* c = strip(w);
    if (c == tail_) return std::nullopt;
    if (is_marked(w)) {  // c is already deleted: count and skip it
      ++offset;
      counters_.add(slpq::Counter::kPrefixNodes);
      if (newhead == nullptr && cpu.read(c->inserting) != 0) newhead = c;
      gc_.protect(cpu, ps, c);  // promote: the candidate slot covers it
      cur = c;
      w = protected_word(cpu, gc_, cur, 0, ps + 1, &swept);
      continue;
    }
    if (hp) {
      // CAS (not fetch_or) so the claim lands on the vetted node: c is the
      // only successor our hazard protects, and a blind fetch_or could
      // mark an unvetted, unprotected splice that raced in between.
      if (cpu.cas(cur->next[0], pack(c, false), pack(c, true))) {
        if (cur == head_) {
          // Genesis root: the head's own pointer was marked before any
          // sweep could have run, so c has no unretired predecessors.
          cpu.write(c->prev_retired, std::uint64_t{1});
        }
        claimed = c;
        ++offset;
        break;
      }
      counters_.add(slpq::Counter::kFailedCas);
      counters_.add(slpq::Counter::kClaimLosses);
      w = protected_word(cpu, gc_, cur, 0, ps + 1, &swept);  // re-vet the word
      continue;
    }
    // The claim: one fetch-or on the last dead node's (or head's) pointer.
    const std::uintptr_t prev =
        cpu.fetch_or(cur->next[0], std::uintptr_t{1});
    if (is_marked(prev)) {
      counters_.add(slpq::Counter::kClaimLosses);
      w = prev;  // lost the race: prev's target is dead, walk on
      continue;
    }
    claimed = strip(prev);
    ++offset;
    break;
  }

  counters_.add(slpq::Counter::kClaimWins);
  // Pin the claim below the traversal slots (a descending migration — the
  // only direction the collector's snapshot order guarantees to catch).
  gc_.protect(cpu, claim_slot(), claimed);  // outlives the sweep below
  const Key k = cpu.read(claimed->key);
  const Value v = cpu.read(claimed->value);
  --size_;

  if (offset >= static_cast<std::size_t>(opt_.boundoffset)) {
    if (newhead == nullptr) newhead = claimed;
    // One CAS swings head->next[0] past the whole dead prefix; the unique
    // winner repairs the upper levels and retires the bypassed chain
    // (frozen: every pointer in it is marked).
    if (cpu.cas(head_->next[0], obs_head, pack(newhead, true))) {
      ++restructures_;
      counters_.add(slpq::Counter::kRestructures);
      if (hp && is_marked(obs_head)) {
        // Sweeps must retire in strict list order (protected_word's swept
        // check depends on it): wait until the predecessor sweep — whose
        // range ends exactly at our first node — has finished retiring.
        // Our range is untouched while we wait: only we may retire it.
        while (cpu.read(strip(obs_head)->prev_retired) == 0)
          cpu.advance(20);
      }
      restructure(cpu);
      // The winner owns the bypassed chain exclusively (every pointer in
      // it is marked and the head swing removed it), so the retire walk
      // needs no hazards of its own — but under hazard pointers each node
      // is flagged swept (in list order) just before retiring, which is
      // what sends still-parked travellers back to the head.
      LindenNode* g = strip(obs_head);
      while (g != newhead) {
        LindenNode* nx = strip(cpu.read(g->next[0]));
        if (hp) cpu.write(g->swept, std::uint64_t{1});
        gc_.retire(cpu, g);
        g = nx;
      }
      if (hp) cpu.write(newhead->prev_retired, std::uint64_t{1});
    }
  }
  return std::make_pair(k, v);
}

void SimLindenQueue::restructure(Cpu& cpu) {
  const bool hp = gc_.policy() == slpq::ReclaimPolicy::kHazard;
  std::uint64_t steps = 0;
restart:
  LindenNode* pred = head_;
  for (int lv = opt_.max_level - 1; lv >= 1;) {
    const auto ulv = static_cast<std::size_t>(lv);
    if (++steps > kWalkLimit) walk_overflow("restructure");
    const std::uintptr_t hw = cpu.read(head_->next[ulv]);
    LindenNode* h = strip(hw);
    if (hp) {
      // Entry from the head: the upper head pointer is live (inserts and
      // restructures move it), so re-read validation is meaningful here.
      gc_.protect(cpu, peek_slot(), h);
      if (cpu.read(head_->next[ulv]) != hw) continue;  // moved: re-read level
    }
    if (!is_marked(cpu.read(h->next[0]))) {
      --lv;
      continue;
    }
    const int ps = pred_slot(lv);
    gc_.protect(cpu, ps, pred);  // carry pred into this level's slot
    bool swept = false;
    LindenNode* cur =
        strip(protected_word(cpu, gc_, pred, ulv, ps + 1, &swept));
    if (swept) goto restart;
    while (is_marked(cpu.read(cur->next[0]))) {
      if (++steps > kWalkLimit) walk_overflow("restructure");
      gc_.protect(cpu, ps, cur);  // promote: the candidate slot covers it
      pred = cur;
      cur = strip(protected_word(cpu, gc_, pred, ulv, ps + 1, &swept));
      if (swept) goto restart;
    }
    if (cpu.cas(head_->next[ulv], pack(h, false), pack(cur, false))) --lv;
  }
}

void SimLindenQueue::seed(Key key, Value value) {
  if (key == kHeadKey || key == kTailKey)
    throw std::invalid_argument("SimLindenQueue: sentinel key");
  const int top = level_dist_(seed_rng_);
  LindenNode* n = pool_.acquire_raw(top, key, value);

  // Pre-run: no marks exist yet, so a plain sorted-position splice works.
  std::vector<LindenNode*> preds(static_cast<std::size_t>(opt_.max_level));
  LindenNode* x = head_;
  for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    LindenNode* c = strip(x->next[ulv].raw());
    while (c != tail_ && c->key.raw() < key) {
      x = c;
      c = strip(x->next[ulv].raw());
    }
    preds[ulv] = x;
  }
  for (int lv = 0; lv < top; ++lv) {
    const auto ulv = static_cast<std::size_t>(lv);
    n->next[ulv].set_raw(preds[ulv]->next[ulv].raw());
    preds[ulv]->next[ulv].set_raw(pack(n, false));
  }
  ++size_;
}

std::vector<Key> SimLindenQueue::keys_raw() const {
  std::vector<Key> keys;
  std::uintptr_t w = head_->next[0].raw();
  while (strip(w) != tail_) {
    LindenNode* c = strip(w);
    if (!is_marked(w)) keys.push_back(c->key.raw());
    w = c->next[0].raw();
  }
  return keys;
}

std::size_t SimLindenQueue::size_raw() const {
  return size_ < 0 ? 0 : static_cast<std::size_t>(size_);
}

slpq::TelemetrySnapshot SimLindenQueue::telemetry() const {
  slpq::TelemetrySnapshot snap;
  counters_.fill(snap);
  snap.set(slpq::counter_name(slpq::Counter::kPoolRefills),
           pool_.created() - created_base_);
  snap.set(slpq::counter_name(slpq::Counter::kPoolReused), pool_.reused());
  const auto& garbage = gc_.garbage();
  snap.set(slpq::counter_name(slpq::Counter::kGcReclaimed),
           garbage.total_collected());
  snap.set(slpq::counter_name(slpq::Counter::kGcDeferred),
           garbage.total_retired() - garbage.total_collected());
  snap.set("reclaim.retired", garbage.total_retired());
  snap.set("reclaim.freed", garbage.total_collected());
  snap.set("reclaim.scans", gc_.scans());
  snap.set("reclaim.stalls", gc_.stalls());
  snap.set("reclaim.pending", garbage.pending());
  return snap;
}

}  // namespace simq
