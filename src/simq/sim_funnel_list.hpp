// SimFunnelList: the paper's FunnelList baseline — a sorted linked list
// whose single lock is fronted by a combining funnel (Shavit & Zemach).
//
// Processors that want to operate on the list first descend through the
// funnel's collision layers. At each layer a processor SWAPs a pointer to
// its request into a random slot and inspects what it swapped out; on a
// collision the two processors combine — one becomes the representative
// and carries both requests onward, the other waits for its answer. The
// representative that emerges from the last layer acquires the list lock
// and applies the whole batch: insertions are merged into the sorted list,
// and a batch of delete-mins cuts the required number of items off the
// head in one traversal.
//
// The funnel's width is sized to the machine (≈ processors/4 per layer,
// two layers), a simplification of the fully adaptive scheme in [38]; the
// paper's qualitative findings (best at low concurrency on small lists,
// linear-time collapse on large lists) do not depend on the adaptation
// policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_skipqueue.hpp"  // Key/Value aliases

namespace simq {

class SimFunnelList {
 public:
  struct Options {
    int layers = 2;        ///< funnel depth
    int width = 0;         ///< slots per layer; 0 = max(1, processors/4)
    Cycles spin_backoff = 40;  ///< waiter poll interval
  };

  explicit SimFunnelList(psim::Engine& eng) : SimFunnelList(eng, Options()) {}
  SimFunnelList(psim::Engine& eng, Options opt);

  /// Inserts (key, value); duplicates are allowed (kept adjacent).
  void insert(Cpu& cpu, Key key, Value value);

  /// Removes and returns the minimal item, or nullopt if the list is empty.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu);

  // ---- host-side helpers -------------------------------------------------
  void seed(Key key, Value value);
  std::vector<Key> keys_raw() const;
  std::size_t size_raw() const { return keys_raw().size(); }
  bool check_invariants_raw(std::string* err = nullptr) const;

  std::uint64_t combines() const { return combines_; }
  std::uint64_t batches_applied() const { return batches_; }

  /// Operation counters (host-side, invisible to the simulated machine)
  /// plus the funnel's own combine/batch tallies; see docs/TELEMETRY.md.
  slpq::TelemetrySnapshot telemetry() const {
    slpq::TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set("combines", combines_);
    snap.set("batches_applied", batches_);
    return snap;
  }

 private:
  enum class Op : std::uint64_t { Insert, DeleteMin };
  enum class State : std::uint64_t {
    Idle,       // not in the funnel
    Combining,  // descending, owns its group
    Waiting,    // captured by a representative
    Applying,   // past the funnel, about to take the list lock
    Done        // result fields are valid
  };

  struct ListNode {
    explicit ListNode(psim::Engine& eng)
        : key(eng.memory(), Key{}),
          value(eng.memory(), Value{}),
          next(eng.memory(), nullptr) {}
    psim::Var<Key> key;
    psim::Var<Value> value;
    psim::Var<ListNode*> next;
  };

  /// One per processor, reused across operations.
  struct Request {
    explicit Request(psim::Engine& eng)
        : state(eng.memory(), static_cast<std::uint64_t>(State::Idle)),
          lock(eng) {}
    psim::Var<std::uint64_t> state;
    psim::Mutex lock;
    // Host-side payload (only the owner or its captor touches these, and
    // capture happens under `lock`).
    Op op = Op::Insert;
    Key key = 0;
    Value value = 0;
    bool found = false;  // delete-min: false => EMPTY
    Key result_key = 0;
    Value result_value = 0;
    std::vector<Request*> group;  // valid while state == Combining
  };

  State read_state(Cpu& cpu, Request& r) {
    return static_cast<State>(cpu.read(r.state));
  }
  void write_state(Cpu& cpu, Request& r, State s) {
    cpu.write(r.state, static_cast<std::uint64_t>(s));
  }

  /// Funnel descent + batch application; fills r's result fields.
  void execute(Cpu& cpu, Request& r);

  /// Applies every request in the group to the list (list lock held).
  void apply_batch(Cpu& cpu, std::vector<Request*>& group);

  void list_insert(Cpu& cpu, Key key, Value value);
  bool list_pop_min(Cpu& cpu, Key* key, Value* value);

  ListNode* alloc_node(Cpu& cpu);
  void free_node(ListNode* n);

  psim::Engine& eng_;
  Options opt_;
  psim::Mutex list_lock_;
  ListNode* head_;  // sentinel
  std::vector<std::vector<psim::Var<Request*>>> funnel_;  // [layer][slot]
  std::vector<Request> requests_;                         // per processor
  std::vector<slpq::detail::Xoshiro256> rngs_;            // per processor
  std::vector<std::unique_ptr<ListNode>> arena_;
  std::vector<ListNode*> free_nodes_;
  std::uint64_t combines_ = 0;
  std::uint64_t batches_ = 0;
  slpq::OpCounters counters_;  // host-side, not simulated state
};

}  // namespace simq
