// SimHuntHeap: the concurrent heap of Hunt, Michael, Parthasarathy & Scott
// ("An Efficient Algorithm for Concurrent Priority Queue Heaps", IPL 1996)
// on the simulated multiprocessor — the paper's strongest baseline.
//
// Key features reproduced:
//  * an array-based binary min-heap with one lock per element plus a single
//    heap lock protecting the size variable — held only briefly ("the
//    heap's size is updated, then a lock on either the first or last
//    element ... is acquired and then the first lock is released");
//  * insertions reserve slots in *bit-reversed* order within each heap
//    level, so consecutive inserts bubble up along edge-disjoint paths;
//  * insertions proceed bottom-up with a PID tag so a concurrent delete
//    that moves a half-inserted item is detected and chased;
//  * deletions take the last item, place it at the root, and sift down
//    hand-over-hand (lock parent, then children).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "slpq/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_skipqueue.hpp"  // Key/Value aliases

namespace simq {

class SimHuntHeap {
 public:
  struct Options {
    std::size_t capacity = 1 << 16;  ///< heaps must pre-allocate (paper §1.2)
  };

  SimHuntHeap(psim::Engine& eng, Options opt);

  /// Inserts (key, value). Returns false if the heap is full. Duplicate
  /// keys are allowed (the heap has no update-in-place path).
  bool insert(Cpu& cpu, Key key, Value value);

  /// Removes and returns the minimal item, or nullopt if empty.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu);

  // ---- host-side helpers -------------------------------------------------
  /// Pre-populates before the run (sequential sift-up insert).
  void seed(Key key, Value value);

  std::size_t size_raw() const { return static_cast<std::size_t>(size_.raw()); }

  /// Heap-order invariant over AVAILABLE items; tags must be AVAILABLE for
  /// slots in [1, size] and EMPTY beyond.
  bool check_invariants_raw(std::string* err = nullptr) const;

  /// The slot that the s-th item occupies: keep the leading bit of s,
  /// bit-reverse the rest. Consecutive values share no tree edges below
  /// their common level. Exposed for tests.
  static std::size_t bit_rev_slot(std::size_t s);

  /// Operation counters (host-side, invisible to the simulated machine);
  /// see docs/TELEMETRY.md. The heap is a fixed array with no node pool or
  /// GC, so those counters stay zero.
  slpq::TelemetrySnapshot telemetry() const {
    slpq::TelemetrySnapshot snap;
    counters_.fill(snap);
    return snap;
  }

 private:
  static constexpr std::int64_t kTagEmpty = -1;
  static constexpr std::int64_t kTagAvailable = -2;

  struct Slot {
    Slot(psim::Engine& eng);
    psim::Var<Key> key;
    psim::Var<Value> value;
    psim::Var<std::int64_t> tag;  // kTagEmpty / kTagAvailable / owner PID
    psim::Mutex lock;
  };

  void swap_slots(Cpu& cpu, Slot& a, Slot& b);

  Slot& at(std::size_t i) { return slots_[i]; }

  psim::Engine& eng_;
  Options opt_;
  psim::Mutex heap_lock_;        // protects size_
  psim::Var<std::uint64_t> size_;
  std::vector<Slot> slots_;      // 1-based; slots_[0] unused
  slpq::OpCounters counters_;    // host-side, not simulated state
};

}  // namespace simq
