// SimMultiQueue: the MultiQueue relaxed priority queue (Williams & Sanders,
// "Engineering MultiQueues") on the simulated multiprocessor — the modern
// endpoint of the paper's Relaxed SkipQueue (Section 5.4), added so pqsim
// sweeps can compare the paper's structures against the design that
// ultimately won the relaxation trade.
//
// Per shard, the simulated state is one cache line holding the shard's
// lock word and its published minimum key; the heap payload is host-side
// (a sequential PairingHeap), because only the *coordination* traffic —
// lock transfers and top-key reads — is what the timing model needs to
// charge. Each simulated processor keeps sticky shard indices, exactly as
// the native slpq::MultiQueue does; the native insertion/deletion buffers
// are omitted here (they amortize lock work that the simulator charges
// per-access anyway, and keeping the sim variant buffer-free makes its
// rank error purely the 2-choice sampling term).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_skipqueue.hpp"  // Key/Value aliases

namespace simq {

class SimMultiQueue {
 public:
  struct Options {
    int c = 2;           ///< shards per processor
    int stickiness = 8;  ///< ops on the same shard before resampling
    std::uint64_t seed = 0x3017A11EULL;
  };

  SimMultiQueue(psim::Engine& eng, Options opt);

  /// Inserts (key, value) into the calling processor's sticky shard.
  void insert(Cpu& cpu, Key key, Value value);

  /// Removes some small item (2-choice sampled shard minimum), or nullopt
  /// after a sweep of all shards found every one empty.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu);

  // ---- host-side helpers -------------------------------------------------
  /// Pre-populates before the run (round-robin across shards).
  void seed(Key key, Value value);

  std::size_t size_raw() const;
  std::size_t num_shards() const { return shards_.size(); }
  const Options& options() const { return opt_; }

  /// Operation counters (host-side, invisible to the simulated machine);
  /// see docs/TELEMETRY.md. The shard heaps are host-side payload with no
  /// shared node pool or GC, so those counters stay zero.
  slpq::TelemetrySnapshot telemetry() const {
    slpq::TelemetrySnapshot snap;
    counters_.fill(snap);
    return snap;
  }

 private:
  /// Published-top sentinel: no workload key reaches INT64_MAX.
  static constexpr Key kEmptyTop = std::numeric_limits<Key>::max();

  struct Shard {
    explicit Shard(psim::Engine& eng);
    psim::Addr base;           // start of the shard's private line
    psim::Mutex lock;          // word 0 of the shard's private line
    psim::Var<Key> top;        // word 1: published minimum (kEmptyTop = none)
    slpq::detail::PairingHeap<Key, Value> heap;  // host-side payload
  };

  struct CpuState {
    slpq::detail::Xoshiro256 rng{1};
    std::size_t ins_shard = 0;
    std::size_t del_shard = 0;
    int ins_stick = 0;
    int del_stick = 0;
  };

  Shard& pick_insert_shard(Cpu& cpu, CpuState& st);
  void publish(Cpu& cpu, Shard& s);

  psim::Engine& eng_;
  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<CpuState> cpus_;
  std::size_t seed_rr_ = 0;  // round-robin cursor for host-side seeding
  slpq::OpCounters counters_;  // host-side, not simulated state
};

}  // namespace simq
