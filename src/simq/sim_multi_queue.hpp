// SimMultiQueue: the MultiQueue relaxed priority queue (Williams & Sanders,
// "Engineering MultiQueues") on the simulated multiprocessor — the modern
// endpoint of the paper's Relaxed SkipQueue (Section 5.4), added so pqsim
// sweeps can compare the paper's structures against the design that
// ultimately won the relaxation trade.
//
// Per shard, the simulated state is one cache line holding the shard's
// lock word and its published minimum key; the heap payload is host-side
// (a sequential PairingHeap), because only the *coordination* traffic —
// lock transfers and top-key reads — is what the timing model needs to
// charge. Each simulated processor keeps sticky shard indices plus the
// engineered per-thread buffers, mirroring the native slpq::MultiQueue:
//
//  * insert goes into a host-side sorted insertion buffer with zero
//    simulated traffic; when it fills, the `batch` largest items move
//    into one shard under a single charged lock acquisition.
//  * delete_min serves the smaller of the insertion-buffer minimum and
//    the deletion-buffer head for free; an empty deletion buffer is
//    refilled with up to `batch` heap pops in one charged lock hold
//    (2-choice sampled on two charged top reads).
//  * buffer-aware invalidation: before serving the deletion buffer, one
//    charged read of the sticky shard's published top checks whether the
//    buffer went stale; if so and the try-lock succeeds, the remainder
//    merges back and a fresh batch is taken.
//
// The buffers themselves are host memory because a real per-thread buffer
// lives in lines only its owner touches — the protocol traffic the
// simulator prices is exactly the traffic buffering removes.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "slpq/detail/histogram.hpp"
#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "slpq/topo.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/sim_skipqueue.hpp"  // Key/Value aliases

namespace simq {

class SimMultiQueue {
 public:
  struct Options {
    int c = 2;           ///< shards per processor
    int stickiness = 8;  ///< lock acquisitions on a shard before resampling
    std::size_t insertion_buffer = 8;  ///< per-cpu pending-insert capacity
    std::size_t deletion_buffer = 8;   ///< per-cpu popped-batch capacity
    std::size_t batch = 8;  ///< max items moved per shard-lock acquisition
    bool stale_invalidation = true;  ///< refresh a beaten deletion buffer
    std::uint64_t seed = 0x3017A11EULL;
    /// Topology-aware shard selection (--mq-topo): under kNear/kAdaptive
    /// each shard's simulated lines are additionally homed *at* its owner
    /// node via MemorySystem::alloc_near, and sampling is biased to
    /// shards within `topo_radius` Manhattan hops of the caller. kNone
    /// keeps uniform sampling and plain bump allocation.
    slpq::TopoPolicy topo = slpq::TopoPolicy::kNone;
    int topo_radius = 2;  ///< base Manhattan-hop radius for kNear/kAdaptive
  };

  SimMultiQueue(psim::Engine& eng, Options opt);

  /// Buffers (key, value); shared-memory traffic only on buffer overflow.
  void insert(Cpu& cpu, Key key, Value value);

  /// Removes some small item (own buffers first, else a 2-choice sampled
  /// batch refill), or nullopt after a sweep of all shards found every
  /// one empty and the caller's buffers drained.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu);

  // ---- host-side helpers -------------------------------------------------
  /// Pre-populates before the run (round-robin across shards).
  void seed(Key key, Value value);

  /// Pushes every cpu's buffered items back into the shards, untimed.
  /// Call between phases (e.g. before final-size accounting); the sim
  /// driver's quiesce step uses this.
  void quiesce_host();

  /// Empties the whole structure (buffers included), returning every
  /// resident item — the conservation tests' ground truth.
  std::vector<std::pair<Key, Value>> drain_host();

  /// Counts buffered items too.
  std::size_t size_raw() const;
  std::size_t num_shards() const { return shards_.size(); }
  const Options& options() const { return opt_; }

  /// Operation counters (host-side, invisible to the simulated machine)
  /// plus the buffer-engine extras; see docs/TELEMETRY.md. The shard
  /// heaps are host-side payload with no shared node pool or GC, so
  /// those counters stay zero.
  slpq::TelemetrySnapshot telemetry() const;

 private:
  /// Published-top sentinel: no workload key reaches INT64_MAX.
  static constexpr Key kEmptyTop = std::numeric_limits<Key>::max();

  struct Shard {
    /// `owner` is the mesh node the shard stripes to (shard index mod
    /// processors). Under a topology policy the shard's line and heap
    /// arena come from alloc_near(owner, ...); under kNone they come
    /// from the plain bump allocator as before.
    Shard(psim::Engine& eng, int owner, slpq::TopoPolicy topo,
          std::size_t arena_lines);
    psim::Addr base;           // start of the shard's private line
    int owner;                 // mesh node the shard's state is homed near
    psim::Mutex lock;          // word 0 of the shard's private line
    psim::Var<Key> top;        // word 1: published minimum (kEmptyTop = none)
    /// One Var per heap-arena line: the simulated footprint of the heap
    /// payload. Every item moved in a charged lock hold charges one
    /// access here (4 items per 64-byte line), so heap traffic — not
    /// just lock and top-word traffic — prices shard distance.
    std::vector<psim::Var<std::uint64_t>> arena;
    slpq::detail::PairingHeap<Key, Value> heap;  // host-side payload

    psim::Var<std::uint64_t>& arena_word(std::size_t item_idx) {
      return arena[(item_idx / 4) % arena.size()];
    }
  };

  struct CpuState {
    slpq::detail::Xoshiro256 rng{1};
    std::vector<std::pair<Key, Value>> ibuf;  // sorted ascending
    std::vector<std::pair<Key, Value>> dbuf;  // ascending; served from dhead
    std::size_t dhead = 0;
    std::size_t ins_shard = 0;
    std::size_t del_shard = 0;
    int ins_stick = 0;
    int del_stick = 0;
    int radius = 0;                  // current kAdaptive radius (hops)
    std::uint64_t probe_tick = 0;    // resamples since start (probe cadence)
    std::uint64_t flushes = 0;
    std::uint64_t refills = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t local_acquires = 0;
    std::uint64_t fallbacks = 0;
    slpq::detail::LogHistogram hop_hist;  // hops per charged lock acquisition
  };

  Shard& pick_insert_shard(Cpu& cpu, CpuState& st);
  void publish(Cpu& cpu, Shard& s);
  void evict_insertions(Cpu& cpu, CpuState& st);
  void drain_batch(Cpu& cpu, Shard& s, CpuState& st);
  bool revalidate_deletions(Cpu& cpu, CpuState& st);
  bool refill(Cpu& cpu, CpuState& st);
  /// One shard id: uniform over all shards when `global` (or under
  /// kNone), else uniform over the caller's near set at st.radius.
  std::size_t sample_shard(Cpu& cpu, CpuState& st, bool global);
  /// Host-side pricing of a successful charged lock acquisition.
  void record_acquire(Cpu& cpu, const Shard& s, CpuState& st);

  psim::Engine& eng_;
  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<CpuState> cpus_;
  std::unique_ptr<slpq::NearShardOrder> near_;  // kNear/kAdaptive only
  std::size_t seed_rr_ = 0;  // round-robin cursor for host-side seeding
  slpq::OpCounters counters_;  // host-side, not simulated state
};

}  // namespace simq
