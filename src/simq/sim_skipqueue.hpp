// SimSkipQueue: the paper's SkipQueue (Sections 2, 3 and 6) on the
// simulated multiprocessor.
//
// A lock-based concurrent skiplist in the style of Pugh's "Concurrent
// Maintenance of Skip Lists": one lock per (node, level) guarding that
// node's forward pointer at that level, plus a whole-node lock that keeps a
// node from being deleted while it is being inserted. Inserts link bottom-
// up, deletes unlink top-down, and a removed node's forward pointer is
// reversed (made to point at its predecessor) so concurrent traversals that
// still hold it are redirected instead of lost.
//
// Delete-min (the paper's new operation) scans the bottom-level list and
// claims the first unmarked node with an atomic SWAP on its `deleted` flag;
// the winner then performs a regular skiplist delete. A time-stamp written
// after an insert completes lets a deleting processor ignore nodes inserted
// concurrently with its scan, which yields the serialization property of
// Section 4.2. Options::timestamps = false gives the Relaxed SkipQueue of
// Section 5.4.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "simq/garbage.hpp"

namespace simq {

using Key = std::int64_t;
using Value = std::uint64_t;

/// One skiplist node. Simulated words (Var/Mutex) are placed contiguously
/// in one simulated allocation, so a node's fields share cache lines the
/// way a real C struct's would; `pad_nodes` line-aligns the allocation.
struct SkipNode {
  SkipNode(psim::Engine& eng, int level, bool pad,
           psim::LockMode lock_mode = psim::LockMode::Block);

  SkipNode(const SkipNode&) = delete;
  SkipNode& operator=(const SkipNode&) = delete;

  psim::Addr base;  // start of this node's simulated allocation (first member:
                    // the fields below derive their addresses from it)
  psim::Var<Key> key;
  psim::Var<Value> value;
  psim::Var<std::uint64_t> deleted;      // SWAP target for delete-min claims
  psim::Var<Cycles> time_stamp;          // kMaxTime until fully inserted
  psim::Var<std::uint64_t> reversed;     // level bitmask: next[i] is frozen
                                         // (points backwards); hazard walks
                                         // restart instead of validating it
  psim::Mutex node_lock;                 // "lock(node, NODE)" in the paper
  std::vector<psim::Var<SkipNode*>> next;  // [0] is level 1
  std::vector<psim::Mutex> level_locks;    // guards next[i] of this node

  // Host-side metadata (not part of the simulated machine state).
  int level;
  std::uint64_t generation = 0;  // bumped on every pool reuse
  bool live = false;
};

/// Allocation pool for skiplist nodes. The collector returns nodes here;
/// reuse keeps their simulated addresses (as a real allocator would), and
/// bumps `generation` so a use-after-free in the algorithm is detectable.
class SkipNodePool {
 public:
  SkipNodePool(psim::Engine& eng, int max_level, bool pad,
               psim::LockMode lock_mode = psim::LockMode::Block)
      : eng_(eng), max_level_(max_level), pad_(pad), lock_mode_(lock_mode),
        free_by_level_(static_cast<std::size_t>(max_level) + 1) {}

  /// Host-side acquisition (pre-run seeding and internal sentinels).
  SkipNode* acquire_raw(int level, Key key, Value value);

  /// Simulated acquisition: fetches a node and initializes its key, value
  /// and deleted flag with simulated writes (the CreateNode of Fig. 10).
  SkipNode* acquire(Cpu& cpu, int level, Key key, Value value);

  /// Returns a node to the pool (collector callback).
  void release(SkipNode* node);

  std::uint64_t created() const { return created_; }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t released() const { return released_; }

 private:
  SkipNode* fetch(int level);

  psim::Engine& eng_;
  int max_level_;
  bool pad_;
  psim::LockMode lock_mode_;
  std::vector<std::vector<SkipNode*>> free_by_level_;
  std::vector<std::unique_ptr<SkipNode>> all_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
};

class SimSkipQueue {
 public:
  struct Options {
    int max_level = 16;       ///< paper: log2 of the expected max size
    double p = 0.5;           ///< level promotion probability
    bool timestamps = true;   ///< false => Relaxed SkipQueue (Section 5.4)
    bool pad_nodes = false;   ///< ablation: line-align node allocations
    bool use_gc = true;       ///< entry registry + garbage lists + collector
    Cycles gc_period = 2000;  ///< collector scan period
    /// Reclamation policy driven by the collector daemon (--reclaim):
    /// ts (paper Section 3), hp, epoch, or leaky. Only meaningful with
    /// use_gc; hp additionally charges one simulated write per traversal
    /// step for the hazard publication.
    slpq::ReclaimPolicy reclaim = slpq::ReclaimPolicy::kTimestamp;
    /// Ablation: how the per-(node, level) locks wait. Block reproduces the
    /// paper's Proteus semaphores; Spin is test-and-test-and-set.
    psim::LockMode lock_mode = psim::LockMode::Block;
  };

  SimSkipQueue(psim::Engine& eng, Options opt);

  /// Adds the dedicated collector daemon to the engine (call once, before
  /// Engine::run, iff Options::use_gc).
  void spawn_collector();

  /// Inserts (key, value); if the key already exists its value is updated
  /// in place (paper's UPDATED path). Returns true if a new node was
  /// inserted, false if an existing one was updated.
  bool insert(Cpu& cpu, Key key, Value value);

  /// Claims and removes the minimal completed-insert node; returns nullopt
  /// for EMPTY. With Options::timestamps, ignores nodes whose insert
  /// finished after this operation's start (Section 4.2's serialization).
  /// If claim_at is non-null it receives the cycle of the winning SWAP —
  /// the operation's serialization point in the proof of Lemma 1 — or the
  /// cycle of the EMPTY return.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu,
                                                  Cycles* claim_at = nullptr);

  /// The general skiplist Delete (paper, Section 2): claims an arbitrary
  /// key's node via its deleted flag and unlinks it. Returns the removed
  /// value, or nullopt if the key is absent or already claimed.
  std::optional<Value> erase(Cpu& cpu, Key key);

  /// Advisory membership test (a plain skiplist search).
  bool contains(Cpu& cpu, Key key);

  // ---- host-side (pre/post-run) helpers ---------------------------------
  /// Pre-populates the queue before the simulation starts.
  void seed(Key key, Value value);

  /// Keys on the bottom level, in list order (post-run inspection).
  std::vector<Key> keys_raw() const;

  std::size_t size_raw() const;

  /// Structural invariants: bottom level strictly sorted, every node's
  /// level-i successor chain consistent, no marked-but-unremoved nodes.
  /// Returns true and leaves *err empty on success.
  bool check_invariants_raw(std::string* err = nullptr) const;

  const Options& options() const { return opt_; }
  SkipNodePool& pool() { return pool_; }
  GarbageLists<SkipNode>& garbage() { return gc_.garbage(); }
  const EntryRegistry& registry() const { return gc_.registry(); }
  const SimReclaimer<SkipNode>& reclaimer() const { return gc_; }

  /// Operation counters plus pool/GC composition (host-side bookkeeping,
  /// invisible to the simulated machine); see docs/TELEMETRY.md.
  slpq::TelemetrySnapshot telemetry() const;

 private:
  friend class SimSkipQueueTestPeer;

  int random_level(Cpu& cpu);

  /// The paper's getLock(): starting at `node`, advance to the rightmost
  /// node at `level` whose key is < `key`, lock that node's level-`level`
  /// pointer, and revalidate (moving the lock forward if the list changed).
  /// Returns nullptr (nothing locked) on a hazard-validation failure; the
  /// caller re-runs search_preds and retries.
  SkipNode* get_lock(Cpu& cpu, SkipNode* node, Key key, int level);

  /// True iff the hazard policy is active and node's level-li pointer has
  /// been reversed (checked while holding that level's lock).
  bool reversed_under_lock(Cpu& cpu, SkipNode* node, std::size_t li);

  /// Search pass shared by insert and delete: fills saved[i-1] with the
  /// rightmost node at level i whose key < `key`.
  void search_preds(Cpu& cpu, Key key, std::vector<SkipNode*>& saved);

  /// Physical unlink of a node whose deleted flag the caller won; the
  /// shared tail of delete_min and erase.
  void unlink_claimed(Cpu& cpu, SkipNode* node, Key key);

  psim::Engine& eng_;
  Options opt_;
  SkipNodePool pool_;
  SimReclaimer<SkipNode> gc_;
  SkipNode* head_;
  SkipNode* tail_;
  std::vector<slpq::detail::Xoshiro256> level_rngs_;  // one per processor
  slpq::detail::Xoshiro256 seed_rng_;                 // host-side seeding
  slpq::detail::GeometricLevel level_dist_;
  slpq::OpCounters counters_;          // host-side, not simulated state
  std::uint64_t created_base_ = 0;     // pool nodes carved for sentinels
};

}  // namespace simq
