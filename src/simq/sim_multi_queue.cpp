#include "simq/sim_multi_queue.hpp"

#include <cassert>

namespace simq {

SimMultiQueue::Shard::Shard(psim::Engine& eng)
    // One line-aligned simulated line per shard: the lock word and the
    // published top share the shard's private line (fine: both belong to
    // whoever holds the shard), while distinct shards never false-share.
    : base(eng.memory().alloc_line()),
      lock(eng, base),
      top(base + 8, kEmptyTop) {}

SimMultiQueue::SimMultiQueue(psim::Engine& eng, Options opt)
    : eng_(eng), opt_(opt) {
  if (opt_.c < 1) opt_.c = 1;
  if (opt_.stickiness < 1) opt_.stickiness = 1;
  const int procs = eng.config().processors;
  const std::size_t n =
      static_cast<std::size_t>(opt_.c) * static_cast<std::size_t>(procs);
  shards_.reserve(n < 2 ? 2 : n);
  for (std::size_t i = 0; i < (n < 2 ? 2 : n); ++i)
    shards_.push_back(std::make_unique<Shard>(eng));
  cpus_.resize(static_cast<std::size_t>(procs));
  slpq::detail::SplitMix64 sm(opt_.seed);
  for (auto& st : cpus_) st.rng = slpq::detail::Xoshiro256(sm.next());
}

void SimMultiQueue::publish(Cpu& cpu, Shard& s) {
  cpu.write(s.top, s.heap.empty() ? kEmptyTop : s.heap.min_key());
}

SimMultiQueue::Shard& SimMultiQueue::pick_insert_shard(Cpu& cpu,
                                                       CpuState& st) {
  const std::size_t n = shards_.size();
  for (int attempt = 0;; ++attempt) {
    if (st.ins_stick <= 0) {
      st.ins_shard = static_cast<std::size_t>(st.rng.below(n));
      st.ins_stick = opt_.stickiness;
    }
    Shard& s = *shards_[st.ins_shard];
    if (attempt >= 8) {  // bounded fallback so we cannot livelock
      s.lock.lock(cpu);
      --st.ins_stick;
      return s;
    }
    if (s.lock.try_lock(cpu)) {
      --st.ins_stick;
      return s;
    }
    counters_.add(slpq::Counter::kFailedCas);  // contended shard lock
    st.ins_stick = 0;  // contended: break stickiness, resample
  }
}

void SimMultiQueue::insert(Cpu& cpu, Key key, Value value) {
  CpuState& st = cpus_[static_cast<std::size_t>(cpu.id())];
  Shard& s = pick_insert_shard(cpu, st);
  s.heap.push(key, value);
  publish(cpu, s);
  s.lock.unlock(cpu);
}

std::optional<std::pair<Key, Value>> SimMultiQueue::delete_min(Cpu& cpu) {
  CpuState& st = cpus_[static_cast<std::size_t>(cpu.id())];
  const std::size_t n = shards_.size();

  for (int attempt = 0; attempt < 8; ++attempt) {
    if (st.del_stick <= 0) {
      // 2-choice sampling on the published tops (two timed reads).
      const auto a = static_cast<std::size_t>(st.rng.below(n));
      const auto b = static_cast<std::size_t>(st.rng.below(n));
      const Key ka = cpu.read(shards_[a]->top);
      const Key kb = cpu.read(shards_[b]->top);
      st.del_shard = kb < ka ? b : a;
      st.del_stick = opt_.stickiness;
    }
    Shard& s = *shards_[st.del_shard];
    if (cpu.read(s.top) == kEmptyTop) {
      counters_.add(slpq::Counter::kDeleteRetries);
      st.del_stick = 0;
      continue;
    }
    if (!s.lock.try_lock(cpu)) {
      counters_.add(slpq::Counter::kFailedCas);  // contended shard lock
      counters_.add(slpq::Counter::kDeleteRetries);
      st.del_stick = 0;
      continue;
    }
    --st.del_stick;
    if (s.heap.empty()) {  // raced with another consumer
      counters_.add(slpq::Counter::kClaimLosses);
      publish(cpu, s);
      s.lock.unlock(cpu);
      st.del_stick = 0;
      continue;
    }
    auto out = s.heap.pop();
    publish(cpu, s);
    s.lock.unlock(cpu);
    counters_.add(slpq::Counter::kClaimWins);
    return out;
  }

  // Sampling kept missing: deterministic sweep before reporting empty.
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = *shards_[i];
    if (cpu.read(s.top) == kEmptyTop) continue;
    s.lock.lock(cpu);
    if (!s.heap.empty()) {
      auto out = s.heap.pop();
      publish(cpu, s);
      s.lock.unlock(cpu);
      st.del_shard = i;
      st.del_stick = opt_.stickiness;
      counters_.add(slpq::Counter::kClaimWins);
      return out;
    }
    publish(cpu, s);
    s.lock.unlock(cpu);
  }
  return std::nullopt;
}

void SimMultiQueue::seed(Key key, Value value) {
  Shard& s = *shards_[seed_rr_++ % shards_.size()];
  s.heap.push(key, value);
  s.top.set_raw(s.heap.min_key());
}

std::size_t SimMultiQueue::size_raw() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->heap.size();
  return total;
}

}  // namespace simq
