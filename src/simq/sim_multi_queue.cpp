#include "simq/sim_multi_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace simq {

namespace {
constexpr std::size_t kMaxBuffer = 1024;

std::size_t clamp_buf(std::size_t v) {
  return v < 1 ? std::size_t{1} : (v > kMaxBuffer ? kMaxBuffer : v);
}

/// Heap-arena footprint per shard: one line per 4 batch items, clamped to
/// [1, 16] lines — enough that a full batch touches distinct words without
/// letting huge --mq-batch values inflate the directory.
std::size_t arena_lines_for(std::size_t batch) {
  const std::size_t lines = (batch + 3) / 4;
  return lines < 1 ? 1 : (lines > 16 ? 16 : lines);
}
}  // namespace

SimMultiQueue::Shard::Shard(psim::Engine& eng, int owner_node,
                            slpq::TopoPolicy topo, std::size_t arena_lines)
    // One line-aligned simulated line per shard: the lock word and the
    // published top share the shard's private line (fine: both belong to
    // whoever holds the shard), while distinct shards never false-share.
    // Under a topology policy the line and the heap arena are homed at
    // the owner node (arena lines land on the consecutively-numbered,
    // mesh-adjacent nodes after it); under kNone both come from the
    // plain bump allocator.
    : base(topo == slpq::TopoPolicy::kNone
               ? eng.memory().alloc_line()
               : eng.memory().alloc_near(owner_node,
                                         (1 + arena_lines) * psim::kLineBytes)),
      owner(owner_node),
      lock(eng, base),
      top(base + 8, kEmptyTop) {
  psim::Addr arena_base =
      topo == slpq::TopoPolicy::kNone
          ? eng.memory().alloc(arena_lines * psim::kLineBytes, psim::kLineBytes)
          : base + psim::kLineBytes;
  arena.reserve(arena_lines);
  for (std::size_t i = 0; i < arena_lines; ++i)
    arena.emplace_back(arena_base + i * psim::kLineBytes, std::uint64_t{0});
}

SimMultiQueue::SimMultiQueue(psim::Engine& eng, Options opt)
    : eng_(eng), opt_(opt) {
  if (opt_.c < 1) opt_.c = 1;
  if (opt_.stickiness < 1) opt_.stickiness = 1;
  opt_.insertion_buffer = clamp_buf(opt_.insertion_buffer);
  opt_.deletion_buffer = clamp_buf(opt_.deletion_buffer);
  opt_.batch = clamp_buf(opt_.batch);
  if (opt_.topo_radius < 0) opt_.topo_radius = 0;
  const int procs = eng.config().processors;
  const std::size_t n =
      static_cast<std::size_t>(opt_.c) * static_cast<std::size_t>(procs);
  const std::size_t count = n < 2 ? 2 : n;
  const std::size_t arena_lines = arena_lines_for(opt_.batch);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>(
        eng, static_cast<int>(i % static_cast<std::size_t>(procs)), opt_.topo,
        arena_lines));
  if (opt_.topo != slpq::TopoPolicy::kNone) {
    const psim::Mesh2D& mesh = eng.memory().mesh();
    const int diameter = (mesh.width() - 1) + (mesh.height() - 1);
    near_ = std::make_unique<slpq::NearShardOrder>(
        procs, count, diameter,
        [&mesh](int node, int owner) { return mesh.hops(node, owner); });
  }
  cpus_.resize(static_cast<std::size_t>(procs));
  slpq::detail::SplitMix64 sm(opt_.seed);
  for (auto& st : cpus_) {
    st.rng = slpq::detail::Xoshiro256(sm.next());
    st.ibuf.reserve(opt_.insertion_buffer);
    st.dbuf.reserve(opt_.deletion_buffer);
    st.radius = opt_.topo_radius;
  }
}

std::size_t SimMultiQueue::sample_shard(Cpu& cpu, CpuState& st, bool global) {
  const std::size_t n = shards_.size();
  if (global || near_ == nullptr)
    return static_cast<std::size_t>(st.rng.below(n));
  const std::size_t cut = near_->cutoff(cpu.id(), st.radius);
  return near_->shard_at(cpu.id(),
                         static_cast<std::size_t>(st.rng.below(cut)));
}

void SimMultiQueue::record_acquire(Cpu& cpu, const Shard& s, CpuState& st) {
  const int h = eng_.memory().mesh().hops(cpu.id(), s.owner);
  st.hop_hist.record(static_cast<std::uint64_t>(h));
  if (h <= opt_.topo_radius) ++st.local_acquires;
}

void SimMultiQueue::publish(Cpu& cpu, Shard& s) {
  cpu.write(s.top, s.heap.empty() ? kEmptyTop : s.heap.min_key());
}

SimMultiQueue::Shard& SimMultiQueue::pick_insert_shard(Cpu& cpu,
                                                       CpuState& st) {
  for (int attempt = 0;; ++attempt) {
    if (st.ins_stick <= 0) {
      bool global = near_ == nullptr;
      if (near_ != nullptr &&
          ++st.probe_tick % slpq::kGlobalProbePeriod == 0) {
        global = true;  // periodic global spread keeps every shard fed
        ++st.fallbacks;
      }
      st.ins_shard = sample_shard(cpu, st, global);
      st.ins_stick = opt_.stickiness;
    }
    Shard& s = *shards_[st.ins_shard];
    if (attempt >= 8) {  // bounded fallback so we cannot livelock
      s.lock.lock(cpu);
      --st.ins_stick;
      record_acquire(cpu, s, st);
      return s;
    }
    if (s.lock.try_lock(cpu)) {
      --st.ins_stick;
      record_acquire(cpu, s, st);
      return s;
    }
    counters_.add(slpq::Counter::kFailedCas);  // contended shard lock
    st.ins_stick = 0;  // contended: break stickiness, resample
  }
}

/// Evicts up to `batch` of the largest buffered inserts into one shard
/// under a single charged lock acquisition (the smallest stay local —
/// they are the owner's likeliest pops and cannot raise anyone else's
/// rank error by staying private).
void SimMultiQueue::evict_insertions(Cpu& cpu, CpuState& st) {
  if (st.ibuf.empty()) return;
  Shard& s = pick_insert_shard(cpu, st);
  const std::size_t n = std::min(opt_.batch, st.ibuf.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto kv = std::move(st.ibuf.back());
    st.ibuf.pop_back();
    // The item lands in the shard's heap arena: charged heap traffic.
    cpu.write(s.arena_word(i), static_cast<std::uint64_t>(kv.first));
    s.heap.push(kv.first, std::move(kv.second));
  }
  publish(cpu, s);
  s.lock.unlock(cpu);
  ++st.flushes;
}

void SimMultiQueue::insert(Cpu& cpu, Key key, Value value) {
  CpuState& st = cpus_[static_cast<std::size_t>(cpu.id())];
  if (st.ibuf.size() >= opt_.insertion_buffer) evict_insertions(cpu, st);
  const auto pos = std::upper_bound(
      st.ibuf.begin(), st.ibuf.end(), key,
      [](Key k, const std::pair<Key, Value>& item) { return k < item.first; });
  st.ibuf.insert(pos, {key, std::move(value)});
}

/// Pops up to min(batch, deletion buffer) items, ascending, into the
/// cpu's deletion buffer and releases the shard.
void SimMultiQueue::drain_batch(Cpu& cpu, Shard& s, CpuState& st) {
  const std::size_t batch = std::min(opt_.batch, opt_.deletion_buffer);
  for (std::size_t i = 0; i < batch && !s.heap.empty(); ++i) {
    cpu.read(s.arena_word(i));  // popped item leaves the shard's heap arena
    st.dbuf.push_back(s.heap.pop());
  }
  publish(cpu, s);
  s.lock.unlock(cpu);
  st.dhead = 0;
  ++st.refills;
}

/// One charged read of the sticky shard's published top; if it beats the
/// buffered head and the try-lock lands, the stale remainder merges back
/// and a fresh batch is drained. Returns whether the deletion buffer
/// still holds servable items.
bool SimMultiQueue::revalidate_deletions(Cpu& cpu, CpuState& st) {
  Shard& s = *shards_[st.del_shard];
  const Key top = cpu.read(s.top);
  if (top >= st.dbuf[st.dhead].first) return true;
  if (!s.lock.try_lock(cpu)) return true;  // best effort: serve stale head
  record_acquire(cpu, s, st);
  for (std::size_t i = st.dhead; i < st.dbuf.size(); ++i) {
    cpu.write(s.arena_word(i - st.dhead),
              static_cast<std::uint64_t>(st.dbuf[i].first));
    s.heap.push(st.dbuf[i].first, std::move(st.dbuf[i].second));
  }
  st.dbuf.clear();
  st.dhead = 0;
  drain_batch(cpu, s, st);  // publishes + unlocks
  ++st.invalidations;
  return st.dhead < st.dbuf.size();
}

/// Refills the deletion buffer from one shard (sticky or 2-choice
/// sampled on two charged top reads). Returns false only after a full
/// sweep found every shard empty.
bool SimMultiQueue::refill(Cpu& cpu, CpuState& st) {
  assert(st.dbuf.empty() && st.ibuf.empty());
  const std::size_t n = shards_.size();
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (st.del_stick <= 0) {
      // 2-choice resample. Under kNear/kAdaptive both candidates come
      // from the caller's radius, except that every kGlobalProbePeriod-th
      // resample draws candidate b globally: that keeps every shard's
      // sampling probability nonzero (the rank-error bound survives with
      // a constant-factor dilution) and gives kAdaptive its signal.
      bool probe = false;
      if (near_ != nullptr &&
          ++st.probe_tick % slpq::kGlobalProbePeriod == 0) {
        probe = true;
        ++st.fallbacks;
      }
      const bool uniform = near_ == nullptr;
      const auto a = sample_shard(cpu, st, uniform);
      const auto b = sample_shard(cpu, st, uniform || probe);
      const Key ka = cpu.read(shards_[a]->top);
      const Key kb = cpu.read(shards_[b]->top);
      st.del_shard = kb < ka ? b : a;
      st.del_stick = opt_.stickiness;
      if (probe && opt_.topo == slpq::TopoPolicy::kAdaptive) {
        const int diameter = near_->diameter();
        if (kb < ka) {
          // The global probe beat everything nearby: local minima have
          // gone stale, widen the neighborhood.
          st.radius = std::min(diameter, st.radius > 0 ? st.radius * 2 : 1);
        } else {
          // Local region is still competitive: decay toward the base.
          st.radius = std::max(opt_.topo_radius, st.radius / 2);
        }
      }
    }
    Shard& s = *shards_[st.del_shard];
    if (cpu.read(s.top) == kEmptyTop) {
      counters_.add(slpq::Counter::kDeleteRetries);
      st.del_stick = 0;
      continue;
    }
    if (!s.lock.try_lock(cpu)) {
      counters_.add(slpq::Counter::kFailedCas);  // contended shard lock
      counters_.add(slpq::Counter::kDeleteRetries);
      st.del_stick = 0;
      continue;
    }
    --st.del_stick;
    record_acquire(cpu, s, st);
    if (s.heap.empty()) {  // raced with another consumer
      counters_.add(slpq::Counter::kClaimLosses);
      publish(cpu, s);
      s.lock.unlock(cpu);
      st.del_stick = 0;
      continue;
    }
    drain_batch(cpu, s, st);
    return true;
  }

  // Sampling kept missing: deterministic sweep before reporting empty.
  // Unchanged by the topology policies — EMPTY is only ever reported
  // after every shard, near or far, was checked.
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = *shards_[i];
    if (cpu.read(s.top) == kEmptyTop) continue;
    s.lock.lock(cpu);
    record_acquire(cpu, s, st);
    if (!s.heap.empty()) {
      drain_batch(cpu, s, st);
      st.del_shard = i;
      st.del_stick = opt_.stickiness;
      return true;
    }
    publish(cpu, s);
    s.lock.unlock(cpu);
  }
  return false;
}

std::optional<std::pair<Key, Value>> SimMultiQueue::delete_min(Cpu& cpu) {
  CpuState& st = cpus_[static_cast<std::size_t>(cpu.id())];
  for (;;) {
    bool have_d = st.dhead < st.dbuf.size();
    if (have_d && opt_.stale_invalidation)
      have_d = revalidate_deletions(cpu, st);
    if (!st.ibuf.empty()) {
      // The cpu's own pending inserts compete with the deletion buffer:
      // serve whichever head is smaller.
      if (!have_d || st.ibuf.front().first <= st.dbuf[st.dhead].first) {
        auto out = std::move(st.ibuf.front());
        st.ibuf.erase(st.ibuf.begin());
        counters_.add(slpq::Counter::kClaimWins);
        return out;
      }
    }
    if (have_d) {
      auto out = std::move(st.dbuf[st.dhead++]);
      if (st.dhead == st.dbuf.size()) {
        st.dbuf.clear();
        st.dhead = 0;
      }
      counters_.add(slpq::Counter::kClaimWins);
      return out;
    }
    // Both buffers empty: make pending inserts visible, then refill.
    while (!st.ibuf.empty()) evict_insertions(cpu, st);
    if (!refill(cpu, st)) return std::nullopt;
  }
}

void SimMultiQueue::seed(Key key, Value value) {
  Shard& s = *shards_[seed_rr_++ % shards_.size()];
  s.heap.push(key, value);
  s.top.set_raw(s.heap.min_key());
}

void SimMultiQueue::quiesce_host() {
  for (auto& st : cpus_) {
    for (auto& kv : st.ibuf) {
      Shard& s = *shards_[seed_rr_++ % shards_.size()];
      s.heap.push(kv.first, std::move(kv.second));
      s.top.set_raw(s.heap.min_key());
    }
    st.ibuf.clear();
    for (std::size_t i = st.dhead; i < st.dbuf.size(); ++i) {
      Shard& s = *shards_[seed_rr_++ % shards_.size()];
      s.heap.push(st.dbuf[i].first, std::move(st.dbuf[i].second));
      s.top.set_raw(s.heap.min_key());
    }
    st.dbuf.clear();
    st.dhead = 0;
  }
}

std::vector<std::pair<Key, Value>> SimMultiQueue::drain_host() {
  quiesce_host();
  std::vector<std::pair<Key, Value>> out;
  for (auto& s : shards_) {
    while (!s->heap.empty()) out.push_back(s->heap.pop());
    s->top.set_raw(kEmptyTop);
  }
  return out;
}

slpq::TelemetrySnapshot SimMultiQueue::telemetry() const {
  slpq::TelemetrySnapshot snap;
  counters_.fill(snap);
  std::uint64_t flushes = 0, refills = 0, invalidations = 0;
  std::uint64_t local_acquires = 0, fallbacks = 0;
  slpq::detail::LogHistogram hops;
  for (const auto& st : cpus_) {
    flushes += st.flushes;
    refills += st.refills;
    invalidations += st.invalidations;
    local_acquires += st.local_acquires;
    fallbacks += st.fallbacks;
    hops.merge(st.hop_hist);
  }
  snap.set("mq.ins_flushes", flushes);
  snap.set("mq.refills", refills);
  snap.set("mq.dbuf_invalidations", invalidations);
  // Topology pricing, emitted under every policy so `none` runs carry
  // the distance baseline the biased policies are judged against.
  snap.set("mq.shard_hops.mean",
           static_cast<std::uint64_t>(std::llround(hops.mean())));
  snap.set("mq.shard_hops.p99", hops.quantile(0.99));
  snap.set("mq.local_acquires", local_acquires);
  snap.set("mq.topo_fallbacks", fallbacks);
  return snap;
}

std::size_t SimMultiQueue::size_raw() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->heap.size();
  for (const auto& st : cpus_) total += st.ibuf.size() + (st.dbuf.size() - st.dhead);
  return total;
}

}  // namespace simq
