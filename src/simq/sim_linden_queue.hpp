// SimLindenQueue: the Lindén–Jonsson batched-prefix skiplist priority
// queue on the simulated multiprocessor — the lock-free counterpart of
// SimSkipQueue, mirroring slpq::LindenSkipQueue (see that header for the
// algorithm notes).
//
// The low bit of a node's bottom-level next word says "my successor is
// logically deleted", so deleted nodes form a contiguous prefix of the
// bottom level. delete_min walks that prefix with READs and claims the
// first live node with a single fetch-or (one Rmw in the machine model);
// physical restructuring — one CAS swinging head->next[0] past the dead
// prefix plus lazy upper-level repair — runs only when the prefix exceeds
// Options::boundoffset. Retired prefixes flow through the paper's
// Section 3 scheme (EntryRegistry + GarbageLists + collector daemon),
// exactly like SimSkipQueue, so the reclamation traffic is comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "sim/engine.hpp"
#include "simq/garbage.hpp"

namespace simq {

using Key = std::int64_t;
using Value = std::uint64_t;

/// One node. Simulated words live contiguously in one simulated
/// allocation; next words pack (host pointer | deleted-successor bit).
struct LindenNode {
  LindenNode(psim::Engine& eng, int level);

  LindenNode(const LindenNode&) = delete;
  LindenNode& operator=(const LindenNode&) = delete;

  psim::Addr base;  // start of the simulated allocation
  psim::Var<Key> key;
  psim::Var<Value> value;
  psim::Var<std::uint64_t> inserting;       // restructure must not pass us
  // Hazard-pointer sweep protocol (kHazard only; see the native
  // slpq::LindenSkipQueue header): `swept` is set by the unique sweep
  // winner just before retiring this node — dead-prefix pointers are
  // frozen, so a hazard walk re-reading one validates nothing, and the
  // step is instead vouched for by the source node being unswept.
  // `prev_retired` says every node before this one is retired; sweep
  // winners spin on it to serialize retirement in strict list order.
  psim::Var<std::uint64_t> swept;
  psim::Var<std::uint64_t> prev_retired;
  std::vector<psim::Var<std::uintptr_t>> next;  // [0] carries the mark bit

  // Host-side metadata (not simulated state).
  int level;
  std::uint64_t generation = 0;  // bumped on every pool reuse
  bool live = false;
};

/// Allocation pool, mirroring SkipNodePool: reuse keeps simulated
/// addresses and bumps `generation` so use-after-free is detectable.
class LindenNodePool {
 public:
  LindenNodePool(psim::Engine& eng, int max_level)
      : eng_(eng), free_by_level_(static_cast<std::size_t>(max_level) + 1) {}

  LindenNode* acquire_raw(int level, Key key, Value value);
  LindenNode* acquire(Cpu& cpu, int level, Key key, Value value);
  void release(LindenNode* node);

  std::uint64_t created() const { return created_; }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t released() const { return released_; }

 private:
  LindenNode* fetch(int level);

  psim::Engine& eng_;
  std::vector<std::vector<LindenNode*>> free_by_level_;
  std::vector<std::unique_ptr<LindenNode>> all_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
};

class SimLindenQueue {
 public:
  struct Options {
    int max_level = 16;
    double p = 0.5;
    /// Dead-prefix length that triggers physical restructuring.
    int boundoffset = 32;
    bool use_gc = true;       ///< entry registry + garbage lists + collector
    Cycles gc_period = 2000;  ///< collector scan period
    /// Reclamation policy driven by the collector daemon (--reclaim); see
    /// SimSkipQueue::Options::reclaim.
    slpq::ReclaimPolicy reclaim = slpq::ReclaimPolicy::kTimestamp;
  };

  SimLindenQueue(psim::Engine& eng, Options opt);

  /// Adds the collector daemon (call once, before Engine::run, iff
  /// Options::use_gc).
  void spawn_collector();

  /// Inserts (key, value). Duplicates allowed; every call adds an item.
  void insert(Cpu& cpu, Key key, Value value);

  /// Claims a minimal live item with one fetch-or; nullopt for EMPTY.
  std::optional<std::pair<Key, Value>> delete_min(Cpu& cpu);

  // ---- host-side (pre/post-run) helpers ---------------------------------
  void seed(Key key, Value value);
  /// Keys of live (unclaimed) bottom-level nodes, in list order.
  std::vector<Key> keys_raw() const;
  std::size_t size_raw() const;

  std::uint64_t restructures() const { return restructures_; }
  const Options& options() const { return opt_; }
  LindenNodePool& pool() { return pool_; }
  GarbageLists<LindenNode>& garbage() { return gc_.garbage(); }
  const EntryRegistry& registry() const { return gc_.registry(); }
  const SimReclaimer<LindenNode>& reclaimer() const { return gc_; }

  /// Operation counters plus pool/GC composition (host-side bookkeeping,
  /// invisible to the simulated machine); see docs/TELEMETRY.md.
  slpq::TelemetrySnapshot telemetry() const;

 private:
  static std::uintptr_t pack(LindenNode* n, bool marked) {
    return reinterpret_cast<std::uintptr_t>(n) |
           (marked ? std::uintptr_t{1} : std::uintptr_t{0});
  }
  static LindenNode* strip(std::uintptr_t w) {
    return reinterpret_cast<LindenNode*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) { return (w & 1u) != 0; }

  int random_level(Cpu& cpu);
  bool key_before(Cpu& cpu, LindenNode* n, Key key) const;

  // Slot layout: the claim and peek slots sit BELOW the per-level pairs so
  // the claim pin (a migration out of a traversal slot) moves the hazard to
  // a strictly lower index — the direction HazardSlots::snapshot's
  // descending scan is guaranteed to catch.
  /// Hazard slot holding the claimed node across the sweep.
  int claim_slot() const { return 0; }
  /// Scratch slot for restructure's upper-level head peeks.
  int peek_slot() const { return 1; }
  /// Level-lv traversal pair: pred in pred_slot, candidate right above it.
  int pred_slot(int lv) const { return 2 + 2 * lv; }

  /// Search pass: positions preds/succs around `key`, skipping nodes that
  /// look deleted; returns the last bottom-level node passed through a
  /// marked pointer.
  LindenNode* locate_preds(Cpu& cpu, Key key, std::vector<LindenNode*>& preds,
                           std::vector<LindenNode*>& succs);

  /// Lazy per-level head repair after a winning head swing.
  void restructure(Cpu& cpu);

  psim::Engine& eng_;
  Options opt_;
  LindenNodePool pool_;
  SimReclaimer<LindenNode> gc_;
  LindenNode* head_;
  LindenNode* tail_;
  std::vector<slpq::detail::Xoshiro256> level_rngs_;  // one per processor
  slpq::detail::Xoshiro256 seed_rng_;                 // host-side seeding
  slpq::detail::GeometricLevel level_dist_;
  std::int64_t size_ = 0;  // host counter (fibers run on one real thread)
  std::uint64_t restructures_ = 0;
  slpq::OpCounters counters_;       // host-side, not simulated state
  std::uint64_t created_base_ = 0;  // pool nodes carved for sentinels
};

}  // namespace simq
