#include "simq/sim_skipqueue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace simq {

namespace {

constexpr Key kHeadKey = std::numeric_limits<Key>::min();
constexpr Key kTailKey = std::numeric_limits<Key>::max();

// Defensive bound on list walks: the simulation is deterministic, so an
// algorithmic livelock would otherwise spin the host forever.
constexpr std::uint64_t kWalkLimit = 1'000'000;

[[noreturn]] void walk_overflow(const char* where) {
  throw std::runtime_error(std::string("SimSkipQueue: runaway traversal in ") +
                           where);
}

// Simulated layout of a node: six header words then (next, lock) word
// pairs per level. Matches what a C struct with a trailing array would be.
constexpr psim::Addr kKeyOff = 0;
constexpr psim::Addr kValueOff = 8;
constexpr psim::Addr kDeletedOff = 16;
constexpr psim::Addr kStampOff = 24;
constexpr psim::Addr kReversedOff = 32;
constexpr psim::Addr kNodeLockOff = 40;
constexpr psim::Addr kLevelBase = 48;
constexpr psim::Addr kLevelStride = 16;

std::size_t node_bytes(int level) {
  return static_cast<std::size_t>(kLevelBase +
                                  kLevelStride * static_cast<psim::Addr>(level));
}

// Scoped reclaimer membership (paper, Section 3, generalized to every
// --reclaim policy): enter on construction, exit on every return path.
class ScopedEntry {
 public:
  ScopedEntry(SimReclaimer<SkipNode>& gc, Cpu& cpu, bool active)
      : gc_(gc), cpu_(cpu), active_(active), entry_time_(0) {
    if (active_) entry_time_ = gc_.enter(cpu_);
  }
  ~ScopedEntry() {
    if (active_) gc_.exit(cpu_);
  }
  ScopedEntry(const ScopedEntry&) = delete;
  ScopedEntry& operator=(const ScopedEntry&) = delete;

  Cycles entry_time() const { return entry_time_; }

 private:
  SimReclaimer<SkipNode>& gc_;
  Cpu& cpu_;
  bool active_;
  Cycles entry_time_;
};

// Hazard-protected pointer chase along owner->next[li]: read the pointer,
// publish the target in `slot`, re-read until stable. Under every other
// policy this is a single plain read. Re-read validation alone is not
// enough: an unlinked node's reversed pointer is frozen, so it validates
// forever while its target may already be freed — the per-node reversed
// bitmask (set under the level lock before the reversal is stored)
// detects that, and nullptr tells the caller to restart from a root.
// The caller must keep `owner` protected (or otherwise pinned).
SkipNode* protected_step(Cpu& cpu, SimReclaimer<SkipNode>& gc,
                         SkipNode* owner, std::size_t li, int slot) {
  psim::Var<SkipNode*>& src = owner->next[li];
  SkipNode* n = cpu.read(src);
  if (gc.policy() != slpq::ReclaimPolicy::kHazard) return n;
  for (;;) {
    gc.protect(cpu, slot, n);
    SkipNode* again = cpu.read(src);
    if (cpu.read(owner->reversed) & (1ULL << li)) return nullptr;
    if (again == n) return n;
    n = again;
  }
}

}  // namespace

SkipNode::SkipNode(psim::Engine& eng, int lvl, bool pad,
                   psim::LockMode lock_mode)
    : base(eng.memory().alloc(node_bytes(lvl), pad ? psim::kLineBytes : 8)),
      key(base + kKeyOff, Key{}),
      value(base + kValueOff, Value{}),
      deleted(base + kDeletedOff, 0),
      time_stamp(base + kStampOff, 0),
      reversed(base + kReversedOff, 0),
      node_lock(eng, base + kNodeLockOff, lock_mode),
      level(lvl) {
  next.reserve(static_cast<std::size_t>(lvl));
  level_locks.reserve(static_cast<std::size_t>(lvl));
  for (int i = 0; i < lvl; ++i) {
    const psim::Addr slot = base + kLevelBase + kLevelStride * static_cast<psim::Addr>(i);
    next.emplace_back(slot, nullptr);
    level_locks.emplace_back(eng, slot + 8, lock_mode);
  }
}

SkipNode* SkipNodePool::fetch(int level) {
  auto& bucket = free_by_level_[static_cast<std::size_t>(level)];
  if (!bucket.empty()) {
    SkipNode* node = bucket.back();
    bucket.pop_back();
    ++reused_;
    ++node->generation;
    node->live = true;
    return node;
  }
  all_.push_back(std::make_unique<SkipNode>(eng_, level, pad_, lock_mode_));
  ++created_;
  SkipNode* node = all_.back().get();
  node->live = true;
  return node;
}

SkipNode* SkipNodePool::acquire_raw(int level, Key key, Value value) {
  SkipNode* node = fetch(level);
  node->key.set_raw(key);
  node->value.set_raw(value);
  node->deleted.set_raw(0);
  node->time_stamp.set_raw(0);
  for (auto& nx : node->next) nx.set_raw(nullptr);
  return node;
}

SkipNode* SkipNodePool::acquire(Cpu& cpu, int level, Key key, Value value) {
  SkipNode* node = fetch(level);
  // Allocator bookkeeping happens in local memory.
  cpu.advance(20);
  cpu.write(node->key, key);
  cpu.write(node->value, value);
  cpu.write(node->deleted, std::uint64_t{0});
  return node;
}

void SkipNodePool::release(SkipNode* node) {
  assert(node->live && "double release");
  assert(!node->node_lock.held() && "released while locked");
  node->reversed.set_raw(0);  // allocator-side scrub of the unlink mask
  node->live = false;
  ++released_;
  free_by_level_[static_cast<std::size_t>(node->level)].push_back(node);
}

SimSkipQueue::SimSkipQueue(psim::Engine& eng, Options opt)
    : eng_(eng),
      opt_(opt),
      pool_(eng, opt.max_level, opt.pad_nodes, opt.lock_mode),
      // Hazard slots: pred+candidate per level plus the scan pair's spare.
      gc_(eng, opt.reclaim, /*hazard_slots=*/2 * std::max(opt.max_level, 1) + 2),
      seed_rng_(eng.config().seed ^ 0x5EEDF00DULL),
      level_dist_(opt.p, opt.max_level) {
  if (opt_.max_level < 1) throw std::invalid_argument("max_level must be >= 1");
  head_ = pool_.acquire_raw(opt_.max_level, kHeadKey, 0);
  tail_ = pool_.acquire_raw(opt_.max_level, kTailKey, 0);
  // The sentinels must never be claimed by a delete-min. The bottom-level
  // scan can legitimately step onto the head: a concurrent physical delete
  // reverses the removed node's forward pointer, sending a traverser back
  // to the removed node's predecessor, which may be the head itself. A
  // MAX_TIME stamp shields the strict queue; a permanently-set deleted
  // flag shields the relaxed one.
  head_->time_stamp.set_raw(kMaxTime);
  head_->deleted.set_raw(1);
  tail_->time_stamp.set_raw(kMaxTime);
  tail_->deleted.set_raw(1);
  for (int i = 0; i < opt_.max_level; ++i)
    head_->next[static_cast<std::size_t>(i)].set_raw(tail_);
  // Telemetry baseline: sentinel allocations don't count as pool_refills.
  created_base_ = pool_.created();
  level_rngs_.reserve(static_cast<std::size_t>(eng.config().processors));
  for (int p = 0; p < eng.config().processors; ++p)
    level_rngs_.emplace_back(eng.config().seed * 0x9E3779B97F4A7C15ULL +
                             static_cast<std::uint64_t>(p) + 1);
}

void SimSkipQueue::spawn_collector() {
  if (!opt_.use_gc)
    throw std::logic_error("spawn_collector with Options::use_gc == false");
  eng_.add_processor(
      [this](Cpu& cpu) {
        gc_.collector_loop(cpu, [this](SkipNode* n) { pool_.release(n); },
                           opt_.gc_period);
      },
      /*daemon=*/true);
}

int SimSkipQueue::random_level(Cpu& cpu) {
  return level_dist_(level_rngs_[static_cast<std::size_t>(cpu.id())]);
}

bool SimSkipQueue::reversed_under_lock(Cpu& cpu, SkipNode* node,
                                       std::size_t li) {
  // While holding node's level-li lock the bit is stable: clear means the
  // node is still linked at that level (both the predecessor swing and the
  // reversal happen under this lock), set means we locked a corpse.
  return gc_.policy() == slpq::ReclaimPolicy::kHazard &&
         (cpu.read(node->reversed) & (1ULL << li));
}

SkipNode* SimSkipQueue::get_lock(Cpu& cpu, SkipNode* node1, Key key, int level) {
  const std::size_t li = static_cast<std::size_t>(level - 1);
  const int ps = 2 * (level - 1);  // this level's pred slot...
  const int cs = ps + 1;           // ...and candidate slot
  std::uint64_t steps = 0;
  gc_.protect(cpu, ps, node1);
  SkipNode* node2 = protected_step(cpu, gc_, node1, li, cs);
  for (;;) {
    if (node2 == nullptr) return nullptr;  // hazard-validation restart
    if (!(cpu.read(node2->key) < key)) break;
    gc_.protect(cpu, ps, node2);  // promote: slot cs covers it
    node1 = node2;
    node2 = protected_step(cpu, gc_, node1, li, cs);
    if (++steps > kWalkLimit) walk_overflow("get_lock/search");
  }
  node1->level_locks[li].lock(cpu);
  if (reversed_under_lock(cpu, node1, li)) {
    node1->level_locks[li].unlock(cpu);
    return nullptr;
  }
  node2 = cpu.read(node1->next[li]);
  while (cpu.read(node2->key) < key) {  // list moved before we locked
    counters_.add(slpq::Counter::kInsertRetries);
    // node2 cannot be retired while we hold node1's level lock (its unlink
    // would need it for the predecessor swing), so publishing its hazard
    // here needs no validation loop.
    gc_.protect(cpu, cs, node2);
    node1->level_locks[li].unlock(cpu);
    gc_.protect(cpu, ps, node2);  // promote before the hop
    node1 = node2;
    node1->level_locks[li].lock(cpu);
    if (reversed_under_lock(cpu, node1, li)) {
      node1->level_locks[li].unlock(cpu);
      return nullptr;
    }
    node2 = cpu.read(node1->next[li]);
    if (++steps > kWalkLimit) walk_overflow("get_lock/revalidate");
  }
  return node1;
}

void SimSkipQueue::search_preds(Cpu& cpu, Key key,
                                std::vector<SkipNode*>& saved) {
  saved.resize(static_cast<std::size_t>(opt_.max_level));
  std::uint64_t steps = 0;
restart:
  SkipNode* node1 = head_;
  for (int i = opt_.max_level; i >= 1; --i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    gc_.protect(cpu, 2 * static_cast<int>(li), node1);  // carry pred down
    SkipNode* node2 =
        protected_step(cpu, gc_, node1, li, 2 * static_cast<int>(li) + 1);
    for (;;) {
      if (node2 == nullptr) {  // hazard-validation restart
        counters_.add(slpq::Counter::kInsertRetries);
        goto restart;
      }
      if (!(cpu.read(node2->key) < key)) break;
      gc_.protect(cpu, 2 * static_cast<int>(li), node2);
      node1 = node2;
      node2 =
          protected_step(cpu, gc_, node1, li, 2 * static_cast<int>(li) + 1);
      if (++steps > kWalkLimit) walk_overflow("search_preds");
    }
    saved[li] = node1;  // stays protected in slot 2*li for the caller
  }
}

bool SimSkipQueue::insert(Cpu& cpu, Key key, Value value) {
  if (key <= kHeadKey || key >= kTailKey)
    throw std::invalid_argument("key outside the sentinel range");

  ScopedEntry entry(gc_, cpu, opt_.use_gc);

  std::vector<SkipNode*> saved;
  SkipNode* node1 = nullptr;
  for (;;) {
    search_preds(cpu, key, saved);
    // Level-1 lock first: if the key already exists we update in place.
    node1 = get_lock(cpu, saved[0], key, 1);
    if (node1 != nullptr) break;
    counters_.add(slpq::Counter::kInsertRetries);  // hazard restart
  }
  // node2 is node1's level-1 successor read under node1's lock: its
  // level-1 unlink would have to take that same lock, so it cannot be
  // retired while we hold it — safe to dereference under every policy.
  SkipNode* node2 = cpu.read(node1->next[0]);
  if (cpu.read(node2->key) == key) {
    cpu.write(node2->value, value);
    node1->level_locks[0].unlock(cpu);
    return false;  // UPDATED
  }

  const int level = random_level(cpu);
  SkipNode* new_node = pool_.acquire(cpu, level, key, value);
  if (gc_.policy() == slpq::ReclaimPolicy::kHazard)
    cpu.write(new_node->reversed, std::uint64_t{0});  // scrub reused mask
  if (opt_.timestamps) cpu.write(new_node->time_stamp, kMaxTime);
  new_node->node_lock.lock(cpu);  // nobody may delete a half-inserted node

  for (int i = 1; i <= level; ++i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    if (i != 1) {
      node1 = get_lock(cpu, saved[li], key, i);
      while (node1 == nullptr) {
        // A restart mid-link only re-searches the entry points; new_node is
        // already linked below level i and findable, so re-walk from the
        // head and continue at this level.
        counters_.add(slpq::Counter::kInsertRetries);
        search_preds(cpu, key, saved);
        node1 = get_lock(cpu, saved[li], key, i);
      }
    }
    cpu.write(new_node->next[li], cpu.read(node1->next[li]));
    cpu.write(node1->next[li], new_node);
    node1->level_locks[li].unlock(cpu);
  }

  new_node->node_lock.unlock(cpu);
  if (opt_.timestamps) cpu.write(new_node->time_stamp, cpu.clock());
  return true;  // INSERTED
}

std::optional<std::pair<Key, Value>> SimSkipQueue::delete_min(Cpu& cpu,
                                                              Cycles* claim_at) {
  ScopedEntry entry(gc_, cpu, opt_.use_gc);

  // Start-of-search time for the ignore-concurrent-inserts test. When the
  // registry is active its entry clock read doubles as this timestamp.
  Cycles time = 0;
  if (opt_.timestamps) time = opt_.use_gc ? entry.entry_time() : cpu.clock();

  // Phase 1: race down the bottom level to claim the first available node.
  // Under hazard pointers the cursor stays pinned in slot 0 while each
  // successor is validated through slot 1; stepping onto a reversed
  // (frozen) pointer restarts the scan from the head.
  SkipNode* node1 = nullptr;
  std::uint64_t steps = 0;
  while (node1 == nullptr) {
    SkipNode* cur = head_;
    gc_.protect(cpu, 0, cur);
    SkipNode* next = protected_step(cpu, gc_, cur, 0, 1);
    for (;;) {
      if (next == nullptr) {  // hazard-validation restart
        counters_.add(slpq::Counter::kDeleteRetries);
        break;
      }
      if (next == tail_) {
        if (claim_at != nullptr) *claim_at = cpu.now();
        return std::nullopt;  // EMPTY
      }
      if (!opt_.timestamps || cpu.read(next->time_stamp) < time) {
        const auto marked = cpu.swap(next->deleted, std::uint64_t{1});
        if (marked == 0) {
          node1 = next;  // we own this node now
          break;
        }
        counters_.add(slpq::Counter::kClaimLosses);
      } else {
        counters_.add(slpq::Counter::kDeleteRetries);  // concurrent-insert skip
      }
      counters_.add(slpq::Counter::kPrefixNodes);
      gc_.protect(cpu, 0, next);  // promote: slot 1 already covers it
      cur = next;
      next = protected_step(cpu, gc_, cur, 0, 1);
      if (++steps > kWalkLimit) walk_overflow("delete_min/scan");
    }
  }
  if (claim_at != nullptr) *claim_at = cpu.now();
  counters_.add(slpq::Counter::kClaimWins);

  const Value value = cpu.read(node1->value);
  const Key key = cpu.read(node1->key);

  // Phase 2: a regular skiplist delete of the claimed node.
  unlink_claimed(cpu, node1, key);
  return std::make_pair(key, value);
}

void SimSkipQueue::unlink_claimed(Cpu& cpu, SkipNode* node1, Key key) {
  std::vector<SkipNode*> saved;
  search_preds(cpu, key, saved);

  SkipNode* node2 = node1;
  if (gc_.policy() != slpq::ReclaimPolicy::kHazard) {
    // Sanity walk: the claimed node is findable. Skipped under hazard
    // pointers — the walk's successor hops would be unprotected. The node
    // itself is pinned either way: only the claimant unlinks and retires.
    node2 = saved[0];
    std::uint64_t steps = 0;
    while (cpu.read(node2->key) != key) {
      node2 = cpu.read(node2->next[0]);
      if (++steps > kWalkLimit) walk_overflow("unlink/locate");
    }
    assert(node2 == node1 && "keys are unique; the claimed node must be found");
  }

  node2->node_lock.lock(cpu);  // waits out a still-running insert

  for (int i = node2->level; i >= 1; --i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    SkipNode* pred = get_lock(cpu, saved[li], key, i);
    while (pred == nullptr) {  // hazard-validation restart
      counters_.add(slpq::Counter::kInsertRetries);
      search_preds(cpu, key, saved);
      pred = get_lock(cpu, saved[li], key, i);
    }
    if (pred == node2)
      throw std::logic_error("unlink: pred == node2 at level " +
                             std::to_string(i) + " key " + std::to_string(key));
    node2->level_locks[li].lock(cpu);
    // Unlink: predecessor first, then reverse the node's own pointer so a
    // concurrent traveller standing on node2 is sent back, not stranded.
    // Freeze order matters under hazard pointers: swing the predecessor
    // past node2, mark the level reversed, only then store the reversal
    // pointer. A hazard walk that still reads the forward pointer with the
    // mask clear is safe (the swing was not visible yet); one that reads
    // the reversal pointer is guaranteed to see the mask and restart.
    cpu.write(pred->next[li], cpu.read(node2->next[li]));
    if (gc_.policy() == slpq::ReclaimPolicy::kHazard)
      cpu.write(node2->reversed,
                cpu.read(node2->reversed) | (std::uint64_t{1} << li));
    cpu.write(node2->next[li], pred);
    node2->level_locks[li].unlock(cpu);
    pred->level_locks[li].unlock(cpu);
  }

  node2->node_lock.unlock(cpu);
  if (opt_.use_gc)
    gc_.retire(cpu, node2);
  // Without GC the node leaks until the pool dies with the queue: that is
  // the paper's baseline behaviour for systems with no reclamation.
}

std::optional<Value> SimSkipQueue::erase(Cpu& cpu, Key key) {
  if (key <= kHeadKey || key >= kTailKey)
    throw std::invalid_argument("key outside the sentinel range");

  ScopedEntry entry(gc_, cpu, opt_.use_gc);

  std::vector<SkipNode*> saved;
  SkipNode* node = nullptr;
  std::uint64_t steps = 0;
  for (;;) {
    search_preds(cpu, key, saved);
    node = protected_step(cpu, gc_, saved[0], 0, 1);
    while (node != nullptr && cpu.read(node->key) < key) {
      gc_.protect(cpu, 0, node);
      node = protected_step(cpu, gc_, node, 0, 1);
      if (++steps > kWalkLimit) walk_overflow("erase/locate");
    }
    if (node != nullptr) break;
    counters_.add(slpq::Counter::kInsertRetries);  // hazard restart
  }
  if (cpu.read(node->key) != key) return std::nullopt;
  if (cpu.swap(node->deleted, std::uint64_t{1}) != 0)
    return std::nullopt;  // somebody else claimed it

  const Value value = cpu.read(node->value);
  unlink_claimed(cpu, node, key);
  return value;
}

bool SimSkipQueue::contains(Cpu& cpu, Key key) {
  ScopedEntry entry(gc_, cpu, opt_.use_gc);
  std::uint64_t steps = 0;
restart:
  SkipNode* node1 = head_;
  for (int i = opt_.max_level; i >= 1; --i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    gc_.protect(cpu, 2 * static_cast<int>(li), node1);  // carry pred down
    SkipNode* node2 =
        protected_step(cpu, gc_, node1, li, 2 * static_cast<int>(li) + 1);
    for (;;) {
      if (node2 == nullptr) goto restart;  // hazard-validation restart
      if (!(cpu.read(node2->key) < key)) break;
      gc_.protect(cpu, 2 * static_cast<int>(li), node2);
      node1 = node2;
      node2 =
          protected_step(cpu, gc_, node1, li, 2 * static_cast<int>(li) + 1);
      if (++steps > kWalkLimit) walk_overflow("contains");
    }
    if (cpu.read(node2->key) == key)
      return cpu.read(node2->deleted) == 0;
  }
  return false;
}

void SimSkipQueue::seed(Key key, Value value) {
  if (key <= kHeadKey || key >= kTailKey)
    throw std::invalid_argument("key outside the sentinel range");
  // Host-side insert with the same geometric level distribution.
  const int level = level_dist_(seed_rng_);
  std::vector<SkipNode*> update(static_cast<std::size_t>(opt_.max_level));
  SkipNode* node = head_;
  for (int i = opt_.max_level; i >= 1; --i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    while (node->next[li].raw()->key.raw() < key) node = node->next[li].raw();
    update[li] = node;
  }
  SkipNode* existing = update[0]->next[0].raw();
  if (existing->key.raw() == key) {
    existing->value.set_raw(value);
    return;
  }
  SkipNode* fresh = pool_.acquire_raw(level, key, value);
  for (int i = 0; i < level; ++i) {
    const std::size_t li = static_cast<std::size_t>(i);
    fresh->next[li].set_raw(update[li]->next[li].raw());
    update[li]->next[li].set_raw(fresh);
  }
}

std::vector<Key> SimSkipQueue::keys_raw() const {
  std::vector<Key> out;
  for (SkipNode* n = head_->next[0].raw(); n != tail_; n = n->next[0].raw())
    out.push_back(n->key.raw());
  return out;
}

std::size_t SimSkipQueue::size_raw() const { return keys_raw().size(); }

slpq::TelemetrySnapshot SimSkipQueue::telemetry() const {
  slpq::TelemetrySnapshot snap;
  counters_.fill(snap);
  snap.set(slpq::counter_name(slpq::Counter::kPoolRefills),
           pool_.created() - created_base_);
  snap.set(slpq::counter_name(slpq::Counter::kPoolReused), pool_.reused());
  const auto& garbage = gc_.garbage();
  snap.set(slpq::counter_name(slpq::Counter::kGcReclaimed),
           garbage.total_collected());
  snap.set(slpq::counter_name(slpq::Counter::kGcDeferred),
           garbage.total_retired() - garbage.total_collected());
  snap.set("reclaim.retired", garbage.total_retired());
  snap.set("reclaim.freed", garbage.total_collected());
  snap.set("reclaim.scans", gc_.scans());
  snap.set("reclaim.stalls", gc_.stalls());
  snap.set("reclaim.pending", garbage.pending());
  return snap;
}

bool SimSkipQueue::check_invariants_raw(std::string* err) const {
  std::ostringstream why;
  auto fail = [&](auto&&... parts) {
    (void)std::initializer_list<int>{(why << parts, 0)...};
    if (err) *err = why.str();
    return false;
  };

  // Bottom level: strictly sorted, unmarked, alive, complete time stamps.
  std::set<const SkipNode*> bottom;
  Key prev = kHeadKey;
  for (SkipNode* n = head_->next[0].raw(); n != tail_; n = n->next[0].raw()) {
    if (!n->live) return fail("dead node reachable at level 1");
    if (n->key.raw() <= prev)
      return fail("level-1 order violated at key ", n->key.raw());
    if (n->deleted.raw() != 0)
      return fail("marked node ", n->key.raw(), " still linked");
    if (opt_.timestamps && n->time_stamp.raw() == kMaxTime)
      return fail("node ", n->key.raw(), " has an incomplete time stamp");
    prev = n->key.raw();
    if (!bottom.insert(n).second) return fail("level-1 cycle");
    if (bottom.size() > 100'000'000) return fail("level-1 runaway");
  }

  // Upper levels: sorted sublists of the bottom level, with node levels
  // consistent with membership.
  for (int i = 2; i <= opt_.max_level; ++i) {
    const std::size_t li = static_cast<std::size_t>(i - 1);
    prev = kHeadKey;
    std::size_t count = 0;
    for (SkipNode* n = head_->next[li].raw(); n != tail_;
         n = n->next[li].raw()) {
      if (n->level < i)
        return fail("node ", n->key.raw(), " linked above its level");
      if (!bottom.count(n))
        return fail("node ", n->key.raw(), " at level ", i,
                    " missing from level 1");
      if (n->key.raw() <= prev)
        return fail("level-", i, " order violated at key ", n->key.raw());
      prev = n->key.raw();
      if (++count > bottom.size()) return fail("level-", i, " cycle");
    }
  }

  if (err) err->clear();
  return true;
}

}  // namespace simq
