#include "simq/sim_funnel_list.hpp"

#include <cassert>
#include <limits>
#include <sstream>

namespace simq {

namespace {
constexpr Key kTailKey = std::numeric_limits<Key>::max();
}

SimFunnelList::SimFunnelList(psim::Engine& eng, Options opt)
    : eng_(eng), opt_(opt), list_lock_(eng) {
  const int procs = eng.config().processors;
  if (opt_.width <= 0) opt_.width = std::max(1, procs / 4);

  funnel_.resize(static_cast<std::size_t>(opt_.layers));
  for (auto& layer : funnel_) {
    layer.reserve(static_cast<std::size_t>(opt_.width));
    for (int i = 0; i < opt_.width; ++i) layer.emplace_back(eng.memory(), nullptr);
  }

  requests_.reserve(static_cast<std::size_t>(procs));
  rngs_.reserve(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    requests_.emplace_back(eng);
    rngs_.emplace_back(eng.config().seed * 0xD1B54A32D192ED03ULL +
                       static_cast<std::uint64_t>(p) + 17);
  }

  arena_.push_back(std::make_unique<ListNode>(eng));
  head_ = arena_.back().get();
  head_->key.set_raw(std::numeric_limits<Key>::min());
  head_->next.set_raw(nullptr);
}

SimFunnelList::ListNode* SimFunnelList::alloc_node(Cpu& cpu) {
  cpu.advance(15);  // allocator bookkeeping, local
  if (!free_nodes_.empty()) {
    ListNode* n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }
  arena_.push_back(std::make_unique<ListNode>(eng_));
  return arena_.back().get();
}

void SimFunnelList::free_node(ListNode* n) { free_nodes_.push_back(n); }

void SimFunnelList::insert(Cpu& cpu, Key key, Value value) {
  Request& r = requests_[static_cast<std::size_t>(cpu.id())];
  r.op = Op::Insert;
  r.key = key;
  r.value = value;
  execute(cpu, r);
}

std::optional<std::pair<Key, Value>> SimFunnelList::delete_min(Cpu& cpu) {
  Request& r = requests_[static_cast<std::size_t>(cpu.id())];
  r.op = Op::DeleteMin;
  execute(cpu, r);
  if (!r.found) return std::nullopt;
  counters_.add(slpq::Counter::kClaimWins);
  return std::make_pair(r.result_key, r.result_value);
}

void SimFunnelList::execute(Cpu& cpu, Request& r) {
  auto& rng = rngs_[static_cast<std::size_t>(cpu.id())];

  r.found = false;
  r.group.clear();
  r.group.push_back(&r);
  write_state(cpu, r, State::Combining);

  bool captured = false;
  for (auto& layer : funnel_) {
    // Expose our request in a random slot of this layer.
    const auto slot = rng.below(static_cast<std::uint64_t>(opt_.width));
    Request* other = cpu.swap(layer[slot], &r);
    if (other != nullptr && other != &r) {
      // Try to capture `other`'s group. Lock ourselves first, then try the
      // other side; try_lock breaks symmetric-collision deadlocks.
      r.lock.lock(cpu);
      if (read_state(cpu, r) != State::Combining) {
        // We were captured while exposed: stop descending.
        r.lock.unlock(cpu);
        captured = true;
        break;
      }
      if (other->lock.try_lock(cpu)) {
        if (read_state(cpu, *other) == State::Combining) {
          write_state(cpu, *other, State::Waiting);
          r.group.insert(r.group.end(), other->group.begin(),
                         other->group.end());
          other->group.clear();
          ++combines_;
          cpu.advance(10);  // merging bookkeeping
        }
        other->lock.unlock(cpu);
      } else {
        counters_.add(slpq::Counter::kFailedCas);  // collision partner busy
      }
      r.lock.unlock(cpu);
    }
    cpu.advance(5);  // layer transit delay
  }

  if (!captured) {
    // Leave the funnel: after this point nobody may capture us.
    r.lock.lock(cpu);
    if (read_state(cpu, r) == State::Combining) {
      write_state(cpu, r, State::Applying);
      r.lock.unlock(cpu);

      list_lock_.lock(cpu);
      apply_batch(cpu, r.group);
      list_lock_.unlock(cpu);
      r.group.clear();
      assert(static_cast<State>(r.state.raw()) == State::Done);
      return;
    }
    r.lock.unlock(cpu);
  }

  // Captured: spin until our representative publishes the result.
  while (read_state(cpu, r) != State::Done) cpu.advance(opt_.spin_backoff);
}

void SimFunnelList::apply_batch(Cpu& cpu, std::vector<Request*>& group) {
  ++batches_;
  for (Request* req : group) {
    if (req->op == Op::Insert) {
      list_insert(cpu, req->key, req->value);
    } else {
      req->found = list_pop_min(cpu, &req->result_key, &req->result_value);
    }
    write_state(cpu, *req, State::Done);
  }
}

void SimFunnelList::list_insert(Cpu& cpu, Key key, Value value) {
  ListNode* prev = head_;
  ListNode* cur = cpu.read(prev->next);
  while (cur != nullptr && cpu.read(cur->key) < key) {
    prev = cur;
    cur = cpu.read(prev->next);
  }
  ListNode* fresh = alloc_node(cpu);
  cpu.write(fresh->key, key);
  cpu.write(fresh->value, value);
  cpu.write(fresh->next, cur);
  cpu.write(prev->next, fresh);
}

bool SimFunnelList::list_pop_min(Cpu& cpu, Key* key, Value* value) {
  ListNode* first = cpu.read(head_->next);
  if (first == nullptr) return false;
  *key = cpu.read(first->key);
  *value = cpu.read(first->value);
  cpu.write(head_->next, cpu.read(first->next));
  free_node(first);  // safe: only the list-lock holder traverses
  return true;
}

void SimFunnelList::seed(Key key, Value value) {
  ListNode* prev = head_;
  while (prev->next.raw() != nullptr && prev->next.raw()->key.raw() < key)
    prev = prev->next.raw();
  arena_.push_back(std::make_unique<ListNode>(eng_));
  ListNode* fresh = arena_.back().get();
  fresh->key.set_raw(key);
  fresh->value.set_raw(value);
  fresh->next.set_raw(prev->next.raw());
  prev->next.set_raw(fresh);
}

std::vector<Key> SimFunnelList::keys_raw() const {
  std::vector<Key> out;
  for (ListNode* n = head_->next.raw(); n != nullptr; n = n->next.raw())
    out.push_back(n->key.raw());
  return out;
}

bool SimFunnelList::check_invariants_raw(std::string* err) const {
  Key prev = std::numeric_limits<Key>::min();
  std::size_t count = 0;
  for (ListNode* n = head_->next.raw(); n != nullptr; n = n->next.raw()) {
    const Key k = n->key.raw();
    if (k < prev || k == kTailKey) {
      if (err) {
        std::ostringstream why;
        why << "list order violated at key " << k;
        *err = why.str();
      }
      return false;
    }
    prev = k;
    if (++count > arena_.size()) {
      if (err) *err = "list cycle";
      return false;
    }
  }
  if (err) err->clear();
  return true;
}

}  // namespace simq
