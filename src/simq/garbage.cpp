// garbage collection is header-only; this TU checks the header stands alone.
#include "simq/garbage.hpp"
