#include "simq/sim_hunt_heap.hpp"

#include <bit>
#include <cassert>
#include <sstream>

namespace simq {

SimHuntHeap::Slot::Slot(psim::Engine& eng)
    : key(eng.memory(), Key{}),
      value(eng.memory(), Value{}),
      tag(eng.memory(), kTagEmpty),
      lock(eng) {}

SimHuntHeap::SimHuntHeap(psim::Engine& eng, Options opt)
    : eng_(eng), opt_(opt), heap_lock_(eng), size_(eng.memory(), 0) {
  slots_.reserve(opt_.capacity + 1);
  for (std::size_t i = 0; i <= opt_.capacity; ++i) slots_.emplace_back(eng);
}

std::size_t SimHuntHeap::bit_rev_slot(std::size_t s) {
  assert(s >= 1);
  if (s == 1) return 1;
  const int msb = std::bit_width(s) - 1;  // position of the leading one
  std::size_t rest = s ^ (std::size_t{1} << msb);
  std::size_t reversed = 0;
  for (int b = 0; b < msb; ++b) {
    reversed = (reversed << 1) | (rest & 1);
    rest >>= 1;
  }
  return (std::size_t{1} << msb) | reversed;
}

void SimHuntHeap::swap_slots(Cpu& cpu, Slot& a, Slot& b) {
  const Key ak = cpu.read(a.key);
  const Value av = cpu.read(a.value);
  const std::int64_t at = cpu.read(a.tag);
  cpu.write(a.key, cpu.read(b.key));
  cpu.write(a.value, cpu.read(b.value));
  cpu.write(a.tag, cpu.read(b.tag));
  cpu.write(b.key, ak);
  cpu.write(b.value, av);
  cpu.write(b.tag, at);
}

bool SimHuntHeap::insert(Cpu& cpu, Key key, Value value) {
  const std::int64_t pid = cpu.id();

  // Reserve a slot under the (briefly held) heap lock.
  heap_lock_.lock(cpu);
  const std::uint64_t s = cpu.read(size_) + 1;
  if (s > opt_.capacity) {
    heap_lock_.unlock(cpu);
    return false;
  }
  cpu.write(size_, s);
  std::size_t i = bit_rev_slot(s);
  at(i).lock.lock(cpu);
  heap_lock_.unlock(cpu);

  cpu.write(at(i).key, key);
  cpu.write(at(i).value, value);
  cpu.write(at(i).tag, pid);
  at(i).lock.unlock(cpu);

  // Bubble the tagged item up; a concurrent delete may move it, in which
  // case the tag no longer matches and we chase it toward the root.
  while (i > 1) {
    const std::size_t par = i / 2;
    at(par).lock.lock(cpu);
    at(i).lock.lock(cpu);
    const std::int64_t tpar = cpu.read(at(par).tag);
    const std::int64_t ti = cpu.read(at(i).tag);
    std::size_t next_i = i;
    if (tpar == kTagAvailable && ti == pid) {
      if (cpu.read(at(i).key) < cpu.read(at(par).key)) {
        swap_slots(cpu, at(i), at(par));
        next_i = par;
      } else {
        cpu.write(at(i).tag, kTagAvailable);
        next_i = 0;  // settled
      }
    } else if (tpar == kTagEmpty) {
      next_i = 0;  // our item was moved to the root and consumed
    } else if (ti != pid) {
      next_i = par;  // a delete moved our item up: chase it
    }
    // Remaining case: the parent is tagged by another in-flight insert;
    // release both locks and retry at the same position.
    if (next_i == i) counters_.add(slpq::Counter::kInsertRetries);
    at(i).lock.unlock(cpu);
    at(par).lock.unlock(cpu);
    i = next_i;
  }

  if (i == 1) {
    at(1).lock.lock(cpu);
    if (cpu.read(at(1).tag) == pid) cpu.write(at(1).tag, kTagAvailable);
    at(1).lock.unlock(cpu);
  }
  return true;
}

std::optional<std::pair<Key, Value>> SimHuntHeap::delete_min(Cpu& cpu) {
  // Claim the last occupied slot under the heap lock.
  heap_lock_.lock(cpu);
  const std::uint64_t s = cpu.read(size_);
  if (s == 0) {
    heap_lock_.unlock(cpu);
    return std::nullopt;
  }
  cpu.write(size_, s - 1);
  const std::size_t bound = bit_rev_slot(s);
  at(bound).lock.lock(cpu);
  heap_lock_.unlock(cpu);

  // Extract the last item; its slot becomes empty.
  const Key last_key = cpu.read(at(bound).key);
  const Value last_value = cpu.read(at(bound).value);
  cpu.write(at(bound).tag, kTagEmpty);
  at(bound).lock.unlock(cpu);

  if (bound == 1) {
    counters_.add(slpq::Counter::kClaimWins);
    return std::make_pair(last_key, last_value);
  }

  // Replace the root with the last item and sift down hand-over-hand.
  at(1).lock.lock(cpu);
  if (cpu.read(at(1).tag) == kTagEmpty) {
    // A racing delete emptied the heap between our two lock regions; the
    // item we pulled out is the only one left and is itself the answer.
    at(1).lock.unlock(cpu);
    counters_.add(slpq::Counter::kDeleteRetries);
    counters_.add(slpq::Counter::kClaimWins);
    return std::make_pair(last_key, last_value);
  }
  const Key min_key = cpu.read(at(1).key);
  const Value min_value = cpu.read(at(1).value);
  cpu.write(at(1).key, last_key);
  cpu.write(at(1).value, last_value);
  cpu.write(at(1).tag, kTagAvailable);

  std::size_t i = 1;  // lock on i is held throughout
  for (;;) {
    const std::size_t l = 2 * i, r = 2 * i + 1;
    if (l > opt_.capacity) break;
    at(l).lock.lock(cpu);
    const bool has_r = r <= opt_.capacity;
    if (has_r) at(r).lock.lock(cpu);

    std::size_t child = 0;
    const bool l_present = cpu.read(at(l).tag) != kTagEmpty;
    const bool r_present = has_r && cpu.read(at(r).tag) != kTagEmpty;
    if (l_present && r_present)
      child = cpu.read(at(l).key) <= cpu.read(at(r).key) ? l : r;
    else if (l_present)
      child = l;
    else if (r_present)
      child = r;

    if (child == 0) {
      if (has_r) at(r).lock.unlock(cpu);
      at(l).lock.unlock(cpu);
      break;
    }
    // Release the child we are not descending into.
    if (has_r && child != r) at(r).lock.unlock(cpu);
    if (child != l) at(l).lock.unlock(cpu);

    if (cpu.read(at(child).key) < cpu.read(at(i).key)) {
      swap_slots(cpu, at(child), at(i));
      at(i).lock.unlock(cpu);
      i = child;  // keep the child's lock, descend
    } else {
      at(child).lock.unlock(cpu);
      break;
    }
  }
  at(i).lock.unlock(cpu);

  counters_.add(slpq::Counter::kClaimWins);
  return std::make_pair(min_key, min_value);
}

void SimHuntHeap::seed(Key key, Value value) {
  const std::uint64_t s = size_.raw() + 1;
  if (s > opt_.capacity) throw std::length_error("SimHuntHeap seed overflow");
  size_.set_raw(s);
  // Items live at bit-reversed slots (the s-th item at bit_rev_slot(s)),
  // exactly as the concurrent insert would place them; every ancestor of an
  // occupied slot is occupied because lower levels fill completely first.
  std::size_t i = bit_rev_slot(s);
  slots_[i].key.set_raw(key);
  slots_[i].value.set_raw(value);
  slots_[i].tag.set_raw(kTagAvailable);
  while (i > 1 && slots_[i].key.raw() < slots_[i / 2].key.raw()) {
    const std::size_t par = i / 2;
    const Key k = slots_[i].key.raw();
    const Value v = slots_[i].value.raw();
    slots_[i].key.set_raw(slots_[par].key.raw());
    slots_[i].value.set_raw(slots_[par].value.raw());
    slots_[par].key.set_raw(k);
    slots_[par].value.set_raw(v);
    i = par;
  }
}

bool SimHuntHeap::check_invariants_raw(std::string* err) const {
  std::ostringstream why;
  const std::uint64_t s = size_.raw();
  for (std::size_t i = 1; i <= opt_.capacity; ++i) {
    const auto tag = slots_[i].tag.raw();
    if (tag != kTagEmpty && tag != kTagAvailable) {
      why << "slot " << i << " still carries PID tag " << tag;
      if (err) *err = why.str();
      return false;
    }
  }
  std::size_t present = 0;
  for (std::size_t i = 1; i <= opt_.capacity; ++i)
    if (slots_[i].tag.raw() == kTagAvailable) ++present;
  if (present != s) {
    why << "size says " << s << " but " << present << " slots are AVAILABLE";
    if (err) *err = why.str();
    return false;
  }
  for (std::size_t i = 2; i <= opt_.capacity; ++i) {
    if (slots_[i].tag.raw() != kTagAvailable) continue;
    const std::size_t par = i / 2;
    if (slots_[par].tag.raw() == kTagAvailable &&
        slots_[par].key.raw() > slots_[i].key.raw()) {
      why << "heap order violated between " << par << " and " << i;
      if (err) *err = why.str();
      return false;
    }
  }
  if (err) err->clear();
  return true;
}

}  // namespace simq
