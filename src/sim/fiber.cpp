#include "sim/fiber_stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace psim::detail {

namespace {
std::size_t page_size() noexcept {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) / align * align;
}
}  // namespace

StackAllocation allocate_stack(std::size_t bytes) {
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(bytes, ps);
  const std::size_t total = usable + ps;  // + guard page

  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    std::fprintf(stderr, "psim: fiber stack mmap(%zu) failed\n", total);
    std::abort();
  }
  if (::mprotect(base, ps, PROT_NONE) != 0) {
    std::fprintf(stderr, "psim: fiber stack guard mprotect failed\n");
    std::abort();
  }

  StackAllocation out;
  out.base = base;
  out.size = total;
  out.usable_size = usable;
  out.usable_top = static_cast<char*>(base) + total;
  return out;
}

void free_stack(const StackAllocation& stack) noexcept {
  if (stack.base != nullptr) ::munmap(stack.base, stack.size);
}

}  // namespace psim::detail
