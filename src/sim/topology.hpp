// Mesh2D: the simulated machine's interconnect topology.
//
// Alewife used a 2-D mesh; message latency between nodes is proportional to
// the Manhattan distance. Nodes are laid out row-major on the smallest
// near-square grid that holds all processors.
#pragma once

#include <cstdint>

namespace psim {

class Mesh2D {
 public:
  explicit Mesh2D(int nodes);

  int nodes() const noexcept { return nodes_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Manhattan hop count between two node ids.
  int hops(int a, int b) const noexcept;

  /// Average hop distance from `from` to all other nodes (used in docs/stats).
  double mean_hops(int from) const noexcept;

 private:
  int nodes_;
  int width_;
  int height_;
};

}  // namespace psim
