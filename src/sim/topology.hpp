// Mesh2D: the simulated machine's interconnect topology.
//
// Alewife used a 2-D mesh; message latency between nodes is proportional to
// the Manhattan distance. Nodes are laid out row-major on the smallest
// near-square grid that holds all processors.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace psim {

class Mesh2D {
 public:
  explicit Mesh2D(int nodes);

  int nodes() const noexcept { return nodes_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Manhattan hop count between two node ids. Coordinates come from a
  /// per-node table built at construction — this runs on every simulated
  /// cache miss, so the id->(x,y) split is two table loads, not divisions.
  int hops(int a, int b) const noexcept {
    return std::abs(static_cast<int>(xs_[static_cast<std::size_t>(a)]) -
                    static_cast<int>(xs_[static_cast<std::size_t>(b)])) +
           std::abs(static_cast<int>(ys_[static_cast<std::size_t>(a)]) -
                    static_cast<int>(ys_[static_cast<std::size_t>(b)]));
  }

  /// Average hop distance from `from` to all other nodes (used in docs/stats).
  double mean_hops(int from) const noexcept;

 private:
  int nodes_;
  int width_;
  int height_;
  std::vector<std::uint16_t> xs_, ys_;  // node id -> mesh coordinates
};

}  // namespace psim
