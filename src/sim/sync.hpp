// Simulated synchronization primitives.
//
// The paper's implementation used the semaphores provided by Proteus:
// blocking, queue-based locks. Mutex below reproduces that — an acquire is
// one atomic SWAP on the lock word (so the word's cache line bounces and
// hot locks queue at their home directory, exactly the contention the
// benchmarks measure), and a contended acquirer blocks until handoff.
//
// A spin-wait TTSLock (test-and-test-and-set over simulated memory) is also
// provided for the lock-implementation ablation bench.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>

#include "sim/engine.hpp"

namespace psim {

/// How a Mutex waits. Block reproduces the Proteus semaphores the paper
/// used (queued handoff, waiter descheduled); Spin is test-and-test-and-set
/// over the same word, for the lock-implementation ablation ("more
/// efficient lock implementations are known in the literature").
enum class LockMode : std::uint8_t { Block, Spin };

/// FIFO-fair mutex over one simulated word.
class Mutex {
 public:
  /// Allocates the lock word from the engine's address space.
  explicit Mutex(Engine& eng, LockMode mode = LockMode::Block)
      : word_(eng.memory(), 0), mode_(mode) {}

  /// Places the lock word at a caller-chosen simulated address (so a node
  /// can pack its per-level locks into its own cache lines).
  Mutex(Engine&, Addr addr, LockMode mode = LockMode::Block)
      : word_(addr, 0), mode_(mode) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  Mutex(Mutex&&) noexcept = default;
  Mutex& operator=(Mutex&&) noexcept = default;

  void lock(Cpu& cpu) {
    auto& eng = cpu.engine();
    if (owner_ == cpu.id()) {
      debug_self_lock();
      throw std::logic_error("psim::Mutex self-lock");
    }
    eng.stats().lock_acquires++;
    if (mode_ == LockMode::Spin) {
      bool contended = false;
      for (;;) {
        while (cpu.read(word_) != 0) {
          if (!contended) {
            contended = true;
            eng.stats().lock_contended++;
          }
        }
        if (cpu.swap(word_, std::uint64_t{1}) == 0) {
          owner_ = cpu.id();
          return;
        }
      }
    }
    // The SWAP transfers its value at issue time — synchronously, before
    // the fiber yields — so peeking the host-side word here sees exactly
    // what the SWAP below will observe. The uncontended path therefore
    // skips the waiter queue entirely (the timing charge is unchanged).
    if (word_.raw() == 0) {
      const auto prev = cpu.swap(word_, std::uint64_t{1});
      (void)prev;
      assert(prev == 0);
      assert(owner_ == -1);
      owner_ = cpu.id();
      return;
    }
    // Held: enqueue before the SWAP. The fiber suspends inside cpu.swap(),
    // and an unlock running in that window must be able to hand the lock to
    // us (otherwise it would see no waiters and release a lock we are about
    // to observe as held — a lost wakeup).
    waiters_.push_back(cpu.id());
    const auto prev = cpu.swap(word_, std::uint64_t{1});
    (void)prev;
    assert(prev != 0);
    eng.stats().lock_contended++;
    eng.note_block(this, owner_);
    eng.block_current();  // consumes a pending handoff if one raced ahead
    assert(owner_ == cpu.id() && "woken without ownership handoff");
  }

  bool try_lock(Cpu& cpu) {
    auto& eng = cpu.engine();
    const auto prev = cpu.swap(word_, std::uint64_t{1});
    if (prev == 0) {
      eng.stats().lock_acquires++;
      owner_ = cpu.id();
      return true;
    }
    return false;
  }

  void unlock(Cpu& cpu) {
    assert(owner_ == cpu.id() && "unlock by non-owner");
    if (mode_ == LockMode::Spin) {
      owner_ = -1;
      cpu.write(word_, std::uint64_t{0});
      return;
    }
    if (waiters_.empty()) {
      owner_ = -1;
      cpu.write(word_, std::uint64_t{0});
      return;
    }
    const int next = waiters_.front();
    waiters_.pop_front();
    owner_ = next;
    // Release store still costs a coherence transaction; the word stays 1
    // because ownership transfers directly to the head waiter.
    cpu.write(word_, std::uint64_t{1});
    cpu.engine().wake(next, cpu.now() + cpu.engine().config().lock_handoff);
  }

  bool held() const noexcept { return owner_ != -1; }
  int owner() const noexcept { return owner_; }

 private:
  static void debug_self_lock();

  Var<std::uint64_t> word_;
  std::deque<int> waiters_;
  int owner_ = -1;
  LockMode mode_ = LockMode::Block;
};

/// RAII guard for Mutex (CP.20: never plain lock()/unlock() in user code).
class LockGuard {
 public:
  LockGuard(Mutex& m, Cpu& cpu) : m_(m), cpu_(cpu) { m_.lock(cpu_); }
  ~LockGuard() { m_.unlock(cpu_); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
  Cpu& cpu_;
};

/// Counting semaphore (blocking).
class Semaphore {
 public:
  Semaphore(Engine& eng, std::int64_t initial)
      : word_(eng.memory(), 0), count_(initial) {}

  void acquire(Cpu& cpu) {
    // Touch the semaphore word so the acquire is globally visible traffic.
    cpu.swap(word_, std::uint64_t{1});
    if (count_ > 0) {
      --count_;
      return;
    }
    waiters_.push_back(cpu.id());
    cpu.engine().block_current();
  }

  bool try_acquire(Cpu& cpu) {
    cpu.swap(word_, std::uint64_t{1});
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void release(Cpu& cpu) {
    cpu.write(word_, std::uint64_t{0});
    if (!waiters_.empty()) {
      const int next = waiters_.front();
      waiters_.pop_front();
      cpu.engine().wake(next, cpu.now() + cpu.engine().config().lock_handoff);
      return;
    }
    ++count_;
  }

  std::int64_t value() const noexcept { return count_; }

 private:
  Var<std::uint64_t> word_;
  std::int64_t count_;
  std::deque<int> waiters_;
};

/// One-shot barrier for aligning processor start (used by the harness so
/// all processors begin the measured phase together).
class Barrier {
 public:
  Barrier(Engine& eng, int parties)
      : word_(eng.memory(), 0), parties_(parties) {}

  void arrive_and_wait(Cpu& cpu) {
    // Enqueue before the fetch-add: the last arriver may run its release
    // before an earlier arriver (suspended inside its own fetch-add) gets
    // to block; Engine::wake leaves a pending token for those.
    waiters_.push_back(cpu.id());
    const auto arrived = cpu.fetch_add(word_, std::uint64_t{1}) + 1;
    if (arrived == static_cast<std::uint64_t>(parties_)) {
      const Cycles t = cpu.now();
      for (const int w : waiters_)
        if (w != cpu.id()) cpu.engine().wake(w, t);
      waiters_.clear();
      return;
    }
    cpu.engine().block_current();
  }

 private:
  Var<std::uint64_t> word_;
  int parties_;
  std::deque<int> waiters_;
};

/// Test-and-test-and-set spinlock over simulated memory: every failed
/// attempt is real coherence traffic. Used by the lock ablation bench.
class TTSLock {
 public:
  explicit TTSLock(Engine& eng) : word_(eng.memory(), 0) {}
  TTSLock(Engine&, Addr addr) : word_(addr, 0) {}

  void lock(Cpu& cpu) {
    cpu.engine().stats().lock_acquires++;
    bool first_try = true;
    for (;;) {
      // Spin reading (cheap once cached) until the word looks free.
      while (cpu.read(word_) != 0) {
        if (first_try) {
          cpu.engine().stats().lock_contended++;
          first_try = false;
        }
      }
      if (cpu.swap(word_, std::uint64_t{1}) == 0) return;
    }
  }

  void unlock(Cpu& cpu) { cpu.write(word_, std::uint64_t{0}); }

 private:
  Var<std::uint64_t> word_;
};

}  // namespace psim
