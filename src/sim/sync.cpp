#include "sim/sync.hpp"

#include <execinfo.h>

namespace psim {

// Debug hook: dump a host backtrace when a processor relocks a mutex it
// already owns (always a bug in the simulated algorithm).
void Mutex::debug_self_lock() {
  void* frames[48];
  const int n = ::backtrace(frames, 48);
  ::backtrace_symbols_fd(frames, n, 2);
}

}  // namespace psim
