// SimStats: machine-level counters accumulated by the engine and the
// memory system during a simulation run.
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"

namespace psim {

struct SimStats {
  // Shared-memory traffic.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;

  // Cache behaviour.
  std::uint64_t cache_hits = 0;
  std::uint64_t miss_cold = 0;          ///< line uncached anywhere
  std::uint64_t miss_shared = 0;        ///< clean copy fetched from home memory
  std::uint64_t miss_remote_dirty = 0;  ///< forwarded from a modified owner
  std::uint64_t miss_upgrade = 0;       ///< S->M upgrade (write to shared line)
  std::uint64_t invalidations_sent = 0;
  std::uint64_t writebacks = 0;

  // Hot-spot queueing at directories.
  Cycles dir_queue_cycles = 0;
  std::uint64_t dir_queued_events = 0;

  // Synchronization.
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;

  // Engine.
  std::uint64_t fiber_switches = 0;
  std::uint64_t runahead_elided = 0;  ///< suspend/resume pairs skipped by run-ahead
  std::uint64_t clock_reads = 0;

  // Host-side engine throughput (wall clock of Engine::run on the host
  // machine — simulation overhead, not simulated behaviour).
  std::uint64_t host_wall_ns = 0;

  std::uint64_t cache_misses() const noexcept {
    return miss_cold + miss_shared + miss_remote_dirty + miss_upgrade;
  }

  /// Scheduler events: every charged operation ends in either a real fiber
  /// switch or an elided one, so this is invariant under runahead on/off.
  std::uint64_t engine_events() const noexcept {
    return fiber_switches + runahead_elided;
  }

  /// Engine throughput on the host: scheduler events per host second.
  double host_events_per_sec() const noexcept {
    if (host_wall_ns == 0) return 0.0;
    return static_cast<double>(engine_events()) * 1e9 /
           static_cast<double>(host_wall_ns);
  }

  void reset() noexcept { *this = SimStats{}; }

  /// Multi-line human-readable summary. Pass the run's operation count to
  /// also print derived rates (cache misses per operation, shared accesses
  /// per operation, contended-lock ratio).
  std::string summary(std::uint64_t ops = 0) const;
};

}  // namespace psim
