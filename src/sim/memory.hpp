// MemorySystem: the simulated machine's shared memory.
//
// Addresses are virtual: a bump allocator hands out 8-byte-aligned simulated
// addresses, and every simulated variable (Var<T>) couples one such address
// with host-side storage for its value. Only the *address* flows through the
// timing model; values are read and written directly, atomically, at the
// moment the engine executes the access. Because the engine executes shared
// accesses in nondecreasing local-time order, the result is a legal
// interleaving of atomic READ/WRITE/SWAP operations, exactly the model in
// Section 4.1 of the paper.
//
// The timing model is a full-map MSI directory protocol:
//  * each processor has a private set-associative cache of line tags;
//  * each 64-byte line has a home node (round-robin by line id) whose
//    directory tracks Uncached/Shared/Modified state, the owner, and the
//    sharer set;
//  * a miss costs request/response mesh hops, directory service time, and —
//    when a line is hot — queueing behind earlier transactions at the
//    directory, which is what turns a heap root or a shared size counter
//    into a scalability bottleneck.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "slpq/detail/bitset.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"

namespace psim {

inline constexpr std::size_t kLineBytes = 64;

using Addr = std::uint64_t;
using LineId = std::uint64_t;

inline LineId line_of(Addr a) noexcept { return a / kLineBytes; }

enum class Access : std::uint8_t { Read, Write, Rmw };

class MemorySystem {
 public:
  MemorySystem(const MachineConfig& cfg, SimStats& stats);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Allocates `bytes` of simulated address space (8-byte aligned by
  /// default). Consecutive allocations share cache lines unless padded —
  /// this is deliberate: it lets data-structure code choose its own layout
  /// and exposes false sharing in the timing model.
  Addr alloc(std::size_t bytes, std::size_t align = 8);

  /// Allocates a whole line, line-aligned (for deliberately isolated words).
  Addr alloc_line();

  /// Home node of a line (round-robin interleaving across nodes).
  int home_of(LineId line) const noexcept {
    return static_cast<int>(line % static_cast<LineId>(cfg_.processors));
  }

  /// Runs the coherence protocol for one access by `proc` issued at `now`;
  /// returns the completion time (>= now + cache_hit).
  Cycles access(int proc, Addr addr, Access kind, Cycles now);

  /// Drops every line from `proc`'s cache (used by tests and by the
  /// engine when simulating context loss). Dirty lines write back.
  void flush_cache(int proc);

  // ---- introspection for tests -----------------------------------------
  enum class LineState : std::uint8_t { Uncached, Shared, Modified };

  struct LineSnapshot {
    LineState state = LineState::Uncached;
    int owner = -1;
    std::size_t sharer_count = 0;
    bool cached_by(int proc) const {
      return sharers != nullptr && sharers->test(static_cast<std::size_t>(proc));
    }
    const slpq::detail::DynamicBitset* sharers = nullptr;
  };

  /// Directory view of one line (for tests/debugging).
  LineSnapshot snapshot(LineId line) const;

  /// True if `proc`'s cache currently holds `line`.
  bool cached(int proc, LineId line) const;

  const MachineConfig& config() const noexcept { return cfg_; }
  const Mesh2D& mesh() const noexcept { return mesh_; }

 private:
  struct CacheWay {
    LineId line = kNoLine;
    bool valid = false;
    bool modified = false;
    std::uint64_t lru = 0;
  };

  struct DirEntry {
    LineState state = LineState::Uncached;
    int owner = -1;
    slpq::detail::DynamicBitset sharers;
    Cycles busy_until = 0;
  };

  static constexpr LineId kNoLine = ~LineId{0};

  CacheWay* cache_lookup(int proc, LineId line) noexcept;
  CacheWay& cache_insert(int proc, LineId line, bool modified, Cycles now);
  void cache_evict(int proc, CacheWay& way);
  DirEntry& dir_entry(LineId line);

  const MachineConfig cfg_;
  SimStats& stats_;
  Mesh2D mesh_;

  Addr next_addr_ = kLineBytes;  // address 0 is reserved as "null"
  std::vector<CacheWay> caches_;  // [proc * sets * ways + set * ways + way]
  std::uint64_t lru_clock_ = 0;
  std::unordered_map<LineId, DirEntry> directory_;
};

/// A simulated shared variable: host storage + a simulated address.
/// T must be trivially copyable and at most 8 bytes (a machine word).
/// Construct through a MemorySystem so the word gets an address; access it
/// only through Cpu::read/write/swap/cas/fetch_add so it gets charged.
template <typename T>
class Var {
  static_assert(std::is_trivially_copyable_v<T>, "Var needs a register type");
  static_assert(sizeof(T) <= 8, "Var models one machine word");

 public:
  Var(MemorySystem& mem, T init = T{}) : value_(init), addr_(mem.alloc(8)) {}

  /// Places the variable at a caller-chosen address (for custom layouts,
  /// e.g. several fields of a node sharing one line).
  Var(Addr addr, T init = T{}) : value_(init), addr_(addr) {}

  Var(const Var&) = delete;
  Var& operator=(const Var&) = delete;
  Var(Var&&) noexcept = default;
  Var& operator=(Var&&) noexcept = default;

  Addr addr() const noexcept { return addr_; }

  /// Untimed peek/poke. For engine internals, initialization before the
  /// simulation starts, and test assertions after it ends — never from
  /// simulated processor code.
  T raw() const noexcept { return value_; }
  void set_raw(T v) noexcept { value_ = v; }

 private:
  friend class Cpu;
  T value_;
  Addr addr_;
};

}  // namespace psim
