// MemorySystem: the simulated machine's shared memory.
//
// Addresses are virtual: a bump allocator hands out 8-byte-aligned simulated
// addresses, and every simulated variable (Var<T>) couples one such address
// with host-side storage for its value. Only the *address* flows through the
// timing model; values are read and written directly, atomically, at the
// moment the engine executes the access. Because the engine executes shared
// accesses in nondecreasing local-time order, the result is a legal
// interleaving of atomic READ/WRITE/SWAP operations, exactly the model in
// Section 4.1 of the paper.
//
// The timing model is a full-map MSI directory protocol:
//  * each processor has a private set-associative cache of line tags;
//  * each 64-byte line has a home node (round-robin by line id) whose
//    directory tracks Uncached/Shared/Modified state, the owner, and the
//    sharer set;
//  * a miss costs request/response mesh hops, directory service time, and —
//    when a line is hot — queueing behind earlier transactions at the
//    directory, which is what turns a heap root or a shared size counter
//    into a scalability bottleneck.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"

namespace psim {

inline constexpr std::size_t kLineBytes = 64;

using Addr = std::uint64_t;
using LineId = std::uint64_t;

inline LineId line_of(Addr a) noexcept { return a / kLineBytes; }

enum class Access : std::uint8_t { Read, Write, Rmw };

class MemorySystem {
 public:
  MemorySystem(const MachineConfig& cfg, SimStats& stats);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Allocates `bytes` of simulated address space (8-byte aligned by
  /// default). Consecutive allocations share cache lines unless padded —
  /// this is deliberate: it lets data-structure code choose its own layout
  /// and exposes false sharing in the timing model.
  Addr alloc(std::size_t bytes, std::size_t align = 8);

  /// Allocates a whole line, line-aligned (for deliberately isolated words).
  Addr alloc_line();

  /// Affinity allocation: reserves line-aligned lines whose round-robin
  /// home lands on `node` (first line) and on the consecutively-numbered —
  /// hence mesh-adjacent under the row-major layout — nodes after it for
  /// multi-line requests. Skips at most processors-1 lines of virtual
  /// address space to reach the right phase; the skipped lines are never
  /// touched, so the only cost is directory capacity, which grows with the
  /// bump allocator's high-water mark anyway. `bytes` rounds up to whole
  /// lines (at least one).
  Addr alloc_near(int node, std::size_t bytes);

  /// Home node of a line (round-robin interleaving across nodes).
  int home_of(LineId line) const noexcept {
    return static_cast<int>(line % static_cast<LineId>(cfg_.processors));
  }

  /// Runs the coherence protocol for one access by `proc` issued at `now`;
  /// returns the completion time (>= now + cache_hit). The hit path is
  /// inline — it runs tens of millions of times per simulated second and
  /// touches nothing but the tag array; misses take the out-of-line
  /// directory walk.
  Cycles access(int proc, Addr addr, Access kind, Cycles now) {
    assert(addr != 0 && "access through simulated null address");
    assert(proc >= 0 && proc < cfg_.processors);

    switch (kind) {
      case Access::Read: stats_.reads++; break;
      case Access::Write: stats_.writes++; break;
      case Access::Rmw: stats_.rmws++; break;
    }
    const bool is_write = kind != Access::Read;
    const LineId line = line_of(addr);
    CacheWay* way = cache_lookup(proc, line);
    if (way != nullptr && (!is_write || way->modified)) {
      way->lru = ++lru_clock_;
      stats_.cache_hits++;
      return now + cfg_.cache_hit +
             ((kind == Access::Rmw) ? cfg_.rmw_extra : 0);
    }
    return access_miss(proc, line, kind, now, way);
  }

  /// Drops every line from `proc`'s cache (used by tests and by the
  /// engine when simulating context loss). Dirty lines write back.
  void flush_cache(int proc);

  // ---- introspection for tests -----------------------------------------
  enum class LineState : std::uint8_t { Uncached, Shared, Modified };

  struct LineSnapshot {
    LineState state = LineState::Uncached;
    int owner = -1;
    std::size_t sharer_count = 0;
    /// Copy of the line's sharer set, one bit per processor (word i holds
    /// processors [64i, 64i+64)). Empty for a never-touched line.
    std::vector<std::uint64_t> sharer_words;
    bool cached_by(int proc) const {
      const auto w = static_cast<std::size_t>(proc) / 64;
      if (w >= sharer_words.size()) return false;
      return (sharer_words[w] >> (static_cast<std::size_t>(proc) % 64)) & 1u;
    }
  };

  /// Directory view of one line (for tests/debugging).
  LineSnapshot snapshot(LineId line) const;

  /// True if `proc`'s cache currently holds `line`.
  bool cached(int proc, LineId line) const;

  const MachineConfig& config() const noexcept { return cfg_; }
  const Mesh2D& mesh() const noexcept { return mesh_; }

 private:
  struct CacheWay {
    LineId line = kNoLine;
    bool valid = false;
    bool modified = false;
    std::uint64_t lru = 0;
  };

  /// One line's directory entry in the flat, line-indexed directory. The
  /// sharer set's first 64 processors live inline in `sharers0`; machines
  /// with more processors spill the remaining bits into `spill_`
  /// (spill_words_ words per line), so no line ever heap-allocates.
  struct DirEntry {
    Cycles busy_until = 0;
    std::uint64_t sharers0 = 0;  ///< sharer bits for processors 0..63
    std::int32_t owner = -1;
    LineState state = LineState::Uncached;
  };

  static constexpr LineId kNoLine = ~LineId{0};

  CacheWay* cache_lookup(int proc, LineId line) noexcept {
    const std::size_t set = static_cast<std::size_t>(line) & set_mask_;
    const std::size_t base =
        (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) *
        cfg_.cache_ways;
    for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
      CacheWay& way = caches_[base + w];
      if (way.valid && way.line == line) return &way;
    }
    return nullptr;
  }
  CacheWay& cache_insert(int proc, LineId line, bool modified);
  void cache_evict(int proc, CacheWay& way);

  /// Miss/upgrade path of access(): directory walk, invalidations, owner
  /// forwarding, occupancy queueing, cache fill.
  Cycles access_miss(int proc, LineId line, Access kind, Cycles now,
                     CacheWay* way);

  /// Flat directory lookup; grows the directory to cover `line` on first
  /// touch (lines come from the bump allocator, so growth tracks its
  /// high-water mark and is amortized O(1)).
  DirEntry& dir_entry(LineId line) {
    if (line >= dir_.size()) grow_directory(line);
    return dir_[static_cast<std::size_t>(line)];
  }
  void grow_directory(LineId line);

  // ---- sharer-set operations over (inline word, spill words) ------------
  std::uint64_t* spill_of(LineId line) noexcept {
    return spill_.data() + static_cast<std::size_t>(line) * spill_words_;
  }
  const std::uint64_t* spill_of(LineId line) const noexcept {
    return spill_.data() + static_cast<std::size_t>(line) * spill_words_;
  }
  void sharer_set(DirEntry& e, LineId line, int proc) noexcept {
    if (proc < 64) {
      e.sharers0 |= std::uint64_t{1} << proc;
    } else {
      spill_of(line)[static_cast<std::size_t>(proc) / 64 - 1] |=
          std::uint64_t{1} << (static_cast<std::size_t>(proc) % 64);
    }
  }
  void sharer_reset(DirEntry& e, LineId line, int proc) noexcept {
    if (proc < 64) {
      e.sharers0 &= ~(std::uint64_t{1} << proc);
    } else {
      spill_of(line)[static_cast<std::size_t>(proc) / 64 - 1] &=
          ~(std::uint64_t{1} << (static_cast<std::size_t>(proc) % 64));
    }
  }
  void sharers_clear(DirEntry& e, LineId line) noexcept {
    e.sharers0 = 0;
    std::uint64_t* w = spill_of(line);
    for (std::size_t i = 0; i < spill_words_; ++i) w[i] = 0;
  }
  bool sharers_none(const DirEntry& e, LineId line) const noexcept {
    if (e.sharers0 != 0) return false;
    const std::uint64_t* w = spill_of(line);
    for (std::size_t i = 0; i < spill_words_; ++i)
      if (w[i] != 0) return false;
    return true;
  }
  std::size_t sharers_count(const DirEntry& e, LineId line) const noexcept {
    std::size_t n = static_cast<std::size_t>(std::popcount(e.sharers0));
    const std::uint64_t* w = spill_of(line);
    for (std::size_t i = 0; i < spill_words_; ++i)
      n += static_cast<std::size_t>(std::popcount(w[i]));
    return n;
  }
  template <typename Fn>
  void sharers_for_each(const DirEntry& e, LineId line, Fn&& fn) const {
    for (std::uint64_t bits = e.sharers0; bits != 0; bits &= bits - 1)
      fn(static_cast<std::size_t>(std::countr_zero(bits)));
    const std::uint64_t* w = spill_of(line);
    for (std::size_t i = 0; i < spill_words_; ++i)
      for (std::uint64_t bits = w[i]; bits != 0; bits &= bits - 1)
        fn(64 * (i + 1) + static_cast<std::size_t>(std::countr_zero(bits)));
  }

  const MachineConfig cfg_;
  SimStats& stats_;
  Mesh2D mesh_;

  Addr next_addr_ = kLineBytes;  // address 0 is reserved as "null"
  std::vector<CacheWay> caches_;  // [proc * sets * ways + set * ways + way]
  std::size_t set_mask_ = 0;      // cache_sets - 1; set index = line & mask
  std::uint64_t lru_clock_ = 0;
  std::vector<DirEntry> dir_;       // flat directory, indexed by LineId
  std::vector<std::uint64_t> spill_;  // sharer bits for processors >= 64
  std::size_t spill_words_;           // spill words per line (0 for <= 64 procs)
};

/// A simulated shared variable: host storage + a simulated address.
/// T must be trivially copyable and at most 8 bytes (a machine word).
/// Construct through a MemorySystem so the word gets an address; access it
/// only through Cpu::read/write/swap/cas/fetch_add so it gets charged.
template <typename T>
class Var {
  static_assert(std::is_trivially_copyable_v<T>, "Var needs a register type");
  static_assert(sizeof(T) <= 8, "Var models one machine word");

 public:
  Var(MemorySystem& mem, T init = T{}) : value_(init), addr_(mem.alloc(8)) {}

  /// Places the variable at a caller-chosen address (for custom layouts,
  /// e.g. several fields of a node sharing one line).
  Var(Addr addr, T init = T{}) : value_(init), addr_(addr) {}

  Var(const Var&) = delete;
  Var& operator=(const Var&) = delete;
  Var(Var&&) noexcept = default;
  Var& operator=(Var&&) noexcept = default;

  Addr addr() const noexcept { return addr_; }

  /// Untimed peek/poke. For engine internals, initialization before the
  /// simulation starts, and test assertions after it ends — never from
  /// simulated processor code.
  T raw() const noexcept { return value_; }
  void set_raw(T v) noexcept { value_ = v; }

 private:
  friend class Cpu;
  T value_;
  Addr addr_;
};

}  // namespace psim
