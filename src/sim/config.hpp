// MachineConfig: cost model of the simulated ccNUMA multiprocessor.
//
// Defaults are chosen to resemble the MIT Alewife machine the paper's
// Proteus runs modelled: single-issue processors, a small per-node cache,
// a 2-D mesh interconnect, and a directory-based coherence protocol whose
// home-node occupancy creates the hot-spot queueing the paper's heap
// baseline suffers from. Absolute cycle numbers are not calibrated to
// Alewife hardware; the *relative* costs (hit ≪ clean miss < dirty miss <
// contended hot line) are what the reproduction depends on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psim {

using Cycles = std::uint64_t;

struct MachineConfig {
  /// Number of simulated application processors.
  int processors = 16;

  // --- per-processor cache geometry -------------------------------------
  std::size_t cache_sets = 256;  ///< sets per cache; must be a power of two
                                 ///< (set index is a mask on the hot path)
  std::size_t cache_ways = 2;    ///< associativity
  // Line size is fixed at 64 bytes (kLineBytes in memory.hpp).

  // --- latency model (cycles) -------------------------------------------
  Cycles cache_hit = 2;        ///< load/store hit in the local cache
  Cycles miss_detect = 1;      ///< tag check before a miss goes remote
  Cycles hop_latency = 2;      ///< one mesh hop, one direction
  Cycles dir_service = 6;      ///< directory controller occupancy per request
  Cycles mem_latency = 12;     ///< DRAM access at the home node
  Cycles cache_to_cache = 8;   ///< dirty-data forward from an owner cache
  Cycles inv_overhead = 4;     ///< fixed cost of launching invalidations
  Cycles writeback = 4;        ///< eviction writeback (off the critical path)
  Cycles rmw_extra = 3;        ///< extra cost of SWAP/CAS/fetch-add over a store
  Cycles clock_read = 4;       ///< reading the globally-synchronized cycle clock
  Cycles lock_handoff = 6;     ///< scheduler hand-off latency on mutex release

  // --- behaviour ----------------------------------------------------------
  /// If true, the directory stays busy for a transaction's full service
  /// time, so concurrent requests to one hot line queue up (Alewife-like).
  bool model_dir_occupancy = true;

  /// Run-ahead scheduling: after an operation is charged, the engine keeps
  /// executing the same processor — eliding the suspend/resume fiber-switch
  /// pair and the run-queue round trip — whenever that processor would win
  /// the scheduler again anyway (its new local time still at or before every
  /// runnable processor's, with the run queue's id tie-break). The elision
  /// test is exactly the run queue's comparator, so the schedule (and every
  /// simulated result) is identical with this on or off; only host speed
  /// and SimStats::fiber_switches/runahead_elided change. Escape hatch:
  /// pqsim --no-runahead.
  bool runahead = true;

  /// Seed for any randomized engine decisions (currently start staggering).
  std::uint64_t seed = 1;

  /// Stagger processor start times by up to this many cycles to avoid
  /// lock-step artifacts (0 disables).
  Cycles start_stagger = 16;

  /// Abort the run (std::runtime_error with a state dump) after this many
  /// scheduler events (fiber switches + run-ahead elided switches; the two
  /// sum to the same event count whether runahead is on or off); catches
  /// livelocks that a blocked-processor deadlock check cannot see because a
  /// daemon keeps the run queue non-empty. 0 disables.
  std::uint64_t watchdog_switches = 0;

  /// Keep a ring buffer of the last N engine events (memory ops, clock
  /// reads, blocks, wakes) for post-mortem debugging; they are appended to
  /// deadlock/watchdog exception messages and available via
  /// Engine::recent_events(). 0 disables (no overhead).
  std::size_t trace_depth = 0;
};

}  // namespace psim
