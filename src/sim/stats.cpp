#include "sim/stats.hpp"

#include <sstream>

namespace psim {

std::string SimStats::summary() const {
  std::ostringstream os;
  const auto accesses = reads + writes + rmws;
  os << "shared accesses: " << accesses << " (r=" << reads << " w=" << writes
     << " rmw=" << rmws << ")\n";
  os << "cache: hits=" << cache_hits << " misses=" << cache_misses()
     << " (cold=" << miss_cold << " shared=" << miss_shared
     << " dirty-fwd=" << miss_remote_dirty << " upgrade=" << miss_upgrade << ")\n";
  os << "coherence: invalidations=" << invalidations_sent
     << " writebacks=" << writebacks << "\n";
  os << "directory queueing: events=" << dir_queued_events
     << " cycles=" << dir_queue_cycles << "\n";
  os << "locks: acquires=" << lock_acquires << " contended=" << lock_contended
     << "\n";
  os << "engine: fiber-switches=" << fiber_switches
     << " clock-reads=" << clock_reads << "\n";
  return os.str();
}

}  // namespace psim
