#include "sim/stats.hpp"

#include <iomanip>
#include <sstream>

namespace psim {

std::string SimStats::summary(std::uint64_t ops) const {
  std::ostringstream os;
  const auto accesses = reads + writes + rmws;
  os << "shared accesses: " << accesses << " (r=" << reads << " w=" << writes
     << " rmw=" << rmws << ")\n";
  os << "cache: hits=" << cache_hits << " misses=" << cache_misses()
     << " (cold=" << miss_cold << " shared=" << miss_shared
     << " dirty-fwd=" << miss_remote_dirty << " upgrade=" << miss_upgrade << ")\n";
  os << "coherence: invalidations=" << invalidations_sent
     << " writebacks=" << writebacks << "\n";
  os << "directory queueing: events=" << dir_queued_events
     << " cycles=" << dir_queue_cycles << "\n";
  os << "locks: acquires=" << lock_acquires << " contended=" << lock_contended
     << "\n";
  os << "engine: fiber-switches=" << fiber_switches
     << " runahead-elided=" << runahead_elided << " clock-reads=" << clock_reads
     << "\n";
  if (host_wall_ns != 0) {
    os << "host: wall=" << host_wall_ns << "ns events/s="
       << static_cast<std::uint64_t>(host_events_per_sec()) << "\n";
  }

  // Derived rates. Contention is meaningful without an op count; the
  // per-op rates need one.
  os << std::fixed << std::setprecision(3);
  if (lock_acquires > 0) {
    os << "rates: contended-lock ratio="
       << static_cast<double>(lock_contended) /
              static_cast<double>(lock_acquires);
    if (ops > 0)
      os << " misses/op="
         << static_cast<double>(cache_misses()) / static_cast<double>(ops)
         << " accesses/op="
         << static_cast<double>(accesses) / static_cast<double>(ops);
    os << "\n";
  } else if (ops > 0) {
    os << "rates: misses/op="
       << static_cast<double>(cache_misses()) / static_cast<double>(ops)
       << " accesses/op="
       << static_cast<double>(accesses) / static_cast<double>(ops) << "\n";
  }
  return os.str();
}

}  // namespace psim
