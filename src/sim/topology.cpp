#include "sim/topology.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace psim {

Mesh2D::Mesh2D(int nodes) : nodes_(nodes) {
  assert(nodes >= 1);
  width_ = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  height_ = (nodes + width_ - 1) / width_;
}

int Mesh2D::hops(int a, int b) const noexcept {
  assert(a >= 0 && a < nodes_ && b >= 0 && b < nodes_);
  const int ax = a % width_, ay = a / width_;
  const int bx = b % width_, by = b / width_;
  return std::abs(ax - bx) + std::abs(ay - by);
}

double Mesh2D::mean_hops(int from) const noexcept {
  if (nodes_ <= 1) return 0.0;
  long total = 0;
  for (int n = 0; n < nodes_; ++n) total += hops(from, n);
  return static_cast<double>(total) / static_cast<double>(nodes_ - 1);
}

}  // namespace psim
