#include "sim/topology.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace psim {

Mesh2D::Mesh2D(int nodes) : nodes_(nodes) {
  assert(nodes >= 1);
  width_ = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  height_ = (nodes + width_ - 1) / width_;
  xs_.resize(static_cast<std::size_t>(nodes));
  ys_.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    xs_[static_cast<std::size_t>(n)] = static_cast<std::uint16_t>(n % width_);
    ys_[static_cast<std::size_t>(n)] = static_cast<std::uint16_t>(n / width_);
  }
}

double Mesh2D::mean_hops(int from) const noexcept {
  if (nodes_ <= 1) return 0.0;
  long total = 0;
  for (int n = 0; n < nodes_; ++n) total += hops(from, n);
  return static_cast<double>(total) / static_cast<double>(nodes_ - 1);
}

}  // namespace psim
