// Stackful fibers: the execution vehicle for virtual processors.
//
// The Proteus methodology multiplexes many simulated processors onto one
// host CPU. Each virtual processor runs its benchmark code on its own
// stack; every globally-visible operation (shared-memory access, lock,
// clock read) suspends the fiber and returns control to the engine, which
// decides — by simulated local time — which processor runs next.
//
// Two backends:
//  * fcontext (default on x86-64): a ~15-instruction assembly switch that
//    saves only the SysV callee-saved registers. No syscalls, ~10ns.
//  * ucontext (portable fallback): swapcontext(3). Slower (it performs a
//    sigprocmask syscall per switch) but works everywhere POSIX does.
//
// Single-threaded by design: the engine and all its fibers live on one host
// thread. resume()/suspend() must not be called concurrently.
#pragma once

#include <cstddef>
#include <functional>

namespace psim {

class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// Empty fiber; resume() is invalid until assigned a real one.
  Fiber() noexcept;

  /// Creates a suspended fiber that will run `body` on first resume().
  /// The stack is mmap'd with an inaccessible guard page below it, so a
  /// stack overflow faults instead of corrupting a neighbouring stack.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&& other) noexcept;
  Fiber& operator=(Fiber&& other) noexcept;

  /// Destroying a suspended (not finished) fiber simply releases its stack;
  /// the body's pending stack frames are NOT unwound. Engine code joins all
  /// fibers before teardown, so this is a shutdown-only escape hatch.
  ~Fiber();

  /// Transfers control into the fiber until it suspends or its body returns.
  /// Must be called from outside any fiber (i.e., from the engine), and the
  /// fiber must not be finished. Returns true once the body has returned —
  /// the same answer as finished(), folded into the switch so the engine's
  /// per-switch loop makes a single out-of-line call.
  bool resume();

  /// Called from inside a running fiber: transfers control back to the
  /// resume() call that entered it.
  static void suspend();

  /// True while execution is inside any fiber on this thread.
  static bool in_fiber() noexcept;

  bool valid() const noexcept { return impl_ != nullptr; }
  bool finished() const noexcept;

  /// Backend-defined state; public so the backend translation unit's free
  /// functions (springboard, entry shims) can name it.
  struct Impl;

 private:
  Impl* impl_;
};

}  // namespace psim
