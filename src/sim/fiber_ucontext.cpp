// Fiber implementation on POSIX ucontext (portable fallback backend).
#include "sim/fiber.hpp"

#include <ucontext.h>

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/fiber_stack.hpp"

namespace psim {

struct Fiber::Impl {
  detail::StackAllocation stack;
  std::function<void()> body;
  ucontext_t fiber_ctx{};
  ucontext_t return_ctx{};
  bool started = false;
  bool finished = false;
};

namespace {
thread_local Fiber::Impl* t_current_fiber = nullptr;

// makecontext() passes int arguments only; split/reassemble the pointer.
void fiber_entry(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* impl = reinterpret_cast<Fiber::Impl*>(ptr);
  impl->body();
  impl->finished = true;
  for (;;) Fiber::suspend();
}
}  // namespace

Fiber::Fiber() noexcept : impl_(nullptr) {}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : impl_(new Impl) {
  impl_->stack = detail::allocate_stack(stack_bytes);
  impl_->body = std::move(body);

  getcontext(&impl_->fiber_ctx);
  impl_->fiber_ctx.uc_stack.ss_sp =
      static_cast<char*>(impl_->stack.usable_top) - impl_->stack.usable_size;
  impl_->fiber_ctx.uc_stack.ss_size = impl_->stack.usable_size;
  impl_->fiber_ctx.uc_link = nullptr;

  const auto ptr = reinterpret_cast<std::uintptr_t>(impl_);
  makecontext(&impl_->fiber_ctx, reinterpret_cast<void (*)()>(fiber_entry), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xFFFFFFFFu));
}

Fiber::Fiber(Fiber&& other) noexcept : impl_(std::exchange(other.impl_, nullptr)) {}

Fiber& Fiber::operator=(Fiber&& other) noexcept {
  if (this != &other) {
    this->~Fiber();
    impl_ = std::exchange(other.impl_, nullptr);
  }
  return *this;
}

Fiber::~Fiber() {
  if (impl_ == nullptr) return;
  assert(t_current_fiber != impl_ && "a fiber cannot destroy itself");
  detail::free_stack(impl_->stack);
  delete impl_;
}

bool Fiber::resume() {
  assert(impl_ != nullptr && "resume() on an empty fiber");
  assert(!impl_->finished && "resume() on a finished fiber");
  assert(t_current_fiber == nullptr && "nested fibers are not supported");
  impl_->started = true;
  t_current_fiber = impl_;
  swapcontext(&impl_->return_ctx, &impl_->fiber_ctx);
  t_current_fiber = nullptr;
  return impl_->finished;
}

void Fiber::suspend() {
  Impl* self = t_current_fiber;
  assert(self != nullptr && "suspend() outside any fiber");
  swapcontext(&self->fiber_ctx, &self->return_ctx);
}

bool Fiber::in_fiber() noexcept { return t_current_fiber != nullptr; }

bool Fiber::finished() const noexcept { return impl_ != nullptr && impl_->finished; }

}  // namespace psim
