// Fiber implementation on the custom x86-64 context switch.
#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/fiber_stack.hpp"

extern "C" {
void* psim_ctx_swap(void** from_sp, void* to_sp, void* arg);
void psim_fiber_springboard();
}

namespace psim {

struct Fiber::Impl {
  detail::StackAllocation stack;
  std::function<void()> body;
  void* fiber_sp = nullptr;   // fiber's saved stack pointer while suspended
  void* return_sp = nullptr;  // resumer's saved stack pointer while fiber runs
  bool started = false;
  bool finished = false;
};

namespace {
// The engine is single-threaded, but keep per-thread state so that tests
// running engines on different threads don't interfere.
thread_local Fiber::Impl* t_current_fiber = nullptr;
}  // namespace

extern "C" void psim_fiber_main(void* arg) {
  auto* impl = static_cast<Fiber::Impl*>(arg);
  impl->body();
  impl->finished = true;
  // Return to the resumer; if somebody resumes a finished fiber the loop
  // bounces straight back out.
  for (;;) Fiber::suspend();
}

Fiber::Fiber() noexcept : impl_(nullptr) {}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : impl_(new Impl) {
  impl_->stack = detail::allocate_stack(stack_bytes);
  impl_->body = std::move(body);

  // Bootstrap frame, laid out so psim_ctx_swap's epilogue pops six zeroed
  // callee-saved registers and `ret`s into the springboard. The springboard
  // executes `call` with rsp = sp + 7*8; SysV requires rsp % 16 == 0 at the
  // call site, hence the alignment adjustment below.
  auto top = reinterpret_cast<std::uintptr_t>(impl_->stack.usable_top);
  top &= ~std::uintptr_t{15};  // 16-byte align the stack top
  std::uintptr_t sp = top - 9 * 8;  // 7 bootstrap words + 16 bytes headroom
  if ((sp + 7 * 8) % 16 != 0) sp -= 8;
  auto* words = reinterpret_cast<void**>(sp);
  for (int i = 0; i < 6; ++i) words[i] = nullptr;  // r15 r14 r13 r12 rbx rbp
  words[6] = reinterpret_cast<void*>(&psim_fiber_springboard);
  impl_->fiber_sp = reinterpret_cast<void*>(sp);
}

Fiber::Fiber(Fiber&& other) noexcept : impl_(std::exchange(other.impl_, nullptr)) {}

Fiber& Fiber::operator=(Fiber&& other) noexcept {
  if (this != &other) {
    this->~Fiber();
    impl_ = std::exchange(other.impl_, nullptr);
  }
  return *this;
}

Fiber::~Fiber() {
  if (impl_ == nullptr) return;
  assert(t_current_fiber != impl_ && "a fiber cannot destroy itself");
  detail::free_stack(impl_->stack);
  delete impl_;
}

bool Fiber::resume() {
  assert(impl_ != nullptr && "resume() on an empty fiber");
  assert(!impl_->finished && "resume() on a finished fiber");
  assert(t_current_fiber == nullptr && "nested fibers are not supported");
  impl_->started = true;
  t_current_fiber = impl_;
  // First activation passes impl_ through to the springboard (in %rax);
  // later activations deliver it as psim_ctx_swap's return value inside
  // suspend(), which ignores it.
  psim_ctx_swap(&impl_->return_sp, impl_->fiber_sp, impl_);
  t_current_fiber = nullptr;
  return impl_->finished;
}

void Fiber::suspend() {
  Impl* self = t_current_fiber;
  assert(self != nullptr && "suspend() outside any fiber");
  psim_ctx_swap(&self->fiber_sp, self->return_sp, nullptr);
}

bool Fiber::in_fiber() noexcept { return t_current_fiber != nullptr; }

bool Fiber::finished() const noexcept { return impl_ != nullptr && impl_->finished; }

}  // namespace psim
