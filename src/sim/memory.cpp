#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>

namespace psim {

MemorySystem::MemorySystem(const MachineConfig& cfg, SimStats& stats)
    : cfg_(cfg),
      stats_(stats),
      mesh_(cfg.processors),
      caches_(static_cast<std::size_t>(cfg.processors) * cfg.cache_sets *
              cfg.cache_ways) {
  assert(cfg.processors >= 1);
  assert(cfg.cache_sets >= 1 && cfg.cache_ways >= 1);
}

Addr MemorySystem::alloc(std::size_t bytes, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0);
  next_addr_ = (next_addr_ + align - 1) & ~static_cast<Addr>(align - 1);
  const Addr out = next_addr_;
  next_addr_ += bytes;
  return out;
}

Addr MemorySystem::alloc_line() { return alloc(kLineBytes, kLineBytes); }

MemorySystem::CacheWay* MemorySystem::cache_lookup(int proc, LineId line) noexcept {
  const std::size_t set = static_cast<std::size_t>(line) % cfg_.cache_sets;
  const std::size_t base =
      (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) * cfg_.cache_ways;
  for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
    CacheWay& way = caches_[base + w];
    if (way.valid && way.line == line) return &way;
  }
  return nullptr;
}

MemorySystem::CacheWay& MemorySystem::cache_insert(int proc, LineId line,
                                                   bool modified, Cycles) {
  const std::size_t set = static_cast<std::size_t>(line) % cfg_.cache_sets;
  const std::size_t base =
      (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) * cfg_.cache_ways;
  CacheWay* victim = &caches_[base];
  for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
    CacheWay& way = caches_[base + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) cache_evict(proc, *victim);
  victim->line = line;
  victim->valid = true;
  victim->modified = modified;
  victim->lru = ++lru_clock_;
  return *victim;
}

void MemorySystem::cache_evict(int proc, CacheWay& way) {
  assert(way.valid);
  DirEntry& e = dir_entry(way.line);
  if (way.modified) {
    // Writeback: memory becomes clean, line leaves every cache state.
    stats_.writebacks++;
    assert(e.state == LineState::Modified && e.owner == proc);
    e.state = LineState::Uncached;
    e.owner = -1;
    e.sharers.clear();
  } else {
    // Replacement hint: drop this sharer precisely.
    if (e.sharers.size() != 0) e.sharers.reset(static_cast<std::size_t>(proc));
    if (e.state == LineState::Shared && e.sharers.none())
      e.state = LineState::Uncached;
  }
  way.valid = false;
  way.modified = false;
  way.line = kNoLine;
}

MemorySystem::DirEntry& MemorySystem::dir_entry(LineId line) {
  auto [it, inserted] = directory_.try_emplace(line);
  if (inserted)
    it->second.sharers =
        slpq::detail::DynamicBitset(static_cast<std::size_t>(cfg_.processors));
  return it->second;
}

Cycles MemorySystem::access(int proc, Addr addr, Access kind, Cycles now) {
  assert(addr != 0 && "access through simulated null address");
  assert(proc >= 0 && proc < cfg_.processors);

  switch (kind) {
    case Access::Read: stats_.reads++; break;
    case Access::Write: stats_.writes++; break;
    case Access::Rmw: stats_.rmws++; break;
  }
  const bool is_write = kind != Access::Read;
  const Cycles op_extra = (kind == Access::Rmw) ? cfg_.rmw_extra : 0;

  const LineId line = line_of(addr);
  CacheWay* way = cache_lookup(proc, line);

  // ---- hit path ---------------------------------------------------------
  if (way != nullptr && (!is_write || way->modified)) {
    way->lru = ++lru_clock_;
    stats_.cache_hits++;
    return now + cfg_.cache_hit + op_extra;
  }

  // ---- miss / upgrade path ----------------------------------------------
  DirEntry& e = dir_entry(line);
  const int home = home_of(line);
  const Cycles to_home =
      static_cast<Cycles>(mesh_.hops(proc, home)) * cfg_.hop_latency;

  const Cycles arrive = now + cfg_.miss_detect + to_home;
  Cycles start = arrive;
  if (cfg_.model_dir_occupancy && e.busy_until > arrive) {
    start = e.busy_until;
    stats_.dir_queue_cycles += start - arrive;
    stats_.dir_queued_events++;
  }

  Cycles service = cfg_.dir_service;

  const bool upgrade = (way != nullptr) && is_write;  // S -> M upgrade
  if (upgrade)
    stats_.miss_upgrade++;

  switch (e.state) {
    case LineState::Uncached:
      if (!upgrade) stats_.miss_cold++;
      service += cfg_.mem_latency;
      break;

    case LineState::Shared: {
      if (is_write) {
        // Invalidate all other sharers; invalidations go out in parallel,
        // so charge the farthest round trip plus a fixed launch overhead.
        Cycles worst_rtt = 0;
        e.sharers.for_each([&](std::size_t s) {
          if (static_cast<int>(s) == proc) return;
          stats_.invalidations_sent++;
          const Cycles rtt = 2 *
                             static_cast<Cycles>(
                                 mesh_.hops(home, static_cast<int>(s))) *
                             cfg_.hop_latency;
          worst_rtt = std::max(worst_rtt, rtt);
          // Drop the line from that cache.
          if (CacheWay* sw = cache_lookup(static_cast<int>(s), line)) {
            sw->valid = false;
            sw->modified = false;
            sw->line = kNoLine;
          }
        });
        if (!upgrade) stats_.miss_shared++;
        service += cfg_.inv_overhead + worst_rtt + cfg_.mem_latency;
      } else {
        stats_.miss_shared++;
        service += cfg_.mem_latency;
      }
      break;
    }

    case LineState::Modified: {
      // A modified copy lives in `owner`'s cache: forward/retrieve it.
      const int owner = e.owner;
      assert(owner >= 0 && owner != proc &&
             "modified-by-self must have hit in cache");
      stats_.miss_remote_dirty++;
      const Cycles owner_rtt =
          2 * static_cast<Cycles>(mesh_.hops(home, owner)) * cfg_.hop_latency;
      service += owner_rtt + cfg_.cache_to_cache;
      if (CacheWay* ow = cache_lookup(owner, line)) {
        if (is_write) {
          ow->valid = false;
          ow->modified = false;
          ow->line = kNoLine;
        } else {
          ow->modified = false;  // owner downgrades M -> S
        }
      }
      if (!is_write) {
        e.sharers.set(static_cast<std::size_t>(owner));
      }
      break;
    }
  }

  if (cfg_.model_dir_occupancy) e.busy_until = start + service;

  // New directory state.
  if (is_write) {
    e.state = LineState::Modified;
    e.owner = proc;
    e.sharers.clear();
    e.sharers.set(static_cast<std::size_t>(proc));
  } else {
    e.state = LineState::Shared;
    e.owner = -1;
    e.sharers.set(static_cast<std::size_t>(proc));
  }

  // Reply back to the requester.
  const Cycles done = start + service + to_home;

  // Install in the requester's cache.
  if (upgrade) {
    way->modified = true;
    way->lru = ++lru_clock_;
  } else {
    cache_insert(proc, line, is_write, done);
  }

  return done + op_extra;
}

void MemorySystem::flush_cache(int proc) {
  const std::size_t base =
      static_cast<std::size_t>(proc) * cfg_.cache_sets * cfg_.cache_ways;
  for (std::size_t i = 0; i < cfg_.cache_sets * cfg_.cache_ways; ++i) {
    CacheWay& way = caches_[base + i];
    if (way.valid) cache_evict(proc, way);
  }
}

MemorySystem::LineSnapshot MemorySystem::snapshot(LineId line) const {
  LineSnapshot out;
  const auto it = directory_.find(line);
  if (it == directory_.end()) return out;
  out.state = it->second.state;
  out.owner = it->second.owner;
  out.sharer_count = it->second.sharers.count();
  out.sharers = &it->second.sharers;
  return out;
}

bool MemorySystem::cached(int proc, LineId line) const {
  const std::size_t set = static_cast<std::size_t>(line) % cfg_.cache_sets;
  const std::size_t base =
      (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) * cfg_.cache_ways;
  for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
    const CacheWay& way = caches_[base + w];
    if (way.valid && way.line == line) return true;
  }
  return false;
}

}  // namespace psim
