#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace psim {

MemorySystem::MemorySystem(const MachineConfig& cfg, SimStats& stats)
    : cfg_(cfg),
      stats_(stats),
      mesh_(cfg.processors),
      caches_(static_cast<std::size_t>(cfg.processors) * cfg.cache_sets *
              cfg.cache_ways),
      spill_words_((static_cast<std::size_t>(cfg.processors) + 63) / 64 - 1) {
  assert(cfg.processors >= 1);
  assert(cfg.cache_sets >= 1 && cfg.cache_ways >= 1);
  if (!std::has_single_bit(cfg.cache_sets))
    throw std::invalid_argument("MachineConfig::cache_sets must be a power of two");
  set_mask_ = cfg.cache_sets - 1;
}

Addr MemorySystem::alloc(std::size_t bytes, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0);
  next_addr_ = (next_addr_ + align - 1) & ~static_cast<Addr>(align - 1);
  const Addr out = next_addr_;
  next_addr_ += bytes;
  return out;
}

Addr MemorySystem::alloc_line() { return alloc(kLineBytes, kLineBytes); }

Addr MemorySystem::alloc_near(int node, std::size_t bytes) {
  assert(node >= 0 && node < cfg_.processors);
  const std::size_t lines = bytes == 0 ? 1 : (bytes + kLineBytes - 1) / kLineBytes;
  // Advance the bump pointer to the next line whose round-robin home is
  // `node`: home_of(line) == line % processors.
  next_addr_ = (next_addr_ + kLineBytes - 1) & ~static_cast<Addr>(kLineBytes - 1);
  const auto procs = static_cast<LineId>(cfg_.processors);
  const LineId phase = line_of(next_addr_) % procs;
  const LineId want = static_cast<LineId>(node);
  const LineId skip = (want + procs - phase) % procs;
  next_addr_ += static_cast<Addr>(skip) * kLineBytes;
  const Addr out = next_addr_;
  next_addr_ += static_cast<Addr>(lines) * kLineBytes;
  assert(home_of(line_of(out)) == node);
  return out;
}

MemorySystem::CacheWay& MemorySystem::cache_insert(int proc, LineId line,
                                                   bool modified) {
  const std::size_t set = static_cast<std::size_t>(line) & set_mask_;
  const std::size_t base =
      (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) * cfg_.cache_ways;
  CacheWay* victim = &caches_[base];
  for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
    CacheWay& way = caches_[base + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) cache_evict(proc, *victim);
  victim->line = line;
  victim->valid = true;
  victim->modified = modified;
  victim->lru = ++lru_clock_;
  return *victim;
}

void MemorySystem::cache_evict(int proc, CacheWay& way) {
  assert(way.valid);
  const LineId line = way.line;
  DirEntry& e = dir_entry(line);
  if (way.modified) {
    // Writeback: memory becomes clean, line leaves every cache state.
    stats_.writebacks++;
    assert(e.state == LineState::Modified && e.owner == proc);
    e.state = LineState::Uncached;
    e.owner = -1;
    sharers_clear(e, line);
  } else {
    // Replacement hint: drop this sharer precisely.
    sharer_reset(e, line, proc);
    if (e.state == LineState::Shared && sharers_none(e, line))
      e.state = LineState::Uncached;
  }
  way.valid = false;
  way.modified = false;
  way.line = kNoLine;
}

void MemorySystem::grow_directory(LineId line) {
  // Cover at least the bump allocator's high-water mark, doubling from
  // there, so a run resizes the directory O(log lines) times no matter the
  // access pattern. Entries are value-initialized: Uncached, no sharers.
  const auto hwm = static_cast<std::size_t>(line_of(next_addr_ - 1)) + 1;
  std::size_t cap = std::max(static_cast<std::size_t>(line) + 1, hwm);
  cap = std::max(cap, dir_.size() * 2);
  cap = std::max(cap, std::size_t{1024});
  dir_.resize(cap);
  spill_.resize(cap * spill_words_, 0);
}

Cycles MemorySystem::access_miss(int proc, LineId line, Access kind,
                                 Cycles now, CacheWay* way) {
  const bool is_write = kind != Access::Read;
  const Cycles op_extra = (kind == Access::Rmw) ? cfg_.rmw_extra : 0;

  DirEntry& e = dir_entry(line);
  const int home = home_of(line);
  const Cycles to_home =
      static_cast<Cycles>(mesh_.hops(proc, home)) * cfg_.hop_latency;

  const Cycles arrive = now + cfg_.miss_detect + to_home;
  Cycles start = arrive;
  if (cfg_.model_dir_occupancy && e.busy_until > arrive) {
    start = e.busy_until;
    stats_.dir_queue_cycles += start - arrive;
    stats_.dir_queued_events++;
  }

  Cycles service = cfg_.dir_service;

  const bool upgrade = (way != nullptr) && is_write;  // S -> M upgrade
  if (upgrade)
    stats_.miss_upgrade++;

  switch (e.state) {
    case LineState::Uncached:
      if (!upgrade) stats_.miss_cold++;
      service += cfg_.mem_latency;
      break;

    case LineState::Shared: {
      if (is_write) {
        // Invalidate all other sharers; invalidations go out in parallel,
        // so charge the farthest round trip plus a fixed launch overhead.
        Cycles worst_rtt = 0;
        sharers_for_each(e, line, [&](std::size_t s) {
          if (static_cast<int>(s) == proc) return;
          stats_.invalidations_sent++;
          const Cycles rtt = 2 *
                             static_cast<Cycles>(
                                 mesh_.hops(home, static_cast<int>(s))) *
                             cfg_.hop_latency;
          worst_rtt = std::max(worst_rtt, rtt);
          // Drop the line from that cache.
          if (CacheWay* sw = cache_lookup(static_cast<int>(s), line)) {
            sw->valid = false;
            sw->modified = false;
            sw->line = kNoLine;
          }
        });
        if (!upgrade) stats_.miss_shared++;
        service += cfg_.inv_overhead + worst_rtt + cfg_.mem_latency;
      } else {
        stats_.miss_shared++;
        service += cfg_.mem_latency;
      }
      break;
    }

    case LineState::Modified: {
      // A modified copy lives in `owner`'s cache: forward/retrieve it.
      const int owner = e.owner;
      assert(owner >= 0 && owner != proc &&
             "modified-by-self must have hit in cache");
      stats_.miss_remote_dirty++;
      const Cycles owner_rtt =
          2 * static_cast<Cycles>(mesh_.hops(home, owner)) * cfg_.hop_latency;
      service += owner_rtt + cfg_.cache_to_cache;
      if (CacheWay* ow = cache_lookup(owner, line)) {
        if (is_write) {
          ow->valid = false;
          ow->modified = false;
          ow->line = kNoLine;
        } else {
          ow->modified = false;  // owner downgrades M -> S
        }
      }
      if (!is_write) {
        sharer_set(e, line, owner);
      }
      break;
    }
  }

  if (cfg_.model_dir_occupancy) e.busy_until = start + service;

  // New directory state.
  if (is_write) {
    e.state = LineState::Modified;
    e.owner = proc;
    sharers_clear(e, line);
    sharer_set(e, line, proc);
  } else {
    e.state = LineState::Shared;
    e.owner = -1;
    sharer_set(e, line, proc);
  }

  // Reply back to the requester.
  const Cycles done = start + service + to_home;

  // Install in the requester's cache.
  if (upgrade) {
    way->modified = true;
    way->lru = ++lru_clock_;
  } else {
    cache_insert(proc, line, is_write);
  }

  return done + op_extra;
}

void MemorySystem::flush_cache(int proc) {
  const std::size_t base =
      static_cast<std::size_t>(proc) * cfg_.cache_sets * cfg_.cache_ways;
  for (std::size_t i = 0; i < cfg_.cache_sets * cfg_.cache_ways; ++i) {
    CacheWay& way = caches_[base + i];
    if (way.valid) cache_evict(proc, way);
  }
}

MemorySystem::LineSnapshot MemorySystem::snapshot(LineId line) const {
  LineSnapshot out;
  if (static_cast<std::size_t>(line) >= dir_.size()) return out;
  const DirEntry& e = dir_[static_cast<std::size_t>(line)];
  out.state = e.state;
  out.owner = e.owner;
  out.sharer_count = sharers_count(e, line);
  out.sharer_words.reserve(1 + spill_words_);
  out.sharer_words.push_back(e.sharers0);
  const std::uint64_t* w = spill_of(line);
  for (std::size_t i = 0; i < spill_words_; ++i) out.sharer_words.push_back(w[i]);
  return out;
}

bool MemorySystem::cached(int proc, LineId line) const {
  const std::size_t set = static_cast<std::size_t>(line) & set_mask_;
  const std::size_t base =
      (static_cast<std::size_t>(proc) * cfg_.cache_sets + set) * cfg_.cache_ways;
  for (std::size_t w = 0; w < cfg_.cache_ways; ++w) {
    const CacheWay& way = caches_[base + w];
    if (way.valid && way.line == line) return true;
  }
  return false;
}

}  // namespace psim
