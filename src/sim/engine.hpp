// Engine: the Proteus-style multiprocessor execution engine.
//
// Each simulated processor is a fiber with a local cycle clock. The engine
// repeatedly resumes the runnable processor with the smallest local time;
// the processor executes exactly one globally-visible operation (a shared
// memory access, a clock read, or a block of local work), has its clock
// advanced by the operation's cost, and suspends back to the engine. Shared
// operations therefore execute atomically, in nondecreasing local-time
// order — the linearizable READ/WRITE/SWAP machine of the paper's
// Section 4.1, with a timing model attached.
//
// Processors interact with the machine only through the Cpu handle passed
// to their body. A processor marked `daemon` (e.g. the garbage collector of
// Section 3) does not keep the simulation alive: when every non-daemon body
// has returned, Engine sets `stopping()` and daemons are expected to exit.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "slpq/detail/indexed_min_heap.hpp"
#include "slpq/detail/random.hpp"
#include "sim/config.hpp"
#include "sim/fiber.hpp"
#include "sim/memory.hpp"
#include "sim/stats.hpp"

namespace psim {

class Engine;

/// Handle through which a simulated processor's code touches the machine.
/// Every method must be called from inside that processor's fiber (i.e.,
/// from the body passed to Engine::add_processor), except id().
class Cpu {
 public:
  int id() const noexcept { return id_; }

  /// Local cycle clock of this processor.
  Cycles now() const noexcept;

  /// Spends `c` cycles of purely local work (the benchmark's "work period").
  void advance(Cycles c);

  /// Reads the globally synchronized hardware clock; returns the cycle at
  /// which the read was issued. This is the paper's getTime().
  Cycles clock();

  /// Atomic shared-memory operations (Section 4.1's READ/WRITE/SWAP, plus
  /// CAS and fetch-add for the baselines). Each charges the coherence
  /// protocol's cost and yields to the engine.
  template <typename T>
  T read(const Var<T>& v);
  template <typename T>
  void write(Var<T>& v, T val);
  template <typename T>
  T swap(Var<T>& v, T val);
  template <typename T>
  bool cas(Var<T>& v, T expected, T desired);
  template <typename T>
  T fetch_add(Var<T>& v, T delta);
  template <typename T>
  T fetch_or(Var<T>& v, T bits);

  /// Cooperative reschedule point (costs one cycle so spinners make progress
  /// in simulated time).
  void yield() { advance(1); }

  /// True once every non-daemon processor has finished.
  bool stopping() const noexcept;

  Engine& engine() noexcept { return *eng_; }

 private:
  friend class Engine;
  Cpu(Engine* eng, int id) noexcept : eng_(eng), id_(id) {}
  Engine* eng_;
  int id_;
};

class Engine {
 public:
  explicit Engine(const MachineConfig& cfg);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a processor; bodies run when run() is called. Returns the
  /// processor id (dense, starting at 0; ids are also mesh node ids).
  /// Must be called before run(). The processor count must not exceed
  /// config().processors.
  int add_processor(std::function<void(Cpu&)> body, bool daemon = false);

  /// Runs the simulation to completion (every processor body returned).
  /// Throws std::runtime_error on deadlock (runnable set empty while some
  /// processor is still blocked).
  void run();

  MemorySystem& memory() noexcept { return memory_; }
  SimStats& stats() noexcept { return stats_; }
  const MachineConfig& config() const noexcept { return cfg_; }

  /// Local clock of a processor (valid during and after run()). On the hot
  /// path via Cpu::now(), so no bounds-checked access here.
  Cycles time_of(int proc) const {
    assert(proc >= 0 && static_cast<std::size_t>(proc) < procs_.size());
    return procs_[static_cast<std::size_t>(proc)]->time;
  }

  /// Largest local clock observed across processors.
  Cycles horizon() const noexcept { return horizon_; }

  bool stopping() const noexcept { return stopping_; }

  // ---- used by Cpu and by the sync primitives ---------------------------
  void op_advance(int proc, Cycles c);
  Cycles op_clock(int proc);
  void op_mem(int proc, Addr addr, Access kind);

  /// Blocks the current processor; it will not be scheduled again until
  /// wake(). Must be called from inside that processor's fiber. If a wake
  /// token is already pending (wake() raced ahead of the block), the call
  /// consumes it and returns immediately.
  void block_current();

  /// Makes `proc` runnable again, no earlier than `not_before`. If `proc`
  /// has not reached block_current() yet (it can be suspended inside the
  /// memory access that precedes its decision to block), a pending-wake
  /// token is left instead, so the wake is never lost.
  void wake(int proc, Cycles not_before);

  int current() const noexcept { return current_; }

  /// Debug aid: primitives record what the current processor is about to
  /// block on (shown in watchdog/deadlock dumps).
  void note_block(const void* what, int holder);

  /// One entry of the optional event trace (MachineConfig::trace_depth).
  struct TraceEvent {
    int proc;
    char kind;  // 'r' read, 'w' write, 'x' rmw, 'a' advance, 'c' clock,
                // 'b' block, 'k' wake
    Addr addr;  // memory ops only; wake stores the woken processor id
    Cycles time;
  };

  /// The last trace_depth events, oldest first. Empty if tracing is off.
  std::vector<TraceEvent> recent_events() const;

  /// Renders recent_events() as one line per event (debugging aid).
  std::string format_trace(std::size_t max_events = 64) const;

 private:
  friend class Cpu;

  enum class State : std::uint8_t { New, Runnable, Running, Blocked, Done };

  struct Proc {
    explicit Proc(Engine* eng, int id) : cpu(eng, id) {}
    std::function<void(Cpu&)> body;
    Fiber fiber;
    Cycles time = 0;
    State state = State::New;
    bool daemon = false;
    bool wake_pending = false;
    Cycles wake_not_before = 0;
    const void* blocked_on = nullptr;  // debug: see note_block()
    int blocked_holder = -1;
    Cpu cpu;
  };

  /// Charges nothing; marks the current processor runnable and switches to
  /// the engine, which will reschedule by local time.
  void suspend_current();

  /// Run-ahead scheduling: called after an operation has been charged to
  /// `p.time`. When `p` would win the run queue again anyway — strictly
  /// earlier than every other runnable processor, or tied with the queue's
  /// smaller-id tie-break — the suspend/resume pair (and the heap pop/push
  /// it would cost) is elided and control returns straight into the fiber.
  /// The test is exactly the IndexedMinHeap comparator applied to the
  /// other runnable processors (`p` itself sits in the queue at its stale
  /// pre-op priority while running), so the schedule is provably identical
  /// to the suspend-always engine; ops linearize at issue time either way.
  void reschedule_after_charge(Proc& p) {
    if (cfg_.runahead && p.state == State::Running &&
        (cfg_.watchdog_switches == 0 ||
         stats_.engine_events() < cfg_.watchdog_switches)) {
      const auto self = static_cast<std::size_t>(p.cpu.id());
      std::size_t rival;
      Cycles rival_time;
      if (!runq_.min_excluding(self, rival, rival_time) ||
          p.time < rival_time || (p.time == rival_time && self < rival)) {
        stats_.runahead_elided++;
        return;
      }
    }
    suspend_current();
  }

  void finish_proc(Proc& p);

  void trace(char kind, Addr addr);

  const MachineConfig cfg_;
  SimStats stats_;
  MemorySystem memory_;
  std::vector<TraceEvent> trace_ring_;
  std::size_t trace_next_ = 0;
  bool trace_wrapped_ = false;
  std::vector<std::unique_ptr<Proc>> procs_;
  slpq::detail::IndexedMinHeap<Cycles> runq_;
  slpq::detail::Xoshiro256 rng_;
  int current_ = -1;
  int live_workers_ = 0;  // non-daemon processors not yet Done
  Cycles horizon_ = 0;
  bool running_ = false;
  bool stopping_ = false;
};

// ---- Cpu inline implementations ------------------------------------------

inline Cycles Cpu::now() const noexcept { return eng_->time_of(id_); }

inline void Cpu::advance(Cycles c) { eng_->op_advance(id_, c); }

inline Cycles Cpu::clock() { return eng_->op_clock(id_); }

inline bool Cpu::stopping() const noexcept { return eng_->stopping(); }

// Values are transferred at issue time — before the fiber yields — so each
// operation is atomic at its issue point; the engine's min-time scheduling
// makes issue points globally ordered.
template <typename T>
T Cpu::read(const Var<T>& v) {
  const T out = v.value_;
  eng_->op_mem(id_, v.addr(), Access::Read);
  return out;
}

template <typename T>
void Cpu::write(Var<T>& v, T val) {
  v.value_ = val;
  eng_->op_mem(id_, v.addr(), Access::Write);
}

template <typename T>
T Cpu::swap(Var<T>& v, T val) {
  const T out = v.value_;
  v.value_ = val;
  eng_->op_mem(id_, v.addr(), Access::Rmw);
  return out;
}

template <typename T>
bool Cpu::cas(Var<T>& v, T expected, T desired) {
  const bool ok = (v.value_ == expected);
  if (ok) v.value_ = desired;
  eng_->op_mem(id_, v.addr(), Access::Rmw);
  return ok;
}

template <typename T>
T Cpu::fetch_add(Var<T>& v, T delta) {
  const T out = v.value_;
  v.value_ = static_cast<T>(out + delta);
  eng_->op_mem(id_, v.addr(), Access::Rmw);
  return out;
}

template <typename T>
T Cpu::fetch_or(Var<T>& v, T bits) {
  const T out = v.value_;
  v.value_ = static_cast<T>(out | bits);
  eng_->op_mem(id_, v.addr(), Access::Rmw);
  return out;
}

}  // namespace psim
