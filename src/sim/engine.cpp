#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace psim {

Engine::Engine(const MachineConfig& cfg)
    : cfg_(cfg),
      memory_(cfg, stats_),
      runq_(static_cast<std::size_t>(cfg.processors)),
      rng_(cfg.seed) {
  procs_.reserve(static_cast<std::size_t>(cfg.processors));
}

int Engine::add_processor(std::function<void(Cpu&)> body, bool daemon) {
  if (running_) throw std::logic_error("add_processor during run()");
  if (static_cast<int>(procs_.size()) >= cfg_.processors)
    throw std::logic_error(
        "more processors added than MachineConfig::processors");
  const int id = static_cast<int>(procs_.size());
  auto proc = std::make_unique<Proc>(this, id);
  proc->body = std::move(body);
  proc->daemon = daemon;
  if (!daemon) ++live_workers_;
  procs_.push_back(std::move(proc));
  return id;
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  running_ = true;
  stopping_ = (live_workers_ == 0);
  const auto host_start = std::chrono::steady_clock::now();

  // Give every processor a fiber and a (optionally staggered) start time.
  for (auto& p : procs_) {
    Proc* proc = p.get();
    proc->fiber = Fiber([this, proc] {
      proc->body(proc->cpu);
    });
    proc->state = State::Runnable;
    if (cfg_.start_stagger > 0 && proc->cpu.id() != 0)
      proc->time = rng_.below(cfg_.start_stagger);
    runq_.push(static_cast<std::size_t>(proc->cpu.id()), proc->time);
  }

  std::size_t done = 0;
  while (done < procs_.size()) {
    if (runq_.empty()) {
      std::ostringstream os;
      os << "psim: deadlock — no runnable processor; blocked:";
      for (const auto& p : procs_)
        if (p->state == State::Blocked)
          os << " [" << p->cpu.id() << " on=" << p->blocked_on
             << " holder=" << p->blocked_holder << ']';
      if (cfg_.trace_depth != 0)
        os << "\nrecent events:\n" << format_trace();
      throw std::runtime_error(os.str());
    }

    // Peek, don't pop: the running processor stays in the queue at its
    // stale priority (reschedule_after_charge compares against the
    // runner-up via min_excluding), so a suspend costs one in-place
    // update() instead of a pop()+push() pair.
    const auto id = runq_.top();
    Proc& p = *procs_[id];
    assert(p.state == State::Runnable);
    p.state = State::Running;
    current_ = static_cast<int>(id);
    const bool finished = p.fiber.resume();
    stats_.fiber_switches++;
    if (cfg_.watchdog_switches != 0 &&
        stats_.engine_events() > cfg_.watchdog_switches) {
      std::ostringstream os;
      os << "psim: watchdog tripped after " << stats_.fiber_switches
         << " fiber switches (+" << stats_.runahead_elided
         << " elided); processors:";
      for (const auto& pr : procs_) {
        os << " [" << pr->cpu.id() << ' ';
        switch (pr->state) {
          case State::New: os << "new"; break;
          case State::Runnable: os << "runnable"; break;
          case State::Running: os << "running"; break;
          case State::Blocked: os << "blocked"; break;
          case State::Done: os << "done"; break;
        }
        os << " t=" << pr->time;
        if (pr->state == State::Blocked)
          os << " on=" << pr->blocked_on << " holder=" << pr->blocked_holder;
        os << ']';
      }
      if (cfg_.trace_depth != 0)
        os << "\nrecent events:\n" << format_trace();
      throw std::runtime_error(os.str());
    }
    current_ = -1;

    if (finished) {
      runq_.remove(id);
      finish_proc(p);
      ++done;
    } else if (p.state == State::Running) {
      // Suspended via suspend_current(): still wants the CPU.
      p.state = State::Runnable;
      runq_.update(id, p.time);
    } else {
      // Blocked inside block_current(); leaves the queue until wake().
      runq_.remove(id);
    }
  }

  stats_.host_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());
  running_ = false;
}

void Engine::finish_proc(Proc& p) {
  p.state = State::Done;
  // Local clocks only grow, so the max over finish times is the horizon;
  // tracking it here keeps the per-switch loop free of it.
  horizon_ = std::max(horizon_, p.time);
  if (!p.daemon) {
    --live_workers_;
    if (live_workers_ == 0) stopping_ = true;
  }
}

void Engine::suspend_current() {
  assert(current_ >= 0);
  Fiber::suspend();
}

void Engine::trace(char kind, Addr addr) {
  if (cfg_.trace_depth == 0) return;
  if (trace_ring_.size() < cfg_.trace_depth) {
    trace_ring_.push_back(
        {current_, kind, addr,
         current_ >= 0 ? procs_[static_cast<std::size_t>(current_)]->time : 0});
    return;
  }
  trace_ring_[trace_next_] = {
      current_, kind, addr,
      current_ >= 0 ? procs_[static_cast<std::size_t>(current_)]->time : 0};
  trace_next_ = (trace_next_ + 1) % cfg_.trace_depth;
  trace_wrapped_ = true;
}

std::vector<Engine::TraceEvent> Engine::recent_events() const {
  std::vector<TraceEvent> out;
  if (trace_ring_.empty()) return out;
  if (!trace_wrapped_) return trace_ring_;
  out.reserve(trace_ring_.size());
  for (std::size_t i = 0; i < trace_ring_.size(); ++i)
    out.push_back(trace_ring_[(trace_next_ + i) % trace_ring_.size()]);
  return out;
}

std::string Engine::format_trace(std::size_t max_events) const {
  const auto events = recent_events();
  std::ostringstream os;
  const std::size_t start =
      events.size() > max_events ? events.size() - max_events : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    const auto& e = events[i];
    os << "  t=" << e.time << " p" << e.proc << ' ' << e.kind;
    if (e.kind == 'r' || e.kind == 'w' || e.kind == 'x')
      os << " @" << e.addr;
    if (e.kind == 'k') os << " ->p" << e.addr;
    os << '\n';
  }
  return os.str();
}

void Engine::op_advance(int proc, Cycles c) {
  assert(proc == current_);
  Proc& p = *procs_[static_cast<std::size_t>(proc)];
  p.time += c;
  if (cfg_.trace_depth != 0) trace('a', 0);
  reschedule_after_charge(p);
}

Cycles Engine::op_clock(int proc) {
  assert(proc == current_);
  Proc& p = *procs_[static_cast<std::size_t>(proc)];
  const Cycles issued = p.time;
  p.time += cfg_.clock_read;
  stats_.clock_reads++;
  if (cfg_.trace_depth != 0) trace('c', 0);
  reschedule_after_charge(p);
  return issued;
}

void Engine::op_mem(int proc, Addr addr, Access kind) {
  assert(proc == current_);
  Proc& p = *procs_[static_cast<std::size_t>(proc)];
  p.time = memory_.access(proc, addr, kind, p.time);
  if (cfg_.trace_depth != 0)
    trace(kind == Access::Read ? 'r' : kind == Access::Write ? 'w' : 'x',
          addr);
  reschedule_after_charge(p);
}

void Engine::block_current() {
  assert(current_ >= 0);
  Proc& p = *procs_[static_cast<std::size_t>(current_)];
  if (p.wake_pending) {
    // wake() ran while we were suspended between our decision to block and
    // this call; consume the token instead of blocking.
    p.wake_pending = false;
    p.time = std::max(p.time, p.wake_not_before);
    p.wake_not_before = 0;
    return;
  }
  p.state = State::Blocked;
  trace('b', 0);
  Fiber::suspend();
  // Woken: back in the run queue, state already set by wake().
  assert(p.state == State::Running);
}

void Engine::note_block(const void* what, int holder) {
  if (current_ < 0) return;
  Proc& p = *procs_[static_cast<std::size_t>(current_)];
  p.blocked_on = what;
  p.blocked_holder = holder;
}

void Engine::wake(int proc, Cycles not_before) {
  Proc& p = *procs_[static_cast<std::size_t>(proc)];
  if (p.state != State::Blocked) {
    // The target has not reached block_current() yet; leave a token.
    p.wake_pending = true;
    p.wake_not_before = std::max(p.wake_not_before, not_before);
    return;
  }
  p.time = std::max(p.time, not_before);
  p.state = State::Runnable;
  runq_.push(static_cast<std::size_t>(proc), p.time);
  trace('k', static_cast<Addr>(proc));
}

}  // namespace psim
