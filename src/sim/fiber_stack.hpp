// Internal: guarded stack allocation for fibers.
#pragma once

#include <cstddef>

namespace psim::detail {

struct StackAllocation {
  void* base = nullptr;   // lowest mapped address (guard page)
  std::size_t size = 0;   // total mapped bytes, including guard
  void* usable_top = nullptr;  // one past the highest usable byte
  std::size_t usable_size = 0;
};

/// Allocates `bytes` of usable stack plus a PROT_NONE guard page below it.
/// Aborts on failure (fiber stacks are allocated during setup only).
StackAllocation allocate_stack(std::size_t bytes);

void free_stack(const StackAllocation& stack) noexcept;

}  // namespace psim::detail
