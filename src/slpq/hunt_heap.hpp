// slpq::HuntHeap — the concurrent heap of Hunt, Michael, Parthasarathy &
// Scott (IPL 1996) for real threads; the paper's strongest baseline.
//
// Array-based binary min-heap with one spinlock per element and one heap
// lock protecting the size counter (held only across the size update and
// the first slot acquisition). Insertions reserve slots in bit-reversed
// order within each level and bubble up tagged with the owner's id, so a
// concurrent delete that moves a half-inserted item is detected and
// chased; deletions replace the root with the last item and sift down
// hand-over-hand.
//
// Capacity is fixed at construction — the pre-allocation requirement the
// paper lists as an inherent drawback of heap-based designs.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/telemetry.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class HuntHeap {
 public:
  explicit HuntHeap(std::size_t capacity, Compare cmp = Compare())
      : capacity_(capacity), cmp_(std::move(cmp)),
        slots_(capacity + 1) {}

  HuntHeap(const HuntHeap&) = delete;
  HuntHeap& operator=(const HuntHeap&) = delete;

  /// Inserts (key, value); duplicates allowed. Returns false when full.
  bool insert(const Key& key, const Value& value) {
    const std::int64_t pid = thread_id();

    heap_lock_.lock();
    const std::uint64_t s = size_ + 1;
    if (s > capacity_) {
      heap_lock_.unlock();
      return false;
    }
    size_ = s;
    std::size_t i = bit_rev_slot(s);
    at(i).lock.lock();
    heap_lock_.unlock();

    at(i).key = key;
    at(i).value = value;
    at(i).tag.store(pid, std::memory_order_release);
    at(i).lock.unlock();

    while (i > 1) {
      const std::size_t par = i / 2;
      at(par).lock.lock();
      at(i).lock.lock();
      const std::int64_t tpar = at(par).tag.load(std::memory_order_relaxed);
      const std::int64_t ti = at(i).tag.load(std::memory_order_relaxed);
      std::size_t next_i = i;
      if (tpar == kAvailable && ti == pid) {
        if (cmp_(at(i).key, at(par).key)) {
          swap_items(at(i), at(par));
          next_i = par;
        } else {
          at(i).tag.store(kAvailable, std::memory_order_release);
          next_i = 0;
        }
      } else if (tpar == kEmpty) {
        next_i = 0;  // our item was moved to the root and consumed
      } else if (ti != pid) {
        next_i = par;  // a delete moved our item up: chase it
      }
      // Remaining case (parent mid-insert by another thread): retry here.
      const bool retry = (next_i == i);
      at(i).lock.unlock();
      at(par).lock.unlock();
      i = next_i;
      if (retry) {
        counters_.add(Counter::kInsertRetries);  // parent mid-insert
        detail::cpu_relax();
      }
    }

    if (i == 1) {
      at(1).lock.lock();
      if (at(1).tag.load(std::memory_order_relaxed) == pid)
        at(1).tag.store(kAvailable, std::memory_order_release);
      at(1).lock.unlock();
    }
    return true;
  }

  std::optional<std::pair<Key, Value>> delete_min() {
    heap_lock_.lock();
    const std::uint64_t s = size_;
    if (s == 0) {
      heap_lock_.unlock();
      return std::nullopt;
    }
    size_ = s - 1;
    const std::size_t bound = bit_rev_slot(s);
    at(bound).lock.lock();
    heap_lock_.unlock();

    Key last_key = std::move(at(bound).key);
    Value last_value = std::move(at(bound).value);
    at(bound).tag.store(kEmpty, std::memory_order_release);
    at(bound).lock.unlock();

    if (bound == 1) {
      counters_.add(Counter::kClaimWins);
      return std::make_pair(std::move(last_key), std::move(last_value));
    }

    at(1).lock.lock();
    if (at(1).tag.load(std::memory_order_relaxed) == kEmpty) {
      // A racing delete consumed the root between our two lock regions;
      // the item we pulled out is the remaining minimum.
      counters_.add(Counter::kDeleteRetries);
      counters_.add(Counter::kClaimWins);
      at(1).lock.unlock();
      return std::make_pair(std::move(last_key), std::move(last_value));
    }
    counters_.add(Counter::kClaimWins);
    std::pair<Key, Value> out{std::move(at(1).key), std::move(at(1).value)};
    at(1).key = std::move(last_key);
    at(1).value = std::move(last_value);
    at(1).tag.store(kAvailable, std::memory_order_release);

    std::size_t i = 1;  // lock held
    for (;;) {
      const std::size_t l = 2 * i, r = 2 * i + 1;
      if (l > capacity_) break;
      at(l).lock.lock();
      const bool has_r = r <= capacity_;
      if (has_r) at(r).lock.lock();

      std::size_t child = 0;
      const bool lp = at(l).tag.load(std::memory_order_relaxed) != kEmpty;
      const bool rp =
          has_r && at(r).tag.load(std::memory_order_relaxed) != kEmpty;
      if (lp && rp)
        child = !cmp_(at(r).key, at(l).key) ? l : r;
      else if (lp)
        child = l;
      else if (rp)
        child = r;

      if (child == 0) {
        if (has_r) at(r).lock.unlock();
        at(l).lock.unlock();
        break;
      }
      if (has_r && child != r) at(r).lock.unlock();
      if (child != l) at(l).lock.unlock();

      if (cmp_(at(child).key, at(i).key)) {
        swap_items(at(child), at(i));
        at(i).lock.unlock();
        i = child;
      } else {
        at(child).lock.unlock();
        break;
      }
    }
    at(i).lock.unlock();
    return out;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate size (exact when quiescent).
  std::size_t size() const noexcept {
    std::lock_guard<detail::TinySpinLock> g(
        const_cast<detail::TinySpinLock&>(heap_lock_));
    return static_cast<std::size_t>(size_);
  }

  /// Operation counters; see docs/TELEMETRY.md. The heap is a fixed array
  /// (no pool, no GC), so those counters stay zero here.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    return snap;
  }

  /// The slot the s-th item occupies: keep the leading bit, reverse the
  /// rest (exposed for tests).
  static std::size_t bit_rev_slot(std::size_t s) {
    assert(s >= 1);
    if (s == 1) return 1;
    const int msb = std::bit_width(s) - 1;
    std::size_t rest = s ^ (std::size_t{1} << msb);
    std::size_t reversed = 0;
    for (int b = 0; b < msb; ++b) {
      reversed = (reversed << 1) | (rest & 1);
      rest >>= 1;
    }
    return (std::size_t{1} << msb) | reversed;
  }

 private:
  static constexpr std::int64_t kEmpty = -1;
  static constexpr std::int64_t kAvailable = -2;

  struct alignas(detail::kCacheLineSize) Slot {
    Key key{};
    Value value{};
    std::atomic<std::int64_t> tag{kEmpty};
    detail::TinySpinLock lock;
  };

  static std::int64_t thread_id() {
    static std::atomic<std::int64_t> next{0};
    thread_local std::int64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  Slot& at(std::size_t i) { return slots_[i]; }

  void swap_items(Slot& a, Slot& b) {
    std::swap(a.key, b.key);
    std::swap(a.value, b.value);
    const auto ta = a.tag.load(std::memory_order_relaxed);
    a.tag.store(b.tag.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    b.tag.store(ta, std::memory_order_relaxed);
  }

  std::size_t capacity_;
  Compare cmp_;
  detail::TinySpinLock heap_lock_;
  std::uint64_t size_ = 0;  // guarded by heap_lock_
  std::vector<Slot> slots_;
  OpCounters counters_;
};

}  // namespace slpq
