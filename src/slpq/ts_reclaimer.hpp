// TimestampReclaimer: deferred memory reclamation for the native queues,
// following the paper's Section 3 scheme — the default ReclaimPolicy.
//
// Every thread registers the "time" (a global logical clock) at which it
// enters the data structure and clears it on exit. A retired node is
// stamped with the clock value at its retirement; it may be freed once the
// oldest entry time among threads currently inside exceeds its stamp — at
// that point no thread that could still hold a pointer to it remains.
//
// The paper dedicates a processor to collection; here any retiring thread
// amortizes collection by scanning its own retired list every
// kCollectEvery retirements (a "shared" variant the paper explicitly
// allows: "this garbage collection task can be split/shared among
// processors").
//
// Thread slots, the logical clock and the stats counters live in the
// Reclaimer base (reclaim.hpp), shared with the hazard/epoch/leaky
// policies.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/reclaim.hpp"

namespace slpq {

class TimestampReclaimer final : public Reclaimer {
 public:
  static constexpr int kCollectEvery = 64;

  explicit TimestampReclaimer(Deleter deleter)
      : Reclaimer(ReclaimPolicy::kTimestamp, std::move(deleter)) {
    for (auto& s : slots_) s->store(kNeverEntered, std::memory_order_relaxed);
  }

  ~TimestampReclaimer() override { drain(); }

  // ---- Reclaimer interface ----------------------------------------------

  /// Publishes the thread's entry time (one clock tick of its own).
  std::uint64_t enter(int slot) override {
    const auto t = advance_clock();
    slots_[static_cast<std::size_t>(slot)]->store(t,
                                                  std::memory_order_seq_cst);
    return t;
  }

  void exit(int slot) override {
    slots_[static_cast<std::size_t>(slot)]->store(kNeverEntered,
                                                  std::memory_order_release);
  }

  /// Hands a node to the reclaimer. Must be called while inside (under a
  /// Guard), so the stamp precedes the caller's exit.
  void retire(void* node) override {
    note_retired();
    const int slot = register_thread();
    auto& list = retired_[static_cast<std::size_t>(slot)].value;
    list.push_back({node, advance_clock()});
    if (list.size() % kCollectEvery == 0) collect(slot);
  }

  /// Frees everything unconditionally. Only safe when no thread is inside
  /// (destructor / quiescent teardown).
  void drain() override {
    std::uint64_t n = 0;
    for (auto& padded : retired_) {
      for (auto& item : padded.value) {
        deleter_(item.node);
        ++n;
      }
      padded.value.clear();
    }
    note_freed(n);
  }

  // ---- timestamp-specific surface (used directly by tests) --------------

  /// Frees every retired node in the caller's list whose stamp precedes
  /// the oldest active entry time. Returns the number freed.
  std::size_t collect(int slot) {
    note_scan();
    const std::uint64_t oldest = oldest_entry();
    auto& list = retired_[static_cast<std::size_t>(slot)].value;
    std::size_t freed = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].stamp < oldest) {
        deleter_(list[i].node);
        ++freed;
      } else {
        list[keep++] = list[i];
      }
    }
    list.resize(keep);
    note_freed(freed);
    note_stalls(keep);
    return freed;
  }

  /// Alias kept for quiescent teardown call sites.
  void drain_all() { drain(); }

  std::uint64_t oldest_entry() const {
    const int slots = registered_threads();
    std::uint64_t oldest = kNeverEntered;
    for (int i = 0; i < slots; ++i) {
      const auto t =
          slots_[static_cast<std::size_t>(i)]->load(std::memory_order_seq_cst);
      oldest = t < oldest ? t : oldest;
    }
    return oldest;
  }

 private:
  struct Retired {
    void* node;
    std::uint64_t stamp;
  };

  std::array<detail::Padded<std::atomic<std::uint64_t>>, kMaxThreads> slots_;
  std::array<detail::Padded<std::vector<Retired>>, kMaxThreads> retired_;
};

}  // namespace slpq
