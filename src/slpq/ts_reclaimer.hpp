// TimestampReclaimer: deferred memory reclamation for the native queues,
// following the paper's Section 3 scheme.
//
// Every thread registers the "time" (a global logical clock) at which it
// enters the data structure and clears it on exit. A retired node is
// stamped with the clock value at its retirement; it may be freed once the
// oldest entry time among threads currently inside exceeds its stamp — at
// that point no thread that could still hold a pointer to it remains.
//
// The paper dedicates a processor to collection; here any retiring thread
// amortizes collection by scanning its own retired list every
// kCollectEvery retirements (a "shared" variant the paper explicitly
// allows: "this garbage collection task can be split/shared among
// processors").
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "slpq/detail/cache_line.hpp"

namespace slpq {

class TimestampReclaimer {
 public:
  static constexpr int kMaxThreads = 256;
  static constexpr std::uint64_t kNeverEntered = ~std::uint64_t{0};
  static constexpr int kCollectEvery = 64;

  explicit TimestampReclaimer(std::function<void(void*)> deleter)
      : deleter_(std::move(deleter)) {
    for (auto& s : slots_) s->store(kNeverEntered, std::memory_order_relaxed);
  }

  ~TimestampReclaimer() { drain_all(); }

  TimestampReclaimer(const TimestampReclaimer&) = delete;
  TimestampReclaimer& operator=(const TimestampReclaimer&) = delete;

  /// Registers the calling thread (idempotent); returns its slot index.
  /// Slots are per (thread, reclaimer-instance): a thread may use several
  /// reclaimers, so the fast path caches the last instance and a
  /// thread-local map (keyed by a unique instance id, immune to address
  /// reuse) handles the rest.
  int register_thread() {
    struct Cache {
      std::uint64_t id = 0;
      int slot = -1;
    };
    thread_local Cache cache;
    if (cache.id == id_) return cache.slot;
    thread_local std::unordered_map<std::uint64_t, int> slots_map;
    auto [it, inserted] = slots_map.try_emplace(id_, -1);
    if (inserted) {
      it->second = next_slot_.fetch_add(1, std::memory_order_relaxed);
      assert(it->second < kMaxThreads &&
             "too many threads for TimestampReclaimer");
    }
    cache = {id_, it->second};
    return it->second;
  }

  /// RAII: marks the thread as inside the structure.
  class Guard {
   public:
    explicit Guard(TimestampReclaimer& r) : r_(r), slot_(r.register_thread()) {
      const auto t = r_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
      r_.slots_[static_cast<std::size_t>(slot_)]->store(
          t, std::memory_order_seq_cst);
      entry_ = t;
    }
    ~Guard() {
      r_.slots_[static_cast<std::size_t>(slot_)]->store(
          kNeverEntered, std::memory_order_release);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    std::uint64_t entry_time() const noexcept { return entry_; }

   private:
    TimestampReclaimer& r_;
    int slot_;
    std::uint64_t entry_;
  };

  /// Current logical time (used by SkipQueue's insert stamping).
  std::uint64_t now() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }

  std::uint64_t advance_clock() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Hands a node to the reclaimer. Must be called while inside (under a
  /// Guard), so the stamp precedes the caller's exit.
  void retire(void* node) {
    const int slot = register_thread();
    auto& list = retired_[static_cast<std::size_t>(slot)].value;
    list.push_back({node, advance_clock()});
    if (list.size() % kCollectEvery == 0) collect(slot);
  }

  /// Frees every retired node in the caller's list whose stamp precedes
  /// the oldest active entry time. Returns the number freed.
  std::size_t collect(int slot) {
    const std::uint64_t oldest = oldest_entry();
    auto& list = retired_[static_cast<std::size_t>(slot)].value;
    std::size_t freed = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].stamp < oldest) {
        deleter_(list[i].node);
        ++freed;
      } else {
        list[keep++] = list[i];
      }
    }
    list.resize(keep);
    freed_total_.fetch_add(freed, std::memory_order_relaxed);
    return freed;
  }

  /// Frees everything unconditionally. Only safe when no thread is inside
  /// (destructor / quiescent teardown).
  void drain_all() {
    for (auto& padded : retired_) {
      for (auto& item : padded.value) deleter_(item.node);
      padded.value.clear();
    }
  }

  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& padded : retired_) n += padded.value.size();
    return n;
  }

  std::uint64_t freed_total() const {
    return freed_total_.load(std::memory_order_relaxed);
  }

  std::uint64_t oldest_entry() const {
    const int slots = next_slot_.load(std::memory_order_acquire);
    std::uint64_t oldest = kNeverEntered;
    for (int i = 0; i < slots; ++i) {
      const auto t =
          slots_[static_cast<std::size_t>(i)]->load(std::memory_order_seq_cst);
      oldest = t < oldest ? t : oldest;
    }
    return oldest;
  }

 private:
  struct Retired {
    void* node;
    std::uint64_t stamp;
  };

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_instance_id();
  std::function<void(void*)> deleter_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<int> next_slot_{0};
  std::atomic<std::uint64_t> freed_total_{0};
  std::array<detail::Padded<std::atomic<std::uint64_t>>, kMaxThreads> slots_;
  std::array<detail::Padded<std::vector<Retired>>, kMaxThreads> retired_;
};

}  // namespace slpq
