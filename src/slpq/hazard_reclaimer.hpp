// HazardPointerReclaimer: Michael-style hazard pointers with the Lindén &
// Jonsson slot discipline (the hp.h peek/promote protocol).
//
// Each thread owns a fixed array of hazard slots sized to the skiplist's
// maximum simultaneous references: two per level (pred and curr of the
// traversal), one "peek" scratch slot a walk publishes a candidate in
// before validating it, and one claim scratch. Publishing is a relaxed
// store; the *caller* issues the seq_cst fence and re-reads the source
// pointer (protect-then-validate), retrying if it moved — see the
// protect_word helpers in the queues and the peek/promote excerpt in
// SNIPPETS.md.
//
// retire() appends to a per-thread list; when the list crosses an adaptive
// threshold (2x the total live hazard slots) the thread scans every
// published hazard and frees exactly the retired nodes no slot protects.
// Nodes that survive a scan are counted as stalls.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/reclaim.hpp"

namespace slpq {

class HazardPointerReclaimer final : public Reclaimer {
 public:
  HazardPointerReclaimer(Deleter deleter, int hazard_slots)
      : Reclaimer(ReclaimPolicy::kHazard, std::move(deleter)),
        slots_per_thread_(hazard_slots < 1 ? 1 : hazard_slots),
        // Pad each thread's span to whole cache lines so neighbouring
        // threads never share a line of hazard slots.
        stride_((slots_per_thread_ + kSlotsPerLine - 1) / kSlotsPerLine *
                kSlotsPerLine),
        hp_(static_cast<std::size_t>(stride_) * kMaxThreads) {
    for (auto& h : hp_) h.store(nullptr, std::memory_order_relaxed);
  }

  ~HazardPointerReclaimer() override { drain(); }

  int hazard_slots() const noexcept { return slots_per_thread_; }

  // ---- Reclaimer interface ----------------------------------------------

  std::uint64_t enter(int /*slot*/) override { return now(); }

  /// Clears every hazard published since enter (tracked high-water mark).
  void exit(int slot) override {
    auto* hz = hazards_for(slot);
    int& hwm = hwm_[static_cast<std::size_t>(slot)].value;
    for (int i = 0; i < hwm; ++i)
      hz[i].store(nullptr, std::memory_order_release);
    hwm = 0;
  }

  void retire(void* node) override {
    note_retired();
    const int slot = register_thread();
    auto& list = retired_[static_cast<std::size_t>(slot)].value;
    list.push_back(node);
    if (list.size() >= scan_threshold()) scan(list);
  }

  void protect(int slot, int index, const void* p) override {
    set_hazard(hazards_for(slot), slot, index, p);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Quiescent-only: frees every retired node regardless of hazards.
  void drain() override {
    std::uint64_t n = 0;
    for (auto& padded : retired_) {
      for (void* p : padded.value) {
        deleter_(p);
        ++n;
      }
      padded.value.clear();
    }
    note_freed(n);
  }

  // ---- non-virtual fast path for the queues -----------------------------

  /// The slot's hazard array (stride-indexed into the shared table). The
  /// queues grab this once per operation and publish with set_hazard().
  std::atomic<const void*>* hazards_for(int slot) noexcept {
    return hp_.data() + static_cast<std::size_t>(slot) * stride_;
  }

  /// Relaxed publish + high-water-mark bookkeeping. The caller must issue
  /// a seq_cst fence before re-validating the source pointer.
  void set_hazard(std::atomic<const void*>* hz, int slot, int index,
                  const void* p) noexcept {
    hz[index].store(p, std::memory_order_relaxed);
    int& hwm = hwm_[static_cast<std::size_t>(slot)].value;
    if (index >= hwm) hwm = index + 1;
  }

  /// Frees every node in `list` no hazard slot protects; keeps the rest.
  void scan(std::vector<void*>& list) {
    note_scan();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::vector<const void*> snap;
    const int threads = registered_threads();
    snap.reserve(static_cast<std::size_t>(threads) * slots_per_thread_);
    // Slots are read in DESCENDING index order; the queues migrate a hazard
    // only from a higher slot to a lower one (candidate -> pred promote,
    // carry-down a level, claim pin), publishing in the destination before
    // overwriting the source. An ascending scan could read the low slot
    // before the publish and the high slot after the overwrite, missing the
    // node in both and freeing it under the walker; descending reads close
    // that window (an already-overwritten high slot implies the publish
    // into a strictly-lower, not-yet-read slot already happened).
    for (int t = 0; t < threads; ++t) {
      const auto* hz = hazards_for(t);
      for (int i = slots_per_thread_ - 1; i >= 0; --i) {
        const void* p = hz[i].load(std::memory_order_seq_cst);
        if (p != nullptr) snap.push_back(p);
      }
    }
    std::sort(snap.begin(), snap.end());
    std::uint64_t freed = 0;
    std::size_t keep = 0;
    for (void* p : list) {
      if (std::binary_search(snap.begin(), snap.end(),
                             static_cast<const void*>(p))) {
        list[keep++] = p;
      } else {
        deleter_(p);
        ++freed;
      }
    }
    list.resize(keep);
    note_freed(freed);
    note_stalls(keep);
  }

 private:
  static constexpr int kSlotsPerLine =
      static_cast<int>(detail::kCacheLineSize / sizeof(std::atomic<const void*>));

  std::size_t scan_threshold() const noexcept {
    const std::size_t live = static_cast<std::size_t>(registered_threads()) *
                             static_cast<std::size_t>(slots_per_thread_);
    return std::max<std::size_t>(128, 2 * live);
  }

  const int slots_per_thread_;
  const int stride_;
  std::vector<std::atomic<const void*>> hp_;
  std::array<detail::Padded<int>, kMaxThreads> hwm_{};
  std::array<detail::Padded<std::vector<void*>>, kMaxThreads> retired_;
};

}  // namespace slpq
