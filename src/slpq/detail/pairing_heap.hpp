// PairingHeap: a sequential amortized-O(log n) mergeable min-heap.
//
// Used as the single-threaded reference model in tests (oracle for the
// concurrent queues), as the sequential baseline in benchmarks, and by the
// discrete-event-simulation example.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace slpq::detail {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class PairingHeap {
 public:
  PairingHeap() = default;
  explicit PairingHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;

  PairingHeap(PairingHeap&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cmp_(std::move(other.cmp_)) {}

  PairingHeap& operator=(PairingHeap&& other) noexcept {
    if (this != &other) {
      destroy(root_);
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cmp_ = std::move(other.cmp_);
    }
    return *this;
  }

  ~PairingHeap() { destroy(root_); }

  bool empty() const noexcept { return root_ == nullptr; }
  std::size_t size() const noexcept { return size_; }

  void push(Key key, Value value) {
    auto* n = new Node{std::move(key), std::move(value), nullptr, nullptr};
    root_ = root_ ? meld(root_, n) : n;
    ++size_;
  }

  const Key& min_key() const {
    assert(root_);
    return root_->key;
  }

  const Value& min_value() const {
    assert(root_);
    return root_->value;
  }

  std::pair<Key, Value> pop() {
    assert(root_);
    Node* old = root_;
    root_ = merge_pairs(old->child);
    --size_;
    std::pair<Key, Value> out{std::move(old->key), std::move(old->value)};
    if (retire_) retire_(old);
    else delete old;
    return out;
  }

  /// Routes popped nodes through a reclaimer instead of deleting them
  /// inline (MultiQueue's --reclaim integration). The hook receives the
  /// dead Node*; pair it with delete_node() as the reclaimer's deleter.
  /// Bulk teardown (clear / destructor) still deletes directly — those are
  /// quiescent paths and their nodes were never handed to the hook.
  void set_retire(std::function<void(void*)> f) { retire_ = std::move(f); }

  /// Type-erased deleter matching the nodes handed to the set_retire hook.
  static void delete_node(void* p) { delete static_cast<Node*>(p); }

  void clear() noexcept {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

 private:
  struct Node {
    Key key;
    Value value;
    Node* child;
    Node* sibling;
  };

  Node* meld(Node* a, Node* b) noexcept {
    if (cmp_(b->key, a->key)) std::swap(a, b);
    b->sibling = a->child;
    a->child = b;
    return a;
  }

  // Iterative two-pass pairing to avoid deep recursion on adversarial shapes.
  Node* merge_pairs(Node* first) noexcept {
    if (!first) return nullptr;
    std::vector<Node*> pairs;
    while (first) {
      Node* a = first;
      Node* b = a->sibling;
      first = b ? b->sibling : nullptr;
      a->sibling = nullptr;
      if (b) {
        b->sibling = nullptr;
        pairs.push_back(meld(a, b));
      } else {
        pairs.push_back(a);
      }
    }
    Node* result = pairs.back();
    for (std::size_t i = pairs.size() - 1; i-- > 0;) result = meld(pairs[i], result);
    return result;
  }

  void destroy(Node* n) noexcept {
    if (!n) return;
    // Iterative destruction (the tree can be deep).
    std::vector<Node*> stack{n};
    while (!stack.empty()) {
      Node* cur = stack.back();
      stack.pop_back();
      if (cur->child) stack.push_back(cur->child);
      if (cur->sibling) stack.push_back(cur->sibling);
      delete cur;
    }
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Compare cmp_;
  std::function<void(void*)> retire_;
};

}  // namespace slpq::detail
