// DynamicBitset: a compact runtime-sized bitset.
//
// The simulator's coherence directory tracks, per cache line, the set of
// processor caches holding a copy. The processor count is fixed at engine
// construction but not at compile time, so std::bitset does not fit.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slpq::detail {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const noexcept { return bits_; }

  bool test(std::size_t i) const noexcept {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  bool any() const noexcept {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const noexcept { return !any(); }

  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Index of the lowest set bit, or size() if none.
  std::size_t find_first() const noexcept {
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      if (words_[wi]) return wi * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[wi]));
    return bits_;
  }

  bool operator==(const DynamicBitset& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace slpq::detail
