// Cache-line size constants and padding helpers.
//
// Contended atomics placed in adjacent memory produce false sharing; every
// hot shared word in this library is wrapped in Padded<> so that it owns a
// full destructive-interference span.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace slpq::detail {

// Fixed at 64 rather than std::hardware_destructive_interference_size: the
// latter is an ABI hazard (GCC warns that its value may change between
// compiler versions), and 64 bytes is correct for every x86-64 and most ARM
// server parts this library targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that it occupies (and is aligned to) at least one cache line.
/// T is default-constructible or constructible from forwarded args.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value;

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Pad up to a full line even when sizeof(T) is not a multiple of the line.
  static constexpr std::size_t kPad =
      (sizeof(T) % kCacheLineSize) ? kCacheLineSize - sizeof(T) % kCacheLineSize : 0;
  [[maybe_unused]] std::byte pad_[kPad == 0 ? 1 : kPad]{};
};

static_assert(alignof(Padded<int>) >= kCacheLineSize);

}  // namespace slpq::detail
