// NodePool: a per-thread, size-classed free-list arena for skiplist nodes.
//
// Profiling the native queues shows `::operator new` / `delete` dominating
// the insert hot path: every insert allocates a variable-size node (header
// + level array) and every reclaimed node goes back to the global
// allocator, whose lock and page-level bookkeeping serialize otherwise
// independent threads. This pool removes that bottleneck:
//
//  * allocation carves 64 KiB slabs and hands out size-classed blocks from
//    a per-thread cache — no synchronization on the fast path at all;
//  * freed blocks return to the *freeing* thread's cache (with the
//    TimestampReclaimer both allocation and the deferred free run on the
//    thread that owns the operation, so lists stay thread-private);
//  * a spin-locked per-class overflow list rebalances producer/consumer
//    workloads where one thread only inserts and another only deletes;
//  * blocks larger than the largest size class (level > ~60 nodes, i.e.
//    essentially never) fall through to the global allocator.
//
// Reclaimer-awareness: the pool itself never decides when a node is dead —
// it is the deleter *target* of TimestampReclaimer, which only frees a
// node after every thread that could observe it has left the structure.
// Address reuse therefore preserves the queues' ABA argument unchanged: a
// pooled address recycles no earlier than an operator-new address would
// have.
//
// Lifetime: the pool must outlive every block allocated from it; the
// queues declare it as their first member so it is destroyed last. The
// destructor frees whole slabs; individual blocks need not be returned.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <unordered_map>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/spinlock.hpp"

namespace slpq::detail {

class NodePool {
 public:
  static constexpr int kMaxThreads = 256;  // matches TimestampReclaimer
  static constexpr std::size_t kGranularity = 16;  ///< size-class step
  static constexpr std::size_t kMaxClasses = 64;   ///< pools blocks <= 1 KiB
  static constexpr std::size_t kSlabBytes = 1 << 16;
  static constexpr std::size_t kMaxLocalFree = 128;  ///< per class, per thread

  NodePool() = default;
  ~NodePool() {
    for (void* slab : slabs_)
      ::operator delete(slab, std::align_val_t{kGranularity});
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  /// Returns a block of at least `bytes` bytes, aligned to kGranularity
  /// (16). Callers with stricter alignment must bypass the pool.
  void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls >= kMaxClasses) {
      oversize_.fetch_add(1, std::memory_order_relaxed);
      carved_.fetch_add(1, std::memory_order_relaxed);
      return ::operator new(bytes, std::align_val_t{kGranularity});
    }
    ThreadCache& tc = cache();
    if (FreeBlock* b = tc.free[cls]) {
      tc.free[cls] = b->next;
      --tc.count[cls];
      reused_.fetch_add(1, std::memory_order_relaxed);
      return b;
    }
    if (refill_from_shared(tc, cls)) {
      FreeBlock* b = tc.free[cls];
      tc.free[cls] = b->next;
      --tc.count[cls];
      reused_.fetch_add(1, std::memory_order_relaxed);
      return b;
    }
    carved_.fetch_add(1, std::memory_order_relaxed);
    return carve(tc, block_size(cls));
  }

  /// Returns a block obtained from allocate(bytes) with the same size.
  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kMaxClasses) {
      ::operator delete(p, std::align_val_t{kGranularity});
      return;
    }
    ThreadCache& tc = cache();
    auto* b = static_cast<FreeBlock*>(p);
    b->next = tc.free[cls];
    tc.free[cls] = b;
    if (++tc.count[cls] > kMaxLocalFree) spill_to_shared(tc, cls);
  }

  /// Blocks served from a free list instead of a fresh slab carve.
  std::uint64_t reused() const {
    return reused_.load(std::memory_order_relaxed);
  }

  /// Blocks carved fresh from a slab (plus oversize fall-throughs) — the
  /// complement of reused(). Queues report this (minus the sentinels they
  /// carve at construction) as the `pool_refills` telemetry counter.
  std::uint64_t carved() const {
    return carved_.load(std::memory_order_relaxed);
  }

  /// Total slab bytes requested from the system allocator.
  std::uint64_t slab_bytes() const {
    return slab_bytes_.load(std::memory_order_relaxed);
  }

  std::uint64_t oversize_allocs() const {
    return oversize_.load(std::memory_order_relaxed);
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  struct ThreadCache {
    std::array<FreeBlock*, kMaxClasses> free{};
    std::array<std::uint32_t, kMaxClasses> count{};
    char* bump = nullptr;
    char* bump_end = nullptr;
  };

  struct SharedClass {
    TinySpinLock lock;
    FreeBlock* head = nullptr;
    // Atomic because allocate() peeks it without the lock; all writes
    // happen under the lock, so relaxed ordering suffices.
    std::atomic<std::uint32_t> count{0};
  };

  static constexpr std::size_t class_of(std::size_t bytes) noexcept {
    return (bytes + kGranularity - 1) / kGranularity;  // class 0 unused
  }
  static constexpr std::size_t block_size(std::size_t cls) noexcept {
    return cls * kGranularity;
  }

  /// Per (thread, pool-instance) cache, same id-keyed scheme as
  /// TimestampReclaimer::register_thread (immune to instance address reuse).
  ThreadCache& cache() {
    struct Cached {
      std::uint64_t id = 0;
      ThreadCache* tc = nullptr;
    };
    thread_local Cached hot;
    if (hot.id == id_) return *hot.tc;
    thread_local std::unordered_map<std::uint64_t, int> slots;
    auto [it, inserted] = slots.try_emplace(id_, -1);
    if (inserted) {
      it->second = next_slot_.fetch_add(1, std::memory_order_relaxed);
      assert(it->second < kMaxThreads && "too many threads for NodePool");
    }
    hot = {id_, &caches_[static_cast<std::size_t>(it->second)].value};
    return *hot.tc;
  }

  bool refill_from_shared(ThreadCache& tc, std::size_t cls) {
    SharedClass& sc = shared_[cls].value;
    if (sc.count.load(std::memory_order_relaxed) == 0)
      return false;  // racy peek; a miss just carves
    std::lock_guard<TinySpinLock> g(sc.lock);
    if (!sc.head) return false;
    // Take the whole overflow list; it is bounded by spill granularity.
    tc.free[cls] = sc.head;
    tc.count[cls] = sc.count.load(std::memory_order_relaxed);
    sc.head = nullptr;
    sc.count.store(0, std::memory_order_relaxed);
    return true;
  }

  void spill_to_shared(ThreadCache& tc, std::size_t cls) {
    // Detach half of the local list and donate it.
    const std::uint32_t keep = static_cast<std::uint32_t>(kMaxLocalFree / 2);
    FreeBlock* last = tc.free[cls];
    for (std::uint32_t i = 1; i < keep; ++i) last = last->next;
    FreeBlock* donated = last->next;
    last->next = nullptr;
    const std::uint32_t donated_count = tc.count[cls] - keep;
    tc.count[cls] = keep;
    FreeBlock* donated_last = donated;
    while (donated_last->next) donated_last = donated_last->next;
    SharedClass& sc = shared_[cls].value;
    std::lock_guard<TinySpinLock> g(sc.lock);
    donated_last->next = sc.head;
    sc.head = donated;
    sc.count.store(sc.count.load(std::memory_order_relaxed) + donated_count,
                   std::memory_order_relaxed);
  }

  void* carve(ThreadCache& tc, std::size_t bytes) {
    if (static_cast<std::size_t>(tc.bump_end - tc.bump) < bytes) {
      void* slab = ::operator new(kSlabBytes, std::align_val_t{kGranularity});
      {
        std::lock_guard<TinySpinLock> g(slabs_lock_);
        slabs_.push_back(slab);
      }
      slab_bytes_.fetch_add(kSlabBytes, std::memory_order_relaxed);
      tc.bump = static_cast<char*>(slab);
      tc.bump_end = tc.bump + kSlabBytes;
    }
    void* out = tc.bump;
    tc.bump += bytes;
    return out;
  }

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_instance_id();
  std::atomic<int> next_slot_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> carved_{0};
  std::atomic<std::uint64_t> slab_bytes_{0};
  std::atomic<std::uint64_t> oversize_{0};
  std::array<Padded<ThreadCache>, kMaxThreads> caches_;
  std::array<Padded<SharedClass>, kMaxClasses + 1> shared_;
  TinySpinLock slabs_lock_;
  std::vector<void*> slabs_;
};

}  // namespace slpq::detail
