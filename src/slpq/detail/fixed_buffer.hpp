// FixedKVBuffer: a fixed-capacity array of (key, value) pairs on
// cache-line-aligned storage.
//
// The MultiQueue's per-handle insertion and deletion buffers (the
// "Engineering MultiQueues" design of Williams & Sanders) live in these:
// a handle is private to one thread, so its buffers must not share a
// cache line with another handle's — every storage block is allocated at
// kCacheLineSize alignment and rounded up to whole lines. Capacity is
// fixed at construction (one allocation for the buffer's whole life);
// the element count moves between 0 and capacity with explicit lifetime
// management, so Value may be any movable type.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "slpq/detail/cache_line.hpp"

namespace slpq::detail {

template <typename Key, typename Value>
class FixedKVBuffer {
 public:
  using Item = std::pair<Key, Value>;

  explicit FixedKVBuffer(std::size_t capacity) : cap_(capacity ? capacity : 1) {
    const std::size_t bytes =
        ((cap_ * sizeof(Item) + kCacheLineSize - 1) / kCacheLineSize) *
        kCacheLineSize;
    raw_ = ::operator new(bytes, std::align_val_t{kCacheLineSize});
    data_ = static_cast<Item*>(raw_);
  }

  ~FixedKVBuffer() {
    clear();
    ::operator delete(raw_, std::align_val_t{kCacheLineSize});
  }

  FixedKVBuffer(const FixedKVBuffer&) = delete;
  FixedKVBuffer& operator=(const FixedKVBuffer&) = delete;

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == cap_; }

  Item& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  const Item& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  Item& back() noexcept { return (*this)[size_ - 1]; }
  const Item& back() const noexcept { return (*this)[size_ - 1]; }
  Item& front() noexcept { return (*this)[0]; }
  const Item& front() const noexcept { return (*this)[0]; }

  void emplace_back(Key key, Value value) {
    assert(!full());
    ::new (static_cast<void*>(data_ + size_))
        Item(std::move(key), std::move(value));
    ++size_;
  }

  Item pop_back() {
    assert(!empty());
    Item out = std::move(data_[size_ - 1]);
    data_[size_ - 1].~Item();
    --size_;
    return out;
  }

  /// Inserts at `pos`, shifting [pos, size) right by one.
  void insert_at(std::size_t pos, Key key, Value value) {
    assert(!full() && pos <= size_);
    if (pos == size_) {
      emplace_back(std::move(key), std::move(value));
      return;
    }
    // Move-construct the new last slot from the old last element, then
    // shift the rest down with move assignment.
    ::new (static_cast<void*>(data_ + size_)) Item(std::move(data_[size_ - 1]));
    for (std::size_t i = size_ - 1; i > pos; --i)
      data_[i] = std::move(data_[i - 1]);
    data_[pos] = Item(std::move(key), std::move(value));
    ++size_;
  }

  /// Removes and returns the element at `pos`, shifting (pos, size) left.
  Item remove_at(std::size_t pos) {
    assert(pos < size_);
    Item out = std::move(data_[pos]);
    for (std::size_t i = pos + 1; i < size_; ++i)
      data_[i - 1] = std::move(data_[i]);
    data_[size_ - 1].~Item();
    --size_;
    return out;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~Item();
    size_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t size_ = 0;
  void* raw_ = nullptr;
  Item* data_ = nullptr;
};

}  // namespace slpq::detail
