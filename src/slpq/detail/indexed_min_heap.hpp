// IndexedMinHeap: a binary min-heap over a fixed universe of integer keys
// [0, capacity) with decrease/increase/remove by key.
//
// The simulator engine keeps runnable virtual processors ordered by local
// clock; a processor blocks (remove) and wakes (push with a new time)
// constantly, so we need an addressable heap rather than std::priority_queue.
// (priority, key) pairs are stored contiguously in the heap array so a sift
// touches one cache line per level instead of chasing a key->priority
// indirection — this sits on the engine's per-fiber-switch path.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slpq::detail {

template <typename Priority>
class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(std::size_t capacity) : pos_(capacity, kAbsent) {}

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }
  bool contains(std::size_t key) const noexcept { return pos_[key] != kAbsent; }

  Priority priority_of(std::size_t key) const noexcept {
    assert(contains(key));
    return heap_[pos_[key]].prio;
  }

  /// Inserts key with the given priority. Key must not be present.
  void push(std::size_t key, Priority p) {
    assert(key < pos_.size() && !contains(key));
    pos_[key] = heap_.size();
    heap_.push_back(Entry{p, key});
    sift_up(heap_.size() - 1);
  }

  /// Key of the minimum element. Ties are broken by smaller key so that the
  /// engine's scheduling is deterministic.
  std::size_t top() const noexcept {
    assert(!empty());
    return heap_[0].key;
  }

  Priority top_priority() const noexcept {
    assert(!empty());
    return heap_[0].prio;
  }

  std::size_t pop() {
    const std::size_t k = top();
    remove(k);
    return k;
  }

  /// Minimum element ignoring `key`, in O(1): when `key` sits at the root,
  /// the runner-up is the smaller of the root's children (the heap
  /// invariant holds below the root regardless of the root's priority).
  /// Returns false when the heap is empty or holds only `key`. The engine
  /// uses this to ask "who would run next?" while the current processor is
  /// still in the queue at its stale priority.
  bool min_excluding(std::size_t key, std::size_t& out_key,
                     Priority& out_prio) const noexcept {
    if (empty()) return false;
    std::size_t i = 0;
    if (heap_[0].key == key) {
      if (heap_.size() == 1) return false;
      i = 1;
      if (heap_.size() > 2 && less(2, 1)) i = 2;
    }
    out_key = heap_[i].key;
    out_prio = heap_[i].prio;
    return true;
  }

  void remove(std::size_t key) {
    assert(contains(key));
    const std::size_t i = pos_[key];
    swap_at(i, heap_.size() - 1);
    heap_.pop_back();
    pos_[key] = kAbsent;
    if (i < heap_.size()) {
      sift_up(i);
      sift_down(i);
    }
  }

  /// Changes key's priority (any direction) and restores heap order.
  void update(std::size_t key, Priority p) {
    assert(contains(key));
    const std::size_t i = pos_[key];
    heap_[i].prio = p;
    sift_up(i);
    sift_down(pos_[key]);
  }

 private:
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  struct Entry {
    Priority prio;
    std::size_t key;
  };

  bool less(std::size_t a, std::size_t b) const noexcept {
    // a/b are positions in heap_.
    if (heap_[a].prio != heap_[b].prio) return heap_[a].prio < heap_[b].prio;
    return heap_[a].key < heap_[b].key;
  }

  void swap_at(std::size_t i, std::size_t j) noexcept {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i].key] = i;
    pos_[heap_[j].key] = j;
  }

  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(i, parent)) break;
      swap_at(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < heap_.size() && less(l, best)) best = l;
      if (r < heap_.size() && less(r, best)) best = r;
      if (best == i) return;
      swap_at(i, best);
      i = best;
    }
  }

  std::vector<std::size_t> pos_;  // key -> position in heap_, or kAbsent
  std::vector<Entry> heap_;       // heap array of (priority, key) pairs
};

}  // namespace slpq::detail
