// IndexedMinHeap: a binary min-heap over a fixed universe of integer keys
// [0, capacity) with decrease/increase/remove by key.
//
// The simulator engine keeps runnable virtual processors ordered by local
// clock; a processor blocks (remove) and wakes (push with a new time)
// constantly, so we need an addressable heap rather than std::priority_queue.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slpq::detail {

template <typename Priority>
class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(std::size_t capacity)
      : pos_(capacity, kAbsent), keys_(), prio_(capacity) {}

  std::size_t size() const noexcept { return keys_.size(); }
  bool empty() const noexcept { return keys_.empty(); }
  bool contains(std::size_t key) const noexcept { return pos_[key] != kAbsent; }

  Priority priority_of(std::size_t key) const noexcept {
    assert(contains(key));
    return prio_[key];
  }

  /// Inserts key with the given priority. Key must not be present.
  void push(std::size_t key, Priority p) {
    assert(key < pos_.size() && !contains(key));
    prio_[key] = p;
    pos_[key] = keys_.size();
    keys_.push_back(key);
    sift_up(keys_.size() - 1);
  }

  /// Key of the minimum element. Ties are broken by smaller key so that the
  /// engine's scheduling is deterministic.
  std::size_t top() const noexcept {
    assert(!empty());
    return keys_[0];
  }

  Priority top_priority() const noexcept {
    assert(!empty());
    return prio_[keys_[0]];
  }

  std::size_t pop() {
    const std::size_t k = top();
    remove(k);
    return k;
  }

  void remove(std::size_t key) {
    assert(contains(key));
    const std::size_t i = pos_[key];
    swap_at(i, keys_.size() - 1);
    keys_.pop_back();
    pos_[key] = kAbsent;
    if (i < keys_.size()) {
      sift_up(i);
      sift_down(i);
    }
  }

  /// Changes key's priority (any direction) and restores heap order.
  void update(std::size_t key, Priority p) {
    assert(contains(key));
    prio_[key] = p;
    sift_up(pos_[key]);
    sift_down(pos_[key]);
  }

 private:
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  bool less(std::size_t a, std::size_t b) const noexcept {
    // a/b are positions in keys_.
    const std::size_t ka = keys_[a], kb = keys_[b];
    if (prio_[ka] != prio_[kb]) return prio_[ka] < prio_[kb];
    return ka < kb;
  }

  void swap_at(std::size_t i, std::size_t j) noexcept {
    std::swap(keys_[i], keys_[j]);
    pos_[keys_[i]] = i;
    pos_[keys_[j]] = j;
  }

  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(i, parent)) break;
      swap_at(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < keys_.size() && less(l, best)) best = l;
      if (r < keys_.size() && less(r, best)) best = r;
      if (best == i) return;
      swap_at(i, best);
      i = best;
    }
  }

  std::vector<std::size_t> pos_;   // key -> position in keys_, or kAbsent
  std::vector<std::size_t> keys_;  // heap array of keys
  std::vector<Priority> prio_;     // key -> priority
};

}  // namespace slpq::detail
