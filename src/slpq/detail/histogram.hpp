// LogHistogram: log-bucketed accumulator for non-negative integer samples.
//
// Originally the harness latency sink (one sample per Insert/Delete-min),
// now also the rank-error histogram behind the mq.rank_error.* telemetry
// keys — any metric whose interesting range spans orders of magnitude
// fits. Buckets are powers of two with linear sub-buckets
// (HdrHistogram-style, 16 sub-buckets per octave), which keeps relative
// quantile error < ~6% while insertion stays O(1) and memory small.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace slpq::detail {

class LogHistogram {
 public:
  static constexpr int kSubBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;

  LogHistogram() : buckets_(64 * kSub, 0) {}

  void record(std::uint64_t v) noexcept {
    sum_ += v;
    ++count_;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    buckets_[index_of(v)]++;
  }

  void merge(const LogHistogram& other) noexcept {
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }

  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Approximate q-quantile (0 <= q <= 1); returns a representative value of
  /// the bucket containing the quantile rank.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) return representative(i);
    }
    return max_;
  }

  void reset() noexcept {
    sum_ = 0;
    count_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

 private:
  static std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int octave = msb - kSubBits + 1;
    const auto sub = static_cast<std::size_t>(v >> (msb - kSubBits)) & (kSub - 1);
    return static_cast<std::size_t>(octave) * kSub + sub + kSub;
  }

  static std::uint64_t representative(std::size_t idx) noexcept {
    if (idx < kSub) return idx;
    const std::size_t octave = (idx - kSub) / kSub;
    const std::size_t sub = (idx - kSub) % kSub;
    // Midpoint of the bucket range.
    const std::uint64_t base = (1ULL << (octave + kSubBits - 1)) + (sub << (octave - 1));
    return base + (1ULL << (octave - 1)) / 2;
  }

  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

/// The harness's historical name for its latency sink; same type.
using LatencyHistogram = LogHistogram;

}  // namespace slpq::detail
