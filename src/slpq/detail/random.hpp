// Small deterministic PRNGs used throughout the library and the simulator.
//
// We deliberately avoid <random>'s engines on hot paths: skiplist level
// selection happens on every insert and must cost a handful of cycles.
// SplitMix64 seeds Xoshiro256**; both are public-domain algorithms
// (Blackman & Vigna) reimplemented here.
#pragma once

#include <array>
#include <cstdint>

namespace slpq::detail {

/// SplitMix64: used for seeding and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator for workloads.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses the widening-multiply trick; the
  /// modulo bias is < 2^-64 * bound which is negligible for our workloads.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (0 <= p <= 1).
  constexpr bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Samples a skiplist node level with P(level >= k+1 | level >= k) = p,
/// clamped to [1, max_level]. This is the paper's randomLevel(): repeated
/// coin flips with success probability p, implemented by consuming one
/// 64-bit word and counting below-threshold "flips".
class GeometricLevel {
 public:
  GeometricLevel(double p, int max_level) noexcept
      : p_(p), max_level_(max_level) {}

  int operator()(Xoshiro256& rng) const noexcept {
    int level = 1;
    while (level < max_level_ && rng.uniform01() < p_) ++level;
    return level;
  }

  int max_level() const noexcept { return max_level_; }
  double p() const noexcept { return p_; }

 private:
  double p_;
  int max_level_;
};

}  // namespace slpq::detail
