// SpscRing: a bounded single-producer/single-consumer ring buffer.
//
// The pqd service tier runs each client session's requests through one of
// these (src/pqd/): the client thread produces encoded requests, the
// serving side — the same thread on the in-process fast path, a server
// thread behind a real transport — consumes them in batches, so one shard
// acquisition can serve up to a whole ring's worth of enqueued ops.
//
// Classic Lamport queue with two refinements that keep the hot path to one
// shared-line touch per side:
//   * head_ and tail_ live on separate cache lines (no false sharing
//     between producer and consumer);
//   * each side caches the other's index and re-reads it only when the
//     cached value says the ring looks full/empty, so a streaming producer
//     or consumer mostly runs on line-local state.
// Capacity is rounded up to a power of two so wraparound is a mask, and
// one slot convention is avoided by tracking monotone indices (head_ and
// tail_ never wrap; the slot is index & mask).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "slpq/detail/cache_line.hpp"

namespace slpq::detail {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(new T[mask_ + 1]) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;
  ~SpscRing() { delete[] slots_; }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T v) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called by either endpoint while the
  /// other is quiescent).
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  T* const slots_;

  // Producer line: tail plus the producer's cached copy of head.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;

  // Consumer line: head plus the consumer's cached copy of tail.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace slpq::detail
