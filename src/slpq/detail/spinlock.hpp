// Spinlocks for the native library's fine-grained locking.
//
// A skiplist node carries one lock per level plus a whole-node lock; with
// thousands of nodes we cannot afford sizeof(std::mutex) per level, so the
// per-level locks are single-byte test-and-test-and-set locks. A ticket
// lock (FIFO-fair) is provided for the coarse baselines and ablations.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace slpq::detail {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Single-byte test-and-test-and-set spinlock with exponential backoff.
/// Satisfies Lockable; use with std::lock_guard / std::scoped_lock (CP.20).
class TinySpinLock {
 public:
  void lock() noexcept {
    int spins = 0;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      do {
        backoff(spins);
      } while (locked_.load(std::memory_order_relaxed));
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  static void backoff(int& spins) noexcept {
    // Exponential pause, then hand the quantum back to the OS: on an
    // oversubscribed machine the lock holder cannot run while we burn our
    // timeslice spinning.
    if (spins >= 10) {
      std::this_thread::yield();
      return;
    }
    const int limit = 1 << spins;
    for (int i = 0; i < limit; ++i) cpu_relax();
    ++spins;
  }

  std::atomic<bool> locked_{false};
};

static_assert(sizeof(TinySpinLock) == 1);

/// FIFO-fair ticket lock. Heavier than TinySpinLock but starvation-free.
class TicketLock {
 public:
  void lock() noexcept {
    const auto my = next_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    while (serving_.load(std::memory_order_acquire) != my) {
      if (++spins > 1024) {
        std::this_thread::yield();
        spins = 0;
      } else {
        cpu_relax();
      }
    }
  }

  bool try_lock() noexcept {
    auto cur = serving_.load(std::memory_order_relaxed);
    auto expected = cur;
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace slpq::detail
