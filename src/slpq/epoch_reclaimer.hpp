// EpochReclaimer: 3-epoch quiescent-state-based reclamation (Fraser-style
// EBR), plus the trivial LeakyReclaimer benchmark ceiling.
//
// A global epoch counter advances only when every thread currently inside
// the structure has observed the current value. Threads pin the epoch in a
// per-thread padded cell on enter and clear it on exit; retired nodes go
// into one of three per-thread limbo buckets keyed by (epoch mod 3), and a
// bucket is recycled once the global epoch has moved two steps past the
// epoch its nodes were retired in — by then no thread that could have held
// a reference remains inside.
//
// Epoch advances are attempted by retiring threads every kAdvanceEvery
// retirements; an attempt that finds a lagging active thread counts as a
// stall (the reclamation-blocked signal the telemetry reports).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/reclaim.hpp"

namespace slpq {

class EpochReclaimer final : public Reclaimer {
 public:
  static constexpr int kBuckets = 3;
  static constexpr int kAdvanceEvery = 64;

  explicit EpochReclaimer(Deleter deleter)
      : Reclaimer(ReclaimPolicy::kEpoch, std::move(deleter)) {
    for (auto& c : cells_) c->store(0, std::memory_order_relaxed);
  }

  ~EpochReclaimer() override { drain(); }

  std::uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  // ---- Reclaimer interface ----------------------------------------------

  /// Pins the current global epoch: cell = (epoch << 1) | 1 (odd = active).
  std::uint64_t enter(int slot) override {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    cells_[static_cast<std::size_t>(slot)]->store((e << 1) | 1,
                                                  std::memory_order_seq_cst);
    return now();
  }

  void exit(int slot) override {
    cells_[static_cast<std::size_t>(slot)]->store(0,
                                                  std::memory_order_release);
  }

  void retire(void* node) override {
    note_retired();
    const int slot = register_thread();
    Limbo& l = limbo_[static_cast<std::size_t>(slot)].value;
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    const std::size_t idx = e % kBuckets;
    if (l.epoch[idx] != e) {
      // This bucket's nodes were retired >= kBuckets epochs ago: the epoch
      // has advanced at least twice past them, so they are free.
      std::uint64_t n = 0;
      for (void* p : l.bucket[idx]) {
        deleter_(p);
        ++n;
      }
      l.bucket[idx].clear();
      l.epoch[idx] = e;
      note_freed(n);
    }
    l.bucket[idx].push_back(node);
    if (++l.since_advance >= kAdvanceEvery) {
      l.since_advance = 0;
      try_advance();
    }
  }

  /// Quiescent-only: frees every limbo bucket unconditionally.
  void drain() override {
    std::uint64_t n = 0;
    for (auto& padded : limbo_) {
      for (auto& bucket : padded.value.bucket) {
        for (void* p : bucket) {
          deleter_(p);
          ++n;
        }
        bucket.clear();
      }
    }
    note_freed(n);
  }

  /// One advance attempt: succeeds iff every active thread has pinned the
  /// current epoch. Exposed for tests; scans count as reclaim.scans,
  /// failed attempts as reclaim.stalls.
  bool try_advance() {
    note_scan();
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    const int threads = registered_threads();
    for (int t = 0; t < threads; ++t) {
      const std::uint64_t s =
          cells_[static_cast<std::size_t>(t)]->load(std::memory_order_seq_cst);
      if ((s & 1) != 0 && (s >> 1) != e) {
        note_stalls(1);
        return false;
      }
    }
    return epoch_.compare_exchange_strong(e, e + 1,
                                          std::memory_order_acq_rel);
  }

 private:
  struct Limbo {
    std::array<std::vector<void*>, kBuckets> bucket;
    std::array<std::uint64_t, kBuckets> epoch{};
    unsigned since_advance = 0;
  };

  // Start past kBuckets so bucket-epoch tags (zero-initialized) are always
  // strictly older than the first live epoch.
  std::atomic<std::uint64_t> epoch_{kBuckets};
  std::array<detail::Padded<std::atomic<std::uint64_t>>, kMaxThreads> cells_;
  std::array<detail::Padded<Limbo>, kMaxThreads> limbo_;
};

/// LeakyReclaimer: retire is append-only; nothing is freed until drain()
/// runs at quiescence (destruction). The zero-overhead ceiling any real
/// policy is measured against — and still ASan-clean, because drain does
/// release everything at teardown.
class LeakyReclaimer final : public Reclaimer {
 public:
  explicit LeakyReclaimer(Deleter deleter)
      : Reclaimer(ReclaimPolicy::kLeaky, std::move(deleter)) {}

  ~LeakyReclaimer() override { drain(); }

  std::uint64_t enter(int /*slot*/) override { return now(); }
  void exit(int /*slot*/) override {}

  void retire(void* node) override {
    note_retired();
    const int slot = register_thread();
    retired_[static_cast<std::size_t>(slot)].value.push_back(node);
  }

  void drain() override {
    std::uint64_t n = 0;
    for (auto& padded : retired_) {
      for (void* p : padded.value) {
        deleter_(p);
        ++n;
      }
      padded.value.clear();
    }
    note_freed(n);
  }

 private:
  std::array<detail::Padded<std::vector<void*>>, kMaxThreads> retired_;
};

}  // namespace slpq
