#include "slpq/reclaim.hpp"

#include "slpq/epoch_reclaimer.hpp"
#include "slpq/hazard_reclaimer.hpp"
#include "slpq/ts_reclaimer.hpp"

namespace slpq {

std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          Reclaimer::Deleter deleter,
                                          int hazard_slots) {
  switch (policy) {
    case ReclaimPolicy::kHazard:
      return std::make_unique<HazardPointerReclaimer>(std::move(deleter),
                                                      hazard_slots);
    case ReclaimPolicy::kEpoch:
      return std::make_unique<EpochReclaimer>(std::move(deleter));
    case ReclaimPolicy::kLeaky:
      return std::make_unique<LeakyReclaimer>(std::move(deleter));
    case ReclaimPolicy::kTimestamp:
      break;
  }
  return std::make_unique<TimestampReclaimer>(std::move(deleter));
}

}  // namespace slpq
