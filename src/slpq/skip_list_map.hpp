// slpq::SkipListMap — Pugh's sequential skiplist ("Skip Lists: A
// Probabilistic Alternative to Balanced Trees", CACM 1990), the substrate
// the paper's concurrent structures are built from.
//
// A sorted associative container with expected O(log n) search, insert and
// erase, kept here both as the reference implementation the concurrent
// queues are tested against and as a usable single-threaded container
// (ordered iteration, lower_bound, operator[]).
//
// Not thread-safe: this is the CACM 1990 structure. For concurrent use,
// see slpq::SkipQueue / slpq::LockFreeSkipQueue.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>

#include "slpq/detail/random.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class SkipListMap {
  struct Node;  // defined below; forward-declared for the iterator

 public:
  struct Options {
    int max_level = 20;
    double p = 0.5;
    std::uint64_t seed = 0x51C15EEDULL;
  };

  SkipListMap() : SkipListMap(Options()) {}

  explicit SkipListMap(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        rng_(opt.seed),
        level_dist_(opt.p, opt.max_level),
        head_(make_node(opt.max_level)) {
    for (int i = 0; i < opt_.max_level; ++i) head_->next[i] = nullptr;
  }

  ~SkipListMap() {
    clear();
    destroy_node(head_);
  }

  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Inserts or assigns; returns true if a new element was created.
  bool insert_or_assign(const Key& key, Value value) {
    Node* update[kMaxPossibleLevel];
    Node* node = find_node(key, update);
    if (node != nullptr) {
      node->value() = std::move(value);
      return false;
    }
    const int lvl = level_dist_(rng_);
    Node* fresh = make_node(lvl, key, std::move(value));
    for (int i = 0; i < lvl; ++i) {
      fresh->next[i] = update[i]->next[i];
      update[i]->next[i] = fresh;
    }
    ++size_;
    if (lvl > height_ ) height_ = lvl;
    return true;
  }

  /// Removes a key; returns its value if it was present.
  std::optional<Value> erase(const Key& key) {
    Node* update[kMaxPossibleLevel];
    Node* node = find_node(key, update);
    if (node == nullptr) return std::nullopt;
    for (int i = 0; i < node->level; ++i) {
      if (update[i]->next[i] == node) update[i]->next[i] = node->next[i];
    }
    std::optional<Value> out{std::move(node->value())};
    destroy_node(node);
    --size_;
    return out;
  }

  bool contains(const Key& key) const {
    return const_cast<SkipListMap*>(this)->find_node(key, nullptr) != nullptr;
  }

  Value* find(const Key& key) {
    Node* node = find_node(key, nullptr);
    return node ? &node->value() : nullptr;
  }

  const Value* find(const Key& key) const {
    return const_cast<SkipListMap*>(this)->find(key);
  }

  /// Inserts a default Value if absent; returns a reference either way.
  Value& operator[](const Key& key) {
    if (Value* v = find(key)) return *v;
    insert_or_assign(key, Value{});
    return *find(key);
  }

  void clear() noexcept {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      destroy_node(n);
      n = next;
    }
    for (int i = 0; i < opt_.max_level; ++i) head_->next[i] = nullptr;
    size_ = 0;
    height_ = 1;
  }

  // ---- iteration (forward, in key order) ---------------------------------
  class iterator {
   public:
    using value_type = std::pair<const Key&, Value&>;

    iterator& operator++() {
      node_ = node_->next[0];
      return *this;
    }
    bool operator==(const iterator& other) const { return node_ == other.node_; }
    bool operator!=(const iterator& other) const { return node_ != other.node_; }
    value_type operator*() const { return {node_->key(), node_->value()}; }
    const Key& key() const { return node_->key(); }
    Value& value() const { return node_->value(); }

   private:
    friend class SkipListMap;
    explicit iterator(Node* n) : node_(n) {}
    Node* node_;
  };

  iterator begin() { return iterator(head_->next[0]); }
  iterator end() { return iterator(nullptr); }

  /// First element with key >= `key` (end() if none).
  iterator lower_bound(const Key& key) {
    Node* node = head_;
    for (int i = height_ - 1; i >= 0; --i)
      while (node->next[i] != nullptr && cmp_(node->next[i]->key(), key))
        node = node->next[i];
    return iterator(node->next[0]);
  }

  /// Expected number of pointer hops a search performs (diagnostics).
  int height() const noexcept { return height_; }

 private:
  static constexpr int kMaxPossibleLevel = 64;

  struct Node {  // NOLINT: definition of the forward declaration above
    int level;
    Node** next;  // trailing array
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];
    bool constructed;

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
  };

  Node* make_node(int level) {
    const std::size_t bytes =
        sizeof(Node) + static_cast<std::size_t>(level) * sizeof(Node*);
    void* raw = ::operator new(bytes, std::align_val_t{alignof(Node)});
    Node* n = new (raw) Node();
    n->level = level;
    n->constructed = false;
    n->next = reinterpret_cast<Node**>(reinterpret_cast<char*>(raw) + sizeof(Node));
    for (int i = 0; i < level; ++i) n->next[i] = nullptr;
    return n;
  }

  Node* make_node(int level, const Key& key, Value&& value) {
    Node* n = make_node(level);
    new (&n->key()) Key(key);
    new (&n->value()) Value(std::move(value));
    n->constructed = true;
    return n;
  }

  void destroy_node(Node* n) noexcept {
    if (n->constructed) {
      n->key().~Key();
      n->value().~Value();
    }
    n->~Node();
    ::operator delete(static_cast<void*>(n), std::align_val_t{alignof(Node)});
  }

  /// Positions update[] (if given) and returns the node with `key` or null.
  Node* find_node(const Key& key, Node** update) {
    Node* node = head_;
    for (int i = opt_.max_level - 1; i >= 0; --i) {
      while (node->next[i] != nullptr && cmp_(node->next[i]->key(), key))
        node = node->next[i];
      if (update != nullptr) update[i] = node;
    }
    Node* cand = node->next[0];
    if (cand != nullptr && !cmp_(key, cand->key())) return cand;
    return nullptr;
  }

  Options opt_;
  Compare cmp_;
  detail::Xoshiro256 rng_;
  detail::GeometricLevel level_dist_;
  Node* head_;
  std::size_t size_ = 0;
  int height_ = 1;
};

}  // namespace slpq
