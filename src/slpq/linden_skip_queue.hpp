// slpq::LindenSkipQueue — batched-prefix delete_min (Lindén & Jonsson,
// OPODIS 2013), the fastest exact skiplist priority queue in Gruber's
// survey and the exact baseline of "Engineering MultiQueues".
//
// Where the paper's SkipQueue (and our LockFreeSkipQueue) pays a full
// top-down mark plus a find() unlink pass on every successful delete_min,
// this design defers all physical restructuring and makes the delete_min
// hot path ~one atomic instruction:
//
//  * Mark-on-next encoding: the low bit of a node's *bottom-level* next
//    pointer says "my successor is logically deleted". Deleted nodes are
//    therefore exactly the nodes reached from the head by following marked
//    pointers, and they form a contiguous prefix of the bottom level.
//  * delete_min is a read-only walk over that deleted prefix followed by a
//    single fetch_or on the last dead node's (or the head's) next pointer.
//    An unmarked previous value means the caller claimed that pointer's
//    successor — the minimal live node — with one atomic RMW and zero
//    stores to any other node.
//  * Physical restructuring is batched: only when the walked prefix exceeds
//    Options::boundoffset does the claimant try one CAS swinging
//    head->next[0] past the whole dead prefix, then lazily repair the upper
//    levels (restructure()) and retire the bypassed nodes. Between
//    restructurings the upper levels may point into the dead prefix; every
//    traversal skips such nodes via the is_marked(node->next[0]) proxy.
//  * Inserts locate their spot with a search that skips dead nodes, link
//    bottom-up, and never land inside the dead prefix (splicing after a
//    node requires its next pointer to be unmarked). A node's `inserting`
//    flag keeps a concurrent restructuring from swinging the head past a
//    node whose upper levels are still being linked.
//  * Reclamation: retired prefixes flow through the paper's Section 3
//    scheme (TimestampReclaimer), exactly like the other native queues, so
//    the ABA/use-after-free story is unchanged. A swept node is retired by
//    the unique winner of the head CAS, under its guard.
//
// Options::timestamps (default off — Lindén's queue has no time-stamps)
// adds the paper's Section 4.2 eligibility filter: delete_min will not
// claim a node whose insert completed after the operation entered. Because
// a claim in this encoding is positional (marking the predecessor's
// pointer), an ineligible *minimum* cannot be skipped the way the
// claimed-flag queues skip it — doing so would mark a live node's pointer
// and break the contiguous-prefix invariant — so the timestamped variant
// conservatively reports empty in that case. See docs/ALGORITHMS.md.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <utility>

#include "slpq/detail/node_pool.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "slpq/ts_reclaimer.hpp"

namespace slpq {

class LindenSkipQueueTestPeer;

template <typename Key, typename Value, typename Compare = std::less<Key>>
class LindenSkipQueue {
 public:
  struct Options {
    int max_level = 20;
    double p = 0.5;
    /// Dead-prefix length that triggers physical restructuring. Small
    /// values restructure (and contend on the head) often; large values
    /// make every walk crawl a long dead prefix. See
    /// bench/ablation_boundoffset.cpp for the trade.
    int boundoffset = 32;
    bool timestamps = false;  ///< true => Section 4.2 eligibility filter
    bool pooled = true;       ///< allocate nodes from a per-thread NodePool
    std::uint64_t seed = 0x11DE9A11ULL;
  };

  LindenSkipQueue() : LindenSkipQueue(Options()) {}

  explicit LindenSkipQueue(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        level_dist_(opt.p, opt.max_level),
        reclaimer_([this](void* p) {
          Node::destroy(static_cast<Node*>(p), pool_ptr());
        }) {
    assert(opt_.max_level >= 1 && opt_.max_level <= kMaxPossibleLevel);
    if (opt_.boundoffset < 1) opt_.boundoffset = 1;
    head_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Head);
    tail_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Tail);
    head_->stamp.store(0, std::memory_order_relaxed);
    tail_->stamp.store(0, std::memory_order_relaxed);
    for (int i = 0; i < opt_.max_level; ++i)
      head_->next(i).store(pack(tail_, false), std::memory_order_relaxed);
    // Telemetry baseline: sentinel carves don't count as pool_refills.
    pool_base_carved_ = pool_.carved();
  }

  ~LindenSkipQueue() {
    // Every node still reachable from the head (dead prefix included —
    // unswept claims are not yet retired) is freed here; swept nodes live
    // in the reclaimer, whose destructor drains them.
    Node* n = strip(head_->next(0).load(std::memory_order_relaxed));
    while (n != tail_) {
      Node* next = strip(n->next(0).load(std::memory_order_relaxed));
      Node::destroy(n, pool_ptr());
      n = next;
    }
    Node::destroy(head_, pool_ptr());
    Node::destroy(tail_, pool_ptr());
  }

  LindenSkipQueue(const LindenSkipQueue&) = delete;
  LindenSkipQueue& operator=(const LindenSkipQueue&) = delete;

  /// Inserts (key, value). Duplicate keys are allowed; every call adds a
  /// distinct item (new duplicates land in front of old ones).
  void insert(const Key& key, const Value& value) {
    TimestampReclaimer::Guard guard(reclaimer_);

    const int top = random_level();
    Node* n = Node::make(pool_ptr(), top, NodeKind::Interior, key, value);
    n->inserting.store(true, std::memory_order_relaxed);
    if (opt_.timestamps)
      n->stamp.store(kNeverStamped, std::memory_order_relaxed);

    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];

    // Bottom level first; its CAS is the insert's linearization. The
    // expected value is unmarked, so we can never splice in front of a
    // deleted node — new nodes land at or after the dead/live boundary.
    Node* del;
    for (;;) {
      del = locate_preds(key, preds, succs);
      n->next(0).store(pack(succs[0], false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(succs[0], false);
      if (preds[0]->next(0).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire))
        break;
      counters_.add(Counter::kFailedCas);
      counters_.add(Counter::kInsertRetries);
    }

    // Upper levels. Stop if we got claimed meanwhile (our own next[0]
    // marked means our successor died — we are at or inside the dead
    // prefix), if the successor died, or if it sits inside the dead prefix.
    for (int lv = 1; lv < top;) {
      n->next(lv).store(pack(succs[lv], false), std::memory_order_relaxed);
      if (is_marked(n->next(0).load(std::memory_order_acquire)) ||
          is_marked(succs[lv]->next(0).load(std::memory_order_acquire)) ||
          succs[lv] == del)
        break;
      std::uintptr_t expected = pack(succs[lv], false);
      if (preds[lv]->next(lv).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        ++lv;
        continue;
      }
      counters_.add(Counter::kFailedCas);
      del = locate_preds(key, preds, succs);  // competing insert/restructure
      if (succs[0] != n) break;               // we were claimed and bypassed
    }

    n->inserting.store(false, std::memory_order_release);
    if (opt_.timestamps)
      n->stamp.store(reclaimer_.advance_clock(), std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claims and removes a minimal live item: a read-only walk over the
  /// deleted prefix, then one fetch_or. Restructures when the prefix
  /// exceeds Options::boundoffset.
  std::optional<std::pair<Key, Value>> delete_min() {
    TimestampReclaimer::Guard guard(reclaimer_);
    return claim_min(guard.entry_time());
  }

  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }
  std::uint64_t reclaimed() const { return reclaimer_.freed_total(); }
  /// Nodes whose allocation was served from the pool's free lists.
  std::uint64_t pool_reused() const { return pool_.reused(); }
  /// Dead-prefix batches swept by the head CAS (restructure frequency).
  std::uint64_t restructures() const {
    return restructures_.load(std::memory_order_relaxed);
  }
  const Options& options() const noexcept { return opt_; }

  /// Operation counters plus pool/GC composition; see docs/TELEMETRY.md.
  /// Note gc_reclaimed + gc_deferred can trail claim_wins here: a claimed
  /// node is retired only when a restructuring sweeps it out of the prefix.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set(counter_name(Counter::kPoolRefills),
             pool_.carved() - pool_base_carved_);
    snap.set(counter_name(Counter::kPoolReused), pool_.reused());
    snap.set(counter_name(Counter::kGcReclaimed), reclaimer_.freed_total());
    snap.set(counter_name(Counter::kGcDeferred), reclaimer_.pending());
    return snap;
  }

 private:
  friend class LindenSkipQueueTestPeer;

  static constexpr int kMaxPossibleLevel = 64;
  static constexpr std::uint64_t kNeverStamped = ~std::uint64_t{0};

  enum class NodeKind : std::uint8_t { Head, Interior, Tail };

  struct Node {
    std::atomic<bool> inserting{false};
    std::atomic<std::uint64_t> stamp{0};
    NodeKind kind;
    int level;
    std::atomic<std::uintptr_t>* next_;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
    std::atomic<std::uintptr_t>& next(int lv) noexcept { return next_[lv]; }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(level) *
                                sizeof(std::atomic<std::uintptr_t>);
    }

    static constexpr bool pool_compatible() noexcept {
      return alignof(Node) <= detail::NodePool::kGranularity;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind) {
      const std::size_t bytes = bytes_for(level);
      void* raw = pool && pool_compatible()
                      ? pool->allocate(bytes)
                      : ::operator new(bytes, std::align_val_t{alignof(Node)});
      Node* n = new (raw) Node();
      n->kind = kind;
      n->level = level;
      n->next_ = reinterpret_cast<std::atomic<std::uintptr_t>*>(
          reinterpret_cast<char*>(raw) + sizeof(Node));
      for (int i = 0; i < level; ++i)
        new (&n->next_[i]) std::atomic<std::uintptr_t>(0);
      return n;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind,
                      const Key& k, const Value& v) {
      Node* n = make(pool, level, kind);
      new (&n->key()) Key(k);
      new (&n->value()) Value(v);
      return n;
    }

    static void destroy(Node* n, detail::NodePool* pool) {
      if (n->kind == NodeKind::Interior) {
        n->key().~Key();
        n->value().~Value();
      }
      const std::size_t bytes = bytes_for(n->level);
      for (int i = 0; i < n->level; ++i)
        n->next_[i].~atomic<std::uintptr_t>();
      n->~Node();
      if (pool && pool_compatible())
        pool->deallocate(static_cast<void*>(n), bytes);
      else
        ::operator delete(static_cast<void*>(n),
                          std::align_val_t{alignof(Node)});
    }
  };

  // ---- marked-pointer helpers -------------------------------------------
  static std::uintptr_t pack(Node* n, bool marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* strip(std::uintptr_t w) noexcept {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) noexcept { return (w & 1u) != 0; }

  bool key_before(Node* n, const Key& key) const {
    if (n->kind == NodeKind::Tail) return false;
    return cmp_(n->key(), key);
  }

  int random_level() {
    thread_local detail::Xoshiro256 rng(
        detail::SplitMix64(opt_.seed ^
                           (reinterpret_cast<std::uintptr_t>(&rng) >> 4))
            .next());
    return level_dist_(rng);
  }

  /// The search pass: positions preds/succs around `key`, skipping nodes
  /// that look deleted (their own next[0] is marked — exact inside the
  /// contiguous dead prefix, where a node's successor being dead implies
  /// the node itself is dead or is the prefix boundary) and, at the bottom
  /// level, nodes reached through a marked pointer (definitely dead).
  /// Returns the last bottom-level node passed through a marked pointer.
  Node* locate_preds(const Key& key, Node** preds, Node** succs) {
    Node* del = nullptr;
    Node* x = head_;
    for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
      std::uintptr_t w = x->next(lv).load(std::memory_order_acquire);
      for (;;) {
        const bool d = is_marked(w);  // only ever set at the bottom level
        Node* c = strip(w);
        if (c == tail_) break;
        if (!key_before(c, key) &&
            !is_marked(c->next(0).load(std::memory_order_acquire)) &&
            !(lv == 0 && d))
          break;
        if (lv == 0 && d) del = c;
        x = c;
        w = x->next(lv).load(std::memory_order_acquire);
      }
      preds[lv] = x;
      succs[lv] = strip(w);
    }
    return del;
  }

  /// The claim walk shared by delete_min and the test peer. `time` is the
  /// eligibility horizon (ignored without Options::timestamps).
  std::optional<std::pair<Key, Value>> claim_min(std::uint64_t time) {
    Node* cur = head_;
    std::uintptr_t w = head_->next(0).load(std::memory_order_acquire);
    const std::uintptr_t obs_head = w;
    Node* newhead = nullptr;  // earliest node the head CAS must not pass
    std::size_t offset = 0;   // dead nodes walked (incl. the new claim)
    Node* claimed = nullptr;

    for (;;) {
      Node* c = strip(w);
      if (c == tail_) return std::nullopt;
      if (is_marked(w)) {
        // c is deleted: count it, remember it if its insert is still
        // linking upper levels (the head must not swing past it), advance.
        ++offset;
        counters_.add(Counter::kPrefixNodes);
        if (newhead == nullptr && c->inserting.load(std::memory_order_acquire))
          newhead = c;
        cur = c;
        w = cur->next(0).load(std::memory_order_acquire);
        continue;
      }
      // c is the first live node: claim cur's successor.
      if (opt_.timestamps) {
        if (c->stamp.load(std::memory_order_acquire) > time)
          return std::nullopt;  // minimum inserted concurrently: see header
        // CAS (not fetch_or) so the claim lands on the vetted node even if
        // an unvetted insert splices in between the read and the RMW.
        std::uintptr_t expected = pack(c, false);
        if (cur->next(0).compare_exchange_strong(expected, pack(c, true),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
          claimed = c;
          ++offset;
          break;
        }
        counters_.add(Counter::kFailedCas);
        counters_.add(Counter::kClaimLosses);
        w = expected;  // re-dispatch on whatever is there now
        continue;
      }
      const std::uintptr_t prev =
          cur->next(0).fetch_or(1, std::memory_order_acq_rel);
      if (is_marked(prev)) {
        counters_.add(Counter::kClaimLosses);
        w = prev;  // lost the race: prev's target is dead, walk on
        continue;
      }
      claimed = strip(prev);  // the claim: cur's successor at fetch_or time
      ++offset;
      break;
    }

    counters_.add(Counter::kClaimWins);
    std::pair<Key, Value> out{claimed->key(), claimed->value()};
    size_.fetch_sub(1, std::memory_order_relaxed);

    if (offset >= static_cast<std::size_t>(opt_.boundoffset)) {
      if (newhead == nullptr) newhead = claimed;
      // One CAS swings head->next[0] past the whole dead prefix (marked:
      // the new first node is itself dead). Only the winner restructures
      // the upper levels and retires the bypassed chain — which is frozen,
      // since every pointer in it is marked and inserts need an unmarked
      // expected value.
      std::uintptr_t expected = obs_head;
      if (head_->next(0).compare_exchange_strong(expected,
                                                 pack(newhead, true),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
        restructures_.fetch_add(1, std::memory_order_relaxed);
        counters_.add(Counter::kRestructures);
        restructure();
        Node* g = strip(obs_head);
        while (g != newhead) {
          Node* nx = strip(g->next(0).load(std::memory_order_relaxed));
          reclaimer_.retire(g);
          g = nx;
        }
      }
    }
    return out;
  }

  /// Lazy upper-level repair after a head swing: per level (top-down),
  /// advance past nodes that look deleted and swing head->next[lv] forward
  /// with one CAS. Upper pointers are never marked; correctness only needs
  /// the bottom level, so a stale upper pointer is a perf bug, not a
  /// safety one.
  void restructure() {
    Node* pred = head_;
    for (int lv = opt_.max_level - 1; lv >= 1;) {
      Node* h = strip(head_->next(lv).load(std::memory_order_acquire));
      if (!is_marked(h->next(0).load(std::memory_order_acquire))) {
        --lv;
        continue;
      }
      Node* cur = strip(pred->next(lv).load(std::memory_order_acquire));
      while (is_marked(cur->next(0).load(std::memory_order_acquire))) {
        pred = cur;
        cur = strip(pred->next(lv).load(std::memory_order_acquire));
      }
      std::uintptr_t expected = pack(h, false);
      if (head_->next(lv).compare_exchange_strong(expected, pack(cur, false),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire))
        --lv;
    }
  }

  detail::NodePool* pool_ptr() noexcept {
    return opt_.pooled ? &pool_ : nullptr;
  }

  // pool_ is the first member so it is destroyed last: the destructor body
  // and reclaimer_'s drain both return blocks to it.
  detail::NodePool pool_;
  Options opt_;
  Compare cmp_;
  detail::GeometricLevel level_dist_;
  TimestampReclaimer reclaimer_;
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> restructures_{0};
  OpCounters counters_;
  std::uint64_t pool_base_carved_ = 0;
};

}  // namespace slpq
