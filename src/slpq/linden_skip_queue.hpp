// slpq::LindenSkipQueue — batched-prefix delete_min (Lindén & Jonsson,
// OPODIS 2013), the fastest exact skiplist priority queue in Gruber's
// survey and the exact baseline of "Engineering MultiQueues".
//
// Where the paper's SkipQueue (and our LockFreeSkipQueue) pays a full
// top-down mark plus a find() unlink pass on every successful delete_min,
// this design defers all physical restructuring and makes the delete_min
// hot path ~one atomic instruction:
//
//  * Mark-on-next encoding: the low bit of a node's *bottom-level* next
//    pointer says "my successor is logically deleted". Deleted nodes are
//    therefore exactly the nodes reached from the head by following marked
//    pointers, and they form a contiguous prefix of the bottom level.
//  * delete_min is a read-only walk over that deleted prefix followed by a
//    single fetch_or on the last dead node's (or the head's) next pointer.
//    An unmarked previous value means the caller claimed that pointer's
//    successor — the minimal live node — with one atomic RMW and zero
//    stores to any other node.
//  * Physical restructuring is batched: only when the walked prefix exceeds
//    Options::boundoffset does the claimant try one CAS swinging
//    head->next[0] past the whole dead prefix, then lazily repair the upper
//    levels (restructure()) and retire the bypassed nodes. Between
//    restructurings the upper levels may point into the dead prefix; every
//    traversal skips such nodes via the is_marked(node->next[0]) proxy.
//  * Inserts locate their spot with a search that skips dead nodes, link
//    bottom-up, and never land inside the dead prefix (splicing after a
//    node requires its next pointer to be unmarked). A node's `inserting`
//    flag keeps a concurrent restructuring from swinging the head past a
//    node whose upper levels are still being linked.
//  * Reclamation: retired prefixes flow through a pluggable Reclaimer
//    (Options::reclaim) — the paper's Section 3 timestamp scheme by
//    default, or hazard pointers / epochs / leaky. A swept node is retired
//    by the unique winner of the head CAS, under its guard. Under hazard
//    pointers the dead prefix's frozen pointers defeat plain
//    protect-then-validate, so every traversal additionally checks a
//    per-node `swept` flag, sweeps retire in strict list order (each
//    winner waits for its predecessor range via `prev_retired`), and
//    claims use a CAS on the vetted successor instead of a blind fetch_or
//    (the fetch_or can land on an unvetted, unprotected splice).
//
// Options::timestamps (default off — Lindén's queue has no time-stamps)
// adds the paper's Section 4.2 eligibility filter: delete_min will not
// claim a node whose insert completed after the operation entered. Because
// a claim in this encoding is positional (marking the predecessor's
// pointer), an ineligible *minimum* cannot be skipped the way the
// claimed-flag queues skip it — doing so would mark a live node's pointer
// and break the contiguous-prefix invariant — so the timestamped variant
// conservatively reports empty in that case. See docs/ALGORITHMS.md.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "slpq/detail/node_pool.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/hazard_reclaimer.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/telemetry.hpp"

namespace slpq {

class LindenSkipQueueTestPeer;

template <typename Key, typename Value, typename Compare = std::less<Key>>
class LindenSkipQueue {
 public:
  struct Options {
    int max_level = 20;
    double p = 0.5;
    /// Dead-prefix length that triggers physical restructuring. Small
    /// values restructure (and contend on the head) often; large values
    /// make every walk crawl a long dead prefix. See
    /// bench/ablation_boundoffset.cpp for the trade.
    int boundoffset = 32;
    bool timestamps = false;  ///< true => Section 4.2 eligibility filter
    bool pooled = true;       ///< allocate nodes from a per-thread NodePool
    /// Memory-reclamation policy for retired nodes (docs/ALGORITHMS.md).
    ReclaimPolicy reclaim = ReclaimPolicy::kTimestamp;
    std::uint64_t seed = 0x11DE9A11ULL;
  };

  LindenSkipQueue() : LindenSkipQueue(Options()) {}

  explicit LindenSkipQueue(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        level_dist_(opt.p, opt.max_level),
        reclaimer_(make_reclaimer(
            opt.reclaim,
            [this](void* p) { Node::destroy(static_cast<Node*>(p), pool_ptr()); },
            // pred+succ per level, the head-entry scratch, the claim pin.
            2 * opt.max_level + 2)),
        hp_(opt.reclaim == ReclaimPolicy::kHazard
                ? static_cast<HazardPointerReclaimer*>(reclaimer_.get())
                : nullptr) {
    assert(opt_.max_level >= 1 && opt_.max_level <= kMaxPossibleLevel);
    if (opt_.boundoffset < 1) opt_.boundoffset = 1;
    head_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Head);
    tail_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Tail);
    head_->stamp.store(0, std::memory_order_relaxed);
    tail_->stamp.store(0, std::memory_order_relaxed);
    for (int i = 0; i < opt_.max_level; ++i)
      head_->next(i).store(pack(tail_, false), std::memory_order_relaxed);
    // Telemetry baseline: sentinel carves don't count as pool_refills.
    pool_base_carved_ = pool_.carved();
  }

  ~LindenSkipQueue() {
    // Every node still reachable from the head (dead prefix included —
    // unswept claims are not yet retired) is freed here; swept nodes live
    // in the reclaimer, whose destructor drains them.
    Node* n = strip(head_->next(0).load(std::memory_order_relaxed));
    while (n != tail_) {
      Node* next = strip(n->next(0).load(std::memory_order_relaxed));
      Node::destroy(n, pool_ptr());
      n = next;
    }
    Node::destroy(head_, pool_ptr());
    Node::destroy(tail_, pool_ptr());
  }

  LindenSkipQueue(const LindenSkipQueue&) = delete;
  LindenSkipQueue& operator=(const LindenSkipQueue&) = delete;

  /// Inserts (key, value). Duplicate keys are allowed; every call adds a
  /// distinct item (new duplicates land in front of old ones).
  void insert(const Key& key, const Value& value) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);

    const int top = random_level();
    Node* n = Node::make(pool_ptr(), top, NodeKind::Interior, key, value);
    n->inserting.store(true, std::memory_order_relaxed);
    if (opt_.timestamps)
      n->stamp.store(kNeverStamped, std::memory_order_relaxed);
    // The inserting flag already keeps a sweep from retiring n mid-link;
    // the pin makes that independent of the newhead bookkeeping.
    protect_node(hp, claim_index(), n);

    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];

    // Bottom level first; its CAS is the insert's linearization. The
    // expected value is unmarked, so we can never splice in front of a
    // deleted node — new nodes land at or after the dead/live boundary.
    Node* del;
    for (;;) {
      del = locate_preds(key, preds, succs, hp);
      n->next(0).store(pack(succs[0], false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(succs[0], false);
      if (preds[0]->next(0).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire))
        break;
      counters_.add(Counter::kFailedCas);
      counters_.add(Counter::kInsertRetries);
    }

    // Upper levels. Stop if we got claimed meanwhile (our own next[0]
    // marked means our successor died — we are at or inside the dead
    // prefix), if the successor died, or if it sits inside the dead prefix.
    for (int lv = 1; lv < top;) {
      n->next(lv).store(pack(succs[lv], false), std::memory_order_relaxed);
      if (is_marked(n->next(0).load(std::memory_order_acquire)) ||
          is_marked(succs[lv]->next(0).load(std::memory_order_acquire)) ||
          succs[lv] == del)
        break;
      std::uintptr_t expected = pack(succs[lv], false);
      if (preds[lv]->next(lv).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        ++lv;
        continue;
      }
      counters_.add(Counter::kFailedCas);
      del = locate_preds(key, preds, succs, hp);  // competing insert/restructure
      if (succs[0] != n) break;                   // we were claimed and bypassed
    }

    n->inserting.store(false, std::memory_order_release);
    if (opt_.timestamps)
      n->stamp.store(reclaimer_->advance_clock(), std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claims and removes a minimal live item: a read-only walk over the
  /// deleted prefix, then one fetch_or. Restructures when the prefix
  /// exceeds Options::boundoffset.
  std::optional<std::pair<Key, Value>> delete_min() {
    Reclaimer::Guard guard(*reclaimer_);
    return claim_min(guard.entry_time(), hp_ctx(guard));
  }

  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }
  std::uint64_t reclaimed() const { return reclaimer_->freed_total(); }
  /// The active reclamation policy instance (telemetry / tests).
  const Reclaimer& reclaimer() const noexcept { return *reclaimer_; }
  /// Nodes whose allocation was served from the pool's free lists.
  std::uint64_t pool_reused() const { return pool_.reused(); }
  /// Dead-prefix batches swept by the head CAS (restructure frequency).
  std::uint64_t restructures() const {
    return restructures_.load(std::memory_order_relaxed);
  }
  const Options& options() const noexcept { return opt_; }

  /// Operation counters plus pool/GC composition; see docs/TELEMETRY.md.
  /// Note gc_reclaimed + gc_deferred can trail claim_wins here: a claimed
  /// node is retired only when a restructuring sweeps it out of the prefix.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set(counter_name(Counter::kPoolRefills),
             pool_.carved() - pool_base_carved_);
    snap.set(counter_name(Counter::kPoolReused), pool_.reused());
    snap.set(counter_name(Counter::kGcReclaimed), reclaimer_->freed_total());
    snap.set(counter_name(Counter::kGcDeferred), reclaimer_->pending());
    fill_reclaim_telemetry(snap, *reclaimer_);
    return snap;
  }

 private:
  friend class LindenSkipQueueTestPeer;

  static constexpr int kMaxPossibleLevel = 64;
  static constexpr std::uint64_t kNeverStamped = ~std::uint64_t{0};

  enum class NodeKind : std::uint8_t { Head, Interior, Tail };

  struct Node {
    std::atomic<bool> inserting{false};
    /// Set by the sweep winner just before retiring this node. Only
    /// maintained under ReclaimPolicy::kHazard: dead-prefix pointers are
    /// frozen, so a hazard walk re-reading one validates nothing — the
    /// step is instead vouched for by the *source* node being unswept
    /// (sweeps retire in strict list order, so an unswept node's
    /// successors are unretired too).
    std::atomic<bool> swept{false};
    /// Set once every bottom-level predecessor this node ever had has been
    /// retired: by the previous sweep's winner on its newhead, or by the
    /// claimant that marked the head's own pointer (genesis — no sweep has
    /// ever run, so there is nothing to wait for). The next sweep winner
    /// spins on its range's first node until this is true, which is what
    /// serializes retirement in list order. kHazard only.
    std::atomic<bool> prev_retired{false};
    std::atomic<std::uint64_t> stamp{0};
    NodeKind kind;
    int level;
    std::atomic<std::uintptr_t>* next_;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
    std::atomic<std::uintptr_t>& next(int lv) noexcept { return next_[lv]; }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(level) *
                                sizeof(std::atomic<std::uintptr_t>);
    }

    static constexpr bool pool_compatible() noexcept {
      return alignof(Node) <= detail::NodePool::kGranularity;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind) {
      const std::size_t bytes = bytes_for(level);
      void* raw = pool && pool_compatible()
                      ? pool->allocate(bytes)
                      : ::operator new(bytes, std::align_val_t{alignof(Node)});
      Node* n = new (raw) Node();
      n->kind = kind;
      n->level = level;
      n->next_ = reinterpret_cast<std::atomic<std::uintptr_t>*>(
          reinterpret_cast<char*>(raw) + sizeof(Node));
      for (int i = 0; i < level; ++i)
        new (&n->next_[i]) std::atomic<std::uintptr_t>(0);
      return n;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind,
                      const Key& k, const Value& v) {
      Node* n = make(pool, level, kind);
      new (&n->key()) Key(k);
      new (&n->value()) Value(v);
      return n;
    }

    static void destroy(Node* n, detail::NodePool* pool) {
      if (n->kind == NodeKind::Interior) {
        n->key().~Key();
        n->value().~Value();
      }
      const std::size_t bytes = bytes_for(n->level);
      for (int i = 0; i < n->level; ++i)
        n->next_[i].~atomic<std::uintptr_t>();
      n->~Node();
      if (pool && pool_compatible())
        pool->deallocate(static_cast<void*>(n), bytes);
      else
        ::operator delete(static_cast<void*>(n),
                          std::align_val_t{alignof(Node)});
    }
  };

  // ---- marked-pointer helpers -------------------------------------------
  static std::uintptr_t pack(Node* n, bool marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* strip(std::uintptr_t w) noexcept {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) noexcept { return (w & 1u) != 0; }

  bool key_before(Node* n, const Key& key) const {
    if (n->kind == NodeKind::Tail) return false;
    return cmp_(n->key(), key);
  }

  int random_level() {
    thread_local detail::Xoshiro256 rng(
        detail::SplitMix64(opt_.seed ^
                           (reinterpret_cast<std::uintptr_t>(&rng) >> 4))
            .next());
    return level_dist_(rng);
  }

  // ---- hazard-pointer machinery -----------------------------------------
  //
  // Slot layout (per thread): 0 pins the claimed node / an in-flight
  // insert's own node, 1 = the restructure head-entry scratch, then
  // 2 + 2*lv = the level-lv predecessor and 3 + 2*lv = the level-lv
  // candidate (level 0's pair doubles as the claim-walk cursor). The claim
  // and peek slots sit BELOW the traversal pairs on purpose: the
  // reclaimer's scan reads slots in descending index order, which only
  // catches hazards that migrate toward lower indices — and the claim pin
  // is a migration out of a traversal slot. Under any other policy Hp.r is
  // null and every helper collapses to a plain acquire load.

  struct Hp {
    HazardPointerReclaimer* r = nullptr;
    std::atomic<const void*>* hz = nullptr;
    int slot = 0;
  };

  Hp hp_ctx(const Reclaimer::Guard& guard) noexcept {
    Hp hp;
    if (hp_ != nullptr) {
      hp.r = hp_;
      hp.slot = guard.slot();
      hp.hz = hp_->hazards_for(hp.slot);
    }
    return hp;
  }

  int claim_index() const noexcept { return 0; }
  int peek_index() const noexcept { return 1; }
  int pred_index(int lv) const noexcept { return 2 + 2 * lv; }

  /// Publishes an already-safe node (protected elsewhere, claimed by us,
  /// or a sentinel) in the given slot. No validation needed.
  void protect_node(const Hp& hp, int index, Node* n) noexcept {
    if (hp.r != nullptr)
      hp.r->set_hazard(hp.hz, hp.slot, index, n);
  }

  /// Protect-then-validate step from `x` (itself protected or the head)
  /// along its level-`lv` pointer, publishing the target in slot `index`.
  /// A frozen dead-prefix pointer re-reads equal forever, so equality
  /// alone proves nothing; the real guarantee is x being unswept — sweeps
  /// retire in strict list order, so an unswept x means every node after
  /// it is unretired, and a hazard published before the swept check is
  /// seen by any later scan. Sets *swept and returns 0 when x was already
  /// swept; the caller restarts from the head.
  std::uintptr_t protect_step(const Hp& hp, Node* x, int lv, int index,
                              bool* swept) {
    std::uintptr_t w = x->next(lv).load(std::memory_order_acquire);
    if (hp.r == nullptr) return w;
    for (;;) {
      hp.r->set_hazard(hp.hz, hp.slot, index, strip(w));
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (x->swept.load(std::memory_order_seq_cst)) {
        *swept = true;
        return 0;
      }
      const std::uintptr_t w2 = x->next(lv).load(std::memory_order_acquire);
      if (strip(w2) == strip(w)) return w2;
      w = w2;
    }
  }

  /// The search pass: positions preds/succs around `key`, skipping nodes
  /// that look deleted (their own next[0] is marked — exact inside the
  /// contiguous dead prefix, where a node's successor being dead implies
  /// the node itself is dead or is the prefix boundary) and, at the bottom
  /// level, nodes reached through a marked pointer (definitely dead).
  /// Returns the last bottom-level node passed through a marked pointer.
  Node* locate_preds(const Key& key, Node** preds, Node** succs,
                     const Hp& hp) {
  restart:
    Node* del = nullptr;
    Node* x = head_;
    for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
      const int ps = pred_index(lv);
      protect_node(hp, ps, x);  // carry the pred down a level
      bool swept = false;
      std::uintptr_t w = protect_step(hp, x, lv, ps + 1, &swept);
      for (;;) {
        if (swept) {  // hazard-validation restart
          counters_.add(Counter::kInsertRetries);
          goto restart;
        }
        const bool d = is_marked(w);  // only ever set at the bottom level
        Node* c = strip(w);
        if (c == tail_) break;
        if (!key_before(c, key) &&
            !is_marked(c->next(0).load(std::memory_order_acquire)) &&
            !(lv == 0 && d))
          break;
        if (lv == 0 && d) del = c;
        protect_node(hp, ps, c);  // promote: the candidate slot covers it
        x = c;
        w = protect_step(hp, x, lv, ps + 1, &swept);
      }
      preds[lv] = x;
      succs[lv] = strip(w);
    }
    return del;
  }

  /// The claim walk shared by delete_min and the test peer. `time` is the
  /// eligibility horizon (ignored without Options::timestamps).
  std::optional<std::pair<Key, Value>> claim_min(std::uint64_t time,
                                                 const Hp& hp) {
  restart:
    Node* cur = head_;
    const int ps = pred_index(0);
    protect_node(hp, ps, cur);
    bool swept = false;
    std::uintptr_t w = protect_step(hp, cur, 0, ps + 1, &swept);
    const std::uintptr_t obs_head = w;
    Node* newhead = nullptr;  // earliest node the head CAS must not pass
    std::size_t offset = 0;   // dead nodes walked (incl. the new claim)
    Node* claimed = nullptr;

    for (;;) {
      if (swept) {  // hazard-validation restart
        counters_.add(Counter::kDeleteRetries);
        goto restart;
      }
      Node* c = strip(w);
      if (c == tail_) return std::nullopt;
      if (is_marked(w)) {
        // c is deleted: count it, remember it if its insert is still
        // linking upper levels (the head must not swing past it), advance.
        ++offset;
        counters_.add(Counter::kPrefixNodes);
        if (newhead == nullptr && c->inserting.load(std::memory_order_acquire))
          newhead = c;
        protect_node(hp, ps, c);  // promote: the candidate slot covers it
        cur = c;
        w = protect_step(hp, cur, 0, ps + 1, &swept);
        continue;
      }
      // c is the first live node: claim cur's successor.
      if (opt_.timestamps || hp.r != nullptr) {
        // CAS (not fetch_or) so the claim lands on the vetted node even if
        // an unvetted insert splices in between the read and the RMW.
        // Mandatory under hazard pointers regardless of timestamps: c is
        // the only successor our hazard protects.
        if (opt_.timestamps &&
            c->stamp.load(std::memory_order_acquire) > time)
          return std::nullopt;  // minimum inserted concurrently: see header
        std::uintptr_t expected = pack(c, false);
        if (cur->next(0).compare_exchange_strong(expected, pack(c, true),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
          if (hp.r != nullptr && cur == head_) {
            // Genesis root: the head's own pointer was marked before any
            // sweep could have run, so c has no unretired predecessors.
            c->prev_retired.store(true, std::memory_order_release);
          }
          claimed = c;
          ++offset;
          break;
        }
        counters_.add(Counter::kFailedCas);
        counters_.add(Counter::kClaimLosses);
        if (hp.r != nullptr) {
          w = protect_step(hp, cur, 0, ps + 1, &swept);  // re-protect the word
        } else {
          w = expected;  // re-dispatch on whatever is there now
        }
        continue;
      }
      const std::uintptr_t prev =
          cur->next(0).fetch_or(1, std::memory_order_acq_rel);
      if (is_marked(prev)) {
        counters_.add(Counter::kClaimLosses);
        w = prev;  // lost the race: prev's target is dead, walk on
        continue;
      }
      claimed = strip(prev);  // the claim: cur's successor at fetch_or time
      ++offset;
      break;
    }

    counters_.add(Counter::kClaimWins);
    // Pin the claim below the traversal slots (a descending migration —
    // the only direction the reclaimer's scan order guarantees to catch).
    protect_node(hp, claim_index(), claimed);  // outlives the sweep below
    std::pair<Key, Value> out{claimed->key(), claimed->value()};
    size_.fetch_sub(1, std::memory_order_relaxed);

    if (offset >= static_cast<std::size_t>(opt_.boundoffset)) {
      if (newhead == nullptr) newhead = claimed;
      // One CAS swings head->next[0] past the whole dead prefix (marked:
      // the new first node is itself dead). Only the winner restructures
      // the upper levels and retires the bypassed chain — which is frozen,
      // since every pointer in it is marked and inserts need an unmarked
      // expected value.
      std::uintptr_t expected = obs_head;
      if (head_->next(0).compare_exchange_strong(expected,
                                                 pack(newhead, true),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
        restructures_.fetch_add(1, std::memory_order_relaxed);
        counters_.add(Counter::kRestructures);
        if (hp_ != nullptr && is_marked(obs_head)) {
          // Sweeps must retire in strict list order (protect_step's swept
          // check depends on it): wait until the predecessor sweep — whose
          // range ends exactly at our first node — has finished retiring.
          // Our range is untouched while we wait: only we may retire it.
          while (!strip(obs_head)->prev_retired.load(
              std::memory_order_acquire))
            detail::cpu_relax();
        }
        restructure(hp);
        Node* g = strip(obs_head);
        while (g != newhead) {
          Node* nx = strip(g->next(0).load(std::memory_order_relaxed));
          if (hp_ != nullptr) g->swept.store(true, std::memory_order_seq_cst);
          reclaimer_->retire(g);
          g = nx;
        }
        if (hp_ != nullptr)
          newhead->prev_retired.store(true, std::memory_order_release);
      }
    }
    return out;
  }

  /// Lazy upper-level repair after a head swing: per level (top-down),
  /// advance past nodes that look deleted and swing head->next[lv] forward
  /// with one CAS. Upper pointers are never marked; correctness only needs
  /// the bottom level, so a stale upper pointer is a perf bug, not a
  /// safety one.
  void restructure(const Hp& hp) {
  restart:
    Node* pred = head_;
    for (int lv = opt_.max_level - 1; lv >= 1;) {
      const std::uintptr_t hw = head_->next(lv).load(std::memory_order_acquire);
      Node* h = strip(hw);
      if (hp.r != nullptr) {
        // Entry from the head: the upper head pointer is live (inserts and
        // restructures move it), so re-read validation is meaningful here.
        hp.r->set_hazard(hp.hz, hp.slot, peek_index(), h);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (head_->next(lv).load(std::memory_order_acquire) != hw)
          continue;  // moved under us: re-read this level
      }
      if (!is_marked(h->next(0).load(std::memory_order_acquire))) {
        --lv;
        continue;
      }
      const int ps = pred_index(lv);
      protect_node(hp, ps, pred);  // carry pred into this level's slot
      bool swept = false;
      Node* cur = strip(protect_step(hp, pred, lv, ps + 1, &swept));
      if (swept) goto restart;
      while (is_marked(cur->next(0).load(std::memory_order_acquire))) {
        protect_node(hp, ps, cur);  // promote: the candidate slot covers it
        pred = cur;
        cur = strip(protect_step(hp, pred, lv, ps + 1, &swept));
        if (swept) goto restart;
      }
      std::uintptr_t expected = pack(h, false);
      if (head_->next(lv).compare_exchange_strong(expected, pack(cur, false),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire))
        --lv;
    }
  }

  detail::NodePool* pool_ptr() noexcept {
    return opt_.pooled ? &pool_ : nullptr;
  }

  // pool_ is the first member so it is destroyed last: the destructor body
  // and reclaimer_'s drain both return blocks to it.
  detail::NodePool pool_;
  Options opt_;
  Compare cmp_;
  detail::GeometricLevel level_dist_;
  std::unique_ptr<Reclaimer> reclaimer_;
  HazardPointerReclaimer* hp_;  ///< non-null only under kHazard
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> restructures_{0};
  OpCounters counters_;
  std::uint64_t pool_base_carved_ = 0;
};

}  // namespace slpq
