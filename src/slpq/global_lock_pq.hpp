// slpq::GlobalLockPQ — the sanity baseline: a sequential binary heap
// behind one lock. The paper cites a single-lock linked list as known-poor
// [17]; this is the strongest trivial design and the yardstick the fancy
// structures must beat once there is any concurrency.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "slpq/telemetry.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class GlobalLockPQ {
 public:
  GlobalLockPQ() = default;
  explicit GlobalLockPQ(Compare cmp) : heap_(Entry_Compare{std::move(cmp)}) {}

  GlobalLockPQ(const GlobalLockPQ&) = delete;
  GlobalLockPQ& operator=(const GlobalLockPQ&) = delete;

  void insert(const Key& key, const Value& value) {
    std::lock_guard<std::mutex> g(mu_);
    heap_.emplace(key, value);
  }

  std::optional<std::pair<Key, Value>> delete_min() {
    std::lock_guard<std::mutex> g(mu_);
    if (heap_.empty()) return std::nullopt;
    auto out = heap_.top();
    heap_.pop();
    counters_.add(Counter::kClaimWins);
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return heap_.size();
  }

  bool empty() const { return size() == 0; }

  /// Operation counters; see docs/TELEMETRY.md. Under one global lock
  /// nothing ever retries, so only claim_wins moves.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    return snap;
  }

 private:
  struct Entry_Compare {
    Compare cmp;
    bool operator()(const std::pair<Key, Value>& a,
                    const std::pair<Key, Value>& b) const {
      return cmp(b.first, a.first);  // min-heap
    }
  };

  mutable std::mutex mu_;
  std::priority_queue<std::pair<Key, Value>,
                      std::vector<std::pair<Key, Value>>, Entry_Compare>
      heap_;
  OpCounters counters_;
};

}  // namespace slpq
