// Pluggable safe-memory-reclamation policies for the native queues.
//
// Every native skiplist queue retires unlinked nodes through a Reclaimer.
// Four policies implement the interface:
//
//  * Timestamp (ts)  — the paper's Section 3 scheme: threads publish a
//    logical entry time; a retired node is freed once the oldest entry
//    time among threads currently inside exceeds its retirement stamp.
//    (TimestampReclaimer, in ts_reclaimer.hpp.)
//  * Hazard (hp)     — Michael-style hazard pointers with the Lindén &
//    Jonsson peek/promote slot discipline: a thread publishes the nodes it
//    may dereference in per-thread slots; a scan frees retired nodes no
//    slot protects. (HazardPointerReclaimer, below.)
//  * Epoch (epoch)   — 3-epoch quiescent-state-based reclamation: threads
//    pin the global epoch while inside; the epoch advances only when every
//    active thread has observed it, and a node retired in epoch e is freed
//    once the epoch reaches e+2. (EpochReclaimer, below.)
//  * Leaky (leaky)   — never frees during the run (everything is released
//    in drain() at quiescence), giving an upper bound for what any real
//    policy costs. (LeakyReclaimer, below.)
//
// The queues call the interface through Reclaimer::Guard (enter/exit),
// retire(), and — for hazard pointers only — the non-virtual fast-path
// helpers on HazardPointerReclaimer (see hazard_context()).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "slpq/detail/cache_line.hpp"

namespace slpq {

enum class ReclaimPolicy : std::uint8_t {
  kTimestamp,  ///< the paper's Section 3 timestamp GC ("ts")
  kHazard,     ///< hazard pointers ("hp")
  kEpoch,      ///< 3-epoch QSBR ("epoch")
  kLeaky,      ///< free only at quiescence ("leaky")
};

inline const char* to_string(ReclaimPolicy p) noexcept {
  switch (p) {
    case ReclaimPolicy::kTimestamp: return "ts";
    case ReclaimPolicy::kHazard: return "hp";
    case ReclaimPolicy::kEpoch: return "epoch";
    case ReclaimPolicy::kLeaky: return "leaky";
  }
  return "?";
}

/// Parses "ts" | "hp" | "epoch" | "leaky"; returns false on anything else.
inline bool parse_reclaim_policy(std::string_view s, ReclaimPolicy& out) {
  if (s == "ts" || s == "timestamp") out = ReclaimPolicy::kTimestamp;
  else if (s == "hp" || s == "hazard") out = ReclaimPolicy::kHazard;
  else if (s == "epoch" || s == "ebr" || s == "qsbr") out = ReclaimPolicy::kEpoch;
  else if (s == "leaky" || s == "none") out = ReclaimPolicy::kLeaky;
  else return false;
  return true;
}

/// Aggregate counters every policy maintains; exported as the reclaim.*
/// telemetry keys (docs/TELEMETRY.md).
struct ReclaimStats {
  std::uint64_t retired = 0;  ///< nodes handed to retire()
  std::uint64_t freed = 0;    ///< nodes passed to the deleter
  std::uint64_t scans = 0;    ///< hazard scans / epoch advances / ts collects
  std::uint64_t stalls = 0;   ///< nodes (or advances) a scan could not free
};

/// Abstract reclamation policy. One instance per queue; any number of
/// threads (up to kMaxThreads over the instance's lifetime) may use it.
///
/// The base class owns the pieces every policy shares: the deleter, the
/// logical clock the timestamped queues stamp inserts with, the per-thread
/// slot registry (the fix for the old TimestampReclaimer slot leak: slots
/// are claimed by CAS on a per-instance owner table instead of an
/// ever-growing thread_local map, and exhaustion throws instead of
/// silently indexing out of range), and the stats counters.
class Reclaimer {
 public:
  using Deleter = std::function<void(void*)>;

  static constexpr int kMaxThreads = 256;
  static constexpr std::uint64_t kNeverEntered = ~std::uint64_t{0};

  explicit Reclaimer(ReclaimPolicy policy, Deleter deleter)
      : policy_(policy), deleter_(std::move(deleter)) {
    for (auto& o : owner_) o->store(0, std::memory_order_relaxed);
  }

  virtual ~Reclaimer() = default;

  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  ReclaimPolicy policy() const noexcept { return policy_; }

  /// Registers the calling thread (idempotent); returns its slot index.
  /// Slots are per (thread, instance). A small thread-local cache keeps
  /// the fast path map-free; the slow path probes the owner table for a
  /// slot this thread already claimed (so re-registration after cache
  /// eviction never burns a second slot) before claiming a fresh one.
  int register_thread() {
    struct CacheEntry {
      std::uint64_t id = 0;
      int slot = -1;
    };
    struct Cache {
      std::array<CacheEntry, 8> entries{};
      unsigned next = 0;
    };
    thread_local Cache cache;
    for (const auto& e : cache.entries)
      if (e.id == id_) return e.slot;

    const std::uint64_t key = thread_key();
    int slot = -1;
    const int hi = next_slot_.load(std::memory_order_acquire);
    for (int i = 0; i < hi; ++i) {
      if (owner_[static_cast<std::size_t>(i)]->load(
              std::memory_order_acquire) == key) {
        slot = i;
        break;
      }
    }
    while (slot < 0) {
      const int i = next_slot_.load(std::memory_order_acquire);
      if (i >= kMaxThreads)
        throw std::runtime_error(
            "slpq::Reclaimer: more than kMaxThreads (256) distinct threads "
            "registered against one queue instance");
      std::uint64_t expected = 0;
      if (owner_[static_cast<std::size_t>(i)]->compare_exchange_strong(
              expected, key, std::memory_order_acq_rel))
        slot = i;
      // Win or lose, publish the high-water mark covering index i (the
      // winner of a lost race may not have bumped it yet).
      int cur = i;
      next_slot_.compare_exchange_strong(cur, i + 1,
                                         std::memory_order_acq_rel);
    }
    cache.entries[cache.next % cache.entries.size()] = {id_, slot};
    ++cache.next;
    return slot;
  }

  // ---- the policy interface ---------------------------------------------

  /// Marks the slot's thread as inside the structure; returns its logical
  /// entry time (the eligibility horizon for timestamped delete_min).
  virtual std::uint64_t enter(int slot) = 0;

  /// Marks the slot's thread as outside; pointers obtained inside are dead.
  virtual void exit(int slot) = 0;

  /// Hands an unlinked node to the policy. Called while inside (under a
  /// Guard). The node must already be unreachable from the structure roots.
  virtual void retire(void* node) = 0;

  /// Publishes `p` in the slot's hazard array. Only the hazard policy does
  /// anything; the queues use the non-virtual fast path instead (see
  /// HazardPointerReclaimer::hazard_context), this virtual exists for
  /// generic callers and tests.
  virtual void protect(int /*slot*/, int /*index*/, const void* /*p*/) {}

  /// Frees everything still pending. Only safe at quiescence (no thread
  /// inside, none about to enter); destructors of the policies call it.
  virtual void drain() = 0;

  // ---- shared logical clock (insert time-stamping) ----------------------

  std::uint64_t now() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }

  std::uint64_t advance_clock() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  // ---- stats ------------------------------------------------------------

  ReclaimStats stats() const noexcept {
    return {retired_.load(std::memory_order_relaxed),
            freed_.load(std::memory_order_relaxed),
            scans_.load(std::memory_order_relaxed),
            stalls_.load(std::memory_order_relaxed)};
  }

  std::uint64_t freed_total() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }

  /// Retired-but-not-yet-freed nodes (conservation: retired - freed).
  std::uint64_t pending() const noexcept {
    const auto f = freed_.load(std::memory_order_relaxed);
    const auto r = retired_.load(std::memory_order_relaxed);
    return r > f ? r - f : 0;
  }

  /// RAII enter/exit. Queues open one per operation.
  class Guard {
   public:
    explicit Guard(Reclaimer& r) : r_(r), slot_(r.register_thread()) {
      entry_ = r_.enter(slot_);
    }
    ~Guard() { r_.exit(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    std::uint64_t entry_time() const noexcept { return entry_; }
    int slot() const noexcept { return slot_; }

   private:
    Reclaimer& r_;
    int slot_;
    std::uint64_t entry_;
  };

 protected:
  /// Process-unique nonzero key for the calling thread (owner-table tag).
  static std::uint64_t thread_key() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    thread_local const std::uint64_t key =
        counter.fetch_add(1, std::memory_order_relaxed);
    return key;
  }

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  int registered_threads() const noexcept {
    return next_slot_.load(std::memory_order_acquire);
  }

  void note_retired(std::uint64_t n = 1) noexcept {
    retired_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_freed(std::uint64_t n) noexcept {
    if (n) freed_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_scan() noexcept { scans_.fetch_add(1, std::memory_order_relaxed); }
  void note_stalls(std::uint64_t n) noexcept {
    if (n) stalls_.fetch_add(n, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_instance_id();
  const ReclaimPolicy policy_;
  Deleter deleter_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<int> next_slot_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::array<detail::Padded<std::atomic<std::uint64_t>>, kMaxThreads> owner_;
};

/// Factory: builds the requested policy. `hazard_slots` sizes the
/// per-thread hazard array (ignored by the other policies); queues pass
/// 2 * max_level + 2 (pred/curr per level, plus peek and claim scratch).
std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          Reclaimer::Deleter deleter,
                                          int hazard_slots);

}  // namespace slpq
