// slpq::FunnelList — a sorted linked list fronted by a combining funnel
// (Shavit & Zemach), for real threads; the paper's third structure.
//
// Threads descend through collision layers, SWAPping a pointer to their
// request into a random slot; colliding threads combine, one representative
// carries the batch to the central lock and applies it in one traversal
// (inserts merged in place, a run of delete-mins cut off the head). See
// simq/sim_funnel_list.hpp for the simulated twin and the protocol notes.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/telemetry.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FunnelList {
 public:
  static constexpr int kMaxThreads = 256;

  struct Options {
    int layers = 2;
    int width = 8;  ///< collision slots per layer
    std::uint64_t seed = 0xF0E1D2C3ULL;
  };

  FunnelList() : FunnelList(Options()) {}

  explicit FunnelList(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        // Sized at construction: the elements are atomics, which cannot be
        // moved, so the vector must never reallocate.
        funnel_(static_cast<std::size_t>(opt.layers < 0 ? 0 : opt.layers) *
                static_cast<std::size_t>(opt.width < 1 ? 1 : opt.width)) {
    assert(opt_.layers >= 0 && opt_.width >= 1);
  }

  ~FunnelList() {
    ListNode* n = head_;
    while (n != nullptr) {
      ListNode* next = n->next;
      delete n;
      n = next;
    }
  }

  FunnelList(const FunnelList&) = delete;
  FunnelList& operator=(const FunnelList&) = delete;

  void insert(const Key& key, const Value& value) {
    Request& r = my_request();
    r.op = Op::Insert;
    r.key = key;
    r.value = value;
    execute(r);
  }

  std::optional<std::pair<Key, Value>> delete_min() {
    Request& r = my_request();
    r.op = Op::DeleteMin;
    execute(r);
    if (!r.found) return std::nullopt;
    counters_.add(Counter::kClaimWins);
    return std::make_pair(std::move(r.result_key), std::move(r.result_value));
  }

  /// Approximate size (exact when quiescent).
  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  std::uint64_t combines() const noexcept {
    return combines_.load(std::memory_order_relaxed);
  }

  /// Operation counters plus the funnel's combine count; docs/TELEMETRY.md.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set("combines", combines_.load(std::memory_order_relaxed));
    return snap;
  }

 private:
  enum class Op : std::uint8_t { Insert, DeleteMin };
  enum class State : std::uint32_t { Idle, Combining, Waiting, Applying, Done };

  struct ListNode {
    Key key;
    Value value;
    ListNode* next;
  };

  struct alignas(detail::kCacheLineSize) Request {
    std::atomic<State> state{State::Idle};
    detail::TinySpinLock lock;
    Op op = Op::Insert;
    Key key{};
    Value value{};
    bool found = false;
    Key result_key{};
    Value result_value{};
    std::vector<Request*> group;  // guarded by `lock` while Combining
  };

  Request& my_request() {
    static std::atomic<int> next{0};
    thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
    assert(id < kMaxThreads && "too many threads for FunnelList");
    return requests_[static_cast<std::size_t>(id)].value;
  }

  detail::Xoshiro256& my_rng() {
    thread_local detail::Xoshiro256 rng(
        detail::SplitMix64(opt_.seed ^
                           std::hash<std::thread::id>{}(
                               std::this_thread::get_id()))
            .next());
    return rng;
  }

  void execute(Request& r) {
    auto& rng = my_rng();
    r.found = false;
    r.group.clear();
    r.group.push_back(&r);
    r.state.store(State::Combining, std::memory_order_release);

    bool captured = false;
    for (int layer = 0; layer < opt_.layers && !captured; ++layer) {
      auto& slot = funnel_[static_cast<std::size_t>(layer) *
                               static_cast<std::size_t>(opt_.width) +
                           rng.below(static_cast<std::uint64_t>(opt_.width))];
      Request* other = slot.value.exchange(&r, std::memory_order_acq_rel);
      if (other != nullptr && other != &r) {
        r.lock.lock();
        if (r.state.load(std::memory_order_acquire) != State::Combining) {
          r.lock.unlock();
          captured = true;
          break;
        }
        if (other->lock.try_lock()) {
          if (other->state.load(std::memory_order_acquire) ==
              State::Combining) {
            other->state.store(State::Waiting, std::memory_order_release);
            r.group.insert(r.group.end(), other->group.begin(),
                           other->group.end());
            other->group.clear();
            combines_.fetch_add(1, std::memory_order_relaxed);
          }
          other->lock.unlock();
        } else {
          counters_.add(Counter::kFailedCas);  // collision partner was busy
        }
        r.lock.unlock();
      }
    }

    if (!captured) {
      r.lock.lock();
      if (r.state.load(std::memory_order_acquire) == State::Combining) {
        r.state.store(State::Applying, std::memory_order_release);
        r.lock.unlock();

        list_lock_.lock();
        for (Request* req : r.group) apply_one(*req);
        list_lock_.unlock();
        r.group.clear();
        return;
      }
      r.lock.unlock();
    }

    // Captured: wait for the representative to publish the result.
    int spins = 0;
    while (r.state.load(std::memory_order_acquire) != State::Done) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      } else {
        detail::cpu_relax();
      }
    }
  }

  void apply_one(Request& req) {
    if (req.op == Op::Insert) {
      ListNode** prev = &head_;
      while (*prev != nullptr && cmp_((*prev)->key, req.key))
        prev = &(*prev)->next;
      *prev = new ListNode{req.key, req.value, *prev};
      size_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ListNode* first = head_;
      if (first == nullptr) {
        req.found = false;
      } else {
        req.found = true;
        req.result_key = std::move(first->key);
        req.result_value = std::move(first->value);
        head_ = first->next;
        delete first;
        size_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    req.state.store(State::Done, std::memory_order_release);
  }

  Options opt_;
  Compare cmp_;
  detail::TicketLock list_lock_;
  ListNode* head_ = nullptr;  // guarded by list_lock_
  std::vector<detail::Padded<std::atomic<Request*>>> funnel_;
  std::array<detail::Padded<Request>, kMaxThreads> requests_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> combines_{0};
  OpCounters counters_;
};

}  // namespace slpq
