// Topology-aware shard selection for the MultiQueues (--mq-topo).
//
// The MultiQueue's 2-choice sampling is uniform over all shards, so on a
// mesh machine most lock and heap traffic crosses half the die. The
// topology policies bias sampling toward shards whose *owner node* (the
// mesh node the shard's state is homed near) is within a Manhattan-hop
// radius of the calling processor:
//
//  * kNone     — uniform sampling, the textbook MultiQueue (default).
//  * kNear     — both delete-min candidates come from the caller's
//                radius; every kGlobalProbePeriod-th resample draws one
//                candidate globally so every shard keeps a nonzero
//                sampling probability (this preserves the 2-choice
//                rank-error bound up to a constant factor and lets a
//                processor escape a drained neighborhood).
//  * kAdaptive — kNear with a self-limiting radius: when the periodic
//                global probe beats the local candidate (the local
//                region's minima have gone stale), the radius doubles;
//                when the local candidate wins, it decays back toward
//                the configured base radius.
//
// This header is native-side (slpq must not depend on psim), so it
// carries its own near-square 2-D grid. The simulated machine uses
// psim::Mesh2D — same layout rule, so shard→owner striping means the
// same thing in both worlds and the --mq-topo knob is uniform.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

namespace slpq {

enum class TopoPolicy : std::uint8_t { kNone, kNear, kAdaptive };

/// Every kGlobalProbePeriod-th resample under kNear/kAdaptive draws one
/// candidate from the full shard set (counted as mq.topo_fallbacks).
inline constexpr int kGlobalProbePeriod = 8;

inline const char* to_string(TopoPolicy p) noexcept {
  switch (p) {
    case TopoPolicy::kNone: return "none";
    case TopoPolicy::kNear: return "near";
    case TopoPolicy::kAdaptive: return "adaptive";
  }
  return "none";
}

/// Parses "none" | "near" | "adaptive"; returns false on anything else.
inline bool parse_topo_policy(const std::string& name, TopoPolicy& out) {
  if (name == "none") { out = TopoPolicy::kNone; return true; }
  if (name == "near") { out = TopoPolicy::kNear; return true; }
  if (name == "adaptive") { out = TopoPolicy::kAdaptive; return true; }
  return false;
}

/// Near-square row-major 2-D grid over `nodes` logical nodes — the same
/// layout rule as psim::Mesh2D, duplicated here so the native MultiQueue
/// can stripe shards across "sockets" without a simulator dependency.
class Grid2D {
 public:
  explicit Grid2D(int nodes) : nodes_(nodes < 1 ? 1 : nodes) {
    width_ = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(nodes_))));
    if (width_ < 1) width_ = 1;
    height_ = (nodes_ + width_ - 1) / width_;
    xs_.reserve(static_cast<std::size_t>(nodes_));
    ys_.reserve(static_cast<std::size_t>(nodes_));
    for (int id = 0; id < nodes_; ++id) {
      xs_.push_back(static_cast<std::uint16_t>(id % width_));
      ys_.push_back(static_cast<std::uint16_t>(id / width_));
    }
  }

  int nodes() const noexcept { return nodes_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Manhattan hop count between two node ids.
  int hops(int a, int b) const noexcept {
    return std::abs(static_cast<int>(xs_[static_cast<std::size_t>(a)]) -
                    static_cast<int>(xs_[static_cast<std::size_t>(b)])) +
           std::abs(static_cast<int>(ys_[static_cast<std::size_t>(a)]) -
                    static_cast<int>(ys_[static_cast<std::size_t>(b)]));
  }

  /// Largest hop distance between any two nodes (corner to corner).
  int diameter() const noexcept { return (width_ - 1) + (height_ - 1); }

 private:
  int nodes_;
  int width_;
  int height_;
  std::vector<std::uint16_t> xs_, ys_;  // node id -> grid coordinates
};

/// Per-node locality order over shards: shard ids sorted ascending by
/// (hops(node, owner), shard id), plus a cumulative cutoff per radius so
/// "sample uniformly within r hops" is one rng draw below cutoff(r).
/// Owners stripe round-robin: owner(shard) = shard % nodes.
class NearShardOrder {
 public:
  template <typename HopsFn>
  NearShardOrder(int nodes, std::size_t shards, int diameter, HopsFn&& hops) {
    nodes_ = nodes < 1 ? 1 : nodes;
    diameter_ = diameter < 0 ? 0 : diameter;
    order_.resize(static_cast<std::size_t>(nodes_) * shards);
    cutoffs_.resize(static_cast<std::size_t>(nodes_) *
                    static_cast<std::size_t>(diameter_ + 1));
    std::vector<std::uint32_t> ids(shards);
    for (int node = 0; node < nodes_; ++node) {
      for (std::size_t s = 0; s < shards; ++s)
        ids[s] = static_cast<std::uint32_t>(s);
      auto dist = [&](std::uint32_t s) {
        return hops(node, static_cast<int>(s % static_cast<std::uint32_t>(
                              nodes_)));
      };
      std::stable_sort(ids.begin(), ids.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         const int da = dist(a), db = dist(b);
                         return da != db ? da < db : a < b;
                       });
      std::copy(ids.begin(), ids.end(),
                order_.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(node) * shards));
      // cutoffs_[node][r] = how many shards sit within r hops of node.
      std::size_t i = 0;
      for (int r = 0; r <= diameter_; ++r) {
        while (i < shards && dist(ids[i]) <= r) ++i;
        cutoffs_[static_cast<std::size_t>(node) *
                     static_cast<std::size_t>(diameter_ + 1) +
                 static_cast<std::size_t>(r)] = i;
      }
    }
    shards_ = shards;
  }

  /// Number of shards within `radius` hops of `node` (>= the node's own
  /// c shards, so a local sample is always possible).
  std::size_t cutoff(int node, int radius) const noexcept {
    if (radius > diameter_) radius = diameter_;
    if (radius < 0) radius = 0;
    return cutoffs_[static_cast<std::size_t>(node) *
                        static_cast<std::size_t>(diameter_ + 1) +
                    static_cast<std::size_t>(radius)];
  }

  /// The idx-th closest shard to `node` (idx < cutoff(node, r) stays
  /// within r hops).
  std::size_t shard_at(int node, std::size_t idx) const noexcept {
    return order_[static_cast<std::size_t>(node) * shards_ + idx];
  }

  int diameter() const noexcept { return diameter_; }

 private:
  int nodes_ = 1;
  int diameter_ = 0;
  std::size_t shards_ = 0;
  std::vector<std::uint32_t> order_;    // [node][rank] -> shard id
  std::vector<std::size_t> cutoffs_;    // [node][radius] -> count
};

}  // namespace slpq
