// slpq::MultiQueue — a relaxed concurrent priority queue in the style of
// Williams, Sanders & Dementiev ("Engineering MultiQueues"), the modern
// endpoint of the paper's Relaxed SkipQueue idea (Section 5.4): give up
// strict delete-min in exchange for throughput that scales past any
// centralized skiplist design.
//
// Structure:
//  * `c * max_threads` sequential sub-queues ("shards"), each a
//    detail::PairingHeap behind a cache-line-padded test-and-test-and-set
//    spinlock. The shard also publishes its current minimum key in an
//    atomic word so other threads can compare shards without locking.
//  * insert appends to a small per-handle *insertion buffer*; when the
//    buffer fills (or a delete-min needs the items) the whole buffer is
//    flushed into one shard under a single lock acquisition.
//  * delete_min samples two random shards, locks the one whose published
//    minimum is smaller (2-choice sampling), and pops a small batch into a
//    per-handle *deletion buffer* that serves subsequent calls without
//    touching shared state. The caller's own insertion buffer competes
//    with the deletion buffer, so a thread always sees its own inserts.
//  * *stickiness*: a handle reuses its last shard for a few consecutive
//    operations before resampling, which keeps the shard's lock and heap
//    top in the owner's cache under low contention.
//
// Semantics: delete_min returns *some* small element, not necessarily the
// minimum. The expected rank error of the returned element is O(#shards)
// from 2-choice sampling plus O(#handles * deletion_buffer) from items
// held in other threads' buffers — see tests/slpq/test_multi_queue.cpp,
// which measures the envelope. delete_min returns nullopt only after a
// full sweep of every shard found nothing and the caller's own buffers
// are empty; like any relaxed queue, a concurrent inserter's buffered
// items may be missed (call Handle::flush()/MultiQueue::flush() at
// phase boundaries when that matters).
//
// Threading: operations go through a Handle. The queue keeps one
// implicitly-created handle per thread for the drop-in insert/delete_min
// API; explicit handles (make_handle) are for tests and single-threaded
// multiplexing. A Handle must not be used from two threads at once.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/telemetry.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class MultiQueue {
  static_assert(std::is_trivially_copyable_v<Key> && sizeof(Key) <= 8,
                "MultiQueue publishes shard minima in a single atomic word; "
                "Key must be trivially copyable and at most 8 bytes");

 public:
  struct Options {
    int c = 2;               ///< shards per thread (the paper's c-way factor)
    int max_threads = 0;     ///< 0 => std::thread::hardware_concurrency()
    int stickiness = 8;      ///< ops on the same shard before resampling
    std::size_t insertion_buffer = 8;  ///< inserts batched per lock acquire
    std::size_t deletion_buffer = 8;   ///< pops batched per lock acquire
    std::uint64_t seed = 0x3017A11EULL;
  };

  class Handle;

  MultiQueue() : MultiQueue(Options()) {}

  explicit MultiQueue(Options opt, Compare cmp = Compare())
      : opt_(sanitize(opt)), cmp_(cmp) {
    const std::size_t n = static_cast<std::size_t>(opt_.c) *
                          static_cast<std::size_t>(opt_.max_threads);
    shard_count_ = n < 2 ? 2 : n;
    shards_raw_ = ::operator new(shard_count_ * sizeof(PaddedShard),
                                 std::align_val_t{alignof(PaddedShard)});
    shards_ = static_cast<PaddedShard*>(shards_raw_);
    for (std::size_t i = 0; i < shard_count_; ++i)
      new (&shards_[i]) PaddedShard(cmp_);
  }

  ~MultiQueue() {
    for (std::size_t i = 0; i < shard_count_; ++i) shards_[i].~PaddedShard();
    ::operator delete(shards_raw_, std::align_val_t{alignof(PaddedShard)});
  }

  MultiQueue(const MultiQueue&) = delete;
  MultiQueue& operator=(const MultiQueue&) = delete;

  /// A per-thread access point: owns the RNG, stickiness state and the
  /// insertion/deletion buffers. Created via make_handle() or implicitly
  /// per thread by the insert/delete_min convenience API.
  class Handle {
   public:
    void insert(const Key& key, const Value& value) { q_->insert(*this, key, value); }
    std::optional<std::pair<Key, Value>> delete_min() { return q_->delete_min(*this); }

    /// Pushes both buffers back into the shards, making every item this
    /// handle holds visible to other threads.
    void flush() { q_->flush(*this); }

   private:
    friend class MultiQueue;
    Handle(MultiQueue* q, std::uint64_t seq)
        : q_(q), rng_(q->opt_.seed + 0x9E3779B97F4A7C15ULL * (seq + 1)) {}

    MultiQueue* q_;
    detail::Xoshiro256 rng_;
    std::vector<std::pair<Key, Value>> ibuf_;
    std::vector<std::pair<Key, Value>> dbuf_;  // ascending; served from dhead_
    std::size_t dhead_ = 0;
    std::size_t ins_shard_ = 0;
    std::size_t del_shard_ = 0;
    int ins_stick_ = 0;
    int del_stick_ = 0;
  };

  /// Creates a new handle owned by the queue (stable address). Handles are
  /// never reclaimed before the queue itself dies.
  Handle& make_handle() {
    std::lock_guard<detail::TinySpinLock> g(handles_lock_);
    handles_.push_back(std::unique_ptr<Handle>(
        new Handle(this, static_cast<std::uint64_t>(handles_.size()))));
    return *handles_.back();
  }

  // ---- drop-in API (implicit per-thread handle) --------------------------
  void insert(const Key& key, const Value& value) {
    insert(local_handle(), key, value);
  }
  std::optional<std::pair<Key, Value>> delete_min() {
    return delete_min(local_handle());
  }
  /// Flushes the calling thread's implicit handle.
  void flush() { flush(local_handle()); }

  // ---- handle-explicit API ----------------------------------------------
  void insert(Handle& h, const Key& key, const Value& value) {
    h.ibuf_.emplace_back(key, value);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (h.ibuf_.size() >= opt_.insertion_buffer) flush_insertions(h);
  }

  std::optional<std::pair<Key, Value>> delete_min(Handle& h) {
    for (;;) {
      const bool have_d = h.dhead_ < h.dbuf_.size();
      if (!h.ibuf_.empty()) {
        // The handle's own pending inserts compete with the deletion
        // buffer: serve whichever head is smaller.
        std::size_t mi = 0;
        for (std::size_t i = 1; i < h.ibuf_.size(); ++i)
          if (cmp_(h.ibuf_[i].first, h.ibuf_[mi].first)) mi = i;
        if (!have_d || !cmp_(h.dbuf_[h.dhead_].first, h.ibuf_[mi].first)) {
          std::pair<Key, Value> out = std::move(h.ibuf_[mi]);
          h.ibuf_[mi] = std::move(h.ibuf_.back());
          h.ibuf_.pop_back();
          size_.fetch_sub(1, std::memory_order_relaxed);
          counters_.add(Counter::kClaimWins);
          return out;
        }
      }
      if (have_d) {
        std::pair<Key, Value> out = std::move(h.dbuf_[h.dhead_++]);
        if (h.dhead_ == h.dbuf_.size()) {
          h.dbuf_.clear();
          h.dhead_ = 0;
        }
        size_.fetch_sub(1, std::memory_order_relaxed);
        counters_.add(Counter::kClaimWins);
        return out;
      }
      // Both buffers empty: make pending inserts visible, then refill.
      flush_insertions(h);
      if (!refill(h)) return std::nullopt;
    }
  }

  void flush(Handle& h) {
    flush_insertions(h);
    if (h.dhead_ < h.dbuf_.size()) {
      Shard& s = lock_shard_for_insert(h);
      for (std::size_t i = h.dhead_; i < h.dbuf_.size(); ++i)
        s.heap.push(std::move(h.dbuf_[i].first), std::move(h.dbuf_[i].second));
      publish(s);
      s.lock.unlock();
    }
    h.dbuf_.clear();
    h.dhead_ = 0;
  }

  /// Counts buffered items too; exact only when the queue is quiescent.
  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  std::size_t num_shards() const noexcept { return shard_count_; }
  const Options& options() const noexcept { return opt_; }

  /// Operation counters; see docs/TELEMETRY.md. Heap storage is owned by
  /// the shards (no shared pool/GC), so those counters stay zero here.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    return snap;
  }

 private:
  struct Shard {
    explicit Shard(const Compare& cmp) : heap(cmp) {}
    detail::TinySpinLock lock;
    std::atomic<bool> nonempty{false};
    std::atomic<Key> top{};
    detail::PairingHeap<Key, Value, Compare> heap;  // guarded by lock
  };
  using PaddedShard = detail::Padded<Shard>;

  static Options sanitize(Options o) {
    if (o.max_threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      o.max_threads = hw ? static_cast<int>(hw) : 4;
    }
    if (o.c < 1) o.c = 1;
    if (o.stickiness < 1) o.stickiness = 1;
    if (o.insertion_buffer < 1) o.insertion_buffer = 1;
    if (o.deletion_buffer < 1) o.deletion_buffer = 1;
    return o;
  }

  Shard& shard(std::size_t i) noexcept { return shards_[i].value; }

  /// Re-publishes a shard's minimum after its heap changed. Caller holds
  /// the shard lock.
  void publish(Shard& s) noexcept {
    if (s.heap.empty()) {
      s.nonempty.store(false, std::memory_order_release);
    } else {
      s.top.store(s.heap.min_key(), std::memory_order_relaxed);
      s.nonempty.store(true, std::memory_order_release);
    }
  }

  /// Sticky shard selection for inserts: reuse the last shard while the
  /// stickiness budget lasts and its lock is uncontended; otherwise pick a
  /// fresh random shard. Returns with the shard lock held.
  Shard& lock_shard_for_insert(Handle& h) {
    for (int attempt = 0;; ++attempt) {
      if (h.ins_stick_ <= 0) {
        h.ins_shard_ = static_cast<std::size_t>(h.rng_.below(shard_count_));
        h.ins_stick_ = opt_.stickiness;
      }
      Shard& s = shard(h.ins_shard_);
      if (s.lock.try_lock()) {
        --h.ins_stick_;
        return s;
      }
      counters_.add(Counter::kFailedCas);  // contended shard lock
      h.ins_stick_ = 0;  // contended: break stickiness
      if (attempt >= 8) {
        s.lock.lock();  // bounded fallback so we cannot livelock
        --h.ins_stick_;
        return s;
      }
    }
  }

  void flush_insertions(Handle& h) {
    if (h.ibuf_.empty()) return;
    Shard& s = lock_shard_for_insert(h);
    for (auto& kv : h.ibuf_)
      s.heap.push(std::move(kv.first), std::move(kv.second));
    publish(s);
    s.lock.unlock();
    h.ibuf_.clear();
  }

  /// True if shard a's published top beats shard b's (empty shards lose).
  bool shard_beats(std::size_t a, std::size_t b) {
    const bool na = shard(a).nonempty.load(std::memory_order_acquire);
    const bool nb = shard(b).nonempty.load(std::memory_order_acquire);
    if (na != nb) return na;
    if (!na) return true;  // both empty: arbitrary
    const Key ka = shard(a).top.load(std::memory_order_relaxed);
    const Key kb = shard(b).top.load(std::memory_order_relaxed);
    return !cmp_(kb, ka);
  }

  /// Refills the deletion buffer with a batch from one shard (sticky or
  /// 2-choice sampled). Returns false only after a full sweep of every
  /// shard found all of them empty.
  bool refill(Handle& h) {
    assert(h.dbuf_.empty() && h.ibuf_.empty());
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (h.del_stick_ <= 0 ||
          !shard(h.del_shard_).nonempty.load(std::memory_order_acquire)) {
        const auto a = static_cast<std::size_t>(h.rng_.below(shard_count_));
        const auto b = static_cast<std::size_t>(h.rng_.below(shard_count_));
        h.del_shard_ = shard_beats(a, b) ? a : b;
        h.del_stick_ = opt_.stickiness;
      }
      Shard& s = shard(h.del_shard_);
      if (!s.nonempty.load(std::memory_order_acquire) || !s.lock.try_lock()) {
        counters_.add(Counter::kDeleteRetries);
        h.del_stick_ = 0;
        continue;
      }
      --h.del_stick_;
      if (s.heap.empty()) {  // raced with another consumer
        counters_.add(Counter::kClaimLosses);
        s.lock.unlock();
        h.del_stick_ = 0;
        continue;
      }
      drain_batch(s, h);
      return true;
    }
    // Sampling kept missing: deterministic sweep before reporting empty.
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& s = shard(i);
      if (!s.nonempty.load(std::memory_order_acquire)) continue;
      s.lock.lock();
      if (!s.heap.empty()) {
        drain_batch(s, h);
        h.del_shard_ = i;
        h.del_stick_ = opt_.stickiness;
        return true;
      }
      publish(s);
      s.lock.unlock();
    }
    return false;
  }

  /// Pops up to deletion_buffer items (ascending) into the handle's
  /// deletion buffer and releases the shard.
  void drain_batch(Shard& s, Handle& h) {
    const std::size_t batch = opt_.deletion_buffer;
    for (std::size_t i = 0; i < batch && !s.heap.empty(); ++i)
      h.dbuf_.push_back(s.heap.pop());
    publish(s);
    s.lock.unlock();
    h.dhead_ = 0;
  }

  /// One implicit handle per (thread, queue instance); same id-keyed
  /// thread_local scheme as TimestampReclaimer::register_thread.
  Handle& local_handle() {
    struct Cached {
      std::uint64_t id = 0;
      Handle* h = nullptr;
    };
    thread_local Cached hot;
    if (hot.id == id_) return *hot.h;
    thread_local std::unordered_map<std::uint64_t, Handle*> map;
    auto [it, inserted] = map.try_emplace(id_, nullptr);
    if (inserted) it->second = &make_handle();
    hot = {id_, it->second};
    return *it->second;
  }

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_instance_id();
  Options opt_;
  Compare cmp_;
  std::size_t shard_count_ = 0;
  void* shards_raw_ = nullptr;
  PaddedShard* shards_ = nullptr;
  std::atomic<std::int64_t> size_{0};
  detail::TinySpinLock handles_lock_;
  std::vector<std::unique_ptr<Handle>> handles_;
  OpCounters counters_;
};

}  // namespace slpq
