// slpq::MultiQueue — a relaxed concurrent priority queue in the style of
// Williams, Sanders & Dementiev ("Engineering MultiQueues", 2021/2025),
// the modern endpoint of the paper's Relaxed SkipQueue idea (Section 5.4):
// give up strict delete-min in exchange for throughput that scales past
// any centralized skiplist design.
//
// Structure:
//  * `c * max_threads` sequential sub-queues ("shards"), each a
//    detail::PairingHeap behind a cache-line-padded test-and-test-and-set
//    spinlock. The shard also publishes its current minimum key in an
//    atomic word so other threads can compare shards without locking.
//  * Each handle owns an *insertion buffer* and a *deletion buffer*: fixed
//    capacity sorted arrays on cache-line-aligned per-handle storage
//    (detail::FixedKVBuffer). insert places the item into the sorted
//    insertion buffer with no shared-memory traffic at all; when the
//    buffer fills, the `batch` largest items are evicted into one shard
//    under a single lock acquisition (the smallest stay local, which both
//    helps quality and keeps the handle's own minimum O(1) to serve).
//  * delete_min serves the smaller of the insertion-buffer minimum and the
//    deletion-buffer head — both O(1) array reads. When both run dry, the
//    handle flushes its pending inserts, samples two random shards, locks
//    the one whose published minimum is smaller (2-choice sampling), and
//    pops up to `batch` items into the deletion buffer in that single
//    lock hold. Operation batching is the headline engineering win: one
//    successful try-lock amortizes over up to `batch` operations.
//  * *stickiness*: a handle reuses its last shard for a few consecutive
//    lock acquisitions before resampling, which keeps the shard's lock
//    and heap top in the owner's cache under low contention.
//  * *buffer-aware invalidation* (Options::stale_invalidation): a
//    deletion buffer is a staleness hazard — after it is filled, another
//    thread may insert smaller keys. Before serving the buffer head, the
//    handle peeks its shard's published top (one relaxed load of a line
//    it usually owns); if the shard now beats the buffer, the handle
//    try-locks it, merges the stale remainder back, and takes a fresh
//    batch. A failed try-lock just serves the buffered head — the check
//    is best-effort and can never block or livelock.
//
// Semantics: delete_min returns *some* small element, not necessarily the
// minimum. The expected rank error of the returned element is O(#shards)
// from 2-choice sampling plus O(#handles * batch) from items held in
// other threads' buffers — see tests/slpq/test_multi_queue.cpp, which
// measures the envelope, and the `mq.rank_error.*` telemetry keys, which
// price it in production runs. delete_min returns nullopt only after a
// full sweep of every shard found nothing and the caller's own buffers
// are empty; like any relaxed queue, a concurrent inserter's buffered
// items may be missed (call Handle::flush()/MultiQueue::flush() at
// phase boundaries when that matters).
//
// Threading: operations go through a Handle. The queue keeps one
// implicitly-created handle per thread for the drop-in insert/delete_min
// API; explicit handles (make_handle) are for tests and single-threaded
// multiplexing. A Handle must not be used from two threads at once.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/detail/fixed_buffer.hpp"
#include "slpq/detail/histogram.hpp"
#include "slpq/detail/pairing_heap.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/telemetry.hpp"
#include "slpq/topo.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class MultiQueue {
  static_assert(std::is_trivially_copyable_v<Key> && sizeof(Key) <= 8,
                "MultiQueue publishes shard minima in a single atomic word; "
                "Key must be trivially copyable and at most 8 bytes");

 public:
  /// Buffer/batch knobs are clamped to [1, kMaxBuffer].
  static constexpr std::size_t kMaxBuffer = 1024;

  struct Options {
    int c = 2;               ///< shards per thread (the paper's c-way factor)
    int max_threads = 0;     ///< 0 => std::thread::hardware_concurrency()
    int stickiness = 8;      ///< lock acquisitions on a shard before resampling
    std::size_t insertion_buffer = 8;  ///< per-handle pending-insert capacity
    std::size_t deletion_buffer = 8;   ///< per-handle popped-batch capacity
    std::size_t batch = 8;   ///< max items moved per shard-lock acquisition
    bool stale_invalidation = true;  ///< refresh a beaten deletion buffer
    std::uint64_t seed = 0x3017A11EULL;
    /// Routing for nodes popped off the shard heaps. Every heap mutation
    /// happens under the owning shard's lock, so no policy is needed for
    /// *safety* here — the knob exists so --reclaim applies uniformly
    /// across backends and so the reclaim.* telemetry prices each
    /// policy's bookkeeping on a lock-based structure. kLeaky still
    /// frees at drain time (queue destruction), not never.
    ReclaimPolicy reclaim = ReclaimPolicy::kTimestamp;
    /// Topology-aware shard selection (--mq-topo). Handles stripe onto a
    /// near-square Grid2D of max_threads logical nodes (handle seq mod
    /// max_threads) and shards stripe the same way (shard index mod
    /// max_threads); kNear/kAdaptive bias sampling toward shards whose
    /// owner node is within topo_radius grid hops of the handle's node.
    /// On a real single-socket host this changes only *which* shards a
    /// handle prefers (the win is measurable on the simulated mesh), but
    /// the knob is uniform across machines and the mq.shard_hops.* /
    /// mq.local_acquires / mq.topo_fallbacks telemetry prices it here too.
    TopoPolicy topo = TopoPolicy::kNone;
    int topo_radius = 2;  ///< base grid-hop radius for kNear/kAdaptive
  };

  class Handle;

  MultiQueue() : MultiQueue(Options()) {}

  explicit MultiQueue(Options opt, Compare cmp = Compare())
      : opt_(sanitize(opt)),
        cmp_(cmp),
        grid_(opt_.max_threads),
        reclaimer_(make_reclaimer(
            opt_.reclaim,
            &detail::PairingHeap<Key, Value, Compare>::delete_node,
            /*hazard_slots=*/1)) {
    const std::size_t n = static_cast<std::size_t>(opt_.c) *
                          static_cast<std::size_t>(opt_.max_threads);
    shard_count_ = n < 2 ? 2 : n;
    if (opt_.topo != TopoPolicy::kNone) {
      near_ = std::make_unique<NearShardOrder>(
          opt_.max_threads, shard_count_, grid_.diameter(),
          [this](int node, int owner) { return grid_.hops(node, owner); });
    }
    shards_raw_ = ::operator new(shard_count_ * sizeof(PaddedShard),
                                 std::align_val_t{alignof(PaddedShard)});
    shards_ = static_cast<PaddedShard*>(shards_raw_);
    for (std::size_t i = 0; i < shard_count_; ++i) {
      new (&shards_[i]) PaddedShard(cmp_);
      // Popped heap nodes go through the reclaimer instead of an inline
      // delete. No Guard is entered anywhere: heap nodes are only reached
      // under the shard lock, so nothing constrains when a retired node
      // may be freed — every policy's scan/collect frees eagerly, and the
      // hot buffered paths keep their zero-shared-traffic property (no
      // per-op clock or epoch publication).
      shards_[i].value.heap.set_retire(
          [this](void* p) { reclaimer_->retire(p); });
    }
  }

  ~MultiQueue() {
    for (std::size_t i = 0; i < shard_count_; ++i) shards_[i].~PaddedShard();
    ::operator delete(shards_raw_, std::align_val_t{alignof(PaddedShard)});
  }

  MultiQueue(const MultiQueue&) = delete;
  MultiQueue& operator=(const MultiQueue&) = delete;

  /// A per-thread access point: owns the RNG, stickiness state and the
  /// insertion/deletion buffers (fixed-capacity sorted arrays on
  /// line-aligned storage). Created via make_handle() or implicitly per
  /// thread by the insert/delete_min convenience API. The Handle itself is
  /// line-aligned so two handles never share a cache line.
  class alignas(detail::kCacheLineSize) Handle {
   public:
    void insert(const Key& key, const Value& value) { q_->insert(*this, key, value); }
    std::optional<std::pair<Key, Value>> delete_min() { return q_->delete_min(*this); }

    /// Pushes both buffers back into the shards, making every item this
    /// handle holds visible to other threads.
    void flush() { q_->flush(*this); }

   private:
    friend class MultiQueue;
    Handle(MultiQueue* q, std::uint64_t seq)
        : q_(q),
          rng_(q->opt_.seed + 0x9E3779B97F4A7C15ULL * (seq + 1)),
          ibuf_(q->opt_.insertion_buffer),
          dbuf_(q->opt_.deletion_buffer),
          node_(static_cast<int>(seq %
                                 static_cast<std::uint64_t>(q->opt_.max_threads))),
          radius_(q->opt_.topo_radius) {}

    MultiQueue* q_;
    detail::Xoshiro256 rng_;
    detail::FixedKVBuffer<Key, Value> ibuf_;  // sorted ascending; min at [0]
    detail::FixedKVBuffer<Key, Value> dbuf_;  // ascending; served from dhead_
    std::size_t dhead_ = 0;
    std::size_t ins_shard_ = 0;
    std::size_t del_shard_ = 0;
    int ins_stick_ = 0;
    int del_stick_ = 0;
    int node_ = 0;                   // grid node (seq mod max_threads)
    int radius_ = 0;                 // current kAdaptive radius (grid hops)
    std::uint64_t probe_tick_ = 0;   // resamples since creation
    // Buffer-engine telemetry. Only this handle's thread writes these, so
    // the relaxed increments cost no coherence traffic (the Handle owns
    // its lines); telemetry() sums them across handles.
    std::atomic<std::uint64_t> flushes_{0};
    std::atomic<std::uint64_t> refills_{0};
    std::atomic<std::uint64_t> invalidations_{0};
    std::atomic<std::uint64_t> local_acquires_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
    // Hops per successful shard-lock acquisition. Plain buckets: like the
    // rank-error probe, read it only when the handle's thread is quiescent
    // (the drivers snapshot telemetry after workers join).
    detail::LogHistogram hop_hist_;
  };

  /// Creates a new handle owned by the queue (stable address). Handles are
  /// never reclaimed before the queue itself dies.
  Handle& make_handle() {
    std::lock_guard<detail::TinySpinLock> g(handles_lock_);
    handles_.push_back(std::unique_ptr<Handle>(
        new Handle(this, static_cast<std::uint64_t>(handles_.size()))));
    return *handles_.back();
  }

  // ---- drop-in API (implicit per-thread handle) --------------------------
  void insert(const Key& key, const Value& value) {
    insert(local_handle(), key, value);
  }
  std::optional<std::pair<Key, Value>> delete_min() {
    return delete_min(local_handle());
  }
  /// Flushes the calling thread's implicit handle.
  void flush() { flush(local_handle()); }

  // ---- handle-explicit API ----------------------------------------------
  void insert(Handle& h, const Key& key, const Value& value) {
    if (h.ibuf_.full()) evict_insertions(h);
    h.ibuf_.insert_at(sorted_pos(h.ibuf_, key), key, value);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  std::optional<std::pair<Key, Value>> delete_min(Handle& h) {
    for (;;) {
      bool have_d = h.dhead_ < h.dbuf_.size();
      if (have_d && opt_.stale_invalidation) {
        have_d = revalidate_deletions(h);
      }
      if (!h.ibuf_.empty()) {
        // The handle's own pending inserts compete with the deletion
        // buffer: serve whichever head is smaller. Both minima are O(1)
        // reads off sorted arrays.
        if (!have_d ||
            !cmp_(h.dbuf_[h.dhead_].first, h.ibuf_.front().first)) {
          std::pair<Key, Value> out = h.ibuf_.remove_at(0);
          size_.fetch_sub(1, std::memory_order_relaxed);
          counters_.add(Counter::kClaimWins);
          return out;
        }
      }
      if (have_d) {
        std::pair<Key, Value> out = std::move(h.dbuf_[h.dhead_++]);
        if (h.dhead_ == h.dbuf_.size()) {
          h.dbuf_.clear();
          h.dhead_ = 0;
        }
        size_.fetch_sub(1, std::memory_order_relaxed);
        counters_.add(Counter::kClaimWins);
        return out;
      }
      // Both buffers empty: make pending inserts visible, then refill.
      flush_insertions(h);
      if (!refill(h)) return std::nullopt;
    }
  }

  void flush(Handle& h) {
    flush_insertions(h);
    if (h.dhead_ < h.dbuf_.size()) {
      Shard& s = lock_shard_for_insert(h);
      for (std::size_t i = h.dhead_; i < h.dbuf_.size(); ++i)
        s.heap.push(std::move(h.dbuf_[i].first), std::move(h.dbuf_[i].second));
      publish(s);
      s.lock.unlock();
      h.flushes_.fetch_add(1, std::memory_order_relaxed);
    }
    h.dbuf_.clear();
    h.dhead_ = 0;
  }

  /// Counts buffered items too; exact only when the queue is quiescent.
  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  std::size_t num_shards() const noexcept { return shard_count_; }
  const Options& options() const noexcept { return opt_; }
  Reclaimer& reclaimer() noexcept { return *reclaimer_; }

  /// Operation counters plus the buffer-engine extras and the reclaim.*
  /// block (see docs/TELEMETRY.md). Heap storage is owned by the shards
  /// (no shared pool), so the pool counters stay zero here.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    std::uint64_t flushes = 0, refills = 0, invalidations = 0;
    std::uint64_t local = 0, fallbacks = 0;
    detail::LogHistogram hops;
    {
      std::lock_guard<detail::TinySpinLock> g(handles_lock_);
      for (const auto& h : handles_) {
        flushes += h->flushes_.load(std::memory_order_relaxed);
        refills += h->refills_.load(std::memory_order_relaxed);
        invalidations += h->invalidations_.load(std::memory_order_relaxed);
        local += h->local_acquires_.load(std::memory_order_relaxed);
        fallbacks += h->fallbacks_.load(std::memory_order_relaxed);
        hops.merge(h->hop_hist_);
      }
    }
    snap.set("mq.ins_flushes", flushes);
    snap.set("mq.refills", refills);
    snap.set("mq.dbuf_invalidations", invalidations);
    snap.set("mq.shard_hops.mean",
             hops.count() == 0
                 ? 0
                 : static_cast<std::uint64_t>(std::llround(hops.mean())));
    snap.set("mq.shard_hops.p99", hops.quantile(0.99));
    snap.set("mq.local_acquires", local);
    snap.set("mq.topo_fallbacks", fallbacks);
    fill_reclaim_telemetry(snap, *reclaimer_);
    return snap;
  }

 private:
  struct Shard {
    explicit Shard(const Compare& cmp) : heap(cmp) {}
    detail::TinySpinLock lock;
    std::atomic<bool> nonempty{false};
    std::atomic<Key> top{};
    detail::PairingHeap<Key, Value, Compare> heap;  // guarded by lock
  };
  using PaddedShard = detail::Padded<Shard>;

  static Options sanitize(Options o) {
    if (o.max_threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      o.max_threads = hw ? static_cast<int>(hw) : 4;
    }
    if (o.c < 1) o.c = 1;
    if (o.stickiness < 1) o.stickiness = 1;
    auto clamp = [](std::size_t v) {
      return v < 1 ? std::size_t{1} : (v > kMaxBuffer ? kMaxBuffer : v);
    };
    o.insertion_buffer = clamp(o.insertion_buffer);
    o.deletion_buffer = clamp(o.deletion_buffer);
    o.batch = clamp(o.batch);
    if (o.topo_radius < 0) o.topo_radius = 0;
    return o;
  }

  /// Grid node a shard's state notionally lives on (round-robin stripe).
  int owner_of(std::size_t shard_idx) const noexcept {
    return static_cast<int>(shard_idx %
                            static_cast<std::size_t>(opt_.max_threads));
  }

  /// One shard id: uniform over all shards when `global` (or under
  /// kNone), else uniform over the handle's near set at h.radius_.
  std::size_t sample_shard(Handle& h, bool global) {
    if (global || near_ == nullptr)
      return static_cast<std::size_t>(h.rng_.below(shard_count_));
    const std::size_t cut = near_->cutoff(h.node_, h.radius_);
    return near_->shard_at(h.node_,
                           static_cast<std::size_t>(h.rng_.below(cut)));
  }

  /// Prices a successful shard-lock acquisition in grid hops.
  void record_acquire(Handle& h, std::size_t shard_idx) {
    const int hops = grid_.hops(h.node_, owner_of(shard_idx));
    h.hop_hist_.record(static_cast<std::uint64_t>(hops));
    if (hops <= opt_.topo_radius)
      h.local_acquires_.fetch_add(1, std::memory_order_relaxed);
  }

  Shard& shard(std::size_t i) noexcept { return shards_[i].value; }

  /// Upper-bound position of `key` in an ascending FixedKVBuffer.
  std::size_t sorted_pos(const detail::FixedKVBuffer<Key, Value>& buf,
                         const Key& key) const {
    std::size_t lo = 0, hi = buf.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cmp_(key, buf[mid].first)) hi = mid;
      else lo = mid + 1;
    }
    return lo;
  }

  /// Re-publishes a shard's minimum after its heap changed. Caller holds
  /// the shard lock.
  void publish(Shard& s) noexcept {
    if (s.heap.empty()) {
      s.nonempty.store(false, std::memory_order_release);
    } else {
      s.top.store(s.heap.min_key(), std::memory_order_relaxed);
      s.nonempty.store(true, std::memory_order_release);
    }
  }

  /// Sticky shard selection for inserts: reuse the last shard while the
  /// stickiness budget lasts and its lock is uncontended; otherwise pick a
  /// fresh random shard. Returns with the shard lock held.
  Shard& lock_shard_for_insert(Handle& h) {
    for (int attempt = 0;; ++attempt) {
      if (h.ins_stick_ <= 0) {
        bool global = near_ == nullptr;
        if (near_ != nullptr &&
            ++h.probe_tick_ % kGlobalProbePeriod == 0) {
          global = true;  // periodic global spread keeps every shard fed
          h.fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        h.ins_shard_ = sample_shard(h, global);
        h.ins_stick_ = opt_.stickiness;
      }
      Shard& s = shard(h.ins_shard_);
      if (s.lock.try_lock()) {
        --h.ins_stick_;
        record_acquire(h, h.ins_shard_);
        return s;
      }
      counters_.add(Counter::kFailedCas);  // contended shard lock
      h.ins_stick_ = 0;  // contended: break stickiness
      if (attempt >= 8) {
        s.lock.lock();  // bounded fallback so we cannot livelock
        --h.ins_stick_;
        record_acquire(h, h.ins_shard_);
        return s;
      }
    }
  }

  /// Evicts up to `batch` of the *largest* buffered inserts into one shard
  /// under a single lock acquisition. The smallest items stay local: they
  /// are the ones the owner is most likely to pop itself, and keeping them
  /// out of the shards cannot raise another thread's rank error.
  void evict_insertions(Handle& h) {
    if (h.ibuf_.empty()) return;
    Shard& s = lock_shard_for_insert(h);
    const std::size_t n = std::min(opt_.batch, h.ibuf_.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto kv = h.ibuf_.pop_back();
      s.heap.push(std::move(kv.first), std::move(kv.second));
    }
    publish(s);
    s.lock.unlock();
    h.flushes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Makes every pending insert visible (possibly several batched lock
  /// acquisitions, usually against different sticky shards).
  void flush_insertions(Handle& h) {
    while (!h.ibuf_.empty()) evict_insertions(h);
  }

  /// Buffer-aware invalidation: if the shard the deletion buffer came
  /// from now publishes a key smaller than the buffered head, the buffer
  /// is stale — merge the remainder back and take a fresh batch, all in
  /// one try-lock hold. Returns whether the deletion buffer still holds
  /// servable items (it always does on the merge path). Best-effort: a
  /// failed try-lock leaves the buffer untouched.
  bool revalidate_deletions(Handle& h) {
    Shard& s = shard(h.del_shard_);
    if (!s.nonempty.load(std::memory_order_acquire)) return true;
    const Key top = s.top.load(std::memory_order_relaxed);
    if (!cmp_(top, h.dbuf_[h.dhead_].first)) return true;
    if (!s.lock.try_lock()) return true;
    record_acquire(h, h.del_shard_);
    for (std::size_t i = h.dhead_; i < h.dbuf_.size(); ++i)
      s.heap.push(std::move(h.dbuf_[i].first), std::move(h.dbuf_[i].second));
    h.dbuf_.clear();
    h.dhead_ = 0;
    drain_batch(s, h);  // publishes + unlocks
    h.invalidations_.fetch_add(1, std::memory_order_relaxed);
    return h.dhead_ < h.dbuf_.size();
  }

  /// True if shard a's published top beats shard b's (empty shards lose).
  bool shard_beats(std::size_t a, std::size_t b) {
    const bool na = shard(a).nonempty.load(std::memory_order_acquire);
    const bool nb = shard(b).nonempty.load(std::memory_order_acquire);
    if (na != nb) return na;
    if (!na) return true;  // both empty: arbitrary
    const Key ka = shard(a).top.load(std::memory_order_relaxed);
    const Key kb = shard(b).top.load(std::memory_order_relaxed);
    return !cmp_(kb, ka);
  }

  /// Refills the deletion buffer with a batch from one shard (sticky or
  /// 2-choice sampled). Returns false only after a full sweep of every
  /// shard found all of them empty.
  bool refill(Handle& h) {
    assert(h.dbuf_.empty() && h.ibuf_.empty());
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (h.del_stick_ <= 0 ||
          !shard(h.del_shard_).nonempty.load(std::memory_order_acquire)) {
        // 2-choice resample. Under kNear/kAdaptive both candidates come
        // from the handle's radius, except every kGlobalProbePeriod-th
        // resample draws candidate b globally — the fallback that keeps
        // every shard's sampling probability nonzero (so the rank-error
        // bound survives) and feeds kAdaptive its staleness signal.
        bool probe = false;
        if (near_ != nullptr &&
            ++h.probe_tick_ % kGlobalProbePeriod == 0) {
          probe = true;
          h.fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        const bool uniform = near_ == nullptr;
        const auto a = sample_shard(h, uniform);
        const auto b = sample_shard(h, uniform || probe);
        const bool a_wins = shard_beats(a, b);
        h.del_shard_ = a_wins ? a : b;
        h.del_stick_ = opt_.stickiness;
        if (probe && opt_.topo == TopoPolicy::kAdaptive) {
          if (!a_wins) {
            // The global probe beat everything nearby: local minima have
            // gone stale, widen the neighborhood.
            h.radius_ = std::min(grid_.diameter(),
                                 h.radius_ > 0 ? h.radius_ * 2 : 1);
          } else {
            // Local region is still competitive: decay toward the base.
            h.radius_ = std::max(opt_.topo_radius, h.radius_ / 2);
          }
        }
      }
      Shard& s = shard(h.del_shard_);
      if (!s.nonempty.load(std::memory_order_acquire) || !s.lock.try_lock()) {
        counters_.add(Counter::kDeleteRetries);
        h.del_stick_ = 0;
        continue;
      }
      --h.del_stick_;
      record_acquire(h, h.del_shard_);
      if (s.heap.empty()) {  // raced with another consumer
        counters_.add(Counter::kClaimLosses);
        s.lock.unlock();
        h.del_stick_ = 0;
        continue;
      }
      drain_batch(s, h);
      return true;
    }
    // Sampling kept missing: deterministic sweep before reporting empty.
    // Unchanged by the topology policies — EMPTY is only ever reported
    // after every shard, near or far, was checked.
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& s = shard(i);
      if (!s.nonempty.load(std::memory_order_acquire)) continue;
      s.lock.lock();
      record_acquire(h, i);
      if (!s.heap.empty()) {
        drain_batch(s, h);
        h.del_shard_ = i;
        h.del_stick_ = opt_.stickiness;
        return true;
      }
      publish(s);
      s.lock.unlock();
    }
    return false;
  }

  /// Pops up to min(batch, buffer capacity) items (ascending) into the
  /// handle's deletion buffer and releases the shard.
  void drain_batch(Shard& s, Handle& h) {
    const std::size_t batch = std::min(opt_.batch, h.dbuf_.capacity());
    for (std::size_t i = 0; i < batch && !s.heap.empty(); ++i) {
      auto kv = s.heap.pop();
      h.dbuf_.emplace_back(std::move(kv.first), std::move(kv.second));
    }
    publish(s);
    s.lock.unlock();
    h.dhead_ = 0;
    h.refills_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One implicit handle per (thread, queue instance); same id-keyed
  /// thread_local scheme as TimestampReclaimer::register_thread.
  Handle& local_handle() {
    struct Cached {
      std::uint64_t id = 0;
      Handle* h = nullptr;
    };
    thread_local Cached hot;
    if (hot.id == id_) return *hot.h;
    thread_local std::unordered_map<std::uint64_t, Handle*> map;
    auto [it, inserted] = map.try_emplace(id_, nullptr);
    if (inserted) it->second = &make_handle();
    hot = {id_, it->second};
    return *it->second;
  }

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_instance_id();
  Options opt_;
  Compare cmp_;
  Grid2D grid_;  ///< notional node layout for topology-aware sampling
  // Declared before the shard array's teardown path runs in ~MultiQueue:
  // the destructor destroys shards first, then members, so the reclaimer
  // (which drains retired-but-unfreed heap nodes in its own destructor)
  // dies after every shard has stopped retiring.
  std::unique_ptr<Reclaimer> reclaimer_;
  std::size_t shard_count_ = 0;
  void* shards_raw_ = nullptr;
  PaddedShard* shards_ = nullptr;
  std::atomic<std::int64_t> size_{0};
  std::unique_ptr<NearShardOrder> near_;  // kNear/kAdaptive only
  mutable detail::TinySpinLock handles_lock_;
  std::vector<std::unique_ptr<Handle>> handles_;
  OpCounters counters_;
};

}  // namespace slpq
