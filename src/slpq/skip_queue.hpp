// slpq::SkipQueue — the paper's skiplist-based concurrent priority queue
// for real threads.
//
// A lock-based concurrent skiplist (Pugh) with the paper's delete-min:
//  * one tiny spinlock per (node, level) guards that node's forward
//    pointer; a whole-node lock keeps a node from being deleted while its
//    insert is still linking levels bottom-up;
//  * delete-min scans the bottom-level list and claims the first available
//    node with an atomic exchange on its `deleted` flag (the paper's
//    register-to-memory SWAP), then performs a regular top-down unlink;
//  * a removed node's forward pointers are reversed (pointed at the
//    predecessor) so concurrent traversals are redirected, never stranded;
//  * with Options::timestamps (default), each node is stamped when its
//    insert completes, and a delete-min ignores nodes stamped after it
//    began — the serialization property of the paper's Section 4.2.
//    timestamps = false gives the Relaxed SkipQueue of Section 5.4;
//  * memory is reclaimed through a pluggable Reclaimer (Options::reclaim):
//    the paper's Section 3 timestamp scheme by default, or hazard
//    pointers / epochs / leaky (docs/ALGORITHMS.md). Under hazard
//    pointers every traversal step is protect-then-validate, and a
//    per-node reversed-level bitmask keeps frozen (reversed) pointers
//    from passing validation vacuously.
//
// Thread-safe for any number of concurrent insert/delete_min callers (up
// to Reclaimer::kMaxThreads distinct threads over the queue's
// lifetime). Progress: deadlock-free locking; the delete-min scan is
// non-blocking in the paper's sense (a scanner loses a node only because
// another delete-min succeeded).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <utility>

#include "slpq/detail/node_pool.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/detail/spinlock.hpp"
#include "slpq/hazard_reclaimer.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/telemetry.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class SkipQueue {
 public:
  struct Options {
    int max_level = 20;      ///< log2 of the expected maximum size
    double p = 0.5;          ///< level promotion probability
    bool timestamps = true;  ///< false => Relaxed SkipQueue (Section 5.4)
    bool pooled = true;      ///< allocate nodes from a per-thread NodePool
    /// Memory-reclamation policy for retired nodes (docs/ALGORITHMS.md).
    ReclaimPolicy reclaim = ReclaimPolicy::kTimestamp;
    std::uint64_t seed = 0x51CF5EEDULL;
  };

  SkipQueue() : SkipQueue(Options()) {}

  explicit SkipQueue(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        level_dist_(opt.p, opt.max_level),
        reclaimer_(make_reclaimer(
            opt.reclaim,
            [this](void* p) { Node::destroy(static_cast<Node*>(p), pool_ptr()); },
            // pred+curr per level plus the peek scratch slot.
            2 * opt.max_level + 2)),
        hp_(opt.reclaim == ReclaimPolicy::kHazard
                ? static_cast<HazardPointerReclaimer*>(reclaimer_.get())
                : nullptr) {
    assert(opt_.max_level >= 1 && opt_.max_level <= kMaxPossibleLevel);
    if (opt_.max_level > kMaxPossibleLevel) opt_.max_level = kMaxPossibleLevel;
    head_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Head);
    tail_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Tail);
    // Sentinels must never be claimed: a bottom-level scan redirected by a
    // concurrent unlink can step onto the head (see delete_min).
    head_->deleted.store(true, std::memory_order_relaxed);
    tail_->deleted.store(true, std::memory_order_relaxed);
    head_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    tail_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    for (int i = 0; i < opt_.max_level; ++i)
      head_->levels()[i].next.store(tail_, std::memory_order_relaxed);
    // Telemetry baseline: the sentinels above were carved from the pool;
    // pool_refills reports carves *after* construction only.
    pool_base_carved_ = pool_.carved();
  }

  ~SkipQueue() {
    // Quiescent teardown: free the linked chain, the sentinels, and every
    // retired-but-not-yet-collected node.
    Node* n = head_->levels()[0].next.load(std::memory_order_relaxed);
    while (n != tail_) {
      Node* next = n->levels()[0].next.load(std::memory_order_relaxed);
      Node::destroy(n, pool_ptr());
      n = next;
    }
    Node::destroy(head_, pool_ptr());
    Node::destroy(tail_, pool_ptr());
    // reclaimer_'s destructor drains the retired lists.
  }

  SkipQueue(const SkipQueue&) = delete;
  SkipQueue& operator=(const SkipQueue&) = delete;

  /// Inserts (key, value). If an equal key is already present, its value
  /// is overwritten in place (the paper's UPDATED result) and false is
  /// returned; true means a new node was linked.
  bool insert(const Key& key, const Value& value) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);

    Node* saved[kMaxPossibleLevel];
    Node* node1;
    for (;;) {
      search_preds(key, saved, hp);
      node1 = get_lock(saved[0], key, 0, hp);
      if (node1 != nullptr) break;
      counters_.add(Counter::kInsertRetries);  // hazard-validation restart
    }
    // node2 is node1's level-0 successor read under node1's lock: its
    // level-0 unlink would have to take that same lock, so it cannot be
    // retired while we hold it — safe to dereference under every policy.
    Node* node2 = node1->levels()[0].next.load(std::memory_order_acquire);
    if (equals(node2, key)) {
      node2->value() = value;
      node1->levels()[0].lock.unlock();
      return false;
    }

    const int level = random_level();
    Node* fresh = Node::make(pool_ptr(), level, NodeKind::Interior, key, value);
    if (opt_.timestamps)
      fresh->stamp.store(kNeverStamped, std::memory_order_relaxed);
    fresh->node_lock.lock();  // nobody may delete a half-inserted node

    for (int i = 0; i < level; ++i) {
      if (i != 0) {
        node1 = get_lock(saved[i], key, i, hp);
        if (node1 == nullptr) {
          // A restart mid-link only re-searches the entry points; fresh is
          // already linked below level i and findable, so re-walk from the
          // head and continue at this level.
          search_preds(key, saved, hp);
          --i;
          continue;
        }
      }
      fresh->levels()[i].next.store(
          node1->levels()[i].next.load(std::memory_order_acquire),
          std::memory_order_release);
      node1->levels()[i].next.store(fresh, std::memory_order_release);
      node1->levels()[i].lock.unlock();
    }

    fresh->node_lock.unlock();
    if (opt_.timestamps)
      fresh->stamp.store(reclaimer_->advance_clock(), std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes and returns the minimal item, or nullopt when no item whose
  /// insert completed before this call began remains.
  std::optional<std::pair<Key, Value>> delete_min() {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
    const std::uint64_t time = guard.entry_time();

    // Phase 1: claim the first available bottom-level node. Under hazard
    // pointers the cursor stays pinned in slot 0 while each successor is
    // validated through slot 1; stepping onto a reversed (frozen) pointer
    // restarts the scan from the head.
    Node* node1 = nullptr;
    while (node1 == nullptr) {
      Node* cur = head_;
      protect_node(hp, 0, cur);
      Node* next = protect_step(hp, cur, 0, 1);
      for (;;) {
        if (next == nullptr) {  // hazard-validation restart
          counters_.add(Counter::kDeleteRetries);
          break;
        }
        if (next == tail_) return std::nullopt;
        if (!opt_.timestamps ||
            next->stamp.load(std::memory_order_acquire) <= time) {
          if (!next->deleted.exchange(true, std::memory_order_acq_rel)) {
            node1 = next;  // ours
            break;
          }
          counters_.add(Counter::kClaimLosses);
        } else {
          counters_.add(Counter::kDeleteRetries);  // concurrent-insert skip
        }
        counters_.add(Counter::kPrefixNodes);
        protect_node(hp, 0, next);  // promote: slot 1 already covers it
        cur = next;
        next = protect_step(hp, cur, 0, 1);
      }
    }
    counters_.add(Counter::kClaimWins);

    // node1 is claimed by us: only the claimant unlinks and retires it.
    std::pair<Key, Value> out{node1->key(), node1->value()};
    unlink_claimed(node1, out.first, hp);
    return out;
  }

  /// Removes an arbitrary key (the general skiplist Delete of the paper's
  /// Section 2). Returns the removed value, or nullopt if the key is not
  /// present — including when a concurrent delete_min or erase claimed it
  /// first (the `deleted` flag makes the claim unique).
  std::optional<Value> erase(const Key& key) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);

    Node* saved[kMaxPossibleLevel];
    Node* node;
    for (;;) {
      search_preds(key, saved, hp);
      Node* prev = saved[0];  // protected in slot 0 by search_preds
      node = protect_step(hp, prev, 0, 1);
      while (node != nullptr && node_less(node, key)) {
        protect_node(hp, 0, node);
        prev = node;
        node = protect_step(hp, prev, 0, 1);
      }
      if (node != nullptr) break;
      counters_.add(Counter::kInsertRetries);  // hazard-validation restart
    }
    if (!equals(node, key)) return std::nullopt;
    if (node->deleted.exchange(true, std::memory_order_acq_rel))
      return std::nullopt;  // somebody else claimed it

    Value out = node->value();
    unlink_claimed(node, key, hp);
    return out;
  }

  /// True if an equal, not-yet-claimed key is currently linked. Advisory
  /// under concurrency (the answer may be stale by the time it returns).
  bool contains(const Key& key) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
  restart:
    Node* node = head_;
    for (int i = opt_.max_level - 1; i >= 0; --i) {
      protect_node(hp, 2 * i, node);  // carry the pred down a level
      Node* next = protect_step(hp, node, i, 2 * i + 1);
      for (;;) {
        if (next == nullptr) goto restart;  // hazard-validation restart
        if (!node_less(next, key)) break;
        protect_node(hp, 2 * i, next);
        node = next;
        next = protect_step(hp, node, i, 2 * i + 1);
      }
      if (equals(next, key))
        return !next->deleted.load(std::memory_order_acquire);
    }
    return false;
  }

  /// Copy of the current minimum without removing it, or nullopt if empty.
  /// Advisory: by the time it returns, a concurrent delete_min may have
  /// taken the item.
  std::optional<std::pair<Key, Value>> peek_min() {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
    for (;;) {
      Node* prev = head_;
      protect_node(hp, 0, prev);
      Node* node = protect_step(hp, prev, 0, 1);
      while (node != nullptr && node != tail_) {
        if (!node->deleted.load(std::memory_order_acquire))
          return std::make_pair(node->key(), node->value());
        protect_node(hp, 0, node);
        prev = node;
        node = protect_step(hp, prev, 0, 1);
      }
      if (node == tail_) return std::nullopt;
      counters_.add(Counter::kDeleteRetries);  // hazard-validation restart
    }
  }

  /// Approximate element count (exact when the queue is quiescent).
  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }

  bool empty() const noexcept { return size() == 0; }

  const Options& options() const noexcept { return opt_; }

  /// Number of retired nodes already freed (reclamation is working).
  std::uint64_t reclaimed() const { return reclaimer_->freed_total(); }

  /// Nodes whose allocation was served from the pool's free lists.
  std::uint64_t pool_reused() const { return pool_.reused(); }

  /// The active reclamation policy instance (telemetry / tests).
  const Reclaimer& reclaimer() const noexcept { return *reclaimer_; }

  /// Operation counters plus pool/GC composition; see docs/TELEMETRY.md.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set(counter_name(Counter::kPoolRefills),
             pool_.carved() - pool_base_carved_);
    snap.set(counter_name(Counter::kPoolReused), pool_.reused());
    snap.set(counter_name(Counter::kGcReclaimed), reclaimer_->freed_total());
    snap.set(counter_name(Counter::kGcDeferred), reclaimer_->pending());
    fill_reclaim_telemetry(snap, *reclaimer_);
    return snap;
  }

 private:
  static constexpr int kMaxPossibleLevel = 64;
  static constexpr std::uint64_t kNeverStamped = ~std::uint64_t{0};

  enum class NodeKind : std::uint8_t { Head, Interior, Tail };

  struct Level;

  struct Node {
    std::atomic<bool> deleted{false};
    std::atomic<std::uint64_t> stamp{0};
    /// Bit i set once this node's level-i forward pointer has been frozen
    /// (reversed at the predecessor) by unlink_claimed. Only maintained
    /// under ReclaimPolicy::kHazard: a reversed pointer never changes
    /// again, so protect-then-validate would pass vacuously on it — the
    /// mask is what tells a hazard-pointer walk to restart instead of
    /// trusting the frozen value. Stable while that level's lock is held
    /// (reversal happens under it).
    std::atomic<std::uint64_t> reversed{0};
    detail::TinySpinLock node_lock;
    NodeKind kind;
    int level;
    Level* levels_;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
    Level* levels() noexcept { return levels_; }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(level) * sizeof(Level);
    }

    static constexpr bool pool_compatible() noexcept {
      return alignof(Node) <= detail::NodePool::kGranularity;
    }

    /// Single-allocation factory: node header followed by its level array.
    /// Served by the queue's NodePool when enabled (Options::pooled).
    static Node* make(detail::NodePool* pool, int level, NodeKind kind) {
      const std::size_t bytes = bytes_for(level);
      void* raw = pool && pool_compatible()
                      ? pool->allocate(bytes)
                      : ::operator new(bytes, std::align_val_t{alignof(Node)});
      Node* n = new (raw) Node();
      n->kind = kind;
      n->level = level;
      n->levels_ = reinterpret_cast<Level*>(reinterpret_cast<char*>(raw) +
                                            sizeof(Node));
      for (int i = 0; i < level; ++i) new (&n->levels_[i]) Level();
      return n;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind,
                      const Key& k, const Value& v) {
      Node* n = make(pool, level, kind);
      new (&n->key()) Key(k);
      new (&n->value()) Value(v);
      return n;
    }

    static void destroy(Node* n, detail::NodePool* pool) {
      if (n->kind == NodeKind::Interior) {
        n->key().~Key();
        n->value().~Value();
      }
      const std::size_t bytes = bytes_for(n->level);
      for (int i = 0; i < n->level; ++i) n->levels_[i].~Level();
      n->~Node();
      if (pool && pool_compatible())
        pool->deallocate(static_cast<void*>(n), bytes);
      else
        ::operator delete(static_cast<void*>(n), std::align_val_t{alignof(Node)});
    }
  };

  struct Level {
    std::atomic<Node*> next{nullptr};
    detail::TinySpinLock lock;
  };

  /// Sentinel-aware strict-weak-order: head < interior keys < tail.
  bool node_less(Node* n, const Key& key) const {
    if (n->kind == NodeKind::Head) return true;
    if (n->kind == NodeKind::Tail) return false;
    return cmp_(n->key(), key);
  }

  bool equals(Node* n, const Key& key) const {
    return n->kind == NodeKind::Interior && !cmp_(n->key(), key) &&
           !cmp_(key, n->key());
  }

  int random_level() {
    thread_local detail::Xoshiro256 rng(mix_seed());
    const int lvl = level_dist_(rng);
    return lvl;
  }

  std::uint64_t mix_seed() const {
    // Per-thread, per-queue seed: hash of the base seed and the thread's
    // reclaimer slot (stable and unique within the queue).
    return detail::SplitMix64(opt_.seed +
                              0x9E3779B97F4A7C15ULL *
                                  (static_cast<std::uint64_t>(
                                       const_cast<SkipQueue*>(this)
                                           ->reclaimer_->register_thread()) +
                                   1))
        .next();
  }

  // ---- hazard-pointer machinery -----------------------------------------
  //
  // Slot layout (per thread): 2*i = the level-i predecessor, 2*i + 1 = the
  // level-i candidate successor; level 0's pair doubles as the bottom-scan
  // cursor. A step publishes the successor, fences, re-reads the source
  // pointer AND checks the source's reversed mask — a frozen (reversed)
  // pointer never changes, so re-read equality alone proves nothing. Under
  // any policy but kHazard, Hp.r is null and every helper collapses to a
  // plain acquire load.

  struct Hp {
    HazardPointerReclaimer* r = nullptr;
    std::atomic<const void*>* hz = nullptr;
    int slot = 0;
  };

  Hp hp_ctx(const Reclaimer::Guard& guard) noexcept {
    Hp hp;
    if (hp_ != nullptr) {
      hp.r = hp_;
      hp.slot = guard.slot();
      hp.hz = hp_->hazards_for(hp.slot);
    }
    return hp;
  }

  /// Publishes an already-safe node (protected elsewhere, claimed by us,
  /// reachable only under a held lock, or a sentinel) in the given slot.
  void protect_node(const Hp& hp, int index, Node* n) noexcept {
    if (hp.r != nullptr)
      hp.r->set_hazard(hp.hz, hp.slot, index, n);
  }

  /// Protect-then-validate step from `x` (itself protected or a sentinel)
  /// along its level-`li` forward pointer. Publishes the successor in slot
  /// `index` and revalidates until stable. Returns nullptr if x's pointer
  /// has been reversed — the caller must restart from the head, because a
  /// frozen pointer validates forever while its target may already be
  /// freed. Never nullptr when hazard pointers are off.
  Node* protect_step(const Hp& hp, Node* x, int li, int index) {
    std::atomic<Node*>& src = x->levels()[li].next;
    Node* y = src.load(std::memory_order_acquire);
    if (hp.r == nullptr) return y;
    for (;;) {
      hp.r->set_hazard(hp.hz, hp.slot, index, y);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      Node* y2 = src.load(std::memory_order_acquire);
      if (x->reversed.load(std::memory_order_seq_cst) & (1ULL << li))
        return nullptr;
      if (y2 == y) return y;
      y = y2;
    }
  }

  /// The paper's getLock(): advance to the rightmost node at `li` whose
  /// key precedes `key`, lock its forward pointer, revalidate. The caller
  /// must have `node1` protected in slot 2*li (or pass a sentinel).
  /// Returns nullptr (nothing locked) on a hazard-validation failure; the
  /// caller re-runs search_preds and retries.
  Node* get_lock(Node* node1, const Key& key, int li, const Hp& hp) {
    Node* node2 = protect_step(hp, node1, li, 2 * li + 1);
    for (;;) {
      if (node2 == nullptr) return nullptr;
      if (!node_less(node2, key)) break;
      protect_node(hp, 2 * li, node2);  // promote: slot 2*li+1 covers it
      node1 = node2;
      node2 = protect_step(hp, node1, li, 2 * li + 1);
    }
    node1->levels()[li].lock.lock();
    if (reversed_under_lock(hp, node1, li)) {
      node1->levels()[li].lock.unlock();
      return nullptr;
    }
    node2 = node1->levels()[li].next.load(std::memory_order_acquire);
    while (node_less(node2, key)) {
      // The list moved between the search and the lock: a concurrent
      // insert or unlink beat us here. node2 cannot be retired while we
      // hold node1's level lock (its unlink would need it for the
      // predecessor swing), so publishing its hazard here needs no
      // validation loop — just a fence before the lock is released.
      counters_.add(Counter::kInsertRetries);
      protect_node(hp, 2 * li + 1, node2);
      if (hp.r != nullptr)
        std::atomic_thread_fence(std::memory_order_seq_cst);
      node1->levels()[li].lock.unlock();
      protect_node(hp, 2 * li, node2);  // promote before the hop
      node1 = node2;
      node1->levels()[li].lock.lock();
      if (reversed_under_lock(hp, node1, li)) {
        node1->levels()[li].lock.unlock();
        return nullptr;
      }
      node2 = node1->levels()[li].next.load(std::memory_order_acquire);
    }
    return node1;
  }

  /// While holding node's level-`li` lock the reversed bit is stable:
  /// clear means the node is still linked at that level (the swing and the
  /// reversal both happen under this lock), set means we locked a corpse.
  bool reversed_under_lock(const Hp& hp, Node* node, int li) const {
    return hp.r != nullptr &&
           (node->reversed.load(std::memory_order_seq_cst) & (1ULL << li));
  }

  void search_preds(const Key& key, Node** saved, const Hp& hp) {
  restart:
    Node* node1 = head_;
    for (int i = opt_.max_level - 1; i >= 0; --i) {
      protect_node(hp, 2 * i, node1);  // carry the pred down a level
      Node* node2 = protect_step(hp, node1, i, 2 * i + 1);
      for (;;) {
        if (node2 == nullptr) {  // hazard-validation restart
          counters_.add(Counter::kInsertRetries);
          goto restart;
        }
        if (!node_less(node2, key)) break;
        protect_node(hp, 2 * i, node2);  // promote: slot 2*i+1 covers it
        node1 = node2;
        node2 = protect_step(hp, node1, i, 2 * i + 1);
      }
      saved[i] = node1;
    }
  }

  /// Physically unlinks a node whose `deleted` flag the caller won, then
  /// retires it. Shared tail of delete_min and erase (the paper's regular
  /// skiplist Delete): top-down, predecessor pointer first, then reverse
  /// the node's own pointer so concurrent readers are redirected.
  void unlink_claimed(Node* node2, const Key& key, const Hp& hp) {
    Node* saved[kMaxPossibleLevel];
    search_preds(key, saved, hp);

    if (hp.r == nullptr) {
      // Debug sanity walk: the claimed node is findable. Skipped under
      // hazard pointers — the walk's successor hops are unprotected.
      Node* located = saved[0];
      while (!equals(located, key))
        located = located->levels()[0].next.load(std::memory_order_acquire);
      assert(located == node2);
      (void)located;
    }

    node2->node_lock.lock();  // waits out a still-linking insert

    for (int i = node2->level - 1; i >= 0; --i) {
      Node* pred = get_lock(saved[i], key, i, hp);
      while (pred == nullptr) {  // hazard-validation restart
        counters_.add(Counter::kInsertRetries);
        search_preds(key, saved, hp);
        pred = get_lock(saved[i], key, i, hp);
      }
      node2->levels()[i].lock.lock();
      pred->levels()[i].next.store(
          node2->levels()[i].next.load(std::memory_order_acquire),
          std::memory_order_release);
      // Freeze order matters: swing the predecessor past node2, mark the
      // level reversed, only then store the reversal pointer. A hazard
      // walk that still reads the forward pointer with the mask clear is
      // safe (the swing was not visible yet); one that reads the reversal
      // pointer is guaranteed to see the mask and restart.
      if (hp.r != nullptr)
        node2->reversed.fetch_or(1ULL << i, std::memory_order_seq_cst);
      node2->levels()[i].next.store(pred, std::memory_order_release);
      node2->levels()[i].lock.unlock();
      pred->levels()[i].lock.unlock();
    }

    node2->node_lock.unlock();
    size_.fetch_sub(1, std::memory_order_relaxed);
    reclaimer_->retire(node2);
  }

  detail::NodePool* pool_ptr() noexcept {
    return opt_.pooled ? &pool_ : nullptr;
  }

  // pool_ is the first member so it is destroyed last: the destructor body
  // and reclaimer_'s drain both return blocks to it.
  detail::NodePool pool_;
  Options opt_;
  Compare cmp_;
  detail::GeometricLevel level_dist_;
  std::unique_ptr<Reclaimer> reclaimer_;
  HazardPointerReclaimer* hp_;  ///< non-null only under kHazard
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
  OpCounters counters_;
  std::uint64_t pool_base_carved_ = 0;
};

/// Convenience alias for the Section 5.4 variant.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class RelaxedSkipQueue : public SkipQueue<Key, Value, Compare> {
 public:
  using Base = SkipQueue<Key, Value, Compare>;
  RelaxedSkipQueue() : Base(relaxed_options()) {}
  explicit RelaxedSkipQueue(typename Base::Options opt) : Base(fix(opt)) {}

 private:
  static typename Base::Options relaxed_options() {
    typename Base::Options o;
    o.timestamps = false;
    return o;
  }
  static typename Base::Options fix(typename Base::Options o) {
    o.timestamps = false;
    return o;
  }
};

}  // namespace slpq
