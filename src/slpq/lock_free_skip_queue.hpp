// slpq::LockFreeSkipQueue — the lock-free successor of the paper's
// SkipQueue.
//
// The paper's delete-min idea (claim the first available bottom-level node
// with one atomic SWAP on its deleted flag, then run a regular skiplist
// delete) transfers directly to a lock-free skiplist; this is the design
// that follow-on work (Sundell & Tsigas 2003; Herlihy & Shavit's textbook
// PrioritySkipList) made standard, included here as the paper's
// future-work direction.
//
//  * The list is a Harris/Michael-style lock-free skiplist: each node's
//    per-level successor pointer carries a *mark bit* in its low bit;
//    marking logically deletes the node at that level, and any traversal
//    (find) physically snips marked runs with CAS — cooperative helping,
//    no locks anywhere.
//  * Nodes with equal keys are allowed (there is no update-in-place path);
//    the total order is (key, node address), which keeps find() meaningful
//    under duplicates.
//  * delete_min claims a node exactly as in the paper — one atomic
//    exchange on its `claimed` flag — then marks its levels top-down and
//    lets find() unlink it. The claim is the operation's serialization
//    point, exactly as in the lock-based proof (Section 4.2).
//  * Optional insert time-stamps give the same ignore-concurrent-inserts
//    property as the lock-based queue; timestamps=false is the relaxed
//    variant.
//  * Reclamation: any slpq::Reclaimer policy (Options::reclaim). The
//    default is the paper's Section 3 timestamp scheme: the claimant
//    retires its node after the physical unlink; entry-time guards make
//    that safe for concurrent traversals and also rule out CAS ABA (a
//    node's address never recycles while anyone who could hold it is
//    inside). Under hazard pointers the traversals protect-then-validate
//    every step (see the Hp helpers); epoch and leaky need no per-step
//    work.
//
// Progress: insert, erase and the physical part of delete_min are
// lock-free; the claiming scan is non-blocking in the paper's sense (a
// scanner fails to claim only because another delete-min succeeded).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "slpq/detail/node_pool.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/hazard_reclaimer.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/telemetry.hpp"
#include "slpq/ts_reclaimer.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class LockFreeSkipQueue {
 public:
  struct Options {
    int max_level = 20;
    double p = 0.5;
    bool timestamps = true;  ///< false => relaxed semantics (Section 5.4)
    bool pooled = true;      ///< allocate nodes from a per-thread NodePool
    /// Memory-reclamation policy for retired nodes (docs/ALGORITHMS.md).
    ReclaimPolicy reclaim = ReclaimPolicy::kTimestamp;
    std::uint64_t seed = 0x10CFEE1ULL;
  };

  LockFreeSkipQueue() : LockFreeSkipQueue(Options()) {}

  explicit LockFreeSkipQueue(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        level_dist_(opt.p, opt.max_level),
        reclaimer_(make_reclaimer(
            opt.reclaim,
            [this](void* p) { Node::destroy(static_cast<Node*>(p), pool_ptr()); },
            // pred+curr per level, plus the peek and claim scratch slots.
            2 * opt.max_level + 2)),
        hp_(opt.reclaim == ReclaimPolicy::kHazard
                ? static_cast<HazardPointerReclaimer*>(reclaimer_.get())
                : nullptr) {
    assert(opt_.max_level >= 1 && opt_.max_level <= kMaxPossibleLevel);
    head_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Head);
    tail_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Tail);
    head_->claimed.store(true, std::memory_order_relaxed);
    tail_->claimed.store(true, std::memory_order_relaxed);
    head_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    tail_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    for (int i = 0; i < opt_.max_level; ++i)
      head_->next(i).store(pack(tail_, false), std::memory_order_relaxed);
    // Telemetry baseline: sentinel carves don't count as pool_refills.
    pool_base_carved_ = pool_.carved();
  }

  ~LockFreeSkipQueue() {
    Node* n = strip(head_->next(0).load(std::memory_order_relaxed));
    while (n != tail_) {
      Node* next = strip(n->next(0).load(std::memory_order_relaxed));
      Node::destroy(n, pool_ptr());
      n = next;
    }
    Node::destroy(head_, pool_ptr());
    Node::destroy(tail_, pool_ptr());
  }

  LockFreeSkipQueue(const LockFreeSkipQueue&) = delete;
  LockFreeSkipQueue& operator=(const LockFreeSkipQueue&) = delete;

  /// Inserts (key, value). Duplicate keys are allowed; every call adds a
  /// distinct item.
  void insert(const Key& key, const Value& value) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);

    const int top = random_level();
    Node* n = Node::make(pool_ptr(), top, NodeKind::Interior, key, value);
    if (opt_.timestamps)
      n->stamp.store(kNeverStamped, std::memory_order_relaxed);
    // Once the bottom CAS lands, a concurrent delete_min may claim, remove
    // and retire n while we are still linking its upper levels: pin it for
    // the whole operation.
    protect_node(hp, claim_index(), n);

    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];

    // Link the bottom level first; its CAS is the insert's linearization.
    for (;;) {
      find(key, n, preds, succs, hp);
      for (int lv = 0; lv < top; ++lv)
        n->next(lv).store(pack(succs[lv], false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(succs[0], false);
      if (preds[0]->next(0).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire))
        break;
      counters_.add(Counter::kFailedCas);
      counters_.add(Counter::kInsertRetries);
    }

    // Link the upper levels; a concurrent remover may mark us mid-way, in
    // which case we stop (it will unlink whatever we managed to link).
    for (int lv = 1; lv < top;) {
      std::uintptr_t cur = n->next(lv).load(std::memory_order_acquire);
      if (is_marked(cur)) break;
      if (strip(cur) != succs[lv]) {
        if (!n->next(lv).compare_exchange_strong(cur, pack(succs[lv], false),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))
          break;  // we got marked: stop linking
      }
      std::uintptr_t expected = pack(succs[lv], false);
      if (preds[lv]->next(lv).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        ++lv;
        continue;
      }
      counters_.add(Counter::kFailedCas);
      find(key, n, preds, succs, hp);  // refresh the neighborhood and retry
    }

    if (opt_.timestamps)
      n->stamp.store(reclaimer_->advance_clock(), std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claims and removes a minimal item (paper semantics; see SkipQueue).
  std::optional<std::pair<Key, Value>> delete_min() {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
    const std::uint64_t time = guard.entry_time();

    Node* hit = scan_bottom(
        hp, strip(protect_word(hp, head_->next(0), 1)),
        [](Node*) { return true; },
        [&](Node* n) {
          const bool eligible =
              !opt_.timestamps ||
              n->stamp.load(std::memory_order_acquire) <= time;
          if (!eligible) counters_.add(Counter::kDeleteRetries);
          if (eligible && try_claim(n)) return true;
          counters_.add(Counter::kPrefixNodes);
          return false;
        });
    if (hit == nullptr) return std::nullopt;
    counters_.add(Counter::kClaimWins);
    // hit is claimed by us: only the claimant retires it, so reading and
    // removing it needs no hazard once the claim has landed.
    std::pair<Key, Value> out{hit->key(), hit->value()};
    remove(hit, hp);
    return out;
  }

  /// Claims and removes the first not-yet-claimed item with this key.
  std::optional<Value> erase(const Key& key) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(key, nullptr, preds, succs, hp);
    Node* hit = scan_bottom(
        hp, succs[0], [&](Node* n) { return equals(n, key); },
        [&](Node* n) { return try_claim(n); });
    if (hit == nullptr) return std::nullopt;
    Value out = hit->value();
    remove(hit, hp);
    return out;
  }

  /// Advisory: is some unclaimed item with this key currently linked?
  bool contains(const Key& key) {
    Reclaimer::Guard guard(*reclaimer_);
    const Hp hp = hp_ctx(guard);
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(key, nullptr, preds, succs, hp);
    return scan_bottom(hp, succs[0],
                       [&](Node* n) { return equals(n, key); },
                       [](Node* n) {
                         return !n->claimed.load(std::memory_order_acquire);
                       }) != nullptr;
  }

  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }
  std::uint64_t reclaimed() const { return reclaimer_->freed_total(); }
  /// Nodes whose allocation was served from the pool's free lists.
  std::uint64_t pool_reused() const { return pool_.reused(); }
  const Options& options() const noexcept { return opt_; }
  const Reclaimer& reclaimer() const noexcept { return *reclaimer_; }

  /// Operation counters plus pool/GC composition; see docs/TELEMETRY.md.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set(counter_name(Counter::kPoolRefills),
             pool_.carved() - pool_base_carved_);
    snap.set(counter_name(Counter::kPoolReused), pool_.reused());
    snap.set(counter_name(Counter::kGcReclaimed), reclaimer_->freed_total());
    snap.set(counter_name(Counter::kGcDeferred), reclaimer_->pending());
    fill_reclaim_telemetry(snap, *reclaimer_);
    return snap;
  }

 private:
  static constexpr int kMaxPossibleLevel = 64;
  static constexpr std::uint64_t kNeverStamped = ~std::uint64_t{0};

  enum class NodeKind : std::uint8_t { Head, Interior, Tail };

  struct Node {
    std::atomic<bool> claimed{false};
    std::atomic<std::uint64_t> stamp{0};
    NodeKind kind;
    int level;
    std::atomic<std::uintptr_t>* next_;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
    std::atomic<std::uintptr_t>& next(int lv) noexcept { return next_[lv]; }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) +
             static_cast<std::size_t>(level) * sizeof(std::atomic<std::uintptr_t>);
    }

    // A node lives in one allocation (header + level array), served by the
    // queue's NodePool when enabled and the pool's 16-byte block alignment
    // suffices for Node.
    static constexpr bool pool_compatible() noexcept {
      return alignof(Node) <= detail::NodePool::kGranularity;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind) {
      const std::size_t bytes = bytes_for(level);
      void* raw = pool && pool_compatible()
                      ? pool->allocate(bytes)
                      : ::operator new(bytes, std::align_val_t{alignof(Node)});
      Node* n = new (raw) Node();
      n->kind = kind;
      n->level = level;
      n->next_ = reinterpret_cast<std::atomic<std::uintptr_t>*>(
          reinterpret_cast<char*>(raw) + sizeof(Node));
      for (int i = 0; i < level; ++i)
        new (&n->next_[i]) std::atomic<std::uintptr_t>(0);
      return n;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind,
                      const Key& k, const Value& v) {
      Node* n = make(pool, level, kind);
      new (&n->key()) Key(k);
      new (&n->value()) Value(v);
      return n;
    }

    static void destroy(Node* n, detail::NodePool* pool) {
      if (n->kind == NodeKind::Interior) {
        n->key().~Key();
        n->value().~Value();
      }
      const std::size_t bytes = bytes_for(n->level);
      for (int i = 0; i < n->level; ++i)
        n->next_[i].~atomic<std::uintptr_t>();
      n->~Node();
      if (pool && pool_compatible())
        pool->deallocate(static_cast<void*>(n), bytes);
      else
        ::operator delete(static_cast<void*>(n), std::align_val_t{alignof(Node)});
    }
  };

  // ---- marked-pointer helpers -------------------------------------------
  static std::uintptr_t pack(Node* n, bool marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* strip(std::uintptr_t w) noexcept {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) noexcept { return (w & 1u) != 0; }

  /// Total order used by find(): (key, node address). `anchor == nullptr`
  /// sorts before every node with an equal key, so key-only searches land
  /// on the first duplicate.
  bool node_before(Node* n, const Key& key, const Node* anchor) const {
    if (n->kind == NodeKind::Head) return true;
    if (n->kind == NodeKind::Tail) return false;
    if (cmp_(n->key(), key)) return true;
    if (cmp_(key, n->key())) return false;
    return std::less<const Node*>{}(n, anchor);
  }

  bool equals(Node* n, const Key& key) const {
    return n->kind == NodeKind::Interior && !cmp_(n->key(), key) &&
           !cmp_(key, n->key());
  }

  int random_level() {
    thread_local detail::Xoshiro256 rng(
        detail::SplitMix64(opt_.seed ^
                           (reinterpret_cast<std::uintptr_t>(&rng) >> 4))
            .next());
    return level_dist_(rng);
  }

  // ---- hazard-pointer plumbing ------------------------------------------
  //
  // Slot layout (per thread): 2*lv = preds[lv], 2*lv + 1 = succs[lv] /
  // the bottom-walk cursor, 2*max_level = the peek scratch a candidate is
  // validated in before promotion (Lindén's peek/promote), and
  // 2*max_level + 1 pins an in-flight insert's own node. Under any other
  // policy Hp.r is null and every helper collapses to a plain load.

  struct Hp {
    HazardPointerReclaimer* r = nullptr;
    std::atomic<const void*>* hz = nullptr;
    int slot = 0;
  };

  Hp hp_ctx(const Reclaimer::Guard& guard) noexcept {
    Hp hp;
    if (hp_ != nullptr) {
      hp.r = hp_;
      hp.slot = guard.slot();
      hp.hz = hp_->hazards_for(hp.slot);
    }
    return hp;
  }

  int peek_index() const noexcept { return 2 * opt_.max_level; }
  int claim_index() const noexcept { return 2 * opt_.max_level + 1; }

  /// Publishes an already-safe node (protected elsewhere, claimed by us,
  /// or a sentinel) in the given slot. No validation needed.
  void protect_node(const Hp& hp, int index, Node* n) noexcept {
    if (hp.r != nullptr)
      hp.r->set_hazard(hp.hz, hp.slot, index, n);
  }

  /// Protect-then-validate load of `src`: publishes the target in slot
  /// `index`, re-reads `src`, and retries until the target is stable. The
  /// caller guarantees src's owner node cannot be freed (head, or itself
  /// protected). Returns the stable word (mark bit may differ across the
  /// validation reads; only the target pointer must match).
  std::uintptr_t protect_word(const Hp& hp, std::atomic<std::uintptr_t>& src,
                              int index) {
    std::uintptr_t w = src.load(std::memory_order_acquire);
    if (hp.r == nullptr) return w;
    for (;;) {
      hp.r->set_hazard(hp.hz, hp.slot, index, strip(w));
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::uintptr_t w2 = src.load(std::memory_order_acquire);
      if (strip(w2) == strip(w)) return w2;
      w = w2;
    }
  }

  /// The bottom-level scan shared by delete_min, erase and contains: walks
  /// from `curr` (protected in slot 1 by the caller) while `within(node)`
  /// holds, returning the first node `visit` accepts (or nullptr when the
  /// walk ran out). Each advance peeks the successor into the scratch slot
  /// and promotes it to slot 1 once validated.
  template <typename Within, typename Visit>
  Node* scan_bottom(const Hp& hp, Node* curr, Within&& within, Visit&& visit) {
    while (curr != tail_ && within(curr)) {
      if (visit(curr)) return curr;
      Node* nxt = strip(protect_word(hp, curr->next(0), peek_index()));
      protect_node(hp, 1, nxt);
      curr = nxt;
    }
    return nullptr;
  }

  /// One test-and-test-and-set on the claimed flag; true iff we won it.
  bool try_claim(Node* n) {
    if (n->claimed.load(std::memory_order_relaxed)) return false;
    if (!n->claimed.exchange(true, std::memory_order_acq_rel)) return true;
    counters_.add(Counter::kClaimLosses);  // lost the SWAP race outright
    return false;
  }

  /// Harris-style find with helping: positions preds/succs around the
  /// (key, anchor) point, snipping marked runs as it goes. Under hazard
  /// pointers, preds[lv]/succs[lv] end up protected in slots 2lv/2lv+1 and
  /// stay protected until the operation's Guard exits.
  void find(const Key& key, const Node* anchor, Node** preds, Node** succs,
            const Hp& hp) {
  retry:
    Node* pred = head_;
    for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
      // pred is the head or still protected by a higher level's slot:
      // re-publish it in this level's pred slot so it outlives the descent.
      protect_node(hp, 2 * lv, pred);
      Node* curr = strip(protect_word(hp, pred->next(lv), 2 * lv + 1));
      for (;;) {
        std::uintptr_t succ_word =
            protect_word(hp, curr->next(lv), peek_index());
        while (is_marked(succ_word)) {
          // curr is logically gone at this level: snip it.
          std::uintptr_t expected = pack(curr, false);
          if (!pred->next(lv).compare_exchange_strong(
                  expected, pack(strip(succ_word), false),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            counters_.add(Counter::kFailedCas);
            goto retry;
          }
          curr = strip(succ_word);
          protect_node(hp, 2 * lv + 1, curr);  // promote peek -> curr slot
          succ_word = protect_word(hp, curr->next(lv), peek_index());
        }
        if (node_before(curr, key, anchor)) {
          pred = curr;
          protect_node(hp, 2 * lv, pred);  // curr slot still covers it
          curr = strip(succ_word);
          protect_node(hp, 2 * lv + 1, curr);  // promote peek -> curr slot
        } else {
          break;
        }
      }
      preds[lv] = pred;
      succs[lv] = curr;
    }
  }

  /// Physically removes a node whose `claimed` flag the caller won: mark
  /// every level top-down (the bottom-level mark is the removal's
  /// linearization), then let find() snip it, then retire it.
  void remove(Node* n, const Hp& hp) {
    for (int lv = n->level - 1; lv >= 0; --lv) {
      std::uintptr_t cur = n->next(lv).load(std::memory_order_acquire);
      while (!is_marked(cur)) {
        if (n->next(lv).compare_exchange_weak(cur, cur | 1u,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
          break;
      }
    }
    // One find() pass guarantees the node is unlinked from every level
    // before we hand it to the reclaimer.
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(n->key(), n, preds, succs, hp);
    size_.fetch_sub(1, std::memory_order_relaxed);
    reclaimer_->retire(n);
  }

  detail::NodePool* pool_ptr() noexcept {
    return opt_.pooled ? &pool_ : nullptr;
  }

  // pool_ is the first member so it is destroyed last: the destructor body
  // and reclaimer_'s drain both return blocks to it.
  detail::NodePool pool_;
  Options opt_;
  Compare cmp_;
  detail::GeometricLevel level_dist_;
  std::unique_ptr<Reclaimer> reclaimer_;
  HazardPointerReclaimer* hp_;  ///< non-null iff reclaim == kHazard
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
  OpCounters counters_;
  std::uint64_t pool_base_carved_ = 0;
};

}  // namespace slpq
