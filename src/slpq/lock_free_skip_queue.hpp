// slpq::LockFreeSkipQueue — the lock-free successor of the paper's
// SkipQueue.
//
// The paper's delete-min idea (claim the first available bottom-level node
// with one atomic SWAP on its deleted flag, then run a regular skiplist
// delete) transfers directly to a lock-free skiplist; this is the design
// that follow-on work (Sundell & Tsigas 2003; Herlihy & Shavit's textbook
// PrioritySkipList) made standard, included here as the paper's
// future-work direction.
//
//  * The list is a Harris/Michael-style lock-free skiplist: each node's
//    per-level successor pointer carries a *mark bit* in its low bit;
//    marking logically deletes the node at that level, and any traversal
//    (find) physically snips marked runs with CAS — cooperative helping,
//    no locks anywhere.
//  * Nodes with equal keys are allowed (there is no update-in-place path);
//    the total order is (key, node address), which keeps find() meaningful
//    under duplicates.
//  * delete_min claims a node exactly as in the paper — one atomic
//    exchange on its `claimed` flag — then marks its levels top-down and
//    lets find() unlink it. The claim is the operation's serialization
//    point, exactly as in the lock-based proof (Section 4.2).
//  * Optional insert time-stamps give the same ignore-concurrent-inserts
//    property as the lock-based queue; timestamps=false is the relaxed
//    variant.
//  * Reclamation: the paper's Section 3 scheme (TimestampReclaimer). The
//    claimant retires its node after the physical unlink; entry-time
//    guards make that safe for concurrent traversals and also rule out
//    CAS ABA (a node's address never recycles while anyone who could hold
//    it is inside).
//
// Progress: insert, erase and the physical part of delete_min are
// lock-free; the claiming scan is non-blocking in the paper's sense (a
// scanner fails to claim only because another delete-min succeeded).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <utility>

#include "slpq/detail/node_pool.hpp"
#include "slpq/detail/random.hpp"
#include "slpq/telemetry.hpp"
#include "slpq/ts_reclaimer.hpp"

namespace slpq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class LockFreeSkipQueue {
 public:
  struct Options {
    int max_level = 20;
    double p = 0.5;
    bool timestamps = true;  ///< false => relaxed semantics (Section 5.4)
    bool pooled = true;      ///< allocate nodes from a per-thread NodePool
    std::uint64_t seed = 0x10CFEE1ULL;
  };

  LockFreeSkipQueue() : LockFreeSkipQueue(Options()) {}

  explicit LockFreeSkipQueue(Options opt, Compare cmp = Compare())
      : opt_(opt),
        cmp_(std::move(cmp)),
        level_dist_(opt.p, opt.max_level),
        reclaimer_([this](void* p) {
          Node::destroy(static_cast<Node*>(p), pool_ptr());
        }) {
    assert(opt_.max_level >= 1 && opt_.max_level <= kMaxPossibleLevel);
    head_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Head);
    tail_ = Node::make(pool_ptr(), opt_.max_level, NodeKind::Tail);
    head_->claimed.store(true, std::memory_order_relaxed);
    tail_->claimed.store(true, std::memory_order_relaxed);
    head_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    tail_->stamp.store(kNeverStamped, std::memory_order_relaxed);
    for (int i = 0; i < opt_.max_level; ++i)
      head_->next(i).store(pack(tail_, false), std::memory_order_relaxed);
    // Telemetry baseline: sentinel carves don't count as pool_refills.
    pool_base_carved_ = pool_.carved();
  }

  ~LockFreeSkipQueue() {
    Node* n = strip(head_->next(0).load(std::memory_order_relaxed));
    while (n != tail_) {
      Node* next = strip(n->next(0).load(std::memory_order_relaxed));
      Node::destroy(n, pool_ptr());
      n = next;
    }
    Node::destroy(head_, pool_ptr());
    Node::destroy(tail_, pool_ptr());
  }

  LockFreeSkipQueue(const LockFreeSkipQueue&) = delete;
  LockFreeSkipQueue& operator=(const LockFreeSkipQueue&) = delete;

  /// Inserts (key, value). Duplicate keys are allowed; every call adds a
  /// distinct item.
  void insert(const Key& key, const Value& value) {
    TimestampReclaimer::Guard guard(reclaimer_);

    const int top = random_level();
    Node* n = Node::make(pool_ptr(), top, NodeKind::Interior, key, value);
    if (opt_.timestamps)
      n->stamp.store(kNeverStamped, std::memory_order_relaxed);

    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];

    // Link the bottom level first; its CAS is the insert's linearization.
    for (;;) {
      find(key, n, preds, succs);
      for (int lv = 0; lv < top; ++lv)
        n->next(lv).store(pack(succs[lv], false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(succs[0], false);
      if (preds[0]->next(0).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire))
        break;
      counters_.add(Counter::kFailedCas);
      counters_.add(Counter::kInsertRetries);
    }

    // Link the upper levels; a concurrent remover may mark us mid-way, in
    // which case we stop (it will unlink whatever we managed to link).
    for (int lv = 1; lv < top;) {
      std::uintptr_t cur = n->next(lv).load(std::memory_order_acquire);
      if (is_marked(cur)) break;
      if (strip(cur) != succs[lv]) {
        if (!n->next(lv).compare_exchange_strong(cur, pack(succs[lv], false),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))
          break;  // we got marked: stop linking
      }
      std::uintptr_t expected = pack(succs[lv], false);
      if (preds[lv]->next(lv).compare_exchange_strong(
              expected, pack(n, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        ++lv;
        continue;
      }
      counters_.add(Counter::kFailedCas);
      find(key, n, preds, succs);  // refresh the neighborhood and retry
    }

    if (opt_.timestamps)
      n->stamp.store(reclaimer_.advance_clock(), std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claims and removes a minimal item (paper semantics; see SkipQueue).
  std::optional<std::pair<Key, Value>> delete_min() {
    TimestampReclaimer::Guard guard(reclaimer_);
    const std::uint64_t time = guard.entry_time();

    Node* hit = scan_bottom(
        strip(head_->next(0).load(std::memory_order_acquire)),
        [](Node*) { return true; },
        [&](Node* n) {
          const bool eligible =
              !opt_.timestamps ||
              n->stamp.load(std::memory_order_acquire) <= time;
          if (!eligible) counters_.add(Counter::kDeleteRetries);
          if (eligible && try_claim(n)) return true;
          counters_.add(Counter::kPrefixNodes);
          return false;
        });
    if (hit == nullptr) return std::nullopt;
    counters_.add(Counter::kClaimWins);
    std::pair<Key, Value> out{hit->key(), hit->value()};
    remove(hit);
    return out;
  }

  /// Claims and removes the first not-yet-claimed item with this key.
  std::optional<Value> erase(const Key& key) {
    TimestampReclaimer::Guard guard(reclaimer_);
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(key, nullptr, preds, succs);
    Node* hit = scan_bottom(
        succs[0], [&](Node* n) { return equals(n, key); },
        [&](Node* n) { return try_claim(n); });
    if (hit == nullptr) return std::nullopt;
    Value out = hit->value();
    remove(hit);
    return out;
  }

  /// Advisory: is some unclaimed item with this key currently linked?
  bool contains(const Key& key) {
    TimestampReclaimer::Guard guard(reclaimer_);
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(key, nullptr, preds, succs);
    return scan_bottom(succs[0], [&](Node* n) { return equals(n, key); },
                       [](Node* n) {
                         return !n->claimed.load(std::memory_order_acquire);
                       }) != nullptr;
  }

  std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }
  std::uint64_t reclaimed() const { return reclaimer_.freed_total(); }
  /// Nodes whose allocation was served from the pool's free lists.
  std::uint64_t pool_reused() const { return pool_.reused(); }
  const Options& options() const noexcept { return opt_; }

  /// Operation counters plus pool/GC composition; see docs/TELEMETRY.md.
  TelemetrySnapshot telemetry() const {
    TelemetrySnapshot snap;
    counters_.fill(snap);
    snap.set(counter_name(Counter::kPoolRefills),
             pool_.carved() - pool_base_carved_);
    snap.set(counter_name(Counter::kPoolReused), pool_.reused());
    snap.set(counter_name(Counter::kGcReclaimed), reclaimer_.freed_total());
    snap.set(counter_name(Counter::kGcDeferred), reclaimer_.pending());
    return snap;
  }

 private:
  static constexpr int kMaxPossibleLevel = 64;
  static constexpr std::uint64_t kNeverStamped = ~std::uint64_t{0};

  enum class NodeKind : std::uint8_t { Head, Interior, Tail };

  struct Node {
    std::atomic<bool> claimed{false};
    std::atomic<std::uint64_t> stamp{0};
    NodeKind kind;
    int level;
    std::atomic<std::uintptr_t>* next_;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Key& key() noexcept { return *reinterpret_cast<Key*>(key_buf); }
    Value& value() noexcept { return *reinterpret_cast<Value*>(value_buf); }
    std::atomic<std::uintptr_t>& next(int lv) noexcept { return next_[lv]; }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) +
             static_cast<std::size_t>(level) * sizeof(std::atomic<std::uintptr_t>);
    }

    // A node lives in one allocation (header + level array), served by the
    // queue's NodePool when enabled and the pool's 16-byte block alignment
    // suffices for Node.
    static constexpr bool pool_compatible() noexcept {
      return alignof(Node) <= detail::NodePool::kGranularity;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind) {
      const std::size_t bytes = bytes_for(level);
      void* raw = pool && pool_compatible()
                      ? pool->allocate(bytes)
                      : ::operator new(bytes, std::align_val_t{alignof(Node)});
      Node* n = new (raw) Node();
      n->kind = kind;
      n->level = level;
      n->next_ = reinterpret_cast<std::atomic<std::uintptr_t>*>(
          reinterpret_cast<char*>(raw) + sizeof(Node));
      for (int i = 0; i < level; ++i)
        new (&n->next_[i]) std::atomic<std::uintptr_t>(0);
      return n;
    }

    static Node* make(detail::NodePool* pool, int level, NodeKind kind,
                      const Key& k, const Value& v) {
      Node* n = make(pool, level, kind);
      new (&n->key()) Key(k);
      new (&n->value()) Value(v);
      return n;
    }

    static void destroy(Node* n, detail::NodePool* pool) {
      if (n->kind == NodeKind::Interior) {
        n->key().~Key();
        n->value().~Value();
      }
      const std::size_t bytes = bytes_for(n->level);
      for (int i = 0; i < n->level; ++i)
        n->next_[i].~atomic<std::uintptr_t>();
      n->~Node();
      if (pool && pool_compatible())
        pool->deallocate(static_cast<void*>(n), bytes);
      else
        ::operator delete(static_cast<void*>(n), std::align_val_t{alignof(Node)});
    }
  };

  // ---- marked-pointer helpers -------------------------------------------
  static std::uintptr_t pack(Node* n, bool marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* strip(std::uintptr_t w) noexcept {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) noexcept { return (w & 1u) != 0; }

  /// Total order used by find(): (key, node address). `anchor == nullptr`
  /// sorts before every node with an equal key, so key-only searches land
  /// on the first duplicate.
  bool node_before(Node* n, const Key& key, const Node* anchor) const {
    if (n->kind == NodeKind::Head) return true;
    if (n->kind == NodeKind::Tail) return false;
    if (cmp_(n->key(), key)) return true;
    if (cmp_(key, n->key())) return false;
    return std::less<const Node*>{}(n, anchor);
  }

  bool equals(Node* n, const Key& key) const {
    return n->kind == NodeKind::Interior && !cmp_(n->key(), key) &&
           !cmp_(key, n->key());
  }

  int random_level() {
    thread_local detail::Xoshiro256 rng(
        detail::SplitMix64(opt_.seed ^
                           (reinterpret_cast<std::uintptr_t>(&rng) >> 4))
            .next());
    return level_dist_(rng);
  }

  /// The bottom-level scan shared by delete_min, erase and contains: walks
  /// from `curr` while `within(node)` holds, returning the first node
  /// `visit` accepts (or nullptr when the walk ran out).
  template <typename Within, typename Visit>
  Node* scan_bottom(Node* curr, Within&& within, Visit&& visit) {
    while (curr != tail_ && within(curr)) {
      if (visit(curr)) return curr;
      curr = strip(curr->next(0).load(std::memory_order_acquire));
    }
    return nullptr;
  }

  /// One test-and-test-and-set on the claimed flag; true iff we won it.
  bool try_claim(Node* n) {
    if (n->claimed.load(std::memory_order_relaxed)) return false;
    if (!n->claimed.exchange(true, std::memory_order_acq_rel)) return true;
    counters_.add(Counter::kClaimLosses);  // lost the SWAP race outright
    return false;
  }

  /// Harris-style find with helping: positions preds/succs around the
  /// (key, anchor) point, snipping marked runs as it goes.
  void find(const Key& key, const Node* anchor, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int lv = opt_.max_level - 1; lv >= 0; --lv) {
      Node* curr = strip(pred->next(lv).load(std::memory_order_acquire));
      for (;;) {
        std::uintptr_t succ_word =
            curr->next(lv).load(std::memory_order_acquire);
        while (is_marked(succ_word)) {
          // curr is logically gone at this level: snip it.
          std::uintptr_t expected = pack(curr, false);
          if (!pred->next(lv).compare_exchange_strong(
                  expected, pack(strip(succ_word), false),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            counters_.add(Counter::kFailedCas);
            goto retry;
          }
          curr = strip(succ_word);
          succ_word = curr->next(lv).load(std::memory_order_acquire);
        }
        if (node_before(curr, key, anchor)) {
          pred = curr;
          curr = strip(succ_word);
        } else {
          break;
        }
      }
      preds[lv] = pred;
      succs[lv] = curr;
    }
  }

  /// Physically removes a node whose `claimed` flag the caller won: mark
  /// every level top-down (the bottom-level mark is the removal's
  /// linearization), then let find() snip it, then retire it.
  void remove(Node* n) {
    for (int lv = n->level - 1; lv >= 0; --lv) {
      std::uintptr_t cur = n->next(lv).load(std::memory_order_acquire);
      while (!is_marked(cur)) {
        if (n->next(lv).compare_exchange_weak(cur, cur | 1u,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
          break;
      }
    }
    // One find() pass guarantees the node is unlinked from every level
    // before we hand it to the reclaimer.
    Node* preds[kMaxPossibleLevel];
    Node* succs[kMaxPossibleLevel];
    find(n->key(), n, preds, succs);
    size_.fetch_sub(1, std::memory_order_relaxed);
    reclaimer_.retire(n);
  }

  detail::NodePool* pool_ptr() noexcept {
    return opt_.pooled ? &pool_ : nullptr;
  }

  // pool_ is the first member so it is destroyed last: the destructor body
  // and reclaimer_'s drain both return blocks to it.
  detail::NodePool pool_;
  Options opt_;
  Compare cmp_;
  detail::GeometricLevel level_dist_;
  TimestampReclaimer reclaimer_;
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
  OpCounters counters_;
  std::uint64_t pool_base_carved_ = 0;
};

}  // namespace slpq
