// Library version and build information.
#pragma once

namespace slpq {

struct Version {
  int major;
  int minor;
  int patch;
};

/// Version of the slpq library.
Version version() noexcept;

/// Human-readable build description (compiler, standard, fiber backend).
const char* build_info() noexcept;

}  // namespace slpq
