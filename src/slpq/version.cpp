#include "slpq/version.hpp"

namespace slpq {

Version version() noexcept { return {1, 0, 0}; }

const char* build_info() noexcept {
#if defined(__clang__)
  return "slpq 1.0.0 (clang, C++20)";
#elif defined(__GNUC__)
  return "slpq 1.0.0 (gcc, C++20)";
#else
  return "slpq 1.0.0 (unknown compiler, C++20)";
#endif
}

}  // namespace slpq
