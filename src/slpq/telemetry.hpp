// Queue-level telemetry: cheap per-thread operation counters and the
// type-erased snapshot that carries them to the harness.
//
// The paper's evaluation (Sections 5-6) explains throughput through
// contention events — processors racing the SWAP on the claimed flag,
// failed CASes on the bottom-level list, restructuring sweeps over the
// dead prefix. `OpCounters` records those events where they happen, in
// the queue implementations themselves, without perturbing the hot path:
// each thread increments a relaxed atomic in its own cache-line-padded
// slot, so counting adds no coherence traffic between workers.
//
// `TelemetrySnapshot` is the transport: an insertion-ordered name→uint64
// map produced by every backend's telemetry() method, merged by the
// drivers with machine-level statistics (SimStats on the simulator,
// wall-clock phase timings on native) and emitted by `pqsim --stats` /
// `--stats-json`. See docs/TELEMETRY.md for the counter glossary.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "slpq/detail/cache_line.hpp"
#include "slpq/reclaim.hpp"

namespace slpq {

/// Core operation counters every backend emits (possibly always zero for
/// structures where the event cannot occur). Keep in sync with
/// counter_name() and the glossary in docs/TELEMETRY.md.
enum class Counter : int {
  kInsertRetries = 0,  ///< insert restarted a search/link attempt
  kDeleteRetries,      ///< delete-min stepped past a node it could not take
  kFailedCas,          ///< failed CAS / fetch_or / try_lock on shared state
  kClaimWins,          ///< delete-min claims won (== successful delete_mins)
  kClaimLosses,        ///< claim attempts lost to a racing processor
  kRestructures,       ///< batched restructuring sweeps (Lindén)
  kPrefixNodes,        ///< dead-prefix nodes walked by delete-min scans
  kPoolRefills,        ///< nodes carved fresh (not served from a free list)
  kPoolReused,         ///< nodes served from a pool free list
  kGcReclaimed,        ///< retired nodes actually freed by the collector
  kGcDeferred,         ///< retired nodes still waiting on the collector
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

constexpr const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kInsertRetries: return "insert_retries";
    case Counter::kDeleteRetries: return "delete_retries";
    case Counter::kFailedCas: return "failed_cas";
    case Counter::kClaimWins: return "claim_wins";
    case Counter::kClaimLosses: return "claim_losses";
    case Counter::kRestructures: return "restructure_sweeps";
    case Counter::kPrefixNodes: return "prefix_nodes_walked";
    case Counter::kPoolRefills: return "pool_refills";
    case Counter::kPoolReused: return "pool_reused";
    case Counter::kGcReclaimed: return "gc_reclaimed";
    case Counter::kGcDeferred: return "gc_deferred";
    case Counter::kCount: break;
  }
  return "?";
}

/// Ordered name → uint64 map. Insertion order is preserved so reports and
/// JSON output are deterministic; set() on an existing name overwrites.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> entries;

  void set(std::string_view name, std::uint64_t value) {
    for (auto& e : entries) {
      if (e.first == name) {
        e.second = value;
        return;
      }
    }
    entries.emplace_back(std::string(name), value);
  }

  void add(std::string_view name, std::uint64_t delta) {
    for (auto& e : entries) {
      if (e.first == name) {
        e.second += delta;
        return;
      }
    }
    entries.emplace_back(std::string(name), delta);
  }

  const std::uint64_t* find(std::string_view name) const {
    for (const auto& e : entries)
      if (e.first == name) return &e.second;
    return nullptr;
  }

  std::uint64_t get(std::string_view name, std::uint64_t fallback = 0) const {
    const std::uint64_t* v = find(name);
    return v ? *v : fallback;
  }

  bool empty() const { return entries.empty(); }

  /// Folds `other` into this snapshot (overwriting duplicate names).
  void merge(const TelemetrySnapshot& other) {
    for (const auto& e : other.entries) set(e.first, e.second);
  }
};

/// Per-thread event counters. Each thread gets a cache-line-padded slot of
/// relaxed atomics, so the hot-path cost of add() is one local fetch_add
/// with no inter-thread coherence traffic. Slots are assigned round-robin
/// from a process-wide sequence; with more than kSlots threads, counters
/// stay correct (slots are shared, atomics absorb the race) but padding
/// benefits degrade — kSlots matches NodePool/TimestampReclaimer's 256
/// thread ceiling in spirit while keeping the footprint small.
class OpCounters {
 public:
  static constexpr int kSlots = 64;

  OpCounters() = default;
  OpCounters(const OpCounters&) = delete;
  OpCounters& operator=(const OpCounters&) = delete;

  void add(Counter c, std::uint64_t n = 1) {
    slot().v[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t total(Counter c) const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_)
      sum += s.value.v[static_cast<std::size_t>(c)].load(
          std::memory_order_relaxed);
    return sum;
  }

  /// Emits every core counter, in enum order, into `snap`. Queues then
  /// overwrite the pool/GC entries with their component counters.
  void fill(TelemetrySnapshot& snap) const {
    for (int i = 0; i < kNumCounters; ++i) {
      const auto c = static_cast<Counter>(i);
      snap.set(counter_name(c), total(c));
    }
  }

 private:
  struct SlotData {
    std::array<std::atomic<std::uint64_t>, kNumCounters> v{};
  };

  SlotData& slot() {
    thread_local const unsigned id =
        next_thread_seq().fetch_add(1, std::memory_order_relaxed);
    return slots_[id % kSlots].value;
  }

  static std::atomic<unsigned>& next_thread_seq() {
    static std::atomic<unsigned> seq{0};
    return seq;
  }

  std::array<detail::Padded<SlotData>, kSlots> slots_;
};

/// Baseline snapshot with every core key present and zero — the shape the
/// registry test asserts for structures that emit nothing else.
inline TelemetrySnapshot core_telemetry_zero() {
  TelemetrySnapshot snap;
  for (int i = 0; i < kNumCounters; ++i)
    snap.set(counter_name(static_cast<Counter>(i)), 0);
  return snap;
}

/// The reclaim.* key block every run emits (docs/TELEMETRY.md glossary).
/// Structures without a reclaimer report the zero shape via
/// fill_reclaim_zero(); drivers backfill it for legacy backends.
inline constexpr const char* kReclaimKeys[] = {
    "reclaim.retired", "reclaim.freed", "reclaim.scans", "reclaim.stalls",
    "reclaim.pending",
};

/// Folds a reclaimer's counters into a snapshot under the reclaim.* keys.
inline void fill_reclaim_telemetry(TelemetrySnapshot& snap,
                                   const Reclaimer& r) {
  const ReclaimStats s = r.stats();
  snap.set("reclaim.retired", s.retired);
  snap.set("reclaim.freed", s.freed);
  snap.set("reclaim.scans", s.scans);
  snap.set("reclaim.stalls", s.stalls);
  snap.set("reclaim.pending", r.pending());
}

/// Zero-valued reclaim.* block for structures that own no reclaimer.
inline void fill_reclaim_zero(TelemetrySnapshot& snap) {
  for (const char* key : kReclaimKeys)
    if (snap.find(key) == nullptr) snap.set(key, 0);
}

}  // namespace slpq
