#include "slpq/lock_free_skip_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::LockFreeSkipQueue;

TEST(LockFreeSkipQueue, StartsEmpty) {
  LockFreeSkipQueue<int, int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(LockFreeSkipQueue, InsertDrainSorted) {
  LockFreeSkipQueue<int, int> q;
  for (int k : {42, 7, 19, 3, 88, 54}) q.insert(k, k * 10);
  std::vector<int> out;
  while (auto item = q.delete_min()) {
    EXPECT_EQ(item->second, item->first * 10);
    out.push_back(item->first);
  }
  EXPECT_EQ(out, (std::vector<int>{3, 7, 19, 42, 54, 88}));
}

TEST(LockFreeSkipQueue, DuplicateKeysAreDistinctItems) {
  LockFreeSkipQueue<int, int> q;
  q.insert(5, 1);
  q.insert(5, 2);
  q.insert(5, 3);
  EXPECT_EQ(q.size(), 3u);
  std::vector<int> vals;
  while (auto item = q.delete_min()) vals.push_back(item->second);
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<int>{1, 2, 3}));
}

TEST(LockFreeSkipQueue, EraseAndContains) {
  LockFreeSkipQueue<int, int> q;
  q.insert(1, 10);
  q.insert(2, 20);
  EXPECT_TRUE(q.contains(1));
  EXPECT_FALSE(q.contains(3));
  auto removed = q.erase(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 10);
  EXPECT_FALSE(q.contains(1));
  EXPECT_FALSE(q.erase(1).has_value());
  EXPECT_EQ(q.delete_min()->first, 2);
}

TEST(LockFreeSkipQueue, EraseOneDuplicateAtATime) {
  LockFreeSkipQueue<int, int> q;
  q.insert(9, 1);
  q.insert(9, 2);
  EXPECT_TRUE(q.erase(9).has_value());
  EXPECT_TRUE(q.contains(9));
  EXPECT_TRUE(q.erase(9).has_value());
  EXPECT_FALSE(q.contains(9));
  EXPECT_FALSE(q.erase(9).has_value());
}

TEST(LockFreeSkipQueue, SequentialAgainstModel) {
  LockFreeSkipQueue<std::uint64_t, std::uint64_t> q;
  std::multiset<std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(21);
  for (int step = 0; step < 20000; ++step) {
    if (model.empty() || rng.bernoulli(0.55)) {
      const auto k = rng.below(1 << 14);
      q.insert(k, k);
      model.insert(k);
    } else {
      auto got = q.delete_min();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->first, *model.begin());
      model.erase(model.begin());
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

TEST(LockFreeSkipQueue, ReclamationRuns) {
  LockFreeSkipQueue<int, int> q;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) q.insert(i, i);
    for (int i = 0; i < 100; ++i) q.delete_min();
  }
  EXPECT_GT(q.reclaimed(), 0u);
}

struct LfParam {
  bool relaxed;
  int threads;
};

class LockFreeSkipQueueThreads : public ::testing::TestWithParam<LfParam> {};

TEST_P(LockFreeSkipQueueThreads, ConcurrentMixedConservation) {
  const auto param = GetParam();
  LockFreeSkipQueue<std::uint64_t, std::uint64_t>::Options o;
  o.timestamps = !param.relaxed;
  LockFreeSkipQueue<std::uint64_t, std::uint64_t> q(o);

  constexpr int kOps = 4000;
  std::vector<std::map<std::uint64_t, long>> balances(
      static_cast<std::size_t>(param.threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < param.threads; ++t) {
    workers.emplace_back([&, t] {
      auto& balance = balances[static_cast<std::size_t>(t)];
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 4099 + 3);
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          const auto k = rng.below(1 << 18);
          q.insert(k, k);
          balance[k] += 1;
        } else if (auto item = q.delete_min()) {
          EXPECT_EQ(item->second, item->first);
          balance[item->first] -= 1;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::map<std::uint64_t, long> balance;
  for (auto& b : balances)
    for (auto& [k, v] : b) balance[k] += v;
  while (auto item = q.delete_min()) balance[item->first] -= 1;
  for (auto& [k, v] : balance) ASSERT_EQ(v, 0) << "key " << k;
  EXPECT_EQ(q.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LockFreeSkipQueueThreads,
    ::testing::Values(LfParam{false, 2}, LfParam{false, 4}, LfParam{false, 8},
                      LfParam{true, 4}, LfParam{true, 8}),
    [](const ::testing::TestParamInfo<LfParam>& info) {
      return std::string(info.param.relaxed ? "Relaxed" : "Strict") +
             std::to_string(info.param.threads) + "t";
    });

TEST(LockFreeSkipQueueThreads, DrainRaceHandsOutEachItemOnce) {
  LockFreeSkipQueue<int, int> q;
  constexpr int kItems = 2000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);
  constexpr int kThreads = 8;
  std::vector<std::vector<int>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      while (auto item = q.delete_min())
        got[static_cast<std::size_t>(t)].push_back(item->first);
    });
  for (auto& w : workers) w.join();
  std::multiset<int> all;
  for (auto& v : got) {
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all.count(i), 1u) << i;
}

TEST(LockFreeSkipQueueThreads, ConcurrentEraseClaimsAreUnique) {
  LockFreeSkipQueue<int, int> q;
  constexpr int kItems = 2000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);
  std::atomic<int> erased{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < kItems; ++i)
        if (q.erase(i)) erased.fetch_add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(erased.load(), kItems);
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(LockFreeSkipQueueThreads, InsertersAndDrainersBalance) {
  LockFreeSkipQueue<long, long> q;
  constexpr int kPairs = 4;
  constexpr long kPer = 3000;
  std::atomic<long> consumed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kPairs; ++t) {
    workers.emplace_back([&, t] {
      for (long i = 0; i < kPer; ++i) q.insert(i * kPairs + t, i);
    });
    workers.emplace_back([&] {
      for (;;) {
        if (q.delete_min()) {
          consumed.fetch_add(1);
        } else if (done.load()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int t = 0; t < kPairs; ++t) workers[static_cast<std::size_t>(2 * t)].join();
  done.store(true);
  for (int t = 0; t < kPairs; ++t)
    workers[static_cast<std::size_t>(2 * t + 1)].join();
  long rest = 0;
  while (q.delete_min()) ++rest;
  EXPECT_EQ(consumed.load() + rest, kPairs * kPer);
}

TEST(LockFreeSkipQueueThreads, MixedInsertEraseDeleteMin) {
  LockFreeSkipQueue<std::uint64_t, std::uint64_t> q;
  constexpr int kThreads = 6;
  std::atomic<long> net{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 17 + 5);
      long local = 0;
      for (int i = 0; i < 4000; ++i) {
        const auto pick = rng.below(3);
        if (pick == 0) {
          q.insert(rng.below(1 << 10), 0);
          ++local;
        } else if (pick == 1) {
          if (q.delete_min()) --local;
        } else {
          if (q.erase(rng.below(1 << 10))) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  long drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(drained, net.load());
}
