#include "slpq/global_lock_pq.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::GlobalLockPQ;

TEST(GlobalLockPQ, StartsEmpty) {
  GlobalLockPQ<int, int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(GlobalLockPQ, SortedDrain) {
  GlobalLockPQ<int, int> q;
  for (int k : {5, 1, 4, 2, 3}) q.insert(k, k);
  for (int k = 1; k <= 5; ++k) EXPECT_EQ(q.delete_min()->first, k);
}

TEST(GlobalLockPQ, DuplicatesKept) {
  GlobalLockPQ<int, int> q;
  q.insert(1, 10);
  q.insert(1, 20);
  EXPECT_EQ(q.size(), 2u);
}

TEST(GlobalLockPQ, CustomComparator) {
  GlobalLockPQ<int, int, std::greater<int>> q;
  for (int k : {1, 3, 2}) q.insert(k, k);
  EXPECT_EQ(q.delete_min()->first, 3);
}

TEST(GlobalLockPQ, ConcurrentConservation) {
  GlobalLockPQ<std::uint64_t, std::uint64_t> q;
  constexpr int kThreads = 6, kOps = 3000;
  std::vector<std::map<std::uint64_t, long>> balances(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto& balance = balances[static_cast<std::size_t>(t)];
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 31);
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          const auto k = rng.below(1 << 16);
          q.insert(k, k);
          balance[k] += 1;
        } else if (auto item = q.delete_min()) {
          balance[item->first] -= 1;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::map<std::uint64_t, long> balance;
  for (auto& b : balances)
    for (auto& [k, v] : b) balance[k] += v;
  while (auto item = q.delete_min()) balance[item->first] -= 1;
  for (auto& [k, v] : balance) ASSERT_EQ(v, 0);
}
