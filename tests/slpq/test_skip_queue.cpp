#include "slpq/skip_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::RelaxedSkipQueue;
using slpq::SkipQueue;

TEST(SkipQueue, StartsEmpty) {
  SkipQueue<int, int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(SkipQueue, InsertDrainSorted) {
  SkipQueue<int, int> q;
  for (int k : {42, 7, 19, 3, 88, 54}) EXPECT_TRUE(q.insert(k, k * 10));
  std::vector<int> out;
  while (auto item = q.delete_min()) {
    EXPECT_EQ(item->second, item->first * 10);
    out.push_back(item->first);
  }
  EXPECT_EQ(out, (std::vector<int>{3, 7, 19, 42, 54, 88}));
}

TEST(SkipQueue, DuplicateKeyUpdatesInPlace) {
  SkipQueue<int, std::string> q;
  EXPECT_TRUE(q.insert(5, "old"));
  EXPECT_FALSE(q.insert(5, "new"));
  EXPECT_EQ(q.size(), 1u);
  auto item = q.delete_min();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->second, "new");
}

TEST(SkipQueue, ReinsertAfterDelete) {
  SkipQueue<int, int> q;
  q.insert(1, 1);
  q.delete_min();
  EXPECT_TRUE(q.insert(1, 2));
  auto item = q.delete_min();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->second, 2);
}

TEST(SkipQueue, CustomComparatorMaxQueue) {
  SkipQueue<int, int, std::greater<int>> q;
  for (int k : {1, 9, 5}) q.insert(k, k);
  EXPECT_EQ(q.delete_min()->first, 9);
  EXPECT_EQ(q.delete_min()->first, 5);
  EXPECT_EQ(q.delete_min()->first, 1);
}

TEST(SkipQueue, NonTrivialKeyValueTypes) {
  SkipQueue<std::string, std::vector<int>> q;
  q.insert("banana", {2});
  q.insert("apple", {1});
  q.insert("cherry", {3});
  EXPECT_EQ(q.delete_min()->first, "apple");
  EXPECT_EQ(q.delete_min()->second, std::vector<int>{2});
}

TEST(SkipQueue, ManySequentialOpsAgainstModel) {
  SkipQueue<std::uint64_t, std::uint64_t> q;
  std::multimap<std::uint64_t, std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(17);
  for (int step = 0; step < 20000; ++step) {
    if (model.empty() || rng.bernoulli(0.55)) {
      const auto k = rng.below(1 << 16);
      if (q.insert(k, step)) {
        // Key was new; mirror that.
        model.erase(k);
        model.emplace(k, step);
      } else {
        model.erase(k);
        model.emplace(k, step);
      }
    } else {
      const auto got = q.delete_min();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->first, model.begin()->first);
      model.erase(model.begin());
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

TEST(SkipQueue, MaxLevelOneIsAList) {
  SkipQueue<int, int>::Options o;
  o.max_level = 1;
  SkipQueue<int, int> q(o);
  for (int i = 100; i > 0; --i) q.insert(i, i);
  for (int i = 1; i <= 100; ++i) EXPECT_EQ(q.delete_min()->first, i);
}

TEST(SkipQueue, ReclamationEventuallyFreesNodes) {
  SkipQueue<int, int> q;
  // Retire far more nodes than the collection threshold.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) q.insert(i, i);
    for (int i = 0; i < 100; ++i) q.delete_min();
  }
  EXPECT_GT(q.reclaimed(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent tests (std::thread). On any machine these exercise mutual
// exclusion through preemption; on multicore they exercise true parallelism.
// ---------------------------------------------------------------------------

struct ModeParam {
  bool relaxed;
  int threads;
};

class SkipQueueThreads : public ::testing::TestWithParam<ModeParam> {};

TEST_P(SkipQueueThreads, ConcurrentMixedConservation) {
  const auto param = GetParam();
  SkipQueue<std::uint64_t, std::uint64_t>::Options o;
  o.timestamps = !param.relaxed;
  SkipQueue<std::uint64_t, std::uint64_t> q(o);

  constexpr int kOps = 4000;
  std::vector<std::vector<std::uint64_t>> inserted(
      static_cast<std::size_t>(param.threads));
  std::vector<std::vector<std::uint64_t>> deleted(
      static_cast<std::size_t>(param.threads));

  std::vector<std::thread> workers;
  for (int t = 0; t < param.threads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          // Per-thread-unique keys make the balance check exact.
          const std::uint64_t k =
              rng.below(1 << 20) * static_cast<std::uint64_t>(param.threads) +
              static_cast<std::uint64_t>(t);
          if (q.insert(k, k))
            inserted[static_cast<std::size_t>(t)].push_back(k);
        } else if (auto item = q.delete_min()) {
          EXPECT_EQ(item->second, item->first);
          deleted[static_cast<std::size_t>(t)].push_back(item->first);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::map<std::uint64_t, long> balance;
  for (auto& v : inserted)
    for (auto k : v) balance[k] += 1;
  for (auto& v : deleted)
    for (auto k : v) balance[k] -= 1;
  std::size_t remaining = 0;
  while (auto item = q.delete_min()) {
    balance[item->first] -= 1;
    ++remaining;
  }
  for (auto& [k, v] : balance) ASSERT_EQ(v, 0) << "key " << k;
  EXPECT_EQ(q.size(), 0u);
  (void)remaining;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SkipQueueThreads,
    ::testing::Values(ModeParam{false, 2}, ModeParam{false, 4},
                      ModeParam{false, 8}, ModeParam{true, 4},
                      ModeParam{true, 8}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return std::string(info.param.relaxed ? "Relaxed" : "Strict") +
             std::to_string(info.param.threads) + "t";
    });

TEST(SkipQueueThreads, DrainRaceHandsOutEachItemOnce) {
  SkipQueue<int, int> q;
  constexpr int kItems = 2000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);

  constexpr int kThreads = 8;
  std::vector<std::vector<int>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (auto item = q.delete_min()) got[static_cast<std::size_t>(t)].push_back(item->first);
    });
  }
  for (auto& w : workers) w.join();

  std::multiset<int> all;
  for (auto& v : got) {
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all.count(i), 1u) << i;
}

TEST(SkipQueueThreads, ProducersAndConsumers) {
  SkipQueue<long, long> q;
  constexpr int kPairs = 4;
  constexpr long kPerProducer = 3000;
  std::atomic<long> consumed{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kPairs; ++t) {
    workers.emplace_back([&, t] {  // producer
      for (long i = 0; i < kPerProducer; ++i)
        q.insert(i * kPairs + t, i);
    });
    workers.emplace_back([&] {  // consumer
      for (;;) {
        if (q.delete_min()) {
          consumed.fetch_add(1);
          continue;
        }
        if (done_producing.load()) break;
        std::this_thread::yield();
      }
    });
  }
  for (int t = 0; t < kPairs; ++t) workers[static_cast<std::size_t>(2 * t)].join();
  done_producing.store(true);
  for (int t = 0; t < kPairs; ++t) workers[static_cast<std::size_t>(2 * t + 1)].join();
  long rest = 0;
  while (q.delete_min()) ++rest;
  EXPECT_EQ(consumed.load() + rest, kPairs * kPerProducer);
  EXPECT_EQ(q.size(), 0u);
}

TEST(SkipQueueThreads, RelaxedDrainStillExact) {
  RelaxedSkipQueue<int, int> q;
  for (int i = 0; i < 1000; ++i) q.insert(i, i);
  std::atomic<int> count{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t)
    workers.emplace_back([&] {
      while (q.delete_min()) count.fetch_add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(count.load(), 1000);
}
