#include "slpq/skip_list_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::SkipListMap;

TEST(SkipListMap, StartsEmpty) {
  SkipListMap<int, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.begin(), m.end());
}

TEST(SkipListMap, InsertFindErase) {
  SkipListMap<int, std::string> m;
  EXPECT_TRUE(m.insert_or_assign(3, "three"));
  EXPECT_TRUE(m.insert_or_assign(1, "one"));
  EXPECT_TRUE(m.insert_or_assign(2, "two"));
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), "two");
  auto removed = m.erase(2);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, "two");
  EXPECT_FALSE(m.contains(2));
  EXPECT_FALSE(m.erase(2).has_value());
  EXPECT_EQ(m.size(), 2u);
}

TEST(SkipListMap, AssignOverwrites) {
  SkipListMap<int, int> m;
  EXPECT_TRUE(m.insert_or_assign(5, 1));
  EXPECT_FALSE(m.insert_or_assign(5, 2));
  EXPECT_EQ(*m.find(5), 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SkipListMap, SubscriptInsertsDefault) {
  SkipListMap<std::string, int> m;
  m["a"] = 10;
  EXPECT_EQ(m["a"], 10);
  EXPECT_EQ(m["missing"], 0);  // default-inserted
  EXPECT_EQ(m.size(), 2u);
}

TEST(SkipListMap, IterationIsSorted) {
  SkipListMap<int, int> m;
  slpq::detail::Xoshiro256 rng(12);
  for (int i = 0; i < 500; ++i) m.insert_or_assign(static_cast<int>(rng.below(10000)), i);
  std::vector<int> keys;
  for (auto it = m.begin(); it != m.end(); ++it) keys.push_back(it.key());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  EXPECT_EQ(keys.size(), m.size());
}

TEST(SkipListMap, LowerBound) {
  SkipListMap<int, int> m;
  for (int k : {10, 20, 30, 40}) m.insert_or_assign(k, k);
  EXPECT_EQ(m.lower_bound(5).key(), 10);
  EXPECT_EQ(m.lower_bound(10).key(), 10);
  EXPECT_EQ(m.lower_bound(11).key(), 20);
  EXPECT_EQ(m.lower_bound(40).key(), 40);
  EXPECT_EQ(m.lower_bound(41), m.end());
}

TEST(SkipListMap, ClearResets) {
  SkipListMap<int, int> m;
  for (int i = 0; i < 100; ++i) m.insert_or_assign(i, i);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.begin(), m.end());
  m.insert_or_assign(1, 1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SkipListMap, CustomComparatorDescending) {
  SkipListMap<int, int, std::greater<int>> m;
  for (int k : {1, 3, 2}) m.insert_or_assign(k, k);
  std::vector<int> keys;
  for (auto it = m.begin(); it != m.end(); ++it) keys.push_back(it.key());
  EXPECT_EQ(keys, (std::vector<int>{3, 2, 1}));
}

TEST(SkipListMap, RandomizedAgainstStdMap) {
  SkipListMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(2026);
  for (int step = 0; step < 30000; ++step) {
    const auto k = rng.below(2000);
    switch (rng.below(3)) {
      case 0: {
        const bool fresh = m.insert_or_assign(k, step);
        ASSERT_EQ(fresh, model.find(k) == model.end());
        model[k] = static_cast<std::uint64_t>(step);
        break;
      }
      case 1: {
        const auto got = m.erase(k);
        const auto it = model.find(k);
        ASSERT_EQ(got.has_value(), it != model.end());
        if (got) {
          ASSERT_EQ(*got, it->second);
          model.erase(it);
        }
        break;
      }
      case 2: {
        const auto* v = m.find(k);
        const auto it = model.find(k);
        ASSERT_EQ(v != nullptr, it != model.end());
        if (v) ASSERT_EQ(*v, it->second);
        break;
      }
    }
    ASSERT_EQ(m.size(), model.size());
  }
  // Full ordered scan matches the model.
  auto mit = model.begin();
  for (auto it = m.begin(); it != m.end(); ++it, ++mit) {
    ASSERT_NE(mit, model.end());
    ASSERT_EQ(it.key(), mit->first);
    ASSERT_EQ(it.value(), mit->second);
  }
  ASSERT_EQ(mit, model.end());
}

TEST(SkipListMap, HeightGrowsLogarithmically) {
  SkipListMap<int, int> m;
  for (int i = 0; i < 10000; ++i) m.insert_or_assign(i, i);
  // E[height] ~ log2(10000) ~ 13.3; allow a generous band.
  EXPECT_GE(m.height(), 8);
  EXPECT_LE(m.height(), 20);
}

TEST(SkipListMap, MaxLevelOneDegeneratesToList) {
  SkipListMap<int, int>::Options o;
  o.max_level = 1;
  SkipListMap<int, int> m(o);
  for (int i = 100; i > 0; --i) m.insert_or_assign(i, i);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.begin().key(), 1);
  EXPECT_TRUE(m.contains(50));
}

TEST(SkipListMap, NonTrivialValueDestruction) {
  // Vector values exercise the placement-destroy path under ASan.
  SkipListMap<int, std::vector<int>> m;
  for (int i = 0; i < 50; ++i) m.insert_or_assign(i, std::vector<int>(100, i));
  m.erase(10);
  m.clear();
  SUCCEED();
}
