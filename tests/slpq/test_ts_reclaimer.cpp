#include "slpq/ts_reclaimer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using slpq::TimestampReclaimer;

namespace {
struct Tracker {
  std::atomic<int> freed{0};
  std::function<void(void*)> deleter() {
    return [this](void* p) {
      ++freed;
      ::operator delete(p);
    };
  }
};
}  // namespace

TEST(TimestampReclaimer, RetiredNodesFreeWhenNobodyInside) {
  Tracker tracker;
  {
    TimestampReclaimer r(tracker.deleter());
    {
      TimestampReclaimer::Guard g(r);
      for (int i = 0; i < TimestampReclaimer::kCollectEvery + 5; ++i)
        r.retire(::operator new(16));
    }
    // Another pass with nobody else inside collects the backlog.
    {
      TimestampReclaimer::Guard g(r);
      r.retire(::operator new(16));
    }
    const int slot = r.register_thread();
    r.collect(slot);
    EXPECT_GT(tracker.freed.load(), 0);
  }
  // Destructor drains the rest.
  EXPECT_EQ(tracker.freed.load(), TimestampReclaimer::kCollectEvery + 6);
}

TEST(TimestampReclaimer, HoldsNodesWhileAnotherThreadIsInside) {
  Tracker tracker;
  TimestampReclaimer r(tracker.deleter());

  std::atomic<bool> inside{false}, release{false};
  std::thread holder([&] {
    TimestampReclaimer::Guard g(r);
    inside.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!inside.load()) std::this_thread::yield();

  // Retire after the holder entered: its stamp exceeds the holder's entry
  // time, so collection must not free it yet.
  {
    TimestampReclaimer::Guard g(r);
    r.retire(::operator new(16));
  }
  r.collect(r.register_thread());
  EXPECT_EQ(tracker.freed.load(), 0);

  release.store(true);
  holder.join();
  r.collect(r.register_thread());
  EXPECT_EQ(tracker.freed.load(), 1);
}

TEST(TimestampReclaimer, OldestEntryTracksGuards) {
  Tracker tracker;
  TimestampReclaimer r(tracker.deleter());
  EXPECT_EQ(r.oldest_entry(), TimestampReclaimer::kNeverEntered);
  {
    TimestampReclaimer::Guard g(r);
    EXPECT_EQ(r.oldest_entry(), g.entry_time());
  }
  EXPECT_EQ(r.oldest_entry(), TimestampReclaimer::kNeverEntered);
}

TEST(TimestampReclaimer, ClockIsMonotonic) {
  Tracker tracker;
  TimestampReclaimer r(tracker.deleter());
  auto prev = r.advance_clock();
  for (int i = 0; i < 100; ++i) {
    const auto next = r.advance_clock();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(TimestampReclaimer, TwoInstancesGetIndependentSlots) {
  Tracker t1, t2;
  TimestampReclaimer a(t1.deleter());
  TimestampReclaimer b(t2.deleter());
  EXPECT_EQ(a.register_thread(), 0);
  EXPECT_EQ(b.register_thread(), 0);
  {
    TimestampReclaimer::Guard ga(a);
    // b is untouched by a's guard.
    EXPECT_EQ(b.oldest_entry(), TimestampReclaimer::kNeverEntered);
  }
}

TEST(TimestampReclaimer, ManyThreadsChurnWithoutLeaks) {
  Tracker tracker;
  std::atomic<int> retired{0};
  {
    TimestampReclaimer r(tracker.deleter());
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          TimestampReclaimer::Guard g(r);
          r.retire(::operator new(8));
          ++retired;
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_GT(r.freed_total(), 0u) << "amortized collection never ran";
  }
  EXPECT_EQ(tracker.freed.load(), retired.load());
}
