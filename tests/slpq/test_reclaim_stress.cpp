// Reclamation stress: heavy concurrent churn on every skiplist queue under
// every --reclaim policy, with conservation oracles. Lives in its own
// binary labelled `stress` so the sanitizer presets (`ctest -L stress`
// under asan/tsan) select exactly these — a use-after-free in a policy or
// in a queue's hazard protocol shows up here first.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "slpq/linden_skip_queue.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/skip_queue.hpp"

using slpq::ReclaimPolicy;

namespace {

constexpr ReclaimPolicy kAllPolicies[] = {
    ReclaimPolicy::kTimestamp, ReclaimPolicy::kHazard, ReclaimPolicy::kEpoch,
    ReclaimPolicy::kLeaky};

std::string policy_name(const ::testing::TestParamInfo<ReclaimPolicy>& info) {
  return std::string(slpq::to_string(info.param));
}

// Each of kThreads threads inserts kPerThread unique keys and pops as it
// goes; afterwards the main thread drains the rest. Every inserted value
// must come back exactly once — a recycled-too-early node breaks this (or
// trips ASan/TSan outright).
template <typename Queue>
void churn_and_check(Queue& q, int threads, int per_thread) {
  std::vector<std::vector<std::int64_t>> popped(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& mine = popped[static_cast<std::size_t>(t)];
      for (int i = 0; i < per_thread; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(t) * per_thread + i;
        q.insert((v * 2654435761LL) % 1000003, v);
        if (i % 2 == 1) {
          if (auto item = q.delete_min()) mine.push_back(item->second);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<char> seen(static_cast<std::size_t>(threads) *
                             static_cast<std::size_t>(per_thread),
                         0);
  auto mark = [&](std::int64_t v) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, static_cast<std::int64_t>(seen.size()));
    ASSERT_EQ(seen[static_cast<std::size_t>(v)], 0)
        << "value " << v << " popped twice";
    seen[static_cast<std::size_t>(v)] = 1;
  };
  for (const auto& mine : popped)
    for (std::int64_t v : mine) mark(v);
  while (auto item = q.delete_min()) mark(item->second);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "value " << i << " lost";

  // Quiescent conservation: nothing freed that was not retired, and the
  // books balance (pending = retired - freed).
  const auto s = q.reclaimer().stats();
  EXPECT_GE(s.retired, s.freed);
  EXPECT_EQ(q.reclaimer().pending(), s.retired - s.freed);
}

class ReclaimStress : public ::testing::TestWithParam<ReclaimPolicy> {
 protected:
  static constexpr int kThreads = 8;
  static constexpr int kPerThread = 1200;
};

}  // namespace

TEST_P(ReclaimStress, SkipQueueChurn) {
  slpq::SkipQueue<std::int64_t, std::int64_t>::Options o;
  o.reclaim = GetParam();
  slpq::SkipQueue<std::int64_t, std::int64_t> q(o);
  churn_and_check(q, kThreads, kPerThread);
}

TEST_P(ReclaimStress, LockFreeSkipQueueChurn) {
  slpq::LockFreeSkipQueue<std::int64_t, std::int64_t>::Options o;
  o.reclaim = GetParam();
  slpq::LockFreeSkipQueue<std::int64_t, std::int64_t> q(o);
  churn_and_check(q, kThreads, kPerThread);
}

TEST_P(ReclaimStress, LindenSkipQueueChurn) {
  slpq::LindenSkipQueue<std::int64_t, std::int64_t>::Options o;
  o.reclaim = GetParam();
  o.boundoffset = 8;  // restructure (and retire) as often as possible
  slpq::LindenSkipQueue<std::int64_t, std::int64_t> q(o);
  churn_and_check(q, kThreads, kPerThread);
}

// delete_min-heavy phase against a draining queue: the dead prefix is
// recycled at the highest possible rate while scans race the claims.
TEST_P(ReclaimStress, LindenDrainRace) {
  slpq::LindenSkipQueue<std::int64_t, std::int64_t>::Options o;
  o.reclaim = GetParam();
  o.boundoffset = 4;
  slpq::LindenSkipQueue<std::int64_t, std::int64_t> q(o);
  constexpr int kItems = 15000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);

  std::atomic<std::int64_t> drained{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      while (q.delete_min()) ++drained;
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(drained.load(), kItems);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReclaimStress,
                         ::testing::ValuesIn(kAllPolicies), policy_name);
