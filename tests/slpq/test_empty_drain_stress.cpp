// Empty-drain races on the claim-based native queues: N threads push the
// queue through empty over and over while recording what they pop. Every
// inserted item must be handed out exactly once — no duplicate claims, no
// lost items — on both the claimed-flag queue (lockfree) and the
// batched-prefix queue (linden). Lives in the stress binary so the tsan
// preset (ctest -L stress) runs it under the race detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/linden_skip_queue.hpp"
#include "slpq/lock_free_skip_queue.hpp"

namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 4000;

/// Each thread inserts kOpsPerThread uniquely-valued items and attempts
/// two delete_mins per insert, so the queue is driven through empty
/// constantly. Afterwards the popped values plus a final drain must be
/// exactly the inserted set.
template <typename Queue>
void conservation_under_empty_drain(Queue& q) {
  const std::size_t total =
      static_cast<std::size_t>(kThreads) * kOpsPerThread;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&q, &popped, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 1);
      auto& mine = popped[static_cast<std::size_t>(t)];
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto value = static_cast<std::uint64_t>(t) * kOpsPerThread +
                           static_cast<std::uint64_t>(i);
        q.insert(static_cast<std::int64_t>(rng.below(1 << 10)), value);
        for (int d = 0; d < 2; ++d)
          if (auto item = q.delete_min()) mine.push_back(item->second);
      }
    });
  }
  for (auto& w : workers) w.join();
  while (auto item = q.delete_min()) popped[0].push_back(item->second);

  std::vector<char> seen(total, 0);
  std::size_t count = 0;
  for (const auto& mine : popped) {
    for (auto v : mine) {
      ASSERT_LT(v, total);
      ASSERT_FALSE(seen[v]) << "value " << v << " claimed twice";
      seen[v] = 1;
      ++count;
    }
  }
  EXPECT_EQ(count, total) << "items lost";
  EXPECT_EQ(q.size(), 0u);
}

/// Prefill, then have every thread drain until it sees empty; the popped
/// sets must partition the prefill exactly.
template <typename Queue>
void drain_race_hands_out_each_item_once(Queue& q) {
  constexpr std::size_t kTotal = 20000;
  slpq::detail::Xoshiro256 rng(5);
  for (std::size_t i = 0; i < kTotal; ++i)
    q.insert(static_cast<std::int64_t>(rng.below(1 << 14)),
             static_cast<std::uint64_t>(i));

  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&q, &popped, t] {
      auto& mine = popped[static_cast<std::size_t>(t)];
      while (auto item = q.delete_min()) mine.push_back(item->second);
    });
  }
  for (auto& w : workers) w.join();

  std::vector<char> seen(kTotal, 0);
  std::size_t count = 0;
  for (const auto& mine : popped) {
    for (auto v : mine) {
      ASSERT_LT(v, kTotal);
      ASSERT_FALSE(seen[v]) << "value " << v << " claimed twice";
      seen[v] = 1;
      ++count;
    }
  }
  EXPECT_EQ(count, kTotal);
  EXPECT_FALSE(q.delete_min().has_value());
}

using LockFree = slpq::LockFreeSkipQueue<std::int64_t, std::uint64_t>;
using Linden = slpq::LindenSkipQueue<std::int64_t, std::uint64_t>;

}  // namespace

TEST(EmptyDrainStress, LockFreeConservation) {
  LockFree q;
  conservation_under_empty_drain(q);
}

TEST(EmptyDrainStress, LindenConservation) {
  Linden q;
  conservation_under_empty_drain(q);
}

TEST(EmptyDrainStress, LindenConservationTinyBoundoffset) {
  Linden::Options opt;
  opt.boundoffset = 2;  // restructure storms right at the empty boundary
  Linden q(opt);
  conservation_under_empty_drain(q);
}

TEST(EmptyDrainStress, LindenConservationTimestamped) {
  Linden::Options opt;
  opt.timestamps = true;
  Linden q(opt);
  conservation_under_empty_drain(q);
}

TEST(EmptyDrainStress, LockFreeDrainRace) {
  LockFree q;
  drain_race_hands_out_each_item_once(q);
}

TEST(EmptyDrainStress, LindenDrainRace) {
  Linden q;
  drain_race_hands_out_each_item_once(q);
}

TEST(EmptyDrainStress, LindenDrainRaceTinyBoundoffset) {
  Linden::Options opt;
  opt.boundoffset = 4;
  Linden q(opt);
  drain_race_hands_out_each_item_once(q);
}
