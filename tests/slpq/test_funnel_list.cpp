#include "slpq/funnel_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::FunnelList;

namespace {
template <typename K, typename V>
std::unique_ptr<FunnelList<K, V>> make_list(int layers = 2, int width = 4) {
  typename FunnelList<K, V>::Options o;
  o.layers = layers;
  o.width = width;
  return std::make_unique<FunnelList<K, V>>(o);
}
}  // namespace

TEST(FunnelList, StartsEmpty) {
  auto q = make_list<int, int>();
  EXPECT_EQ(q->size(), 0u);
  EXPECT_FALSE(q->delete_min().has_value());
}

TEST(FunnelList, InsertDrainSorted) {
  auto q = make_list<int, int>();
  for (int k : {6, 2, 9, 4, 1}) q->insert(k, k + 100);
  std::vector<int> out;
  while (auto item = q->delete_min()) {
    EXPECT_EQ(item->second, item->first + 100);
    out.push_back(item->first);
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 6, 9}));
}

TEST(FunnelList, DuplicatesAreKept) {
  auto q = make_list<int, int>();
  q->insert(3, 1);
  q->insert(3, 2);
  EXPECT_EQ(q->size(), 2u);
  std::vector<int> vals;
  while (auto item = q->delete_min()) vals.push_back(item->second);
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<int>{1, 2}));
}

TEST(FunnelList, ZeroLayersDegeneratesToLockedList) {
  auto q = make_list<int, int>(/*layers=*/0, /*width=*/1);
  for (int i = 50; i > 0; --i) q->insert(i, i);
  for (int i = 1; i <= 50; ++i) EXPECT_EQ(q->delete_min()->first, i);
}

TEST(FunnelList, SequentialAgainstModel) {
  auto q = make_list<std::uint64_t, int>();
  std::multiset<std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(9);
  for (int step = 0; step < 10000; ++step) {
    if (model.empty() || rng.bernoulli(0.55)) {
      const auto k = rng.below(5000);
      q->insert(k, 0);
      model.insert(k);
    } else {
      auto got = q->delete_min();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->first, *model.begin());
      model.erase(model.begin());
    }
    ASSERT_EQ(q->size(), model.size());
  }
}

class FunnelListThreads : public ::testing::TestWithParam<int> {};

TEST_P(FunnelListThreads, ConcurrentMixedConservation) {
  const int threads = GetParam();
  auto q = make_list<std::uint64_t, std::uint64_t>(2, 2);
  constexpr int kOps = 2000;
  std::vector<std::map<std::uint64_t, long>> balances(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& balance = balances[static_cast<std::size_t>(t)];
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 53 + 11);
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          const auto k = rng.below(1 << 16);
          q->insert(k, k);
          balance[k] += 1;
        } else if (auto item = q->delete_min()) {
          EXPECT_EQ(item->second, item->first);
          balance[item->first] -= 1;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::map<std::uint64_t, long> balance;
  for (auto& b : balances)
    for (auto& [k, v] : b) balance[k] += v;
  while (auto item = q->delete_min()) balance[item->first] -= 1;
  for (auto& [k, v] : balance) ASSERT_EQ(v, 0) << "key " << k;
  EXPECT_EQ(q->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, FunnelListThreads, ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "t";
                         });

TEST(FunnelListThreads, ConcurrentDrainExactlyOnce) {
  auto q = make_list<int, int>(2, 2);
  constexpr int kItems = 1500;
  for (int i = 0; i < kItems; ++i) q->insert(i, i);
  std::vector<std::vector<int>> got(6);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t)
    workers.emplace_back([&, t] {
      while (auto item = q->delete_min())
        got[static_cast<std::size_t>(t)].push_back(item->first);
    });
  for (auto& w : workers) w.join();
  std::multiset<int> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all.count(i), 1u);
}

TEST(FunnelListThreads, CombiningHappensUnderContention) {
  // With one collision slot per layer and 8 threads, combining is near
  // certain on multicore hardware; on a single hardware thread it depends
  // on preemption timing, so retry a few rounds and skip if the scheduler
  // never interleaves threads inside the funnel window.
  constexpr int kThreads = 8, kPer = 1000;
  std::uint64_t combines = 0;
  for (int attempt = 0; attempt < 10 && combines == 0; ++attempt) {
    auto q = make_list<int, int>(2, 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPer; ++i) q->insert(i * kThreads + t, i);
      });
    for (auto& w : workers) w.join();
    ASSERT_EQ(q->size(), static_cast<std::size_t>(kThreads) * kPer);
    combines = q->combines();
  }
  if (combines == 0 && std::thread::hardware_concurrency() <= 1)
    GTEST_SKIP() << "no combining observed on a single-core host";
  EXPECT_GT(combines, 0u);
}
