// Cross-structure properties and heavier concurrent stress for the native
// queues.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/funnel_list.hpp"
#include "slpq/global_lock_pq.hpp"
#include "slpq/hunt_heap.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/skip_queue.hpp"

namespace {

// A single-threaded operation sequence with unique keys must produce the
// same observable results on every structure (GlobalLockPQ is the oracle).
template <typename Queue>
std::vector<std::int64_t> replay(Queue& q, std::uint64_t seed, int ops) {
  slpq::detail::Xoshiro256 rng(seed);
  std::vector<std::int64_t> observed;
  std::int64_t next_key = 0;
  for (int i = 0; i < ops; ++i) {
    if (rng.bernoulli(0.55)) {
      q.insert(next_key * 7919 % 1000003, next_key);
      ++next_key;
    } else if (auto item = q.delete_min()) {
      observed.push_back(item->first);
    } else {
      observed.push_back(-1);  // EMPTY
    }
  }
  while (auto item = q.delete_min()) observed.push_back(item->first);
  return observed;
}

class CrossStructureEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(CrossStructureEquivalence, AllStructuresAgreeSequentially) {
  const std::uint64_t seed = GetParam();
  constexpr int kOps = 3000;

  slpq::GlobalLockPQ<std::int64_t, std::int64_t> oracle;
  const auto expected = replay(oracle, seed, kOps);

  slpq::SkipQueue<std::int64_t, std::int64_t> skip;
  EXPECT_EQ(replay(skip, seed, kOps), expected) << "SkipQueue diverged";

  slpq::RelaxedSkipQueue<std::int64_t, std::int64_t> relaxed;
  EXPECT_EQ(replay(relaxed, seed, kOps), expected) << "Relaxed diverged";

  slpq::HuntHeap<std::int64_t, std::int64_t> heap(1 << 13);
  EXPECT_EQ(replay(heap, seed, kOps), expected) << "HuntHeap diverged";

  slpq::LockFreeSkipQueue<std::int64_t, std::int64_t> lock_free;
  EXPECT_EQ(replay(lock_free, seed, kOps), expected) << "LockFree diverged";

  auto funnel = std::make_unique<slpq::FunnelList<std::int64_t, std::int64_t>>();
  EXPECT_EQ(replay(*funnel, seed, kOps), expected) << "FunnelList diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossStructureEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ConcurrentStress, SkipQueueLongMixedRunWithReclamation) {
  slpq::SkipQueue<std::uint64_t, std::uint64_t> q;
  constexpr int kThreads = 8;
  constexpr int kOps = 8000;
  std::atomic<long> net{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 101 + 1);
      long local_net = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          if (q.insert(rng.below(1 << 14) * kThreads +
                           static_cast<std::uint64_t>(t),
                       static_cast<std::uint64_t>(i)))
            ++local_net;
        } else if (q.delete_min()) {
          --local_net;
        }
      }
      net.fetch_add(local_net);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(static_cast<long>(q.size()), net.load());
  // Reclamation really ran: tens of thousands of deletes happened.
  EXPECT_GT(q.reclaimed(), 0u);
  long drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(drained, net.load());
}

TEST(ConcurrentStress, MinimalityUnderQuiescence) {
  // After all threads pause, the next delete_min must return the global
  // minimum of what remains — checked repeatedly between bursts.
  slpq::SkipQueue<int, int> q;
  std::map<int, int> shadow;  // maintained single-threaded between bursts
  slpq::detail::Xoshiro256 rng(77);

  for (int burst = 0; burst < 10; ++burst) {
    // Concurrent burst of inserts with disjoint key ranges per thread.
    constexpr int kThreads = 4, kPer = 200;
    const int base = burst * kThreads * kPer * 2;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPer; ++i) {
          q.insert(base + i * kThreads + t, t);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < kThreads; ++t)
      for (int i = 0; i < kPer; ++i) shadow[base + i * kThreads + t] = t;

    // Quiescent check: pop a few and compare against the shadow map.
    for (int pops = 0; pops < 50 && !shadow.empty(); ++pops) {
      auto item = q.delete_min();
      ASSERT_TRUE(item.has_value());
      ASSERT_EQ(item->first, shadow.begin()->first);
      shadow.erase(shadow.begin());
    }
  }
}

TEST(ConcurrentStress, HighChurnSmallQueue) {
  // Tiny queue, high contention on the same few keys: exercises the
  // update-in-place path and the marked-node insert race.
  slpq::SkipQueue<int, int> q;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::atomic<long> net{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      long local = 0;
      for (int i = 0; i < 5000; ++i) {
        if (rng.bernoulli(0.5)) {
          if (q.insert(static_cast<int>(rng.below(16)), i)) ++local;
        } else if (q.delete_min()) {
          --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  long drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(drained, net.load());
  EXPECT_LE(drained, 16);  // at most one node per distinct key remains
}
