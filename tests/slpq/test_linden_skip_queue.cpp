// slpq::LindenSkipQueue unit tests: single-threaded semantics, the
// boundoffset restructuring knob, reclamation, and the timestamped
// variant's conservative eligibility rule (concurrent stress lives in
// test_empty_drain_stress.cpp).
#include "slpq/linden_skip_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/global_lock_pq.hpp"

namespace slpq {

/// White-box hook: runs the delete_min claim walk with a caller-chosen
/// entry time, so timestamp eligibility is testable deterministically.
class LindenSkipQueueTestPeer {
 public:
  template <typename K, typename V, typename C>
  static std::optional<std::pair<K, V>> claim_min_at(
      LindenSkipQueue<K, V, C>& q, std::uint64_t time) {
    Reclaimer::Guard guard(*q.reclaimer_);
    return q.claim_min(time, q.hp_ctx(guard));
  }

  template <typename K, typename V, typename C>
  static std::uint64_t clock_now(LindenSkipQueue<K, V, C>& q) {
    return q.reclaimer_->now();
  }
};

}  // namespace slpq

namespace {

using Queue = slpq::LindenSkipQueue<std::int64_t, std::uint64_t>;
using Peer = slpq::LindenSkipQueueTestPeer;

TEST(LindenSkipQueue, DrainsSorted) {
  Queue q;
  slpq::detail::Xoshiro256 rng(7);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 500; ++i)
    keys.push_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  for (auto k : keys) q.insert(k, static_cast<std::uint64_t>(k) + 1);
  EXPECT_EQ(q.size(), keys.size());

  std::vector<std::int64_t> drained;
  while (auto item = q.delete_min()) {
    EXPECT_EQ(item->second, static_cast<std::uint64_t>(item->first) + 1);
    drained.push_back(item->first);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(drained, keys);
  EXPECT_TRUE(q.empty());
}

TEST(LindenSkipQueue, EmptyReturnsNullopt) {
  Queue q;
  EXPECT_FALSE(q.delete_min().has_value());
  q.insert(1, 1);
  EXPECT_TRUE(q.delete_min().has_value());
  EXPECT_FALSE(q.delete_min().has_value());
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(LindenSkipQueue, DuplicateKeysAllDistinctItems) {
  Queue q;
  for (std::uint64_t v = 0; v < 5; ++v) q.insert(42, v);
  q.insert(7, 100);
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.delete_min()->first, 7);
  std::vector<std::uint64_t> values;
  while (auto item = q.delete_min()) {
    EXPECT_EQ(item->first, 42);
    values.push_back(item->second);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(LindenSkipQueue, MatchesSequentialOracle) {
  Queue q;
  slpq::GlobalLockPQ<std::int64_t, std::uint64_t> oracle;
  slpq::detail::Xoshiro256 rng(99);
  std::int64_t next = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.bernoulli(0.55)) {
      const std::int64_t key = next * 7919 % 1000003;
      q.insert(key, static_cast<std::uint64_t>(next));
      oracle.insert(key, static_cast<std::uint64_t>(next));
      ++next;
    } else {
      const auto got = q.delete_min();
      const auto want = oracle.delete_min();
      ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i;
      if (got) {
        EXPECT_EQ(got->first, want->first) << "op " << i;
      }
    }
  }
  EXPECT_EQ(q.size(), oracle.size());
}

TEST(LindenSkipQueue, SmallBoundoffsetRestructures) {
  Queue::Options opt;
  opt.boundoffset = 1;  // every claim sweeps the prefix
  Queue q(opt);
  for (int i = 0; i < 256; ++i) q.insert(i, static_cast<std::uint64_t>(i));
  for (int i = 0; i < 256; ++i) {
    auto item = q.delete_min();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->first, i);
  }
  EXPECT_GT(q.restructures(), 0u);
}

TEST(LindenSkipQueue, HugeBoundoffsetNeverRestructures) {
  Queue::Options opt;
  opt.boundoffset = 1 << 20;
  Queue q(opt);
  for (int i = 0; i < 512; ++i) q.insert(i, 0);
  for (int i = 0; i < 512; ++i) ASSERT_TRUE(q.delete_min().has_value());
  EXPECT_EQ(q.restructures(), 0u);
  EXPECT_TRUE(q.empty());
  // The dead prefix is still linked; the destructor must free it (checked
  // by asan on teardown).
}

TEST(LindenSkipQueue, ChurnReclaimsSweptPrefixes) {
  Queue::Options opt;
  opt.boundoffset = 8;
  Queue q(opt);
  slpq::detail::Xoshiro256 rng(3);
  for (int i = 0; i < 512; ++i)
    q.insert(static_cast<std::int64_t>(rng.below(1 << 12)), 1);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 256; ++i) ASSERT_TRUE(q.delete_min().has_value());
    for (int i = 0; i < 256; ++i)
      q.insert(static_cast<std::int64_t>(rng.below(1 << 12)), 1);
  }
  EXPECT_GT(q.restructures(), 0u);
  EXPECT_GT(q.reclaimed(), 0u);
  EXPECT_GT(q.pool_reused(), 0u);
}

TEST(LindenSkipQueue, InsertsLandAfterTheDeadPrefix) {
  // Regression guard for the contiguity invariant: with a large bound the
  // dead prefix stays linked, and an insert of a key smaller than every
  // dead key must still surface as the next minimum.
  Queue::Options opt;
  opt.boundoffset = 1 << 20;
  Queue q(opt);
  for (int i = 100; i < 200; ++i) q.insert(i, 0);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(q.delete_min().has_value());
  q.insert(5, 99);  // smaller than all the dead keys
  auto item = q.delete_min();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 5);
  EXPECT_EQ(item->second, 99u);
  EXPECT_EQ(q.delete_min()->first, 150);
}

// ---- timestamped variant (Options::timestamps) ---------------------------

TEST(LindenSkipQueue, TimestampsIgnoreConcurrentlyInsertedNodes) {
  Queue::Options opt;
  opt.timestamps = true;
  Queue q(opt);

  q.insert(10, 1);
  q.insert(5, 2);

  // An operation that "entered" before either insert completed must not
  // return them; in this encoding claiming past a live node is impossible,
  // so it conservatively reports empty.
  EXPECT_FALSE(Peer::claim_min_at(q, 0).has_value());
  EXPECT_EQ(q.size(), 2u);

  // An operation entering now sees both.
  const auto now = Peer::clock_now(q);
  auto item = Peer::claim_min_at(q, now);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 5);

  // A fresh insert of a smaller key is invisible to an older entry time,
  // even though an eligible (older) node sits right behind it.
  const auto before = Peer::clock_now(q);
  q.insert(1, 3);
  EXPECT_FALSE(Peer::claim_min_at(q, before).has_value());
  EXPECT_EQ(Peer::claim_min_at(q, Peer::clock_now(q))->first, 1);
  EXPECT_EQ(Peer::claim_min_at(q, Peer::clock_now(q))->first, 10);
  EXPECT_TRUE(q.empty());
}

TEST(LindenSkipQueue, TimestampedPublicApiStillDrainsSorted) {
  Queue::Options opt;
  opt.timestamps = true;
  Queue q(opt);
  for (int k : {9, 3, 7, 1, 5}) q.insert(k, 0);
  std::vector<std::int64_t> drained;
  while (auto item = q.delete_min()) drained.push_back(item->first);
  EXPECT_EQ(drained, (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
}

TEST(LindenSkipQueue, UnpooledAllocationWorks) {
  Queue::Options opt;
  opt.pooled = false;
  opt.boundoffset = 4;
  Queue q(opt);
  for (int i = 0; i < 200; ++i) q.insert(i ^ 0x55, 0);
  std::size_t n = 0;
  while (q.delete_min()) ++n;
  EXPECT_EQ(n, 200u);
}

}  // namespace
