#include "slpq/hunt_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

using slpq::HuntHeap;

TEST(HuntHeap, StartsEmpty) {
  HuntHeap<int, int> h(64);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.delete_min().has_value());
}

TEST(HuntHeap, InsertDrainSorted) {
  HuntHeap<int, int> h(64);
  for (int k : {8, 3, 5, 1, 9, 2}) EXPECT_TRUE(h.insert(k, k * 7));
  std::vector<int> out;
  while (auto item = h.delete_min()) {
    EXPECT_EQ(item->second, item->first * 7);
    out.push_back(item->first);
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 5, 8, 9}));
}

TEST(HuntHeap, DuplicatesAreKept) {
  HuntHeap<int, int> h(16);
  h.insert(4, 1);
  h.insert(4, 2);
  EXPECT_EQ(h.size(), 2u);
  std::vector<int> vals;
  while (auto item = h.delete_min()) vals.push_back(item->second);
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<int>{1, 2}));
}

TEST(HuntHeap, CapacityIsEnforced) {
  HuntHeap<int, int> h(3);
  EXPECT_TRUE(h.insert(1, 1));
  EXPECT_TRUE(h.insert(2, 2));
  EXPECT_TRUE(h.insert(3, 3));
  EXPECT_FALSE(h.insert(4, 4));
  h.delete_min();
  EXPECT_TRUE(h.insert(4, 4));
}

TEST(HuntHeap, SequentialAgainstModel) {
  HuntHeap<std::uint64_t, int> h(1 << 12);
  std::multiset<std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(5);
  for (int step = 0; step < 20000; ++step) {
    if ((model.empty() || rng.bernoulli(0.55)) && model.size() < (1u << 12)) {
      const auto k = rng.below(10000);
      ASSERT_TRUE(h.insert(k, 0));
      model.insert(k);
    } else {
      const auto got = h.delete_min();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->first, *model.begin());
      model.erase(model.begin());
    }
    ASSERT_EQ(h.size(), model.size());
  }
}

TEST(HuntHeap, CustomComparator) {
  HuntHeap<int, int, std::greater<int>> h(16);
  for (int k : {2, 7, 4}) h.insert(k, k);
  EXPECT_EQ(h.delete_min()->first, 7);
  EXPECT_EQ(h.delete_min()->first, 4);
  EXPECT_EQ(h.delete_min()->first, 2);
}

class HuntHeapThreads : public ::testing::TestWithParam<int> {};

TEST_P(HuntHeapThreads, ConcurrentMixedConservation) {
  const int threads = GetParam();
  HuntHeap<std::uint64_t, std::uint64_t> h(1 << 15);
  constexpr int kOps = 3000;
  std::vector<std::map<std::uint64_t, long>> balances(
      static_cast<std::size_t>(threads));

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& balance = balances[static_cast<std::size_t>(t)];
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 131 + 7);
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          const auto k = rng.below(1 << 18);
          if (h.insert(k, k)) balance[k] += 1;
        } else if (auto item = h.delete_min()) {
          EXPECT_EQ(item->second, item->first);
          balance[item->first] -= 1;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::map<std::uint64_t, long> balance;
  for (auto& b : balances)
    for (auto& [k, v] : b) balance[k] += v;
  while (auto item = h.delete_min()) balance[item->first] -= 1;
  for (auto& [k, v] : balance) ASSERT_EQ(v, 0) << "key " << k;
  EXPECT_EQ(h.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, HuntHeapThreads, ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "t";
                         });

TEST(HuntHeapThreads, ConcurrentDrainHandsOutEverythingOnce) {
  HuntHeap<int, int> h(4096);
  constexpr int kItems = 2000;
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(h.insert(i, i));
  std::vector<std::vector<int>> got(6);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t)
    workers.emplace_back([&, t] {
      while (auto item = h.delete_min())
        got[static_cast<std::size_t>(t)].push_back(item->first);
    });
  for (auto& w : workers) w.join();
  std::multiset<int> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all.count(i), 1u);
}

TEST(HuntHeapThreads, ParallelInsertsAllArrive) {
  HuntHeap<int, int> h(1 << 14);
  constexpr int kThreads = 8, kPer = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i)
        ASSERT_TRUE(h.insert(i * kThreads + t, i));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.size(), static_cast<std::size_t>(kThreads) * kPer);
  int prev = -1;
  int count = 0;
  while (auto item = h.delete_min()) {
    EXPECT_GE(item->first, prev);
    prev = item->first;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kPer);
}
