// Unit tests for the pluggable reclamation policies (slpq/reclaim.hpp):
// per-policy drain conservation, the hazard-pointer protection contract,
// epoch advancement, and a cross-policy oracle check that every skiplist
// queue produces identical sequential results under every --reclaim value.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/epoch_reclaimer.hpp"
#include "slpq/global_lock_pq.hpp"
#include "slpq/hazard_reclaimer.hpp"
#include "slpq/linden_skip_queue.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/reclaim.hpp"
#include "slpq/skip_queue.hpp"

using slpq::ReclaimPolicy;
using slpq::Reclaimer;

namespace {

struct Tracker {
  std::atomic<int> freed{0};
  Reclaimer::Deleter deleter() {
    return [this](void* p) {
      ++freed;
      ::operator delete(p);
    };
  }
};

constexpr ReclaimPolicy kAllPolicies[] = {
    ReclaimPolicy::kTimestamp, ReclaimPolicy::kHazard, ReclaimPolicy::kEpoch,
    ReclaimPolicy::kLeaky};

class EveryPolicy : public ::testing::TestWithParam<ReclaimPolicy> {};

}  // namespace

TEST(ReclaimPolicyParse, AcceptsCanonicalAndAliasSpellings) {
  ReclaimPolicy p;
  EXPECT_TRUE(slpq::parse_reclaim_policy("ts", p));
  EXPECT_EQ(p, ReclaimPolicy::kTimestamp);
  EXPECT_TRUE(slpq::parse_reclaim_policy("timestamp", p));
  EXPECT_EQ(p, ReclaimPolicy::kTimestamp);
  EXPECT_TRUE(slpq::parse_reclaim_policy("hp", p));
  EXPECT_EQ(p, ReclaimPolicy::kHazard);
  EXPECT_TRUE(slpq::parse_reclaim_policy("hazard", p));
  EXPECT_EQ(p, ReclaimPolicy::kHazard);
  EXPECT_TRUE(slpq::parse_reclaim_policy("epoch", p));
  EXPECT_EQ(p, ReclaimPolicy::kEpoch);
  EXPECT_TRUE(slpq::parse_reclaim_policy("qsbr", p));
  EXPECT_EQ(p, ReclaimPolicy::kEpoch);
  EXPECT_TRUE(slpq::parse_reclaim_policy("leaky", p));
  EXPECT_EQ(p, ReclaimPolicy::kLeaky);
  EXPECT_FALSE(slpq::parse_reclaim_policy("rcu", p));
  EXPECT_FALSE(slpq::parse_reclaim_policy("", p));
}

TEST(ReclaimPolicyParse, RoundTripsThroughToString) {
  for (ReclaimPolicy p : kAllPolicies) {
    ReclaimPolicy back;
    ASSERT_TRUE(slpq::parse_reclaim_policy(slpq::to_string(p), back));
    EXPECT_EQ(back, p);
  }
}

// Conservation: whatever a policy does mid-run, teardown must hand every
// retired node to the deleter exactly once.
TEST_P(EveryPolicy, DrainFreesEveryRetiredNodeExactlyOnce) {
  Tracker tracker;
  constexpr int kNodes = 700;
  {
    auto r = slpq::make_reclaimer(GetParam(), tracker.deleter(),
                                  /*hazard_slots=*/8);
    ASSERT_EQ(r->policy(), GetParam());
    for (int i = 0; i < kNodes; ++i) {
      Reclaimer::Guard g(*r);
      r->retire(::operator new(24));
    }
    const auto s = r->stats();
    EXPECT_EQ(s.retired, static_cast<std::uint64_t>(kNodes));
    EXPECT_EQ(r->pending(), s.retired - s.freed);
  }
  EXPECT_EQ(tracker.freed.load(), kNodes);
}

TEST_P(EveryPolicy, MultiThreadedChurnConservesNodes) {
  Tracker tracker;
  std::atomic<int> retired{0};
  constexpr int kThreads = 8, kPerThread = 400;
  {
    auto r = slpq::make_reclaimer(GetParam(), tracker.deleter(),
                                  /*hazard_slots=*/8);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          Reclaimer::Guard g(*r);
          r->retire(::operator new(16));
          ++retired;
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(r->stats().retired,
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  EXPECT_EQ(tracker.freed.load(), retired.load());
}

INSTANTIATE_TEST_SUITE_P(Policies, EveryPolicy,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           return std::string(slpq::to_string(info.param));
                         });

// The hazard contract: a published hazard keeps exactly that node alive
// across scans; clearing it (exit) makes the node reclaimable.
TEST(HazardPointerReclaimer, ProtectedNodeSurvivesScansUntilUnprotected) {
  Tracker tracker;
  slpq::HazardPointerReclaimer r(tracker.deleter(), /*hazard_slots=*/4);
  const int slot = r.register_thread();

  void* protected_node = ::operator new(32);
  r.enter(slot);
  r.protect(slot, 0, protected_node);

  // Retire the protected node plus enough bystanders to force scans.
  r.retire(protected_node);
  constexpr int kBystanders = 4096;
  for (int i = 0; i < kBystanders; ++i) r.retire(::operator new(32));

  EXPECT_GT(r.stats().scans, 0u) << "retire volume never triggered a scan";
  EXPECT_GT(tracker.freed.load(), 0) << "scan freed none of the bystanders";
  EXPECT_GE(r.pending(), 1u) << "the protected node must still be pending";

  // Scans must have been counting the survivor as a stall.
  EXPECT_GT(r.stats().stalls, 0u);

  r.exit(slot);  // clears the hazard (high-water-mark discipline)
  r.drain();     // quiescent: everything goes, including the ex-protected node
  EXPECT_EQ(tracker.freed.load(), kBystanders + 1);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(HazardPointerReclaimer, ExitClearsOnlyPublishedSlots) {
  Tracker tracker;
  slpq::HazardPointerReclaimer r(tracker.deleter(), /*hazard_slots=*/6);
  const int slot = r.register_thread();
  r.enter(slot);
  void* a = ::operator new(8);
  r.protect(slot, 2, a);
  auto* hz = r.hazards_for(slot);
  EXPECT_EQ(hz[2].load(), a);
  r.exit(slot);
  EXPECT_EQ(hz[2].load(), nullptr);
  ::operator delete(a);
}

TEST(HazardPointerReclaimer, ConcurrentRetireAndDrainKeepProtectedAlive) {
  // A writer thread churns retirements (forcing scans) while the main
  // thread holds one hazard; the protected allocation must stay valid —
  // we keep writing to it — until the hazard drops. ASan turns a violation
  // into a hard failure.
  Tracker tracker;
  slpq::HazardPointerReclaimer r(tracker.deleter(), /*hazard_slots=*/4);
  const int slot = r.register_thread();
  auto* cell = static_cast<std::atomic<std::uint64_t>*>(::operator new(64));
  new (cell) std::atomic<std::uint64_t>{0};

  r.enter(slot);
  r.protect(slot, 0, cell);
  r.retire(cell);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      Reclaimer::Guard g(r);
      for (int i = 0; i < 64; ++i) r.retire(::operator new(64));
    }
  });
  for (int i = 1; i <= 2000; ++i) cell->store(static_cast<std::uint64_t>(i));
  stop.store(true);
  churn.join();

  EXPECT_EQ(cell->load(), 2000u);
  r.exit(slot);
}

TEST(EpochReclaimer, AdvanceBlocksOnStaleActiveThread) {
  Tracker tracker;
  slpq::EpochReclaimer r(tracker.deleter());
  const int holder = r.register_thread();
  r.enter(holder);  // pins the current epoch

  const std::uint64_t e0 = r.current_epoch();
  EXPECT_TRUE(r.try_advance()) << "holder pinned the current epoch";
  EXPECT_EQ(r.current_epoch(), e0 + 1);
  // Now the holder's pin (e0) is stale: the epoch must stick until exit.
  EXPECT_FALSE(r.try_advance());
  EXPECT_EQ(r.current_epoch(), e0 + 1);
  EXPECT_GT(r.stats().stalls, 0u);

  r.exit(holder);
  EXPECT_TRUE(r.try_advance());
  EXPECT_EQ(r.current_epoch(), e0 + 2);
}

TEST(EpochReclaimer, NodesFreeAfterTwoAdvances) {
  Tracker tracker;
  slpq::EpochReclaimer r(tracker.deleter());
  {
    Reclaimer::Guard g(r);
    r.retire(::operator new(16));
  }
  ASSERT_TRUE(r.try_advance());
  ASSERT_TRUE(r.try_advance());
  ASSERT_TRUE(r.try_advance());
  // The 3-bucket limbo frees a bucket when retire() revisits it in a
  // later epoch; one more retirement in the recycled bucket triggers it.
  {
    Reclaimer::Guard g(r);
    r.retire(::operator new(16));
  }
  EXPECT_EQ(tracker.freed.load(), 1);
}

TEST(LeakyReclaimer, FreesNothingBeforeDrain) {
  Tracker tracker;
  auto r = slpq::make_reclaimer(ReclaimPolicy::kLeaky, tracker.deleter(), 1);
  for (int i = 0; i < 300; ++i) {
    Reclaimer::Guard g(*r);
    r->retire(::operator new(16));
  }
  EXPECT_EQ(tracker.freed.load(), 0);
  EXPECT_EQ(r->stats().freed, 0u);
  EXPECT_EQ(r->pending(), 300u);
  r->drain();
  EXPECT_EQ(tracker.freed.load(), 300);
}

// ---- cross-policy oracle ---------------------------------------------------

namespace {

// Single-threaded mixed op sequence; GlobalLockPQ is the oracle. Identical
// observable behaviour is required from every queue under every policy.
template <typename Queue>
std::vector<std::int64_t> replay(Queue& q, std::uint64_t seed, int ops) {
  slpq::detail::Xoshiro256 rng(seed);
  std::vector<std::int64_t> observed;
  std::int64_t next_key = 0;
  for (int i = 0; i < ops; ++i) {
    if (rng.bernoulli(0.55)) {
      q.insert(next_key * 7919 % 1000003, next_key);
      ++next_key;
    } else if (auto item = q.delete_min()) {
      observed.push_back(item->first);
    } else {
      observed.push_back(-1);  // EMPTY
    }
  }
  while (auto item = q.delete_min()) observed.push_back(item->first);
  return observed;
}

}  // namespace

TEST_P(EveryPolicy, AllSkipQueuesMatchOracleUnderThisPolicy) {
  constexpr std::uint64_t kSeed = 0xD15EA5E;
  constexpr int kOps = 2500;

  slpq::GlobalLockPQ<std::int64_t, std::int64_t> oracle;
  const auto expected = replay(oracle, kSeed, kOps);

  {
    slpq::SkipQueue<std::int64_t, std::int64_t>::Options o;
    o.reclaim = GetParam();
    slpq::SkipQueue<std::int64_t, std::int64_t> q(o);
    EXPECT_EQ(replay(q, kSeed, kOps), expected) << "SkipQueue diverged";
  }
  {
    slpq::LockFreeSkipQueue<std::int64_t, std::int64_t>::Options o;
    o.reclaim = GetParam();
    slpq::LockFreeSkipQueue<std::int64_t, std::int64_t> q(o);
    EXPECT_EQ(replay(q, kSeed, kOps), expected) << "LockFreeSkipQueue diverged";
  }
  {
    slpq::LindenSkipQueue<std::int64_t, std::int64_t>::Options o;
    o.reclaim = GetParam();
    o.boundoffset = 8;  // restructure (and hence retire) often
    slpq::LindenSkipQueue<std::int64_t, std::int64_t> q(o);
    EXPECT_EQ(replay(q, kSeed, kOps), expected) << "LindenSkipQueue diverged";
  }
}
