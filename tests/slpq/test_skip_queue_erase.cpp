// Tests for the general skiplist operations on the native SkipQueue:
// erase(key), contains(key), peek_min().
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/skip_queue.hpp"

using slpq::SkipQueue;

TEST(SkipQueueErase, EraseExistingKey) {
  SkipQueue<int, int> q;
  for (int k : {1, 2, 3, 4, 5}) q.insert(k, k * 10);
  auto removed = q.erase(3);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 30);
  EXPECT_EQ(q.size(), 4u);
  std::vector<int> out;
  while (auto item = q.delete_min()) out.push_back(item->first);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 5}));
}

TEST(SkipQueueErase, EraseMissingKeyReturnsNullopt) {
  SkipQueue<int, int> q;
  q.insert(1, 1);
  EXPECT_FALSE(q.erase(2).has_value());
  EXPECT_FALSE(q.erase(0).has_value());
  EXPECT_EQ(q.size(), 1u);
}

TEST(SkipQueueErase, EraseOnEmptyQueue) {
  SkipQueue<int, int> q;
  EXPECT_FALSE(q.erase(42).has_value());
}

TEST(SkipQueueErase, DoubleEraseClaimsOnce) {
  SkipQueue<int, int> q;
  q.insert(7, 7);
  EXPECT_TRUE(q.erase(7).has_value());
  EXPECT_FALSE(q.erase(7).has_value());
}

TEST(SkipQueueErase, EraseTheCurrentMinimum) {
  SkipQueue<int, int> q;
  for (int k : {10, 20, 30}) q.insert(k, k);
  EXPECT_TRUE(q.erase(10).has_value());
  EXPECT_EQ(q.delete_min()->first, 20);
}

TEST(SkipQueueContains, ReflectsMembership) {
  SkipQueue<int, int> q;
  EXPECT_FALSE(q.contains(5));
  q.insert(5, 5);
  EXPECT_TRUE(q.contains(5));
  EXPECT_FALSE(q.contains(4));
  q.erase(5);
  EXPECT_FALSE(q.contains(5));
}

TEST(SkipQueueContains, SeesHighLevelNodes) {
  SkipQueue<int, int> q;
  for (int k = 0; k < 500; ++k) q.insert(k, k);
  for (int k = 0; k < 500; k += 37) EXPECT_TRUE(q.contains(k)) << k;
  EXPECT_FALSE(q.contains(1000));
}

TEST(SkipQueuePeek, PeekDoesNotRemove) {
  SkipQueue<int, int> q;
  EXPECT_FALSE(q.peek_min().has_value());
  q.insert(9, 90);
  q.insert(4, 40);
  auto top = q.peek_min();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->first, 4);
  EXPECT_EQ(top->second, 40);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.delete_min()->first, 4);
}

TEST(SkipQueueErase, MixedWithDeleteMinAgainstModel) {
  SkipQueue<std::uint64_t, std::uint64_t> q;
  std::map<std::uint64_t, std::uint64_t> model;
  slpq::detail::Xoshiro256 rng(64);
  for (int step = 0; step < 20000; ++step) {
    switch (rng.below(4)) {
      case 0:
      case 1: {
        const auto k = rng.below(4000);
        q.insert(k, step);
        model[k] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {
        const auto got = q.delete_min();
        if (model.empty()) {
          ASSERT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          ASSERT_EQ(got->first, model.begin()->first);
          model.erase(model.begin());
        }
        break;
      }
      case 3: {
        const auto k = rng.below(4000);
        const auto got = q.erase(k);
        const auto it = model.find(k);
        ASSERT_EQ(got.has_value(), it != model.end()) << "key " << k;
        if (got) {
          ASSERT_EQ(*got, it->second);
          model.erase(it);
        }
        break;
      }
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

TEST(SkipQueueErase, ConcurrentEraseClaimsAreUnique) {
  SkipQueue<int, int> q;
  constexpr int kItems = 3000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);

  constexpr int kThreads = 8;
  std::atomic<int> erased{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      // Everyone tries to erase every key; each key dies exactly once.
      for (int i = 0; i < kItems; ++i)
        if (q.erase(i)) erased.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(erased.load(), kItems);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(SkipQueueErase, ConcurrentEraseAndDeleteMinPartitionItems) {
  SkipQueue<int, int> q;
  constexpr int kItems = 4000;
  for (int i = 0; i < kItems; ++i) q.insert(i, i);

  std::atomic<int> via_erase{0}, via_delete_min{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {  // erasers sweep even keys
      for (int i = 0; i < kItems; i += 2)
        if (q.erase(i)) via_erase.fetch_add(1);
    });
    workers.emplace_back([&] {  // drainers take whatever is minimal
      while (q.delete_min()) via_delete_min.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  int leftovers = 0;
  while (q.delete_min()) ++leftovers;
  EXPECT_EQ(via_erase.load() + via_delete_min.load() + leftovers, kItems);
}

TEST(SkipQueueErase, EraseWhileInsertInProgressWaits) {
  // erase() of a key whose insert is mid-flight must block on the node
  // lock (paper: "to make sure it is not in the process of being
  // inserted") — meaning after both finish, the key is really gone.
  SkipQueue<int, int> q;
  constexpr int kRounds = 2000;
  std::atomic<int> erased{0};
  std::thread inserter([&] {
    for (int i = 0; i < kRounds; ++i) q.insert(i, i);
  });
  std::thread eraser([&] {
    for (int i = 0; i < kRounds; ++i)
      if (q.erase(i)) erased.fetch_add(1);
  });
  inserter.join();
  eraser.join();
  int drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(erased.load() + drained, kRounds);
}
