// Concurrent stress for slpq::MultiQueue (ctest label: stress; the tsan
// CMake preset runs exactly these under ThreadSanitizer).
//
// MultiQueue relaxes *ordering*, not *content*: every shard is a
// lock-protected sequential heap, so a mixed concurrent run must neither
// lose, duplicate, nor invent items. These tests reuse the
// test_concurrent_stress.cpp machinery (net-count conservation plus a
// full-drain comparison) with unique per-item ids so any violation is
// attributable.
#include "slpq/multi_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"

namespace {

using MQ = slpq::MultiQueue<std::int64_t, std::int64_t>;

TEST(MultiQueueStress, MixedOpsConserveNetCount) {
  MQ::Options opt;
  opt.max_threads = 8;
  MQ q(opt);
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::atomic<long> net{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      long local = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.5)) {
          q.insert(static_cast<std::int64_t>(rng.below(1 << 20)), i);
          ++local;
        } else if (q.delete_min()) {
          --local;
        }
      }
      q.flush();  // hand buffered items back before the thread leaves
      net.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(static_cast<long>(q.size()), net.load());
  long drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(drained, net.load());
}

TEST(MultiQueueStress, PerShardContentIsExact) {
  // Every item carries a globally unique id in its value. After a mixed
  // concurrent run, {ids deleted concurrently} ∪ {ids drained at the end}
  // must equal {ids inserted} exactly — the per-shard critical sections
  // make anything else a lost or duplicated item.
  MQ::Options opt;
  opt.max_threads = 8;
  opt.c = 2;
  MQ q(opt);
  constexpr int kThreads = 8;
  constexpr int kOps = 15000;
  constexpr std::int64_t kStride = 1 << 20;

  std::vector<std::vector<std::int64_t>> inserted(kThreads);
  std::vector<std::vector<std::int64_t>> deleted(kThreads);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 31337);
      std::int64_t seq = 0;
      for (int i = 0; i < kOps; ++i) {
        if (rng.bernoulli(0.6)) {
          const std::int64_t id = t * kStride + seq++;
          q.insert(static_cast<std::int64_t>(rng.below(1 << 16)), id);
          inserted[static_cast<std::size_t>(t)].push_back(id);
        } else if (auto item = q.delete_min()) {
          deleted[static_cast<std::size_t>(t)].push_back(item->second);
        }
      }
      q.flush();
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::int64_t> all_inserted, all_seen;
  for (const auto& v : inserted)
    all_inserted.insert(all_inserted.end(), v.begin(), v.end());
  for (const auto& v : deleted)
    all_seen.insert(all_seen.end(), v.begin(), v.end());
  while (auto item = q.delete_min()) all_seen.push_back(item->second);

  std::sort(all_inserted.begin(), all_inserted.end());
  std::sort(all_seen.begin(), all_seen.end());
  EXPECT_EQ(all_seen, all_inserted);
  EXPECT_TRUE(q.empty());
}

TEST(MultiQueueStress, ConcurrentFlushVsDeleteMin) {
  // The buffer engine's races: producers keep forcing explicit buffer
  // flushes (batched shard pushes) while consumers concurrently drain
  // batches and trigger stale-buffer invalidations (which merge buffered
  // items *back* into shards). Every unique id must still come out
  // exactly once. Small buffers + batch keep the flush/refill/invalidate
  // frequency high; TSan sees every interleaving the schedule produces.
  MQ::Options opt;
  opt.max_threads = 8;
  opt.c = 2;
  opt.insertion_buffer = 4;
  opt.deletion_buffer = 4;
  opt.batch = 4;
  opt.stickiness = 2;
  MQ q(opt);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 15000;
  constexpr std::int64_t kStride = 1 << 20;
  std::atomic<int> producers_left{kProducers};
  std::vector<std::vector<std::int64_t>> consumed(kConsumers);

  std::vector<std::thread> workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 4242);
      for (int i = 0; i < kPerProducer; ++i) {
        q.insert(static_cast<std::int64_t>(rng.below(1 << 16)),
                 p * kStride + i);
        if (i % 3 == 0) q.flush();  // hammer the flush-vs-drain race
      }
      q.flush();
      producers_left.fetch_sub(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    workers.emplace_back([&, c] {
      for (;;) {
        if (auto item = q.delete_min()) {
          consumed[static_cast<std::size_t>(c)].push_back(item->second);
        } else if (producers_left.load() == 0) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::int64_t> seen;
  for (const auto& v : consumed) seen.insert(seen.end(), v.begin(), v.end());
  while (auto item = q.delete_min()) seen.push_back(item->second);

  std::vector<std::int64_t> expected;
  expected.reserve(static_cast<std::size_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kPerProducer; ++i) expected.push_back(p * kStride + i);

  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, expected);
  EXPECT_TRUE(q.empty());
}

TEST(MultiQueueStress, ProducersAndConsumersPipeline) {
  // Asymmetric roles exercise the shared-overflow path of shard selection:
  // producers only insert, consumers only delete. Every produced item must
  // reach exactly one consumer or remain drainable.
  MQ::Options opt;
  opt.max_threads = 8;
  MQ q(opt);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  std::atomic<long> consumed{0};
  std::atomic<int> producers_left{kProducers};

  std::vector<std::thread> workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 17);
      for (int i = 0; i < kPerProducer; ++i)
        q.insert(static_cast<std::int64_t>(rng.below(1 << 18)), i);
      q.flush();
      producers_left.fetch_sub(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    workers.emplace_back([&] {
      long local = 0;
      for (;;) {
        if (q.delete_min()) {
          ++local;
        } else if (producers_left.load() == 0) {
          break;  // empty observed after all producers flushed
        } else {
          std::this_thread::yield();
        }
      }
      consumed.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();

  long drained = 0;
  while (q.delete_min()) ++drained;
  EXPECT_EQ(consumed.load() + drained,
            static_cast<long>(kProducers) * kPerProducer);
}

}  // namespace
