// slpq/topo.hpp: the native-side grid and per-node shard locality order
// behind --mq-topo. Grid2D must agree with psim::Mesh2D's layout rule
// (near-square, row-major) so shard striping means the same thing on both
// machines; NearShardOrder must expose every shard at full radius and
// never expose an empty near set.
#include "slpq/topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using slpq::Grid2D;
using slpq::NearShardOrder;
using slpq::TopoPolicy;

TEST(TopoPolicy, ParseAndToStringRoundTrip) {
  TopoPolicy p = TopoPolicy::kNear;
  EXPECT_TRUE(slpq::parse_topo_policy("none", p));
  EXPECT_EQ(p, TopoPolicy::kNone);
  EXPECT_TRUE(slpq::parse_topo_policy("near", p));
  EXPECT_EQ(p, TopoPolicy::kNear);
  EXPECT_TRUE(slpq::parse_topo_policy("adaptive", p));
  EXPECT_EQ(p, TopoPolicy::kAdaptive);
  EXPECT_FALSE(slpq::parse_topo_policy("mesh", p));
  EXPECT_FALSE(slpq::parse_topo_policy("", p));
  for (auto q : {TopoPolicy::kNone, TopoPolicy::kNear, TopoPolicy::kAdaptive}) {
    TopoPolicy back{};
    ASSERT_TRUE(slpq::parse_topo_policy(slpq::to_string(q), back));
    EXPECT_EQ(back, q);
  }
}

TEST(Grid2D, MatchesMeshLayoutRule) {
  // Same (width, height) rule as psim::Mesh2D: width = ceil(sqrt(n)).
  const struct { int n, w, h; } cases[] = {
      {1, 1, 1}, {2, 2, 1}, {6, 3, 2}, {12, 4, 3}, {16, 4, 4}, {48, 7, 7},
      {64, 8, 8}, {256, 16, 16}};
  for (const auto& c : cases) {
    Grid2D g(c.n);
    EXPECT_EQ(g.width(), c.w) << "n=" << c.n;
    EXPECT_EQ(g.height(), c.h) << "n=" << c.n;
    EXPECT_EQ(g.diameter(), (c.w - 1) + (c.h - 1)) << "n=" << c.n;
  }
  Grid2D g(16);
  EXPECT_EQ(g.hops(0, 15), 6);
  EXPECT_EQ(g.hops(0, 1), 1);
  EXPECT_EQ(g.hops(0, 4), 1);
  EXPECT_EQ(g.hops(5, 5), 0);
}

namespace {

NearShardOrder make_order(const Grid2D& g, std::size_t shards) {
  return NearShardOrder(
      g.nodes(), shards, g.diameter(),
      [&g](int node, int owner) { return g.hops(node, owner); });
}

}  // namespace

TEST(NearShardOrder, FullRadiusCoversEveryShardExactlyOnce) {
  Grid2D g(16);
  const std::size_t shards = 32;  // c=2 per node
  NearShardOrder order = make_order(g, shards);
  for (int node = 0; node < g.nodes(); ++node) {
    EXPECT_EQ(order.cutoff(node, order.diameter()), shards);
    std::set<std::size_t> seen;
    for (std::size_t i = 0; i < shards; ++i)
      seen.insert(order.shard_at(node, i));
    EXPECT_EQ(seen.size(), shards);  // a permutation, no repeats
  }
}

TEST(NearShardOrder, RadiusZeroIsOwnShardsOnly) {
  Grid2D g(16);
  const std::size_t shards = 32;
  NearShardOrder order = make_order(g, shards);
  for (int node = 0; node < g.nodes(); ++node) {
    const std::size_t cut = order.cutoff(node, 0);
    EXPECT_EQ(cut, 2u);  // c = 2 shards stripe onto each node
    for (std::size_t i = 0; i < cut; ++i)
      EXPECT_EQ(static_cast<int>(order.shard_at(node, i) % 16), node);
  }
}

TEST(NearShardOrder, CutoffsMonotoneAndDistanceSorted) {
  Grid2D g(12);  // non-square: 4x3
  const std::size_t shards = 24;
  NearShardOrder order = make_order(g, shards);
  for (int node = 0; node < g.nodes(); ++node) {
    std::size_t prev = 0;
    for (int r = 0; r <= order.diameter(); ++r) {
      const std::size_t cut = order.cutoff(node, r);
      EXPECT_GE(cut, prev);
      // Everything below the cutoff really is within r hops...
      for (std::size_t i = 0; i < cut; ++i)
        EXPECT_LE(g.hops(node, static_cast<int>(order.shard_at(node, i) % 12)),
                  r);
      // ...and everything above it is not.
      for (std::size_t i = cut; i < shards; ++i)
        EXPECT_GT(g.hops(node, static_cast<int>(order.shard_at(node, i) % 12)),
                  r);
      prev = cut;
    }
    EXPECT_EQ(prev, shards);
  }
}

TEST(NearShardOrder, NeverEmptyEvenDegenerate) {
  // 1 node, 2 shards (the MultiQueue's floor): both shards are "local".
  Grid2D g(1);
  NearShardOrder order = make_order(g, 2);
  EXPECT_EQ(order.cutoff(0, 0), 2u);
  // Out-of-range radii clamp instead of reading out of bounds.
  EXPECT_EQ(order.cutoff(0, 100), 2u);
  Grid2D big(64);
  NearShardOrder big_order = make_order(big, 128);
  for (int node = 0; node < 64; ++node)
    EXPECT_GE(big_order.cutoff(node, 0), 1u);
  EXPECT_EQ(big_order.cutoff(3, -5), big_order.cutoff(3, 0));
}
