// MultiQueue semantics and relaxation-quality tests.
//
// The headline tests measure the *rank error* of delete_min: when a pop
// returns key k while r remaining items are strictly smaller, that pop's
// rank error is r. For a MultiQueue with q = c * max_threads shards,
// 2-choice sampling alone keeps the expected rank error O(q). Stickiness
// and the deletion buffer multiply that: a handle commits to one shard for
// stickiness * deletion_buffer consecutive pops, and the k-th pop of such
// a streak draws the k-th smallest of one shard — expected global rank
// ~ k * q. So the envelope asserted here (with ~2x slack over the seeded,
// deterministic observation) is
//
//   mean rank error <= q * stickiness * (deletion_buffer + 1)
//   p99  rank error <= 4 * q * stickiness * (deletion_buffer + 1)
//
// and a second test with stickiness = buffers = 1 pins down the pure
// sampling term at O(q).
#include "slpq/multi_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "slpq/detail/random.hpp"

namespace {

using MQ = slpq::MultiQueue<std::int64_t, std::int64_t>;

/// Fenwick tree over the key space: counts remaining items below a key.
class Fenwick {
 public:
  explicit Fenwick(int n) : tree_(static_cast<std::size_t>(n) + 1, 0) {}

  void add(int key, int delta) {
    for (int i = key + 1; i < static_cast<int>(tree_.size()); i += i & -i)
      tree_[static_cast<std::size_t>(i)] += delta;
  }

  /// Number of items with key strictly below `key`.
  int below(int key) const {
    int s = 0;
    for (int i = key; i > 0; i -= i & -i) s += tree_[static_cast<std::size_t>(i)];
    return s;
  }

 private:
  std::vector<int> tree_;
};

TEST(MultiQueueQuality, RankErrorStaysInsideEnvelope) {
  MQ::Options opt;
  opt.c = 2;
  opt.max_threads = 8;  // q = 16 shards
  opt.stickiness = 8;
  opt.insertion_buffer = 8;
  opt.deletion_buffer = 8;
  opt.seed = 0xC0FFEE;
  MQ q(opt);

  constexpr int kHandles = 8;
  constexpr int kItems = 20000;
  constexpr int kKeySpace = 1 << 15;

  std::vector<MQ::Handle*> handles;
  for (int h = 0; h < kHandles; ++h) handles.push_back(&q.make_handle());

  slpq::detail::Xoshiro256 rng(42);
  Fenwick remaining(kKeySpace);
  for (int i = 0; i < kItems; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(kKeySpace));
    handles[rng.below(kHandles)]->insert(key, i);
    remaining.add(static_cast<int>(key), +1);
  }
  // Make every insert visible so the pop phase measures sampling +
  // deletion-buffer relaxation, not insert-buffer residency.
  for (auto* h : handles) h->flush();

  std::vector<int> rank_errors;
  rank_errors.reserve(kItems);
  int guard = 0;
  while (static_cast<int>(rank_errors.size()) < kItems) {
    ASSERT_LT(++guard, 50 * kItems) << "drain failed to make progress";
    auto item = handles[rng.below(kHandles)]->delete_min();
    if (!item) continue;  // this handle sees nothing; others hold the rest
    const int key = static_cast<int>(item->first);
    rank_errors.push_back(remaining.below(key));
    remaining.add(key, -1);
  }

  std::vector<int> sorted = rank_errors;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (int r : rank_errors) sum += r;
  const double mean = sum / static_cast<double>(rank_errors.size());
  const int p99 = sorted[static_cast<std::size_t>(0.99 * sorted.size())];
  const int max = sorted.back();

  const int shards = static_cast<int>(q.num_shards());
  const int streak = opt.stickiness * (static_cast<int>(opt.deletion_buffer) + 1);
  const double mean_bound = static_cast<double>(shards) * streak;
  const int p99_bound = 4 * shards * streak;

  RecordProperty("mean_rank_error", static_cast<int>(mean));
  RecordProperty("p99_rank_error", p99);
  RecordProperty("max_rank_error", max);

  EXPECT_LE(mean, mean_bound)
      << "mean rank error escaped the O(shards * stickiness * dbuf) envelope "
         "(observed mean "
      << mean << ", p99 " << p99 << ", max " << max << ")";
  EXPECT_LE(p99, p99_bound);
  // Sanity: the structure is actually relaxed (a strict queue would show 0
  // everywhere and this test would be vacuous).
  EXPECT_GT(max, 0);
}

TEST(MultiQueueQuality, UnbufferedRankErrorIsPureSampling) {
  // With stickiness = 1 and single-slot buffers every pop is an
  // independent 2-choice draw, so the rank error collapses to the O(q)
  // sampling term alone.
  MQ::Options opt;
  opt.c = 2;
  opt.max_threads = 8;  // q = 16 shards
  opt.stickiness = 1;
  opt.insertion_buffer = 1;
  opt.deletion_buffer = 1;
  opt.seed = 0xC0FFEE;
  MQ q(opt);

  constexpr int kHandles = 8;
  constexpr int kItems = 20000;
  constexpr int kKeySpace = 1 << 15;

  std::vector<MQ::Handle*> handles;
  for (int h = 0; h < kHandles; ++h) handles.push_back(&q.make_handle());

  slpq::detail::Xoshiro256 rng(42);
  Fenwick remaining(kKeySpace);
  for (int i = 0; i < kItems; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(kKeySpace));
    handles[rng.below(kHandles)]->insert(key, i);
    remaining.add(static_cast<int>(key), +1);
  }
  for (auto* h : handles) h->flush();

  double sum = 0;
  std::vector<int> errors;
  errors.reserve(kItems);
  int guard = 0;
  while (static_cast<int>(errors.size()) < kItems) {
    ASSERT_LT(++guard, 50 * kItems) << "drain failed to make progress";
    auto item = handles[rng.below(kHandles)]->delete_min();
    if (!item) continue;
    const int key = static_cast<int>(item->first);
    const int err = remaining.below(key);
    errors.push_back(err);
    sum += err;
    remaining.add(key, -1);
  }
  std::sort(errors.begin(), errors.end());
  const double mean = sum / static_cast<double>(errors.size());
  const int p99 = errors[static_cast<std::size_t>(0.99 * errors.size())];
  const int shards = static_cast<int>(q.num_shards());

  RecordProperty("mean_rank_error", static_cast<int>(mean));
  RecordProperty("p99_rank_error", p99);

  EXPECT_LE(mean, 2.0 * shards) << "observed mean " << mean << ", p99 " << p99;
  EXPECT_LE(p99, 16 * shards);
}

TEST(MultiQueueBasics, DrainsEveryItemExactlyOnce) {
  MQ::Options opt;
  opt.max_threads = 4;
  MQ q(opt);
  auto& h = q.make_handle();

  slpq::detail::Xoshiro256 rng(7);
  std::vector<std::int64_t> inserted;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(1 << 20));
    h.insert(key, i);
    inserted.push_back(key);
  }
  EXPECT_EQ(q.size(), inserted.size());

  std::vector<std::int64_t> drained;
  while (auto item = h.delete_min()) drained.push_back(item->first);
  EXPECT_TRUE(q.empty());

  std::sort(inserted.begin(), inserted.end());
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, inserted);  // no loss, no duplication, no invention
}

TEST(MultiQueueBasics, OwnInsertsAreImmediatelyVisible) {
  MQ q;  // implicit per-thread handle API
  q.insert(41, 1);
  auto item = q.delete_min();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 41);
  EXPECT_FALSE(q.delete_min().has_value());
}

TEST(MultiQueueBasics, ServesSmallerOfBufferedAndShardedItems) {
  MQ::Options opt;
  opt.max_threads = 2;
  opt.insertion_buffer = 64;  // keep everything buffered
  MQ q(opt);
  auto& h = q.make_handle();
  for (std::int64_t k : {50, 10, 30}) h.insert(k, 0);
  auto item = h.delete_min();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 10);  // the handle's own buffer min, not FIFO
}

TEST(MultiQueueBasics, SanitizesDegenerateOptions) {
  MQ::Options opt;
  opt.c = 0;
  opt.max_threads = -3;
  opt.stickiness = 0;
  opt.insertion_buffer = 0;
  opt.deletion_buffer = 0;
  MQ q(opt);
  EXPECT_GE(q.num_shards(), 2u);
  q.insert(1, 1);
  auto item = q.delete_min();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 1);
}

TEST(MultiQueueBasics, MultiHandleDrainConservesUnflushedBufferedKeys) {
  // Several handles insert without ever flushing, then drain by rotating
  // until a full rotation comes up empty. Keys still resident in a
  // handle's insertion buffer at drain time are only reachable through
  // their owner, so conservation here proves the drain path (flush +
  // refill) hands buffered items back correctly.
  MQ::Options opt;
  opt.max_threads = 4;
  opt.insertion_buffer = 16;
  opt.deletion_buffer = 16;
  opt.batch = 8;
  MQ q(opt);

  constexpr int kHandles = 4;
  std::vector<MQ::Handle*> handles;
  for (int h = 0; h < kHandles; ++h) handles.push_back(&q.make_handle());

  slpq::detail::Xoshiro256 rng(99);
  std::vector<std::int64_t> inserted;
  for (int i = 0; i < 3000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(1 << 18));
    handles[rng.below(kHandles)]->insert(key, i);
    inserted.push_back(key);
  }
  // No flush: each handle's buffer still holds up to insertion_buffer keys.

  std::vector<std::int64_t> drained;
  int empty_streak = 0;
  while (empty_streak < kHandles) {
    empty_streak = 0;
    for (auto* h : handles) {
      if (auto item = h->delete_min()) drained.push_back(item->first);
      else ++empty_streak;
    }
  }
  EXPECT_TRUE(q.empty());
  std::sort(inserted.begin(), inserted.end());
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, inserted);
}

TEST(MultiQueueBuffers, BatchEvictionAmortizesFlushes) {
  // Same insert count, two batch settings: with batch = buffer = 32 a
  // full buffer empties in one lock hold; with batch = 1 each overflow
  // moves a single item, so the flush count (telemetry mq.ins_flushes)
  // is ~32x higher. This pins the operation-batching knob to observable
  // behavior rather than implementation detail.
  auto flushes_with_batch = [](std::size_t batch) {
    MQ::Options opt;
    opt.max_threads = 2;
    opt.insertion_buffer = 32;
    opt.batch = batch;
    MQ q(opt);
    auto& h = q.make_handle();
    for (int i = 0; i < 1024; ++i) h.insert(i, i);
    return q.telemetry().get("mq.ins_flushes");
  };

  const auto batched = flushes_with_batch(32);
  const auto unit = flushes_with_batch(1);
  EXPECT_GT(batched, 0u);
  EXPECT_GE(unit, 16 * batched)
      << "batch=1 flushed " << unit << " times, batch=32 " << batched;
}

TEST(MultiQueueBuffers, StaleDeletionBufferIsInvalidated) {
  // Fill A's deletion buffer with large keys, then push smaller keys into
  // the shards through B. With stale_invalidation on, A's next pop
  // notices its sticky shard's published top beats the buffered head,
  // merges the stale remainder back and serves a fresh batch; with it
  // off, A keeps serving its stale buffer.
  auto run = [](bool invalidate) {
    MQ::Options opt;
    opt.c = 2;
    opt.max_threads = 1;  // 2 shards: B's flushes land where A looks
    opt.stickiness = 1;
    opt.insertion_buffer = 1;
    opt.deletion_buffer = 8;
    opt.batch = 8;
    opt.stale_invalidation = invalidate;
    opt.seed = 0xFEED;
    MQ q(opt);
    auto& a = q.make_handle();
    auto& b = q.make_handle();

    for (std::int64_t k = 1000; k < 1016; ++k) b.insert(k, 0);
    b.flush();
    // A drains a batch of large keys into its deletion buffer.
    auto first = a.delete_min();
    EXPECT_TRUE(first.has_value());
    // Now the shards get fresher, smaller keys (one per flush; with
    // stickiness 1 both shards receive some).
    for (std::int64_t k = 1; k <= 32; ++k) {
      b.insert(k, 0);
      b.flush();
    }
    auto next = a.delete_min();
    EXPECT_TRUE(next.has_value());
    return std::pair<std::int64_t, std::uint64_t>(
        next->first, q.telemetry().get("mq.dbuf_invalidations"));
  };

  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LE(with.first, 32) << "invalidation should surface a fresh key";
  EXPECT_GE(with.second, 1u);
  EXPECT_GE(without.first, 1000) << "without invalidation the stale "
                                    "buffered head is served";
  EXPECT_EQ(without.second, 0u);
}

TEST(MultiQueueBasics, FlushMakesBufferedItemsVisibleToOtherHandles) {
  MQ::Options opt;
  opt.max_threads = 2;
  opt.insertion_buffer = 64;
  MQ q(opt);
  auto& producer = q.make_handle();
  auto& consumer = q.make_handle();
  producer.insert(5, 99);
  // Before the flush the item lives in producer's buffer only.
  EXPECT_FALSE(consumer.delete_min().has_value());
  EXPECT_EQ(q.size(), 1u);
  producer.flush();
  auto item = consumer.delete_min();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->first, 5);
  EXPECT_EQ(item->second, 99);
}

TEST(MultiQueueTopology, PoliciesConserveAndEmitTelemetry) {
  for (auto policy : {slpq::TopoPolicy::kNear, slpq::TopoPolicy::kAdaptive}) {
    MQ::Options opt;
    opt.c = 2;
    opt.max_threads = 16;
    opt.topo = policy;
    opt.topo_radius = 1;
    MQ q(opt);
    auto& h = q.make_handle();

    slpq::detail::Xoshiro256 rng(11);
    std::vector<std::int64_t> inserted, drained;
    for (int i = 0; i < 4000; ++i) {
      const auto key = static_cast<std::int64_t>(rng.below(1 << 20));
      h.insert(key, i);
      inserted.push_back(key);
    }
    while (auto item = h.delete_min()) drained.push_back(item->first);
    EXPECT_TRUE(q.empty());
    std::sort(inserted.begin(), inserted.end());
    std::sort(drained.begin(), drained.end());
    EXPECT_EQ(drained, inserted) << slpq::to_string(policy);

    auto snap = q.telemetry();
    EXPECT_NE(snap.find("mq.shard_hops.mean"), nullptr);
    EXPECT_NE(snap.find("mq.shard_hops.p99"), nullptr);
    EXPECT_GT(snap.get("mq.local_acquires"), 0u);
    EXPECT_GT(snap.get("mq.topo_fallbacks"), 0u);  // periodic global probe
  }
}

TEST(MultiQueueTopology, NearSamplingShortensGridDistance) {
  // One handle on node 0 of a 4x4 grid: with near sampling its charged
  // acquisitions should stay within the base radius except for probes, so
  // the hop p99 must come in well under the uniform baseline's.
  auto run = [](slpq::TopoPolicy policy) {
    MQ::Options opt;
    opt.c = 2;
    opt.max_threads = 16;
    opt.topo = policy;
    opt.topo_radius = 1;
    opt.seed = 0xFEED;
    MQ q(opt);
    auto& h = q.make_handle();
    slpq::detail::Xoshiro256 rng(3);
    for (int i = 0; i < 6000; ++i)
      h.insert(static_cast<std::int64_t>(rng.below(1 << 20)), i);
    while (h.delete_min().has_value()) {
    }
    auto snap = q.telemetry();
    return std::pair<std::uint64_t, std::uint64_t>(
        snap.get("mq.shard_hops.mean"), snap.get("mq.local_acquires"));
  };
  const auto none = run(slpq::TopoPolicy::kNone);
  const auto near = run(slpq::TopoPolicy::kNear);
  EXPECT_LT(near.first, none.first);
  EXPECT_GT(near.second, none.second);
}

TEST(MultiQueueTopology, TopoKeysPresentAndZeroUnderNone) {
  MQ::Options opt;
  opt.max_threads = 4;
  MQ q(opt);  // default kNone
  auto& h = q.make_handle();
  for (int i = 0; i < 200; ++i) h.insert(i, i);
  while (h.delete_min().has_value()) {
  }
  auto snap = q.telemetry();
  EXPECT_NE(snap.find("mq.shard_hops.mean"), nullptr);
  EXPECT_NE(snap.find("mq.local_acquires"), nullptr);
  EXPECT_EQ(snap.get("mq.topo_fallbacks"), 0u);
}

}  // namespace
