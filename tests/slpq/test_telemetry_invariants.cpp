// Counters-vs-oracle invariants for the telemetry layer (ctest label:
// stress; the tsan preset runs these under ThreadSanitizer).
//
// The counters are cheap relaxed tallies, so they cannot be validated by
// inspecting the hot path — instead each test runs a workload whose ground
// truth it tracks itself and checks the laws the counters must obey:
//
//   * claim_wins == successful delete_mins (claims are counted only on the
//     delete_min success paths, per docs/TELEMETRY.md);
//   * reclamation conservation: every claimed node is eventually retired,
//     so gc_reclaimed + gc_deferred == claim_wins for SkipQueue (which
//     unlinks synchronously) and <= claim_wins for the lazy designs
//     (LockFreeSkipQueue snips on later traversals, LindenSkipQueue
//     retires only when a restructuring sweeps the dead prefix);
//   * item conservation: final size == inserts - successful deletes;
//   * an uncontended run moves no contention counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "slpq/detail/random.hpp"
#include "slpq/global_lock_pq.hpp"
#include "slpq/hunt_heap.hpp"
#include "slpq/linden_skip_queue.hpp"
#include "slpq/lock_free_skip_queue.hpp"
#include "slpq/multi_queue.hpp"
#include "slpq/skip_queue.hpp"
#include "slpq/telemetry.hpp"

namespace {

using Key = std::int64_t;
using Value = std::uint64_t;

struct Tally {
  std::uint64_t inserts = 0;
  std::uint64_t deletes_ok = 0;
};

/// Mixed insert/delete_min run with globally unique keys; returns the
/// ground-truth operation tally the counters are checked against.
template <typename Queue>
Tally run_mixed(Queue& q, int threads, int ops_per_thread) {
  std::atomic<std::uint64_t> inserts{0}, deletes_ok{0};
  std::vector<std::thread> workers;
  constexpr Key kStride = 1 << 24;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 6271 + 5);
      Key seq = 0;
      std::uint64_t ins = 0, dels = 0;
      for (int i = 0; i < ops_per_thread; ++i) {
        if (rng.bernoulli(0.6)) {
          q.insert(static_cast<Key>(t) * kStride + seq++,
                   static_cast<Value>(i));
          ++ins;
        } else if (q.delete_min()) {
          ++dels;
        }
      }
      inserts.fetch_add(ins);
      deletes_ok.fetch_add(dels);
    });
  }
  for (auto& w : workers) w.join();
  return {inserts.load(), deletes_ok.load()};
}

std::uint64_t get(const slpq::TelemetrySnapshot& snap, const char* name) {
  const std::uint64_t* v = snap.find(name);
  EXPECT_NE(v, nullptr) << "missing counter " << name;
  return v ? *v : 0;
}

}  // namespace

TEST(TelemetryInvariants, SkipQueueClaimsMatchDeletesAndReclamation) {
  slpq::SkipQueue<Key, Value> q;
  const Tally t = run_mixed(q, 8, 20000);

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), t.deletes_ok);
  // SkipQueue unlinks and retires inside delete_min, so by quiescence every
  // claimed node is either freed or still on a retired list.
  EXPECT_EQ(get(snap, "gc_reclaimed") + get(snap, "gc_deferred"),
            t.deletes_ok);
  EXPECT_EQ(q.size(), t.inserts - t.deletes_ok);
}

TEST(TelemetryInvariants, LockFreeSkipQueueClaimsMatchDeletes) {
  slpq::LockFreeSkipQueue<Key, Value> q;
  const Tally t = run_mixed(q, 8, 20000);

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), t.deletes_ok);
  // Claimed nodes are snipped (and only then retired) by later traversals,
  // so reclamation may lag the claims but never exceed them.
  EXPECT_LE(get(snap, "gc_reclaimed") + get(snap, "gc_deferred"),
            t.deletes_ok);
  EXPECT_EQ(q.size(), t.inserts - t.deletes_ok);
}

TEST(TelemetryInvariants, LindenSkipQueueClaimsMatchDeletes) {
  slpq::LindenSkipQueue<Key, Value> q;
  const Tally t = run_mixed(q, 8, 20000);

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), t.deletes_ok);
  // A claimed node is retired only when a restructuring sweeps it out of
  // the dead prefix; unswept claims are still linked at quiescence.
  EXPECT_LE(get(snap, "gc_reclaimed") + get(snap, "gc_deferred"),
            t.deletes_ok);
  EXPECT_EQ(q.size(), t.inserts - t.deletes_ok);
}

TEST(TelemetryInvariants, MultiQueueClaimsMatchDeletes) {
  slpq::MultiQueue<Key, Value>::Options opt;
  opt.max_threads = 8;
  slpq::MultiQueue<Key, Value> q(opt);

  std::atomic<std::uint64_t> inserts{0}, deletes_ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      std::uint64_t ins = 0, dels = 0;
      for (int i = 0; i < 20000; ++i) {
        if (rng.bernoulli(0.6)) {
          q.insert(static_cast<Key>(rng.below(1 << 20)), static_cast<Value>(i));
          ++ins;
        } else if (q.delete_min()) {
          ++dels;
        }
      }
      q.flush();
      inserts.fetch_add(ins);
      deletes_ok.fetch_add(dels);
    });
  }
  for (auto& w : workers) w.join();

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), deletes_ok.load());
  EXPECT_EQ(q.size(), inserts.load() - deletes_ok.load());
}

TEST(TelemetryInvariants, HuntHeapClaimsMatchDeletes) {
  slpq::HuntHeap<Key, Value> q(1 << 18);
  const Tally t = run_mixed(q, 8, 15000);

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), t.deletes_ok);
  EXPECT_EQ(q.size(), t.inserts - t.deletes_ok);
}

TEST(TelemetryInvariants, UncontendedRunMovesNoContentionCounter) {
  // One thread, unique keys: every contention counter must stay zero and
  // the claim tally must equal the delete count exactly.
  slpq::SkipQueue<Key, Value> q;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i)
    q.insert(static_cast<Key>(i), static_cast<Value>(i));
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(q.delete_min().has_value());
  EXPECT_FALSE(q.delete_min().has_value());

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(get(snap, "claim_losses"), 0u);
  EXPECT_EQ(get(snap, "insert_retries"), 0u);
  EXPECT_EQ(get(snap, "failed_cas"), 0u);
  EXPECT_EQ(get(snap, "gc_reclaimed") + get(snap, "gc_deferred"),
            static_cast<std::uint64_t>(kN));
}

TEST(TelemetryInvariants, GlobalLockOnlyClaimWinsMoves) {
  slpq::GlobalLockPQ<Key, Value> q;
  const Tally t = run_mixed(q, 4, 5000);

  const auto snap = q.telemetry();
  EXPECT_EQ(get(snap, "claim_wins"), t.deletes_ok);
  for (int i = 0; i < slpq::kNumCounters; ++i) {
    const auto c = static_cast<slpq::Counter>(i);
    if (c == slpq::Counter::kClaimWins) continue;
    EXPECT_EQ(get(snap, slpq::counter_name(c)), 0u) << slpq::counter_name(c);
  }
}
