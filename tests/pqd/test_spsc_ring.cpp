// SpscRing unit tests: boundaries, wraparound, and the SPSC contract
// under a real producer/consumer pair.
#include "slpq/detail/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using slpq::detail::SpscRing;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);
  // One pop frees exactly one slot.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
}

TEST(SpscRing, WraparoundManyTimesOver) {
  // Indices are monotone and the slot is index & mask: cycle the ring far
  // past its capacity and confirm FIFO holds across every wrap.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t pushed = 0, popped = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(pushed)) ++pushed;
    std::uint64_t out;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, popped);
      ++popped;
    }
  }
  EXPECT_EQ(pushed, popped);
  EXPECT_GE(pushed, 4000u);
}

TEST(SpscRing, AlternatingPushPopAtBoundary) {
  // The classic off-by-one trap: a ring that confuses full with empty
  // fails when occupancy oscillates around 0 and around capacity.
  SpscRing<int> ring(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  // One producer, one consumer, a small ring forcing constant wraps and
  // full/empty transitions. Every value must arrive exactly once, in
  // order — which also checks the release/acquire pairing (a consumer
  // must never observe a slot before its contents).
  // Yield on full/empty: on a single-core host a bare spin burns a whole
  // scheduler quantum per failed probe, turning the test into minutes.
  constexpr std::uint64_t kItems = 20000;
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t sum = 0, received = 0;
  bool in_order = true;

  std::thread consumer([&] {
    std::uint64_t expect = 1;
    while (received < kItems) {
      std::uint64_t v;
      if (!ring.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expect) in_order = false;
      ++expect;
      sum += v;
      ++received;
    }
  });
  for (std::uint64_t v = 1; v <= kItems;) {
    if (ring.try_push(v))
      ++v;
    else
      std::this_thread::yield();
  }
  consumer.join();

  EXPECT_TRUE(in_order);
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
