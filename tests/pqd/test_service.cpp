// pqd::Service tests: configuration validation, single-threaded drain
// exactness, value fidelity, batching telemetry, and the min-of-shards
// front end across backends.
#include "pqd/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

namespace {

using pqd::Item;
using pqd::Key;
using pqd::Service;
using pqd::ServiceConfig;
using pqd::Value;

ServiceConfig make_config(const std::string& backend, int shards,
                          int batch) {
  ServiceConfig cfg;
  cfg.backend = backend;
  cfg.shards = shards;
  cfg.batch = batch;
  cfg.queue.initial_size = 256;
  cfg.queue.total_ops = 8192;
  return cfg;
}

TEST(PqdService, RejectsBadGeometry) {
  EXPECT_THROW(Service(make_config("skip", 0, 8)), std::invalid_argument);
  EXPECT_THROW(Service(make_config("skip", 4, 0)), std::invalid_argument);
  EXPECT_THROW(Service(make_config("no-such-backend", 4, 8)),
               std::invalid_argument);
}

TEST(PqdService, RejectsOutOfRangeKeys) {
  Service svc(make_config("skip", 2, 4));
  EXPECT_THROW(svc.seed(pqd::kEmptyKey, 0), std::invalid_argument);
  EXPECT_THROW(svc.seed(pqd::kClaimedKey, 0), std::invalid_argument);
  const Item bad{pqd::kMaxUserKey, 1};
  EXPECT_THROW(svc.insert_batch(&bad, 1, 0), std::invalid_argument);
}

TEST(PqdService, EmptyServiceReportsEmpty) {
  Service svc(make_config("skip", 4, 8));
  svc.prime();
  EXPECT_EQ(svc.size(), 0u);
  EXPECT_FALSE(svc.delete_min().has_value());
}

// Single-threaded, each shard's window head is that shard's true minimum
// (windows hold the shard's `batch` smallest items, sorted), so the
// min-of-shards front end must produce a globally sorted drain — for any
// geometry and for exact backends.
TEST(PqdService, SingleThreadedDrainIsSorted) {
  for (int shards : {1, 3, 4}) {
    for (int batch : {1, 4, 8}) {
      Service svc(make_config("skip", shards, batch));
      // Seed a scrambled key set.
      std::vector<Key> keys;
      for (Key k = 0; k < 200; ++k)
        keys.push_back((k * 7919) % 1000 * 4 + (k & 3));
      for (Key k : keys) svc.seed(k, static_cast<Value>(k) + 1);
      svc.prime();
      EXPECT_EQ(svc.size(), keys.size());

      std::vector<Key> drained;
      while (const std::optional<Item> got = svc.delete_min())
        drained.push_back(got->first);

      ASSERT_EQ(drained.size(), keys.size())
          << "shards=" << shards << " batch=" << batch;
      EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()))
          << "shards=" << shards << " batch=" << batch;
      std::sort(keys.begin(), keys.end());
      EXPECT_EQ(drained, keys);
      EXPECT_EQ(svc.size(), 0u);
    }
  }
}

// Values must come back attached to their own keys (the shard-side value
// table reunites them after the backend, which only reports keys). Keys
// are unique here by design: duplicate-key semantics are the backend's
// (the skiplist family updates in place), which is why the trace format
// packs a unique tie-break into every key (docs/TRACES.md).
TEST(PqdService, ValuesStayWithTheirKeys) {
  Service svc(make_config("skip", 4, 4));
  std::map<Key, Value> expect;
  std::vector<Item> batch;
  for (Key k = 0; k < 120; ++k) {
    const Key key = k * 31 + (k % 7);  // unique, scrambled spacing
    const Value v = static_cast<Value>(k) * 1000 + 7;
    batch.emplace_back(key, v);
    expect[key] = v;
  }
  for (std::size_t i = 0; i < batch.size(); i += 8)
    svc.insert_batch(batch.data() + i, std::min<std::size_t>(8, batch.size() - i),
                     i);
  std::map<Key, Value> got;
  while (const std::optional<Item> item = svc.delete_min())
    got[item->first] = item->second;
  EXPECT_EQ(got, expect);
}

TEST(PqdService, InsertBatchAmortizesAcquisitions) {
  // One insert_batch call of n items must cost one shard acquisition.
  Service svc(make_config("skip", 2, 8));
  std::vector<Item> batch;
  for (Key k = 0; k < 8; ++k) batch.emplace_back(k, 0);
  const std::uint64_t before =
      svc.telemetry().get("pqd.shard_acquisitions");
  svc.insert_batch(batch.data(), batch.size(), 0);
  const slpq::TelemetrySnapshot snap = svc.telemetry();
  EXPECT_EQ(snap.get("pqd.shard_acquisitions"), before + 1);
  EXPECT_EQ(snap.get("pqd.insert_batches"), 1u);
  EXPECT_EQ(snap.get("pqd.batch_occupancy.max"), 8u);
}

TEST(PqdService, TelemetryHasServiceKeysAndAggregatedBackend) {
  Service svc(make_config("multiqueue", 4, 8));
  for (Key k = 0; k < 100; ++k) svc.seed(k, 0);
  svc.prime();
  for (int i = 0; i < 50; ++i) (void)svc.delete_min();
  const slpq::TelemetrySnapshot snap = svc.telemetry();
  for (const char* key :
       {"pqd.shards", "pqd.batch", "pqd.shard_acquisitions",
        "pqd.insert_batches", "pqd.window_refills",
        "pqd.batch_occupancy.mean", "pqd.batch_occupancy.p50",
        "pqd.batch_occupancy.p90", "pqd.batch_occupancy.max",
        "pqd.shard_imbalance"})
    EXPECT_NE(snap.find(key), nullptr) << key;
  EXPECT_EQ(snap.get("pqd.shards"), 4u);
  EXPECT_EQ(snap.get("pqd.batch"), 8u);
  // Shard-backend counters ride along (core counter set at minimum),
  // and every run carries the reclaim.* block.
  EXPECT_NE(snap.find("claim_wins"), nullptr);
  EXPECT_NE(snap.find("reclaim.pending"), nullptr);
}

// The service is backend-agnostic: a relaxed backend underneath still
// conserves items through windows and batches.
TEST(PqdService, RelaxedBackendConservesItems) {
  Service svc(make_config("multiqueue", 4, 8));
  for (Key k = 0; k < 300; ++k) svc.seed(k * 2, static_cast<Value>(k));
  svc.prime();
  std::size_t popped = 0;
  while (svc.delete_min()) ++popped;
  EXPECT_EQ(popped, 300u);
  EXPECT_EQ(svc.size(), 0u);
}

}  // namespace
