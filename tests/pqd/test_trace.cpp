// Trace format tests: save/load round-trip, loader strictness, recorder
// determinism, the committed sample trace, and end-to-end replay through
// the harness drivers.
#include "harness/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "harness/workload.hpp"
#include "harness/workload_spec.hpp"

namespace {

using harness::Trace;
using harness::TraceOp;

std::string tmp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

Trace tiny_trace() {
  Trace t;
  t.warm.push_back({TraceOp::Kind::kInsert, 10, 0});
  t.warm.push_back({TraceOp::Kind::kInsert, 4, 1});
  t.ops.push_back({TraceOp::Kind::kDeleteMin, 0, 0});
  t.ops.push_back({TraceOp::Kind::kInsert, 17, 2});
  t.ops.push_back({TraceOp::Kind::kDeleteMin, 0, 0});
  return t;
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t = tiny_trace();
  const std::string path = tmp_path("roundtrip.trace");
  t.save(path);
  const Trace back = Trace::load(path);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.initial_size(), 2u);
  EXPECT_EQ(back.inserts(), 1u);
  EXPECT_EQ(back.deletes(), 2u);
  std::remove(path.c_str());
}

TEST(Trace, LoaderAcceptsCommentsAndBlankLines) {
  const std::string path = tmp_path("comments.trace");
  write_file(path,
             "slpq-trace/1 initial=1 ops=2\n"
             "# a comment\n"
             "p 5 0\n"
             "\n"
             "i 9 1\n"
             "d\n");
  const Trace t = Trace::load(path);
  EXPECT_EQ(t.initial_size(), 1u);
  EXPECT_EQ(t.ops.size(), 2u);
  std::remove(path.c_str());
}

TEST(Trace, LoaderRejectsGarbage) {
  struct Case {
    const char* name;
    const char* text;
  };
  const Case cases[] = {
      {"bad magic", "slpq-trace/9 initial=0 ops=0\n"},
      {"missing header", "p 1 0\n"},
      {"undeclared op", "slpq-trace/1 initial=0 ops=0\nd\n"},
      {"short op count", "slpq-trace/1 initial=0 ops=2\nd\n"},
      {"short warm count", "slpq-trace/1 initial=2 ops=0\np 1 0\n"},
      {"warm after ops", "slpq-trace/1 initial=1 ops=2\nd\np 1 0\nd\n"},
      {"tie overflow",
       "slpq-trace/1 initial=0 ops=1\ni 1 16777216\n"},  // 2^24
      {"unknown record", "slpq-trace/1 initial=0 ops=1\nx 1 2\n"},
  };
  for (const Case& c : cases) {
    const std::string path = tmp_path("bad.trace");
    write_file(path, c.text);
    EXPECT_THROW(Trace::load(path), std::runtime_error) << c.name;
    std::remove(path.c_str());
  }
  EXPECT_THROW(Trace::load(tmp_path("does-not-exist.trace")),
               std::runtime_error);
}

TEST(Trace, RecorderIsDeterministic) {
  const Trace a = Trace::record_hold_model(2000, 100, 0.5, 7);
  const Trace b = Trace::record_hold_model(2000, 100, 0.5, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.initial_size(), 100u);
  EXPECT_EQ(a.ops.size(), 2000u);
  EXPECT_EQ(a.inserts() + a.deletes(), 2000u);
  // The hold model can only execute events that exist: deletes never
  // exceed warm + prior inserts.
  EXPECT_LE(a.deletes(), a.initial_size() + a.inserts());
  // A different seed must give a different schedule.
  EXPECT_NE(a, Trace::record_hold_model(2000, 100, 0.5, 8));
}

TEST(Trace, RecorderTicksAreMonotoneEnough) {
  // Insert ticks chase the execution frontier: every recorded insert must
  // be schedulable (tick strictly beyond some earlier state), so replay
  // through a strict queue never pops an event "scheduled in the past"
  // relative to the recorder's own execution order.
  const Trace t = Trace::record_hold_model(5000, 200, 0.5, 3);
  std::uint64_t max_tick = 0;
  for (const TraceOp& op : t.warm) max_tick = std::max(max_tick, op.tick);
  for (const TraceOp& op : t.ops)
    if (op.kind == TraceOp::Kind::kInsert)
      EXPECT_GT(op.tick, 0u);
}

TEST(Trace, CommittedSampleLoadsAndMatchesHeader) {
  const std::string path =
      std::string(SLPQ_SOURCE_DIR) + "/bench/traces/sample_des.trace";
  const Trace t = Trace::load(path);
  EXPECT_EQ(t.initial_size(), 500u);
  EXPECT_EQ(t.ops.size(), 4000u);
  EXPECT_GT(t.inserts(), 0u);
  EXPECT_GT(t.deletes(), 0u);
}

TEST(Trace, NativeDriverReplaysTraceWorkload) {
  harness::BenchmarkConfig cfg;
  cfg.flavor = harness::Flavor::Native;
  cfg.structure = "skip";
  cfg.workload = harness::WorkloadKind::Trace;
  cfg.processors = 4;
  cfg.work_cycles = 0;
  cfg.trace = std::make_shared<harness::Trace>(
      Trace::record_hold_model(4000, 200, 0.5, 11));
  cfg.initial_size = cfg.trace->initial_size();
  cfg.total_ops = cfg.trace->ops.size();
  const harness::BenchmarkResult r = harness::run_native_benchmark(cfg);
  EXPECT_EQ(r.inserts, cfg.trace->inserts());
  EXPECT_EQ(r.deletes + r.empties,
            cfg.trace->deletes());
  // Conservation: warm + inserts - successful deletes stay in the queue.
  EXPECT_EQ(r.final_size,
            cfg.trace->initial_size() + r.inserts - r.deletes);
}

TEST(Trace, SimDriverReplaysDeterministically) {
  harness::BenchmarkConfig cfg;
  cfg.flavor = harness::Flavor::Sim;
  cfg.structure = "skip";
  cfg.workload = harness::WorkloadKind::Trace;
  cfg.processors = 4;
  cfg.work_cycles = 10;
  cfg.trace = std::make_shared<harness::Trace>(
      Trace::record_hold_model(1000, 100, 0.5, 5));
  cfg.initial_size = cfg.trace->initial_size();
  cfg.total_ops = cfg.trace->ops.size();
  const harness::BenchmarkResult a = harness::run_sim_benchmark(cfg);
  const harness::BenchmarkResult b = harness::run_sim_benchmark(cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.final_size, b.final_size);
}

TEST(Trace, MissingTraceInputThrows) {
  harness::BenchmarkConfig cfg;
  cfg.flavor = harness::Flavor::Native;
  cfg.workload = harness::WorkloadKind::Trace;
  EXPECT_THROW(harness::run_native_benchmark(cfg), std::exception);
}

TEST(Trace, ParseWorkloadKnowsTrace) {
  EXPECT_EQ(harness::parse_workload("trace"),
            harness::WorkloadKind::Trace);
  EXPECT_STREQ(harness::to_string(harness::WorkloadKind::Trace), "trace");
}

}  // namespace
