// Transport/session tests: in-process batching semantics, per-session
// ordering, conservation under concurrent clients, and the UDS stub.
#include "pqd/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

namespace {

using pqd::InProcTransport;
using pqd::Item;
using pqd::Key;
using pqd::Service;
using pqd::ServiceConfig;
using pqd::Session;
using pqd::UdsTransport;
using pqd::Value;

ServiceConfig make_config(int shards, int batch) {
  ServiceConfig cfg;
  cfg.backend = "skip";
  cfg.shards = shards;
  cfg.batch = batch;
  cfg.queue.initial_size = 256;
  cfg.queue.total_ops = 1 << 16;
  return cfg;
}

TEST(InProc, EnqueueIsDeferredUntilBatchBoundary) {
  Service svc(make_config(2, 4));
  InProcTransport transport(svc, 4);
  Session session(transport);
  // Three enqueues: below the batch threshold, nothing applied yet.
  for (Key k = 0; k < 3; ++k) session.enqueue(k, 0);
  EXPECT_EQ(svc.size(), 0u);
  // Fourth completes the batch: all four land under one acquisition.
  session.enqueue(3, 0);
  EXPECT_EQ(svc.size(), 4u);
  EXPECT_EQ(svc.telemetry().get("pqd.insert_batches"), 1u);
}

TEST(InProc, FlushForcesPartialBatch) {
  Service svc(make_config(2, 8));
  InProcTransport transport(svc, 4);
  Session session(transport);
  session.enqueue(1, 10);
  session.enqueue(2, 20);
  EXPECT_EQ(svc.size(), 0u);
  session.flush();
  EXPECT_EQ(svc.size(), 2u);
}

TEST(InProc, DequeueSeesOwnPendingInserts) {
  // Per-session ordering: a dequeue applies the session's pending
  // inserts first, so it can never miss its own prior enqueue.
  Service svc(make_config(4, 64));
  InProcTransport transport(svc, 4);
  Session session(transport);
  session.enqueue(5, 55);
  const std::optional<Item> got = session.dequeue();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, 5);
  EXPECT_EQ(got->second, 55u);
}

TEST(InProc, DequeueOnEmptyReturnsNullopt) {
  Service svc(make_config(2, 4));
  InProcTransport transport(svc, 4);
  Session session(transport);
  EXPECT_FALSE(session.dequeue().has_value());
}

TEST(InProc, CloseFlushesPending) {
  Service svc(make_config(2, 8));
  InProcTransport transport(svc, 4);
  {
    Session session(transport);
    session.enqueue(7, 0);
  }  // destructor closes the session
  EXPECT_EQ(svc.size(), 1u);
}

TEST(InProc, SessionTableRecyclesSlots) {
  Service svc(make_config(2, 4));
  InProcTransport transport(svc, 2);
  const int a = transport.open_session();
  const int b = transport.open_session();
  EXPECT_NE(a, b);
  EXPECT_THROW(transport.open_session(), std::runtime_error);
  transport.close_session(a);
  EXPECT_EQ(transport.open_session(), a);
}

TEST(InProc, ConservationUnderConcurrentClients) {
  // C clients each push K items and pop D: afterwards the service must
  // hold exactly C*(K-D) items and every popped key must be one that was
  // pushed (claim windows must not duplicate or invent items).
  constexpr int kClients = 8;
  constexpr int kPush = 600;
  constexpr int kPop = 400;
  Service svc(make_config(4, 8));
  InProcTransport transport(svc, kClients);
  std::atomic<std::uint64_t> popped_total{0};
  std::atomic<bool> duplicate{false};
  std::vector<std::vector<Key>> popped(kClients);

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Session session(transport);
      for (int i = 0; i < kPush; ++i) {
        const Key key = static_cast<Key>(c) * kPush + i;
        session.enqueue(key, static_cast<Value>(key) + 1);
      }
      for (int i = 0; i < kPop; ++i) {
        const std::optional<Item> got = session.dequeue();
        if (got) {
          popped[static_cast<std::size_t>(c)].push_back(got->first);
          if (got->second != static_cast<Value>(got->first) + 1)
            duplicate.store(true);  // value fidelity doubles as a check
          popped_total.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(duplicate.load());
  // Interleaving can hit EMPTY transiently (a client may pop before
  // others push), so popped_total <= kClients * kPop; conservation is
  // exact regardless: held + popped == pushed.
  EXPECT_EQ(svc.size() + popped_total.load(),
            static_cast<std::size_t>(kClients) * kPush);
  // No key may be delivered twice across all clients.
  std::set<Key> seen;
  for (const auto& v : popped)
    for (Key k : v) EXPECT_TRUE(seen.insert(k).second) << "dup key " << k;
}

TEST(Uds, RoundTripAndConservation) {
  Service svc(make_config(2, 4));
  UdsTransport transport(svc, 4);
  Session session(transport);
  for (Key k = 10; k > 0; --k) session.enqueue(k, static_cast<Value>(k) * 2);
  session.flush();
  EXPECT_EQ(svc.size(), 10u);
  const std::optional<Item> got = session.dequeue();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, 1);
  EXPECT_EQ(got->second, 2u);
  EXPECT_EQ(svc.size(), 9u);
}

TEST(Uds, CloseLandsTrailingPartialBatch) {
  Service svc(make_config(2, 64));
  {
    UdsTransport transport(svc, 4);
    Session session(transport);
    session.enqueue(3, 0);
    session.enqueue(1, 0);
  }  // session close half-closes; server applies the partial batch
  EXPECT_EQ(svc.size(), 2u);
}

TEST(Uds, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kPush = 200;
  Service svc(make_config(4, 8));
  UdsTransport transport(svc, kClients);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Session session(transport);
      for (int i = 0; i < kPush; ++i) {
        session.enqueue(static_cast<Key>(c) * kPush + i, 0);
        if (i % 3 == 0 && session.dequeue()) popped.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(svc.size() + popped.load(),
            static_cast<std::size_t>(kClients) * kPush);
}

}  // namespace
