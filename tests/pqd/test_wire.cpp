// pqd-wire/1 codec tests: byte-exact layout and round-trips.
#include "pqd/request.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

using namespace pqd;

TEST(Wire, RequestRoundTripsEveryOp) {
  for (OpKind op : {OpKind::kInsert, OpKind::kDeleteMin, OpKind::kFlush}) {
    const Request in{op, 0x1122334455667788LL, 0x99aabbccddeeff00ULL};
    std::uint8_t buf[kWireRecordSize];
    encode_request(in, buf);
    Request out;
    ASSERT_TRUE(decode_request(buf, out));
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.value, in.value);
  }
}

TEST(Wire, ResponseRoundTripsEveryStatus) {
  for (Status st : {Status::kOk, Status::kEmpty}) {
    const Response in{st, -42, 7};
    std::uint8_t buf[kWireRecordSize];
    encode_response(in, buf);
    Response out;
    ASSERT_TRUE(decode_response(buf, out));
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.value, in.value);
  }
}

TEST(Wire, LayoutIsLittleEndianFixedSize) {
  static_assert(kWireRecordSize == 17);
  const Request in{OpKind::kDeleteMin, 0x0102030405060708LL, 0x1112131415161718ULL};
  std::uint8_t buf[kWireRecordSize];
  encode_request(in, buf);
  EXPECT_EQ(buf[0], 1);     // opcode
  EXPECT_EQ(buf[1], 0x08);  // key LSB first
  EXPECT_EQ(buf[8], 0x01);
  EXPECT_EQ(buf[9], 0x18);  // value LSB first
  EXPECT_EQ(buf[16], 0x11);
}

TEST(Wire, NegativeKeySurvives) {
  const Request in{OpKind::kInsert, std::numeric_limits<Key>::min(), 0};
  std::uint8_t buf[kWireRecordSize];
  encode_request(in, buf);
  Request out;
  ASSERT_TRUE(decode_request(buf, out));
  EXPECT_EQ(out.key, std::numeric_limits<Key>::min());
}

TEST(Wire, RejectsUnknownOpcodeAndStatus) {
  std::uint8_t buf[kWireRecordSize] = {};
  buf[0] = 3;  // one past kFlush
  Request req;
  EXPECT_FALSE(decode_request(buf, req));
  buf[0] = 0xff;
  EXPECT_FALSE(decode_request(buf, req));
  Response resp;
  buf[0] = 2;  // one past kEmpty
  EXPECT_FALSE(decode_response(buf, resp));
}

TEST(Wire, SentinelOrdering) {
  // Claim-window sentinels must sit above every legal user key, claimed
  // below empty (the claim scan tests `<= kMaxUserKey`).
  EXPECT_LT(kMaxUserKey, kClaimedKey);
  EXPECT_LT(kClaimedKey, kEmptyKey);
  EXPECT_EQ(kEmptyKey, std::numeric_limits<Key>::max());
}

}  // namespace
