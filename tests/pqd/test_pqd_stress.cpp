// Stress tests for the pqd batching path (labelled `stress`, so the tsan
// preset's `ctest -L stress` runs them under TSan): many clients hammer
// sessions over the claim windows and insert batches, then conservation
// and uniqueness are checked exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "pqd/service.hpp"
#include "pqd/transport.hpp"
#include "slpq/detail/spsc_ring.hpp"

namespace {

using pqd::Item;
using pqd::Key;
using pqd::Value;

void hammer(const std::string& backend, int shards, int batch, int clients,
            int rounds) {
  pqd::ServiceConfig cfg;
  cfg.backend = backend;
  cfg.shards = shards;
  cfg.batch = batch;
  cfg.queue.initial_size = 1024;
  cfg.queue.total_ops = static_cast<std::uint64_t>(clients) * rounds * 2 +
                        4096;
  pqd::Service svc(cfg);
  // Warm set so delete-heavy phases have something to fight over.
  for (Key k = 0; k < 512; ++k)
    svc.seed(k * 4 + 3, static_cast<Value>(k * 4 + 3) ^ 0x5555);
  svc.prime();

  pqd::InProcTransport transport(svc, static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> pushed{512}, popped{0};
  std::atomic<bool> value_mismatch{false};
  std::vector<std::vector<Key>> taken(static_cast<std::size_t>(clients));

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pqd::Session session(transport);
      std::uint64_t local_pushed = 0;
      for (int i = 0; i < rounds; ++i) {
        // 2 pushes : 1 pop keeps the queue growing but contended.
        for (int j = 0; j < 2; ++j) {
          const Key key =
              (static_cast<Key>(c) * rounds * 2 + i * 2 + j) * 4 + 1;
          session.enqueue(key, static_cast<Value>(key) ^ 0x5555);
          ++local_pushed;
        }
        if (const std::optional<Item> got = session.dequeue()) {
          if (got->second != (static_cast<Value>(got->first) ^ 0x5555))
            value_mismatch.store(true);
          taken[static_cast<std::size_t>(c)].push_back(got->first);
          popped.fetch_add(1);
        }
      }
      pushed.fetch_add(local_pushed);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(value_mismatch.load()) << backend;
  EXPECT_EQ(svc.size() + popped.load(), pushed.load()) << backend;
  std::set<Key> seen;
  for (const auto& v : taken)
    for (Key k : v)
      EXPECT_TRUE(seen.insert(k).second) << backend << " dup key " << k;
}

TEST(PqdStress, ExactBackendManyClients) { hammer("skip", 4, 8, 8, 2000); }

TEST(PqdStress, RelaxedBackendManyClients) {
  hammer("multiqueue", 4, 8, 8, 2000);
}

TEST(PqdStress, TinyWindowMaximizesRefillRaces) {
  // batch=1 degenerates every window to a single slot: the claim/refill
  // handoff runs constantly, which is exactly where a publication-order
  // bug would show up under TSan.
  hammer("skip", 2, 1, 8, 1000);
}

TEST(PqdStress, SpscRingPressure) {
  // Tight ring, fast producer and consumer, moved payloads: the
  // index-caching fast path and the release/acquire pairs get exercised
  // through constant full/empty transitions.
  // Yield on full/empty so a single-core host doesn't serialize the two
  // threads a scheduler quantum at a time.
  slpq::detail::SpscRing<std::uint64_t> ring(4);
  constexpr std::uint64_t kItems = 100000;
  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kItems) {
      std::uint64_t v;
      if (!ring.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expect) {
        ok.store(false);
        break;
      }
      ++expect;
    }
  });
  for (std::uint64_t v = 0; v < kItems;) {
    if (ring.try_push(v))
      ++v;
    else
      std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
