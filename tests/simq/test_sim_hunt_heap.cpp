#include "simq/sim_hunt_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "slpq/detail/random.hpp"

using psim::Cpu;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimHuntHeap;
using simq::Value;

namespace {
MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  return c;
}
SimHuntHeap::Options opts(std::size_t cap = 4096) {
  SimHuntHeap::Options o;
  o.capacity = cap;
  return o;
}
}  // namespace

TEST(BitRevSlot, MatchesKnownSequence) {
  // Within each heap level, successive insertions land at bit-reversed
  // offsets so their root paths diverge as early as possible.
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(1), 1u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(2), 2u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(3), 3u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(4), 4u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(5), 6u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(6), 5u);
  EXPECT_EQ(SimHuntHeap::bit_rev_slot(7), 7u);
  const std::vector<std::size_t> level8 = {8, 12, 10, 14, 9, 13, 11, 15};
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(SimHuntHeap::bit_rev_slot(8 + i), level8[i]);
}

TEST(BitRevSlot, IsAPermutationPerLevel) {
  for (std::size_t level_start : {16u, 32u, 64u, 128u}) {
    std::set<std::size_t> seen;
    for (std::size_t s = level_start; s < 2 * level_start; ++s) {
      const auto slot = SimHuntHeap::bit_rev_slot(s);
      EXPECT_GE(slot, level_start);
      EXPECT_LT(slot, 2 * level_start);
      EXPECT_TRUE(seen.insert(slot).second) << "slot " << slot << " repeated";
    }
  }
}

TEST(BitRevSlot, AncestorClosure) {
  // The parent of the slot for size s must be the slot of some s' < s:
  // guarantees every occupied slot's ancestors are occupied.
  std::set<std::size_t> occupied = {1};
  for (std::size_t s = 2; s <= 1024; ++s) {
    const auto slot = SimHuntHeap::bit_rev_slot(s);
    EXPECT_TRUE(occupied.count(slot / 2))
        << "slot " << slot << " (size " << s << ") has an empty parent";
    occupied.insert(slot);
  }
}

TEST(SimHuntHeap, SequentialInsertDrainSorted) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts());
  std::vector<Key> drained;
  eng.add_processor([&](Cpu& cpu) {
    for (Key k : {50, 10, 30, 20, 40, 25, 35}) h.insert(cpu, k, static_cast<Value>(k));
    while (auto item = h.delete_min(cpu)) drained.push_back(item->first);
  });
  eng.run();
  EXPECT_EQ(drained, (std::vector<Key>{10, 20, 25, 30, 35, 40, 50}));
  EXPECT_EQ(h.size_raw(), 0u);
}

TEST(SimHuntHeap, EmptyReturnsNullopt) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts());
  bool empty = false;
  eng.add_processor([&](Cpu& cpu) { empty = !h.delete_min(cpu).has_value(); });
  eng.run();
  EXPECT_TRUE(empty);
}

TEST(SimHuntHeap, DuplicateKeysAreKept) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts());
  std::vector<Value> vals;
  eng.add_processor([&](Cpu& cpu) {
    h.insert(cpu, 5, 1);
    h.insert(cpu, 5, 2);
    h.insert(cpu, 5, 3);
    while (auto item = h.delete_min(cpu)) vals.push_back(item->second);
  });
  eng.run();
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<Value>{1, 2, 3}));
}

TEST(SimHuntHeap, FullHeapRejectsInsert) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts(3));
  std::vector<bool> ok;
  eng.add_processor([&](Cpu& cpu) {
    for (Key k = 1; k <= 4; ++k) ok.push_back(h.insert(cpu, k, 0));
  });
  eng.run();
  EXPECT_EQ(ok, (std::vector<bool>{true, true, true, false}));
}

TEST(SimHuntHeap, SeedMaintainsHeapProperty) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts());
  slpq::detail::Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) h.seed(static_cast<Key>(rng.below(100000)), 0);
  std::string err;
  EXPECT_TRUE(h.check_invariants_raw(&err)) << err;
  EXPECT_EQ(h.size_raw(), 500u);
}

TEST(SimHuntHeap, SeededMinComesOutFirst) {
  Engine eng(cfg(1));
  SimHuntHeap h(eng, opts());
  for (Key k : {70, 30, 90, 10, 50}) h.seed(k, static_cast<Value>(k));
  Key first = -1;
  eng.add_processor([&](Cpu& cpu) { first = h.delete_min(cpu)->first; });
  eng.run();
  EXPECT_EQ(first, 10);
}

class SimHuntHeapStress : public ::testing::TestWithParam<int> {};

TEST_P(SimHuntHeapStress, ConservationAndInvariants) {
  const int procs = GetParam();
  Engine eng(cfg(procs));
  SimHuntHeap h(eng, opts(1 << 14));
  std::map<Key, long> balance;

  for (int p = 0; p < procs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) * 31 + 7);
      for (int i = 0; i < 120; ++i) {
        if (rng.bernoulli(0.5)) {
          const Key k = static_cast<Key>(rng.below(1 << 20));
          if (h.insert(cpu, k, static_cast<Value>(k))) balance[k] += 1;
        } else if (auto item = h.delete_min(cpu)) {
          EXPECT_EQ(item->second, static_cast<Value>(item->first));
          balance[item->first] -= 1;
        }
        cpu.advance(40);
      }
    });
  }
  eng.run();

  std::string err;
  EXPECT_TRUE(h.check_invariants_raw(&err)) << err;

  // The per-key balance (inserts minus deletes) must equal what is left.
  long expected_remaining = 0;
  for (auto& [k, v] : balance) {
    EXPECT_GE(v, 0) << "key " << k << " deleted more often than inserted";
    expected_remaining += v;
  }
  EXPECT_EQ(static_cast<long>(h.size_raw()), expected_remaining);
}

INSTANTIATE_TEST_SUITE_P(Procs, SimHuntHeapStress,
                         ::testing::Values(2, 4, 8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "p";
                         });

TEST(SimHuntHeap, ConcurrentDrainHandsOutEverythingOnce) {
  constexpr int kProcs = 8;
  constexpr Key kItems = 64;
  Engine eng(cfg(kProcs));
  SimHuntHeap h(eng, opts());
  for (Key k = 1; k <= kItems; ++k) h.seed(k, static_cast<Value>(k));
  std::multiset<Key> all;
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&](Cpu& cpu) {
      while (auto item = h.delete_min(cpu)) all.insert(item->first);
    });
  }
  eng.run();
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (Key k = 1; k <= kItems; ++k) EXPECT_EQ(all.count(k), 1u);
  EXPECT_EQ(h.size_raw(), 0u);
}

TEST(SimHuntHeap, InsertersAndDeletersOverlap) {
  constexpr int kProcs = 10;
  Engine eng(cfg(kProcs));
  SimHuntHeap h(eng, opts(1 << 13));
  std::multiset<Key> inserted, deleted;
  for (int p = 0; p < kProcs; ++p) {
    const bool producer = p % 2 == 0;
    eng.add_processor([&, p, producer](Cpu& cpu) {
      if (producer) {
        for (int i = 0; i < 60; ++i) {
          const Key k = static_cast<Key>(i) * kProcs + p;
          if (h.insert(cpu, k, 0)) inserted.insert(k);
          cpu.advance(25);
        }
      } else {
        for (int i = 0; i < 60; ++i) {
          if (auto item = h.delete_min(cpu)) deleted.insert(item->first);
          cpu.advance(25);
        }
      }
    });
  }
  eng.run();
  EXPECT_EQ(inserted.size(), deleted.size() + h.size_raw());
  for (Key k : deleted) EXPECT_TRUE(inserted.count(k)) << k;
  std::string err;
  EXPECT_TRUE(h.check_invariants_raw(&err)) << err;
}

TEST(SimHuntHeap, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(cfg(6));
    SimHuntHeap h(eng, opts());
    std::vector<Key> deleted;
    for (int p = 0; p < 6; ++p) {
      eng.add_processor([&, p](Cpu& cpu) {
        slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 99);
        for (int i = 0; i < 80; ++i) {
          if (rng.bernoulli(0.6))
            h.insert(cpu, static_cast<Key>(rng.below(10000)), 0);
          else if (auto item = h.delete_min(cpu))
            deleted.push_back(item->first);
        }
      });
    }
    eng.run();
    return deleted;
  };
  EXPECT_EQ(run_once(), run_once());
}
