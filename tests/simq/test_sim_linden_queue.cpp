// simq::SimLindenQueue on the simulated machine: sequential semantics,
// seeding, restructuring, multi-processor conservation, and reclamation
// through the Section 3 collector.
#include "simq/sim_linden_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "slpq/detail/random.hpp"

using psim::Cpu;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimLindenQueue;
using simq::Value;

namespace {

MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  return c;
}

SimLindenQueue::Options opts(int boundoffset = 32, bool gc = false) {
  SimLindenQueue::Options o;
  o.max_level = 12;
  o.boundoffset = boundoffset;
  o.use_gc = gc;
  return o;
}

}  // namespace

TEST(SimLindenQueue, SequentialInsertDrainSorted) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts());
  std::vector<Key> drained;
  eng.add_processor([&](Cpu& cpu) {
    for (Key k : {50, 10, 30, 20, 40})
      q.insert(cpu, k, static_cast<Value>(k) * 2);
    while (auto item = q.delete_min(cpu)) {
      EXPECT_EQ(item->second, static_cast<Value>(item->first) * 2);
      drained.push_back(item->first);
    }
  });
  eng.run();
  EXPECT_EQ(drained, (std::vector<Key>{10, 20, 30, 40, 50}));
  EXPECT_EQ(q.size_raw(), 0u);
}

TEST(SimLindenQueue, EmptyQueueReturnsNullopt) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts());
  bool empty_seen = false;
  eng.add_processor([&](Cpu& cpu) {
    empty_seen = !q.delete_min(cpu).has_value();
  });
  eng.run();
  EXPECT_TRUE(empty_seen);
}

TEST(SimLindenQueue, DuplicateKeysAllDistinctItems) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts());
  std::vector<Value> values;
  eng.add_processor([&](Cpu& cpu) {
    q.insert(cpu, 7, 1);
    q.insert(cpu, 7, 2);
    q.insert(cpu, 3, 0);
    EXPECT_EQ(q.delete_min(cpu)->first, 3);
    while (auto item = q.delete_min(cpu)) {
      EXPECT_EQ(item->first, 7);
      values.push_back(item->second);
    }
  });
  eng.run();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<Value>{1, 2}));
  EXPECT_EQ(q.size_raw(), 0u);
}

TEST(SimLindenQueue, SeedPrePopulates) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts());
  for (Key k = 100; k > 0; k -= 7) q.seed(k, static_cast<Value>(k));
  const auto keys = q.keys_raw();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 15u);
  EXPECT_EQ(q.size_raw(), 15u);

  Key first = -1;
  eng.add_processor([&](Cpu& cpu) { first = q.delete_min(cpu)->first; });
  eng.run();
  EXPECT_EQ(first, 2);  // 100 - 14*7
}

TEST(SimLindenQueue, RejectsSentinelKeys) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts());
  EXPECT_THROW(q.seed(std::numeric_limits<Key>::max(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.seed(std::numeric_limits<Key>::min(), 0),
               std::invalid_argument);
}

TEST(SimLindenQueue, SmallBoundoffsetRestructuresAndRetires) {
  Engine eng(cfg(1));
  SimLindenQueue q(eng, opts(/*boundoffset=*/4));
  eng.add_processor([&](Cpu& cpu) {
    for (Key k = 0; k < 200; ++k) q.insert(cpu, k, 0);
    while (q.delete_min(cpu)) {
    }
  });
  eng.run();
  EXPECT_GT(q.restructures(), 0u);
  EXPECT_GT(q.garbage().total_retired(), 0u);
}

TEST(SimLindenQueue, CollectorReclaimsIntoPool) {
  Engine eng(cfg(3));  // 2 workers + the collector daemon
  SimLindenQueue q(eng, opts(/*boundoffset=*/4, /*gc=*/true));
  q.spawn_collector();
  for (int w = 0; w < 2; ++w) {
    eng.add_processor([&, w](Cpu& cpu) {
      for (Key k = 0; k < 300; ++k) q.insert(cpu, k * 2 + w, 0);
      while (q.delete_min(cpu)) {
      }
    });
  }
  eng.run();
  EXPECT_EQ(q.size_raw(), 0u);
  EXPECT_GT(q.garbage().total_collected(), 0u);
  EXPECT_GT(q.pool().released(), 0u);
}

TEST(SimLindenQueue, MultiProcConservation) {
  constexpr int kProcs = 4;
  constexpr Key kPer = 250;
  Engine eng(cfg(kProcs));
  SimLindenQueue q(eng, opts(/*boundoffset=*/8));
  std::vector<std::vector<Value>> popped(kProcs);
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 1);
      for (Key i = 0; i < kPer; ++i) {
        // Unique value per item; keys collide across processors on purpose.
        q.insert(cpu, static_cast<Key>(rng.below(64)),
                 static_cast<Value>(p) * kPer + static_cast<Value>(i));
        if (auto item = q.delete_min(cpu))
          popped[static_cast<std::size_t>(p)].push_back(item->second);
      }
    });
  }
  eng.run();

  std::vector<char> seen(kProcs * kPer, 0);
  std::size_t count = 0;
  for (const auto& mine : popped) {
    for (auto v : mine) {
      ASSERT_LT(v, static_cast<Value>(kProcs * kPer));
      ASSERT_FALSE(seen[v]) << "value " << v << " claimed twice";
      seen[v] = 1;
      ++count;
    }
  }
  EXPECT_EQ(count + q.size_raw(), static_cast<std::size_t>(kProcs * kPer));
  EXPECT_EQ(q.keys_raw().size(), q.size_raw());
}

TEST(SimLindenQueue, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(cfg(4));
    SimLindenQueue q(eng, opts(/*boundoffset=*/8));
    std::vector<Key> popped;
    for (int p = 0; p < 4; ++p) {
      eng.add_processor([&, p](Cpu& cpu) {
        for (Key i = 0; i < 100; ++i) {
          q.insert(cpu, i * 4 + p, 0);
          if (i % 2 == 0)
            if (auto item = q.delete_min(cpu)) popped.push_back(item->first);
        }
      });
    }
    eng.run();
    return popped;
  };
  EXPECT_EQ(run_once(), run_once());
}
