#include "simq/sim_skipqueue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "slpq/detail/random.hpp"

using psim::Cpu;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimSkipQueue;
using simq::Value;

namespace {

MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  return c;
}

SimSkipQueue::Options opts(bool timestamps = true, bool gc = false) {
  SimSkipQueue::Options o;
  o.timestamps = timestamps;
  o.use_gc = gc;
  o.max_level = 12;
  return o;
}

}  // namespace

TEST(SimSkipQueue, SequentialInsertDrainSorted) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  std::vector<Key> drained;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);  // start after cycle 0 so seeded/inserted stamps compare
    for (Key k : {50, 10, 30, 20, 40}) q.insert(cpu, k, static_cast<Value>(k) * 2);
    while (auto item = q.delete_min(cpu)) {
      EXPECT_EQ(item->second, static_cast<Value>(item->first) * 2);
      drained.push_back(item->first);
    }
  });
  eng.run();
  EXPECT_EQ(drained, (std::vector<Key>{10, 20, 30, 40, 50}));
  EXPECT_EQ(q.size_raw(), 0u);
}

TEST(SimSkipQueue, EmptyQueueReturnsNullopt) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  bool empty_seen = false;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    empty_seen = !q.delete_min(cpu).has_value();
  });
  eng.run();
  EXPECT_TRUE(empty_seen);
}

TEST(SimSkipQueue, DuplicateKeyUpdatesValue) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  bool first = false, second = true;
  Value got = 0;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    first = q.insert(cpu, 7, 100);
    second = q.insert(cpu, 7, 200);  // UPDATED, not INSERTED
    got = q.delete_min(cpu)->second;
  });
  eng.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(got, 200u);
  EXPECT_EQ(q.size_raw(), 0u);
}

TEST(SimSkipQueue, SeedPrePopulates) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  for (Key k = 100; k > 0; k -= 7) q.seed(k, static_cast<Value>(k));
  const auto keys = q.keys_raw();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 15u);
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;

  Key first = -1;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    first = q.delete_min(cpu)->first;
  });
  eng.run();
  EXPECT_EQ(first, 2);  // 100 - 14*7
}

TEST(SimSkipQueue, SeedDuplicateUpdates) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  q.seed(5, 1);
  q.seed(5, 2);
  EXPECT_EQ(q.size_raw(), 1u);
}

TEST(SimSkipQueue, RejectsSentinelKeys) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  EXPECT_THROW(q.seed(std::numeric_limits<Key>::max(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.seed(std::numeric_limits<Key>::min(), 0),
               std::invalid_argument);
}

TEST(SimSkipQueue, InvariantsHoldAfterMixedSequential) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    slpq::detail::Xoshiro256 rng(5);
    for (int i = 0; i < 500; ++i) {
      if (rng.bernoulli(0.6))
        q.insert(cpu, static_cast<Key>(rng.below(10000)) + 1, 0);
      else
        q.delete_min(cpu);
    }
  });
  eng.run();
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

// ---------------------------------------------------------------------------
// Concurrent correctness, parameterized over processor count and the
// timestamp mechanism (strict SkipQueue vs Relaxed SkipQueue).
// ---------------------------------------------------------------------------

struct StressParam {
  int procs;
  bool timestamps;
};

class SimSkipQueueStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(SimSkipQueueStress, ConservationAndInvariants) {
  const auto param = GetParam();
  Engine eng(cfg(param.procs));
  SimSkipQueue q(eng, opts(param.timestamps, /*gc=*/false));

  constexpr int kOpsPerProc = 120;
  std::vector<std::vector<Key>> inserted(static_cast<std::size_t>(param.procs));
  std::vector<std::vector<Key>> deleted(static_cast<std::size_t>(param.procs));

  for (int p = 0; p < param.procs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) * 977 + 13);
      for (int i = 0; i < kOpsPerProc; ++i) {
        if (rng.bernoulli(0.5)) {
          // Unique keys per processor avoid the update-in-place path so
          // conservation is exact.
          const Key k = static_cast<Key>(rng.below(1 << 20)) * param.procs + p + 1;
          if (q.insert(cpu, k, static_cast<Value>(k)))
            inserted[static_cast<std::size_t>(p)].push_back(k);
        } else if (auto item = q.delete_min(cpu)) {
          EXPECT_EQ(item->second, static_cast<Value>(item->first));
          deleted[static_cast<std::size_t>(p)].push_back(item->first);
        }
        cpu.advance(50);
      }
    });
  }
  eng.run();

  // Conservation per key: a key may be inserted, deleted and re-inserted,
  // but at any key the counts must balance: inserted == deleted + remaining.
  // (The SWAP guarantees a unique claimant per inserted instance.)
  std::map<Key, long> balance;
  for (auto& v : inserted)
    for (Key k : v) balance[k] += 1;
  for (auto& v : deleted)
    for (Key k : v) balance[k] -= 1;
  for (Key k : q.keys_raw()) balance[k] -= 1;
  for (const auto& [k, count] : balance)
    EXPECT_EQ(count, 0) << "key " << k << " unbalanced by " << count;

  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    ProcsAndModes, SimSkipQueueStress,
    ::testing::Values(StressParam{2, true}, StressParam{4, true},
                      StressParam{8, true}, StressParam{16, true},
                      StressParam{32, true}, StressParam{4, false},
                      StressParam{16, false}, StressParam{32, false}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return (info.param.timestamps ? "Strict" : "Relaxed") +
             std::to_string(info.param.procs) + "p";
    });

TEST(SimSkipQueue, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(cfg(8));
    SimSkipQueue q(eng, opts());
    std::vector<Key> deleted;
    for (int p = 0; p < 8; ++p) {
      eng.add_processor([&, p](Cpu& cpu) {
        cpu.advance(1);
        slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 42);
        for (int i = 0; i < 60; ++i) {
          if (rng.bernoulli(0.5))
            q.insert(cpu, static_cast<Key>(rng.below(100000)) + 1, 1);
          else if (auto item = q.delete_min(cpu))
            deleted.push_back(item->first);
        }
      });
    }
    eng.run();
    return std::make_pair(deleted, eng.horizon());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SimSkipQueue, HighContentionDrainRace) {
  // Everybody deletes from a seeded queue: each item handed out exactly once,
  // then everyone sees EMPTY.
  constexpr int kProcs = 16;
  constexpr int kItems = 100;
  Engine eng(cfg(kProcs));
  SimSkipQueue q(eng, opts());
  for (Key k = 1; k <= kItems; ++k) q.seed(k, static_cast<Value>(k));

  std::vector<std::vector<Key>> got(kProcs);
  std::vector<int> empties(kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      for (;;) {
        auto item = q.delete_min(cpu);
        if (!item) {
          empties[static_cast<std::size_t>(p)]++;
          break;
        }
        got[static_cast<std::size_t>(p)].push_back(item->first);
      }
    });
  }
  eng.run();

  std::multiset<Key> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kItems));
  for (Key k = 1; k <= kItems; ++k) EXPECT_EQ(all.count(k), 1u);
  EXPECT_EQ(q.size_raw(), 0u);
  // Each processor's own deletions come out in increasing key order — it
  // always claims the first unmarked node it reaches.
  for (auto& v : got) EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(SimSkipQueue, GarbageCollectionRecyclesNodes) {
  constexpr int kProcs = 8;
  MachineConfig c = cfg(kProcs + 1);  // +1 for the collector
  Engine eng(c);
  auto o = opts(true, /*gc=*/true);
  o.gc_period = 500;
  SimSkipQueue q(eng, o);
  q.spawn_collector();

  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 7);
      for (int i = 0; i < 200; ++i) {
        const Key k = static_cast<Key>(rng.below(1 << 16)) * kProcs + p + 1;
        q.insert(cpu, k, 0);
        q.delete_min(cpu);
      }
    });
  }
  eng.run();

  // Everything retired was eventually collected (final drain), and the
  // pool actually recycled nodes during the run.
  EXPECT_EQ(q.garbage().pending(), 0u);
  EXPECT_EQ(q.garbage().total_retired(), q.garbage().total_collected());
  EXPECT_GT(q.garbage().total_retired(), 0u);
  EXPECT_GT(q.pool().reused(), 0u);
  // Reuse means we created far fewer nodes than we inserted.
  EXPECT_LT(q.pool().created(), q.garbage().total_retired());

  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

TEST(SimSkipQueue, RelaxedSkipsNoCompletedInserts) {
  // Seeded items are all "completed before" any operation; the relaxed
  // queue must still drain them in order under concurrency.
  constexpr int kProcs = 8;
  Engine eng(cfg(kProcs));
  SimSkipQueue q(eng, opts(/*timestamps=*/false));
  for (Key k = 1; k <= 64; ++k) q.seed(k, 0);
  std::multiset<Key> all;
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&](Cpu& cpu) {
      cpu.advance(1);
      while (auto item = q.delete_min(cpu)) all.insert(item->first);
    });
  }
  eng.run();
  EXPECT_EQ(all.size(), 64u);
}

TEST(SimSkipQueue, MaxLevelOneIsAPlainList) {
  Engine eng(cfg(2));
  auto o = opts();
  o.max_level = 1;
  SimSkipQueue q(eng, o);
  std::vector<Key> drained;
  for (int p = 0; p < 2; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      for (Key k = 0; k < 20; ++k) q.insert(cpu, k * 2 + p + 1, 0);
      cpu.advance(10);
      for (int i = 0; i < 10; ++i)
        if (auto item = q.delete_min(cpu)) drained.push_back(item->first);
    });
  }
  eng.run();
  EXPECT_EQ(drained.size(), 20u);
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

TEST(SimSkipQueue, InsertWhileDrainingNeverLosesItems) {
  // One half inserts ascending keys, the other half drains; afterwards
  // inserted == deleted + remaining (exactness of the two-phase delete).
  constexpr int kProcs = 12;
  Engine eng(cfg(kProcs));
  SimSkipQueue q(eng, opts());
  std::multiset<Key> inserted, deleted;
  for (int p = 0; p < kProcs; ++p) {
    const bool producer = p % 2 == 0;
    eng.add_processor([&, p, producer](Cpu& cpu) {
      cpu.advance(1);
      if (producer) {
        for (int i = 0; i < 80; ++i) {
          const Key k = static_cast<Key>(i) * kProcs + p + 1;
          if (q.insert(cpu, k, 0)) inserted.insert(k);
          cpu.advance(20);
        }
      } else {
        for (int i = 0; i < 80; ++i) {
          if (auto item = q.delete_min(cpu)) deleted.insert(item->first);
          cpu.advance(20);
        }
      }
    });
  }
  eng.run();
  const auto remaining = q.keys_raw();
  EXPECT_EQ(inserted.size(), deleted.size() + remaining.size());
  for (Key k : deleted) EXPECT_TRUE(inserted.count(k));
  for (Key k : remaining) EXPECT_TRUE(inserted.count(k));
}
