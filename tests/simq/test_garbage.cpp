#include "simq/garbage.hpp"

#include <gtest/gtest.h>

#include <vector>

using psim::Cpu;
using psim::Cycles;
using psim::Engine;
using psim::MachineConfig;
using simq::EntryRegistry;
using simq::GarbageLists;
using simq::kMaxTime;

namespace {
MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  c.start_stagger = 0;
  return c;
}

struct FakeNode {
  int id;
  bool freed = false;
};
}  // namespace

TEST(EntryRegistry, EnterExitTogglesSlot) {
  Engine eng(cfg(2));
  EntryRegistry reg(eng);
  EXPECT_EQ(reg.raw_entry(0), kMaxTime);
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(100);
    const Cycles t = reg.enter(cpu);
    EXPECT_EQ(t, 100u);
    EXPECT_EQ(reg.raw_entry(0), 100u);
    reg.exit(cpu);
  });
  eng.add_processor([](Cpu& cpu) { cpu.advance(1); });
  eng.run();
  EXPECT_EQ(reg.raw_entry(0), kMaxTime);
}

TEST(EntryRegistry, OldestFindsMinimumAcrossProcessors) {
  Engine eng(cfg(3));
  EntryRegistry reg(eng);
  Cycles oldest_seen = 0;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10);
    reg.enter(cpu);
    cpu.advance(100000);  // stay inside for a long time
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(500);
    reg.enter(cpu);
    cpu.advance(100000);
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(5000);  // both others are inside by now
    oldest_seen = reg.oldest(cpu);
  });
  eng.run();
  EXPECT_EQ(oldest_seen, 10u);
}

TEST(EntryRegistry, OldestIsMaxTimeWhenNobodyInside) {
  Engine eng(cfg(1));
  EntryRegistry reg(eng);
  Cycles oldest = 0;
  eng.add_processor([&](Cpu& cpu) { oldest = reg.oldest(cpu); });
  eng.run();
  EXPECT_EQ(oldest, kMaxTime);
}

TEST(GarbageLists, CollectFreesOnlyOldEnoughNodes) {
  Engine eng(cfg(2));
  GarbageLists<FakeNode> garbage(2);
  FakeNode a{1}, b{2};
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(100);
    garbage.retire(cpu, &a);  // deletion time ~100
    cpu.advance(900);
    garbage.retire(cpu, &b);  // deletion time ~1000
  });
  eng.add_processor([](Cpu& cpu) { cpu.advance(1); });
  eng.run();

  EXPECT_EQ(garbage.pending(), 2u);
  // Oldest processor entered at 500: only `a` (deleted at ~100) is safe.
  const auto freed = garbage.collect(500, [](FakeNode* n) { n->freed = true; });
  EXPECT_EQ(freed, 1u);
  EXPECT_TRUE(a.freed);
  EXPECT_FALSE(b.freed);
  EXPECT_EQ(garbage.pending(), 1u);
  // With nobody inside, everything drains.
  garbage.collect(kMaxTime, [](FakeNode* n) { n->freed = true; });
  EXPECT_TRUE(b.freed);
  EXPECT_EQ(garbage.pending(), 0u);
  EXPECT_EQ(garbage.total_retired(), garbage.total_collected());
}

TEST(GarbageLists, PerProcessorListsAreIndependent) {
  Engine eng(cfg(2));
  GarbageLists<FakeNode> garbage(2);
  FakeNode n0{0}, n1{1};
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10);
    garbage.retire(cpu, &n0);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10000);
    garbage.retire(cpu, &n1);
  });
  eng.run();
  // Cutoff between the two stamps frees only processor 0's node.
  const auto freed = garbage.collect(5000, [](FakeNode* n) { n->freed = true; });
  EXPECT_EQ(freed, 1u);
  EXPECT_TRUE(n0.freed);
  EXPECT_FALSE(n1.freed);
}

TEST(CollectorBody, NeverFreesWhileAHolderIsInside) {
  // Processor 0 retires a node while processor 1 is inside the structure
  // (entered earlier). The collector daemon must not free it until 1 exits.
  Engine eng(cfg(3));
  EntryRegistry reg(eng);
  GarbageLists<FakeNode> garbage(3);
  FakeNode node{7};
  Cycles freed_at = 0;
  Cycles holder_exit_at = 0;

  eng.add_processor([&](Cpu& cpu) {  // the deleter
    cpu.advance(50);
    reg.enter(cpu);
    cpu.advance(100);
    garbage.retire(cpu, &node);
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {  // the long-lived holder
    cpu.advance(20);
    reg.enter(cpu);
    cpu.advance(50000);
    reg.exit(cpu);
    holder_exit_at = cpu.now();
  });
  eng.add_processor(
      [&](Cpu& cpu) {
        simq::collector_body(
            cpu, reg, garbage,
            [&](FakeNode* n) {
              n->freed = true;
              freed_at = cpu.now();
            },
            /*period=*/200);
      },
      /*daemon=*/true);

  eng.run();
  EXPECT_TRUE(node.freed);
  EXPECT_GE(freed_at, holder_exit_at)
      << "node freed while a processor that saw it was still inside";
}

TEST(CollectorBody, DrainsEverythingAtShutdown) {
  Engine eng(cfg(2));
  EntryRegistry reg(eng);
  GarbageLists<FakeNode> garbage(2);
  std::vector<FakeNode> nodes(20);
  eng.add_processor([&](Cpu& cpu) {
    for (auto& n : nodes) {
      reg.enter(cpu);
      cpu.advance(30);
      garbage.retire(cpu, &n);
      reg.exit(cpu);
    }
  });
  eng.add_processor(
      [&](Cpu& cpu) {
        simq::collector_body(cpu, reg, garbage,
                             [](FakeNode* n) { n->freed = true; },
                             /*period=*/100000);  // too slow to keep up live
      },
      /*daemon=*/true);
  eng.run();
  EXPECT_EQ(garbage.pending(), 0u);
  for (auto& n : nodes) EXPECT_TRUE(n.freed);
}
