#include "simq/garbage.hpp"

#include <gtest/gtest.h>

#include <vector>

using psim::Cpu;
using psim::Cycles;
using psim::Engine;
using psim::MachineConfig;
using simq::EntryRegistry;
using simq::GarbageLists;
using simq::kMaxTime;

namespace {
MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  c.start_stagger = 0;
  return c;
}

struct FakeNode {
  int id;
  bool freed = false;
};
}  // namespace

TEST(EntryRegistry, EnterExitTogglesSlot) {
  Engine eng(cfg(2));
  EntryRegistry reg(eng);
  EXPECT_EQ(reg.raw_entry(0), kMaxTime);
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(100);
    const Cycles t = reg.enter(cpu);
    EXPECT_EQ(t, 100u);
    EXPECT_EQ(reg.raw_entry(0), 100u);
    reg.exit(cpu);
  });
  eng.add_processor([](Cpu& cpu) { cpu.advance(1); });
  eng.run();
  EXPECT_EQ(reg.raw_entry(0), kMaxTime);
}

TEST(EntryRegistry, OldestFindsMinimumAcrossProcessors) {
  Engine eng(cfg(3));
  EntryRegistry reg(eng);
  Cycles oldest_seen = 0;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10);
    reg.enter(cpu);
    cpu.advance(100000);  // stay inside for a long time
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(500);
    reg.enter(cpu);
    cpu.advance(100000);
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(5000);  // both others are inside by now
    oldest_seen = reg.oldest(cpu);
  });
  eng.run();
  EXPECT_EQ(oldest_seen, 10u);
}

TEST(EntryRegistry, OldestIsMaxTimeWhenNobodyInside) {
  Engine eng(cfg(1));
  EntryRegistry reg(eng);
  Cycles oldest = 0;
  eng.add_processor([&](Cpu& cpu) { oldest = reg.oldest(cpu); });
  eng.run();
  EXPECT_EQ(oldest, kMaxTime);
}

TEST(GarbageLists, CollectFreesOnlyOldEnoughNodes) {
  Engine eng(cfg(2));
  GarbageLists<FakeNode> garbage(2);
  FakeNode a{1}, b{2};
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(100);
    garbage.retire(cpu, &a);  // deletion time ~100
    cpu.advance(900);
    garbage.retire(cpu, &b);  // deletion time ~1000
  });
  eng.add_processor([](Cpu& cpu) { cpu.advance(1); });
  eng.run();

  EXPECT_EQ(garbage.pending(), 2u);
  // Oldest processor entered at 500: only `a` (deleted at ~100) is safe.
  const auto freed = garbage.collect(500, [](FakeNode* n) { n->freed = true; });
  EXPECT_EQ(freed, 1u);
  EXPECT_TRUE(a.freed);
  EXPECT_FALSE(b.freed);
  EXPECT_EQ(garbage.pending(), 1u);
  // With nobody inside, everything drains.
  garbage.collect(kMaxTime, [](FakeNode* n) { n->freed = true; });
  EXPECT_TRUE(b.freed);
  EXPECT_EQ(garbage.pending(), 0u);
  EXPECT_EQ(garbage.total_retired(), garbage.total_collected());
}

TEST(GarbageLists, PerProcessorListsAreIndependent) {
  Engine eng(cfg(2));
  GarbageLists<FakeNode> garbage(2);
  FakeNode n0{0}, n1{1};
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10);
    garbage.retire(cpu, &n0);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(10000);
    garbage.retire(cpu, &n1);
  });
  eng.run();
  // Cutoff between the two stamps frees only processor 0's node.
  const auto freed = garbage.collect(5000, [](FakeNode* n) { n->freed = true; });
  EXPECT_EQ(freed, 1u);
  EXPECT_TRUE(n0.freed);
  EXPECT_FALSE(n1.freed);
}

TEST(CollectorBody, NeverFreesWhileAHolderIsInside) {
  // Processor 0 retires a node while processor 1 is inside the structure
  // (entered earlier). The collector daemon must not free it until 1 exits.
  Engine eng(cfg(3));
  EntryRegistry reg(eng);
  GarbageLists<FakeNode> garbage(3);
  FakeNode node{7};
  Cycles freed_at = 0;
  Cycles holder_exit_at = 0;

  eng.add_processor([&](Cpu& cpu) {  // the deleter
    cpu.advance(50);
    reg.enter(cpu);
    cpu.advance(100);
    garbage.retire(cpu, &node);
    reg.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {  // the long-lived holder
    cpu.advance(20);
    reg.enter(cpu);
    cpu.advance(50000);
    reg.exit(cpu);
    holder_exit_at = cpu.now();
  });
  eng.add_processor(
      [&](Cpu& cpu) {
        simq::collector_body(
            cpu, reg, garbage,
            [&](FakeNode* n) {
              n->freed = true;
              freed_at = cpu.now();
            },
            /*period=*/200);
      },
      /*daemon=*/true);

  eng.run();
  EXPECT_TRUE(node.freed);
  EXPECT_GE(freed_at, holder_exit_at)
      << "node freed while a processor that saw it was still inside";
}

TEST(HazardSlots, PublishClearAndSnapshot) {
  Engine eng(cfg(2));
  simq::HazardSlots hz(eng, /*slots_per_proc=*/3);
  FakeNode a{1}, b{2};
  std::vector<const void*> snap;
  eng.add_processor([&](Cpu& cpu) {
    hz.publish(cpu, 0, &a);
    hz.publish(cpu, 2, &b);
    cpu.advance(1000);
    hz.clear(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(500);  // both publishes have landed
    hz.snapshot(cpu, snap);
  });
  eng.run();
  EXPECT_EQ(snap.size(), 2u);
  // After clear(), every slot the owner published is empty again.
  for (int s = 0; s < 3; ++s) EXPECT_EQ(hz.raw_slot(0, s), nullptr);
}

TEST(EpochCells, AdvanceWaitsForStragglers) {
  Engine eng(cfg(2));
  simq::EpochCells ep(eng);
  std::uint64_t first = 0, blocked = 0, after = 0;
  eng.add_processor([&](Cpu& cpu) {  // straggler pinned in the old epoch
    ep.enter(cpu);
    cpu.advance(5000);
    ep.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1000);
    // A pin of the *current* epoch permits one advance (that is why nodes
    // need two), but the next advance must wait for the straggler.
    first = ep.try_advance(cpu);
    blocked = ep.try_advance(cpu);
    cpu.advance(9000);  // straggler has exited by now
    after = ep.try_advance(cpu);
  });
  eng.run();
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(blocked, 3u) << "epoch advanced twice past an active straggler";
  EXPECT_EQ(after, 4u);
}

TEST(SimReclaimer, HazardScanSkipsProtectedNodes) {
  Engine eng(cfg(2));
  simq::SimReclaimer<FakeNode> gc(eng, slpq::ReclaimPolicy::kHazard,
                                  /*hazard_slots=*/2);
  FakeNode held{1}, loose{2};
  std::size_t freed_mid = 0;
  eng.add_processor([&](Cpu& cpu) {  // walker standing on `held`
    gc.enter(cpu);
    gc.protect(cpu, 0, &held);
    cpu.advance(5000);
    gc.exit(cpu);
  });
  eng.add_processor([&](Cpu& cpu) {  // retires both, then collects
    cpu.advance(500);
    gc.enter(cpu);
    gc.retire(cpu, &held);
    gc.retire(cpu, &loose);
    gc.exit(cpu);
    cpu.advance(500);
    freed_mid = gc.collect(cpu, [](FakeNode* n) { n->freed = true; });
  });
  eng.run();
  EXPECT_EQ(freed_mid, 1u);
  EXPECT_TRUE(loose.freed);
  EXPECT_FALSE(held.freed) << "collector freed a hazard-protected node";
  EXPECT_EQ(gc.garbage().pending(), 1u);
  EXPECT_GT(gc.stalls(), 0u);
}

TEST(SimReclaimer, EpochFreesOnlyTwoEpochsBack) {
  Engine eng(cfg(1));
  simq::SimReclaimer<FakeNode> gc(eng, slpq::ReclaimPolicy::kEpoch,
                                  /*hazard_slots=*/1);
  FakeNode n{1};
  std::size_t first = 0, second = 0, third = 0;
  eng.add_processor([&](Cpu& cpu) {
    gc.enter(cpu);
    gc.retire(cpu, &n);  // stamped with the current epoch
    gc.exit(cpu);
    first = gc.collect(cpu, [](FakeNode* f) { f->freed = true; });   // e+1
    second = gc.collect(cpu, [](FakeNode* f) { f->freed = true; });  // e+2
    third = gc.collect(cpu, [](FakeNode* f) { f->freed = true; });
  });
  eng.run();
  EXPECT_EQ(first, 0u) << "freed only one epoch after retirement";
  EXPECT_EQ(second + third, 1u);
  EXPECT_TRUE(n.freed);
}

TEST(SimReclaimer, LeakyFreesNothingUntilShutdownDrain) {
  Engine eng(cfg(2));
  simq::SimReclaimer<FakeNode> gc(eng, slpq::ReclaimPolicy::kLeaky,
                                  /*hazard_slots=*/1);
  std::vector<FakeNode> nodes(10);
  std::size_t freed_live = 0;
  eng.add_processor([&](Cpu& cpu) {
    for (auto& n : nodes) {
      gc.enter(cpu);
      gc.retire(cpu, &n);
      gc.exit(cpu);
      freed_live += gc.collect(cpu, [](FakeNode* f) { f->freed = true; });
    }
  });
  eng.add_processor(
      [&](Cpu& cpu) {
        gc.collector_loop(cpu, [](FakeNode* f) { f->freed = true; },
                          /*period=*/100);
      },
      /*daemon=*/true);
  eng.run();
  EXPECT_EQ(freed_live, 0u) << "leaky freed during the run";
  EXPECT_EQ(gc.garbage().pending(), 0u) << "shutdown drain missed nodes";
  for (auto& n : nodes) EXPECT_TRUE(n.freed);
}

TEST(CollectorBody, DrainsEverythingAtShutdown) {
  Engine eng(cfg(2));
  EntryRegistry reg(eng);
  GarbageLists<FakeNode> garbage(2);
  std::vector<FakeNode> nodes(20);
  eng.add_processor([&](Cpu& cpu) {
    for (auto& n : nodes) {
      reg.enter(cpu);
      cpu.advance(30);
      garbage.retire(cpu, &n);
      reg.exit(cpu);
    }
  });
  eng.add_processor(
      [&](Cpu& cpu) {
        simq::collector_body(cpu, reg, garbage,
                             [](FakeNode* n) { n->freed = true; },
                             /*period=*/100000);  // too slow to keep up live
      },
      /*daemon=*/true);
  eng.run();
  EXPECT_EQ(garbage.pending(), 0u);
  for (auto& n : nodes) EXPECT_TRUE(n.freed);
}
