// erase()/contains() on the simulated SkipQueue.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "slpq/detail/random.hpp"
#include "simq/sim_skipqueue.hpp"

using psim::Cpu;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimSkipQueue;
using simq::Value;

namespace {
MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  return c;
}
SimSkipQueue::Options opts() {
  SimSkipQueue::Options o;
  o.use_gc = false;
  o.max_level = 12;
  return o;
}
}  // namespace

TEST(SimSkipQueueErase, EraseExistingAndMissing) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  std::optional<Value> hit, miss, twice;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    q.insert(cpu, 10, 100);
    q.insert(cpu, 20, 200);
    hit = q.erase(cpu, 10);
    miss = q.erase(cpu, 30);
    twice = q.erase(cpu, 10);
  });
  eng.run();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 100u);
  EXPECT_FALSE(miss.has_value());
  EXPECT_FALSE(twice.has_value());
  EXPECT_EQ(q.size_raw(), 1u);
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

TEST(SimSkipQueueErase, ContainsTracksState) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  bool before = true, after_insert = false, after_erase = true;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    before = q.contains(cpu, 5);
    q.insert(cpu, 5, 50);
    after_insert = q.contains(cpu, 5);
    q.erase(cpu, 5);
    after_erase = q.contains(cpu, 5);
  });
  eng.run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after_insert);
  EXPECT_FALSE(after_erase);
}

TEST(SimSkipQueueErase, ConcurrentErasersClaimUniquely) {
  constexpr int kProcs = 8;
  constexpr Key kItems = 64;
  Engine eng(cfg(kProcs));
  SimSkipQueue q(eng, opts());
  for (Key k = 1; k <= kItems; ++k) q.seed(k, static_cast<Value>(k));

  std::vector<int> wins(kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      for (Key k = 1; k <= kItems; ++k)
        if (q.erase(cpu, k)) wins[static_cast<std::size_t>(p)]++;
    });
  }
  eng.run();
  int total = 0;
  for (int w : wins) total += w;
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(q.size_raw(), 0u);
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

TEST(SimSkipQueueErase, EraseRacesDeleteMin) {
  constexpr int kProcs = 8;
  constexpr Key kItems = 80;
  Engine eng(cfg(kProcs));
  SimSkipQueue q(eng, opts());
  for (Key k = 1; k <= kItems; ++k) q.seed(k, 0);
  int via_erase = 0, via_dm = 0;
  for (int p = 0; p < kProcs; ++p) {
    const bool eraser = p % 2 == 0;
    eng.add_processor([&, eraser](Cpu& cpu) {
      cpu.advance(1);
      if (eraser) {
        for (Key k = kItems; k >= 1; --k)
          if (q.erase(cpu, k)) ++via_erase;
      } else {
        for (int i = 0; i < kItems / 4; ++i)
          if (q.delete_min(cpu)) ++via_dm;
      }
    });
  }
  eng.run();
  EXPECT_EQ(via_erase + via_dm + static_cast<int>(q.size_raw()),
            static_cast<int>(kItems));
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

TEST(SimSkipQueueErase, MixedAgainstModelSequential) {
  Engine eng(cfg(1));
  SimSkipQueue q(eng, opts());
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    std::map<Key, Value> model;
    slpq::detail::Xoshiro256 rng(11);
    for (int step = 0; step < 1500; ++step) {
      switch (rng.below(4)) {
        case 0:
        case 1: {
          const Key k = static_cast<Key>(rng.below(500)) + 1;
          q.insert(cpu, k, static_cast<Value>(step));
          model[k] = static_cast<Value>(step);
          break;
        }
        case 2: {
          const auto got = q.delete_min(cpu);
          ASSERT_EQ(got.has_value(), !model.empty());
          if (got) {
            ASSERT_EQ(got->first, model.begin()->first);
            model.erase(model.begin());
          }
          break;
        }
        case 3: {
          const Key k = static_cast<Key>(rng.below(500)) + 1;
          const auto got = q.erase(cpu, k);
          const auto it = model.find(k);
          ASSERT_EQ(got.has_value(), it != model.end());
          if (got) {
            ASSERT_EQ(*got, it->second);
            model.erase(it);
          }
          break;
        }
      }
    }
    ASSERT_EQ(q.size_raw(), model.size());
  });
  eng.run();
}
