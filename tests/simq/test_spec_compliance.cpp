// Checks the SkipQueue against its specification (Definition 1 / Lemma 1).
//
// The simulator gives us what real hardware cannot: a global order on every
// operation. We record, per Insert, the cycle at which it completed, and
// per Delete-min, the cycle at which it started and the cycle of its
// winning SWAP (its serialization point in the proof of Lemma 1). We then
// replay the history: serializing Delete-mins by claim time, each returned
// key x must satisfy
//
//     there is no key y < x with  insert(y) completed before the
//     delete-min started  and  y not yet claimed by an earlier delete-min,
//
// and an EMPTY answer requires that no such y exists at all. This holds for
// the strict SkipQueue; the Relaxed variant satisfies the same inequality
// (its extra freedom is returning a *smaller* concurrently-inserted key,
// which the check permits).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "slpq/detail/random.hpp"
#include "simq/sim_skipqueue.hpp"

using psim::Cpu;
using psim::Cycles;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimSkipQueue;

namespace {

struct InsertRec {
  Key key;
  Cycles invoked;
  Cycles completed;  // measured after return: >= the node's time stamp
};

struct DeleteRec {
  Cycles started;    // measured before the call: <= the operation's clock read
  Cycles claimed;    // cycle of the winning SWAP (or of the EMPTY return)
  std::optional<Key> key;
};

struct History {
  std::vector<InsertRec> inserts;
  std::vector<DeleteRec> deletes;
};

History run_history(int procs, bool timestamps, std::uint64_t seed,
                    int ops_per_proc, double insert_ratio) {
  MachineConfig cfg;
  cfg.processors = procs;
  cfg.seed = seed;
  Engine eng(cfg);
  SimSkipQueue::Options o;
  o.timestamps = timestamps;
  o.use_gc = false;
  SimSkipQueue q(eng, o);

  std::vector<History> partial(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      cpu.advance(1);
      slpq::detail::Xoshiro256 rng(seed * 131 + static_cast<std::uint64_t>(p));
      auto& h = partial[static_cast<std::size_t>(p)];
      for (int i = 0; i < ops_per_proc; ++i) {
        if (rng.bernoulli(insert_ratio)) {
          // Unique keys across the whole run keep the replay simple.
          const Key k =
              static_cast<Key>(rng.below(1 << 24)) * procs * ops_per_proc +
              p * ops_per_proc + i + 1;
          const Cycles t0 = cpu.now();
          if (q.insert(cpu, k, 0))
            h.inserts.push_back({k, t0, cpu.now()});
        } else {
          const Cycles t0 = cpu.now();
          Cycles claim = 0;
          auto item = q.delete_min(cpu, &claim);
          h.deletes.push_back(
              {t0, claim, item ? std::optional<Key>(item->first) : std::nullopt});
        }
        cpu.advance(30);
      }
    });
  }
  eng.run();

  History all;
  for (auto& h : partial) {
    all.inserts.insert(all.inserts.end(), h.inserts.begin(), h.inserts.end());
    all.deletes.insert(all.deletes.end(), h.deletes.begin(), h.deletes.end());
  }
  return all;
}

/// Replays the recorded history and reports the first violation found.
/// A key y is "available to d" if its insert completed before d started and
/// no delete-min with claim time <= d's claimed y. (The <= makes the check
/// tolerant of two claims landing on the same cycle, whose true engine
/// order is not recoverable from timestamps.)
::testing::AssertionResult check_definition1(const History& h) {
  std::map<Key, Cycles> claim_time;
  for (const auto& d : h.deletes)
    if (d.key) claim_time[*d.key] = d.claimed;

  for (const auto& d : h.deletes) {
    for (const auto& ins : h.inserts) {
      if (ins.completed >= d.started) continue;
      const auto it = claim_time.find(ins.key);
      const bool claimed_by_or_before_d =
          it != claim_time.end() && it->second <= d.claimed;
      if (claimed_by_or_before_d) continue;
      if (!d.key.has_value())
        return ::testing::AssertionFailure()
               << "delete-min returned EMPTY at claim=" << d.claimed
               << " but key " << ins.key << " (completed " << ins.completed
               << " < start " << d.started << ") was available";
      if (ins.key < *d.key)
        return ::testing::AssertionFailure()
               << "delete-min returned " << *d.key << " at claim=" << d.claimed
               << " but smaller available key " << ins.key << " completed at "
               << ins.completed << " before start " << d.started;
    }
  }
  return ::testing::AssertionSuccess();
}

struct SpecParam {
  int procs;
  bool timestamps;
  double insert_ratio;
  std::uint64_t seed;
};

class SkipQueueSpec : public ::testing::TestWithParam<SpecParam> {};

}  // namespace

TEST_P(SkipQueueSpec, Definition1Holds) {
  const auto p = GetParam();
  const History h = run_history(p.procs, p.timestamps, p.seed, 100,
                                p.insert_ratio);
  // Sanity: the run actually exercised both operations.
  ASSERT_FALSE(h.inserts.empty());
  ASSERT_FALSE(h.deletes.empty());
  EXPECT_TRUE(check_definition1(h));

  if (p.timestamps) {
    // Strict-only property: a delete-min never returns a key whose insert
    // was invoked after the delete's claim (the time-stamp test filters
    // every concurrent insert; the relaxed queue is allowed to return
    // such keys).
    for (const auto& d : h.deletes) {
      if (!d.key) continue;
      for (const auto& ins : h.inserts) {
        if (ins.key != *d.key) continue;
        EXPECT_LT(ins.invoked, d.claimed)
            << "strict delete-min returned a key inserted after its claim";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SkipQueueSpec,
    ::testing::Values(SpecParam{4, true, 0.5, 1}, SpecParam{8, true, 0.5, 2},
                      SpecParam{16, true, 0.5, 3}, SpecParam{16, true, 0.3, 4},
                      SpecParam{16, true, 0.7, 5}, SpecParam{32, true, 0.5, 6},
                      SpecParam{8, false, 0.5, 7}, SpecParam{16, false, 0.5, 8},
                      SpecParam{32, false, 0.3, 9}),
    [](const ::testing::TestParamInfo<SpecParam>& info) {
      return (info.param.timestamps ? "Strict" : "Relaxed") +
             std::to_string(info.param.procs) + "p_seed" +
             std::to_string(info.param.seed);
    });

TEST(SkipQueueSpec, EmptyAnswersAreHonest) {
  // A queue that starts empty and sees only deletes must answer EMPTY every
  // time — no phantom items.
  MachineConfig cfg;
  cfg.processors = 8;
  Engine eng(cfg);
  SimSkipQueue::Options o;
  o.use_gc = false;
  SimSkipQueue q(eng, o);
  int phantom = 0;
  for (int p = 0; p < 8; ++p) {
    eng.add_processor([&](Cpu& cpu) {
      cpu.advance(1);
      for (int i = 0; i < 20; ++i)
        if (q.delete_min(cpu)) ++phantom;
    });
  }
  eng.run();
  EXPECT_EQ(phantom, 0);
}

TEST(SkipQueueSpec, PerProcessorFifoOfOwnInserts) {
  // A processor that alternates insert(k)/delete-min, alone in the system,
  // must get exactly its own keys back in increasing order.
  MachineConfig cfg;
  cfg.processors = 1;
  Engine eng(cfg);
  SimSkipQueue::Options o;
  o.use_gc = false;
  SimSkipQueue q(eng, o);
  std::vector<Key> got;
  eng.add_processor([&](Cpu& cpu) {
    cpu.advance(1);
    for (Key k : {5, 3, 9, 1}) q.insert(cpu, k, 0);
    for (int i = 0; i < 4; ++i) got.push_back(q.delete_min(cpu)->first);
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<Key>{1, 3, 5, 9}));
}
