#include "simq/sim_funnel_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "slpq/detail/random.hpp"

using psim::Cpu;
using psim::Engine;
using psim::MachineConfig;
using simq::Key;
using simq::SimFunnelList;
using simq::Value;

namespace {
MachineConfig cfg(int procs) {
  MachineConfig c;
  c.processors = procs;
  return c;
}
}  // namespace

TEST(SimFunnelList, SequentialInsertDrainSorted) {
  Engine eng(cfg(1));
  SimFunnelList q(eng);
  std::vector<Key> drained;
  eng.add_processor([&](Cpu& cpu) {
    for (Key k : {9, 3, 7, 1, 5}) q.insert(cpu, k, static_cast<Value>(k) * 3);
    while (auto item = q.delete_min(cpu)) {
      EXPECT_EQ(item->second, static_cast<Value>(item->first) * 3);
      drained.push_back(item->first);
    }
  });
  eng.run();
  EXPECT_EQ(drained, (std::vector<Key>{1, 3, 5, 7, 9}));
  EXPECT_EQ(q.size_raw(), 0u);
}

TEST(SimFunnelList, EmptyReturnsNullopt) {
  Engine eng(cfg(1));
  SimFunnelList q(eng);
  bool empty = false;
  eng.add_processor([&](Cpu& cpu) { empty = !q.delete_min(cpu).has_value(); });
  eng.run();
  EXPECT_TRUE(empty);
}

TEST(SimFunnelList, DuplicatesAreKept) {
  Engine eng(cfg(1));
  SimFunnelList q(eng);
  std::vector<Value> vals;
  eng.add_processor([&](Cpu& cpu) {
    q.insert(cpu, 4, 1);
    q.insert(cpu, 4, 2);
    while (auto item = q.delete_min(cpu)) vals.push_back(item->second);
  });
  eng.run();
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<Value>{1, 2}));
}

TEST(SimFunnelList, SeedBuildsSortedList) {
  Engine eng(cfg(1));
  SimFunnelList q(eng);
  slpq::detail::Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) q.seed(static_cast<Key>(rng.below(1000)), 0);
  const auto keys = q.keys_raw();
  EXPECT_EQ(keys.size(), 200u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

class SimFunnelListStress : public ::testing::TestWithParam<int> {};

TEST_P(SimFunnelListStress, ConservationAndInvariants) {
  const int procs = GetParam();
  Engine eng(cfg(procs));
  SimFunnelList q(eng);
  std::map<Key, long> balance;
  for (int p = 0; p < procs; ++p) {
    eng.add_processor([&, p](Cpu& cpu) {
      slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) * 1117 + 3);
      for (int i = 0; i < 80; ++i) {
        if (rng.bernoulli(0.5)) {
          const Key k = static_cast<Key>(rng.below(1 << 16));
          q.insert(cpu, k, static_cast<Value>(k));
          balance[k] += 1;
        } else if (auto item = q.delete_min(cpu)) {
          EXPECT_EQ(item->second, static_cast<Value>(item->first));
          balance[item->first] -= 1;
        }
        cpu.advance(30);
      }
    });
  }
  eng.run();
  for (Key k : q.keys_raw()) balance[k] -= 1;
  for (auto& [k, v] : balance) EXPECT_EQ(v, 0) << "key " << k;
  std::string err;
  EXPECT_TRUE(q.check_invariants_raw(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Procs, SimFunnelListStress,
                         ::testing::Values(2, 4, 8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "p";
                         });

TEST(SimFunnelList, CombiningHappensUnderContention) {
  constexpr int kProcs = 24;
  Engine eng(cfg(kProcs));
  SimFunnelList::Options o;
  o.width = 2;  // narrow funnel forces collisions
  SimFunnelList q(eng, o);
  for (Key k = 0; k < 400; ++k) q.seed(k, 0);
  std::multiset<Key> got;
  for (int p = 0; p < kProcs; ++p) {
    eng.add_processor([&](Cpu& cpu) {
      for (int i = 0; i < 12; ++i) {
        if (auto item = q.delete_min(cpu)) got.insert(item->first);
        cpu.advance(10);
      }
    });
  }
  eng.run();
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kProcs) * 12);
  // Batches handed out the smallest items; everything received is unique
  // and is exactly the bottom of the seeded range.
  Key expected = 0;
  for (Key k : got) EXPECT_EQ(k, expected++);
  EXPECT_GT(q.combines(), 0u);
  EXPECT_LT(q.batches_applied(), static_cast<std::uint64_t>(kProcs) * 12);
}

TEST(SimFunnelList, ProducersAndConsumersBalance) {
  constexpr int kProcs = 12;
  Engine eng(cfg(kProcs));
  SimFunnelList q(eng);
  std::multiset<Key> inserted, deleted;
  for (int p = 0; p < kProcs; ++p) {
    const bool producer = p % 2 == 0;
    eng.add_processor([&, p, producer](Cpu& cpu) {
      for (int i = 0; i < 50; ++i) {
        if (producer) {
          const Key k = static_cast<Key>(i) * kProcs + p;
          q.insert(cpu, k, 0);
          inserted.insert(k);
        } else if (auto item = q.delete_min(cpu)) {
          deleted.insert(item->first);
        }
        cpu.advance(20);
      }
    });
  }
  eng.run();
  EXPECT_EQ(inserted.size(), deleted.size() + q.size_raw());
  for (Key k : deleted) EXPECT_TRUE(inserted.count(k)) << k;
}

TEST(SimFunnelList, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(cfg(8));
    SimFunnelList q(eng);
    std::vector<Key> deleted;
    for (int p = 0; p < 8; ++p) {
      eng.add_processor([&, p](Cpu& cpu) {
        slpq::detail::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 5);
        for (int i = 0; i < 40; ++i) {
          if (rng.bernoulli(0.5))
            q.insert(cpu, static_cast<Key>(rng.below(1000)), 0);
          else if (auto item = q.delete_min(cpu))
            deleted.push_back(item->first);
        }
      });
    }
    eng.run();
    return deleted;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimFunnelList, WideFunnelStillCorrect) {
  Engine eng(cfg(16));
  SimFunnelList::Options o;
  o.width = 16;
  o.layers = 3;
  SimFunnelList q(eng, o);
  std::multiset<Key> got;
  for (Key k = 0; k < 160; ++k) q.seed(k, 0);
  for (int p = 0; p < 16; ++p) {
    eng.add_processor([&](Cpu& cpu) {
      for (int i = 0; i < 10; ++i)
        if (auto item = q.delete_min(cpu)) got.insert(item->first);
    });
  }
  eng.run();
  EXPECT_EQ(got.size(), 160u);
}
